//! Acceptance tests for the static triage pass and the plan verifier.
//!
//! The contract: on every modeled vulnerable application, the static triage
//! must have **zero false negatives** relative to the dynamic pipeline —
//! every patch the shadow analyzer generates from a concrete attack input
//! must be covered by a static candidate with the same `(FUN, CCID)` key
//! and a superset of its vulnerability classes.

use heaptherapy_plus::analysis::{verify_plan, VerifierLimits};
use heaptherapy_plus::callgraph::Strategy;
use heaptherapy_plus::core::{HeapTherapy, PipelineConfig};
use heaptherapy_plus::encoding::{InstrumentationPlan, Scheme};
use heaptherapy_plus::simprog::spec;
use heaptherapy_plus::vulnapps;

fn ht() -> HeapTherapy {
    HeapTherapy::new(PipelineConfig::default())
}

#[test]
fn zero_false_negatives_on_the_table2_suite() {
    // All 7 CVE apps + 23 SAMATE cases: every dynamic patch (from every
    // attack input) has a covering static candidate.
    let suite = vulnapps::table2_suite();
    assert_eq!(suite.len(), 30);
    for app in suite {
        let report = ht().lint(&app);
        assert!(
            !report.triage.bounded,
            "{}: triage should fully converge",
            app.name
        );
        assert!(
            report.static_over_approximates(),
            "{}: dynamic patches without static candidates: {:?}",
            app.name,
            report.uncovered
        );
        assert!(
            !report.dynamic_patches.is_empty(),
            "{}: the attack input must produce dynamic patches",
            app.name
        );
        assert!(
            !report.triage.is_clean(),
            "{}: a vulnerable app must have static candidates",
            app.name
        );
        assert_eq!(report.exit_code(), 2, "{}", app.name);
    }
}

#[test]
fn triage_detects_the_ground_truth_class() {
    // Beyond key coverage: for each app, the union of static candidate
    // classes must include the ground-truth vulnerability class.
    for app in vulnapps::table2_suite() {
        let h = ht();
        let ip = h.instrument(&app.program);
        let triage = h.static_triage(&ip);
        let union = triage
            .candidates
            .iter()
            .fold(heaptherapy_plus::patch::VulnFlags::NONE, |acc, c| {
                acc | c.vuln
            });
        assert!(
            union.contains(app.expected),
            "{}: expected {} within static union {}",
            app.name,
            app.expected,
            union
        );
    }
}

#[test]
fn multi_context_overflow_yields_one_candidate_per_context() {
    let app = vulnapps::multi_context_overflow();
    let report = ht().lint(&app);
    assert!(report.triage.candidates.len() >= 2, "{:?}", report.triage);
    assert!(report.static_over_approximates(), "{:?}", report.uncovered);
}

#[test]
fn plan_verifier_passes_on_the_fig2_graph() {
    let graph = ht_bench::fig2::example_graph();
    for strategy in Strategy::ALL {
        for scheme in Scheme::ALL {
            let plan = InstrumentationPlan::build(&graph, strategy, scheme);
            let v = verify_plan(&graph, &plan, &VerifierLimits::default());
            assert!(v.is_ok(), "fig2 {strategy}/{scheme}: {v:?}");
            assert!(!v.bounded, "fig2 enumerates fully");
        }
    }
}

#[test]
fn plan_verifier_passes_on_all_spec_models() {
    let suite = spec::spec_suite();
    assert_eq!(suite.len(), 12);
    for bench in suite {
        let w = spec::build_spec_workload(bench);
        for strategy in Strategy::ALL {
            let plan = InstrumentationPlan::build(w.program.graph(), strategy, Scheme::Pcc);
            let v = verify_plan(w.program.graph(), &plan, &VerifierLimits::default());
            assert!(
                v.inclusion_ok && v.sites_ok && v.coverage_ok,
                "{} {strategy}: {v:?}",
                bench.name
            );
        }
        // The precise positional scheme must verify collision-free.
        let plan = InstrumentationPlan::build(w.program.graph(), Strategy::Tcs, Scheme::Positional);
        let v = verify_plan(w.program.graph(), &plan, &VerifierLimits::default());
        assert!(v.is_ok(), "{}: {v:?}", bench.name);
        assert_eq!(v.collisions.collisions, 0, "{}", bench.name);
    }
}

#[test]
fn spec_models_triage_clean() {
    // The SPEC workload models are legal programs: constant in-bounds
    // extents, inputs only drive loop trip counts. Static triage must not
    // raise false alarms on any of them.
    for bench in spec::spec_suite() {
        let w = spec::build_spec_workload(bench);
        let h = ht();
        let ip = h.instrument(&w.program);
        let triage = h.static_triage(&ip);
        assert!(
            triage.is_clean(),
            "{}: false positives {:?}",
            bench.name,
            triage.candidates
        );
    }
}

#[test]
fn lint_agreement_holds_across_strategies_and_schemes() {
    // The cross-check is plan-relative: candidates and patches must agree on
    // CCIDs under every strategy/scheme combination, not just the default.
    for strategy in Strategy::ALL {
        for scheme in Scheme::ALL {
            let h = HeapTherapy::new(PipelineConfig {
                strategy,
                scheme,
                ..PipelineConfig::default()
            });
            for app in [
                vulnapps::bc(),
                vulnapps::heartbleed(),
                vulnapps::optipng(),
                vulnapps::multi_context_overflow(),
            ] {
                let report = h.lint(&app);
                assert!(
                    report.static_over_approximates(),
                    "{} {strategy}/{scheme}: {:?}",
                    app.name,
                    report.uncovered
                );
                assert!(report.verdict.is_ok(), "{} {strategy}/{scheme}", app.name);
            }
        }
    }
}
