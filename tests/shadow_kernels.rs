//! Differential property tests pinning the word-level shadow kernels to
//! the byte-at-a-time reference oracle.
//!
//! Two layers:
//!
//! * **`ShadowBits`** — random interleaved set/scan/copy op sequences are
//!   applied to a [`KernelMode::Word`] and a [`KernelMode::Reference`]
//!   instance in lock-step, in a low address window and in a window
//!   pressed against `u64::MAX` (the saturating-end regression surface).
//!   After every mutation the observable state (per-byte A/V queries,
//!   every `first_*` scan, `tracked_pages`) must be identical.
//! * **`ShadowBackend`** — random (frequently illegal) heap programs are
//!   replayed under the fast analyzer and the reference analyzer; the
//!   warning streams and generated patches must be identical.

use heaptherapy_plus::callgraph::Strategy as SiteStrategy;
use heaptherapy_plus::encoding::{InstrumentationPlan, Scheme};
use heaptherapy_plus::memsim::PAGE_SIZE;
use heaptherapy_plus::patch::AllocFn;
use heaptherapy_plus::shadow::{KernelMode, ShadowBackend, ShadowBits, ShadowConfig};
use heaptherapy_plus::simprog::{Expr, Interpreter, Program, ProgramBuilder, Sink, SlotId};
use proptest::prelude::*;

/// The op windows span 5 pages (plus room for ranges to run past the top).
const SPAN: u64 = 5 * PAGE_SIZE;

/// One `ShadowBits` mutation, expressed as window-relative offsets.
#[derive(Debug, Clone, Copy)]
enum BitsOp {
    SetAccessible { off: u32, len: u32, on: bool },
    SetValid { off: u32, len: u32, on: bool },
    SetVmask { off: u32, mask: u8 },
    CopyValid { src: u32, dst: u32, len: u32 },
}

fn arb_bits_ops() -> impl Strategy<Value = Vec<BitsOp>> {
    let off = || 0u32..SPAN as u32;
    // Lengths biased small but occasionally page-crossing/full-window (the
    // distinguished-page and saturating-end paths need multi-page ranges).
    let len = || prop_oneof![0u32..128, 3500u32..9000, 0u32..2 * SPAN as u32];
    let op = prop_oneof![
        (off(), len(), any::<bool>()).prop_map(|(off, len, on)| BitsOp::SetAccessible {
            off,
            len,
            on
        }),
        (off(), len(), any::<bool>()).prop_map(|(off, len, on)| BitsOp::SetValid { off, len, on }),
        (off(), any::<u8>()).prop_map(|(off, mask)| BitsOp::SetVmask { off, mask }),
        (off(), off(), len()).prop_map(|(src, dst, len)| BitsOp::CopyValid { src, dst, len }),
    ];
    proptest::collection::vec(op, 1..24)
}

fn apply(s: &mut ShadowBits, base: u64, op: BitsOp) {
    // `base + off` cannot wrap: both windows keep base + SPAN ≤ u64::MAX,
    // and offsets stay below SPAN. Lengths MAY run past u64::MAX — that is
    // the saturating-end path under test.
    match op {
        BitsOp::SetAccessible { off, len, on } => {
            s.set_accessible(base + off as u64, len as u64, on)
        }
        BitsOp::SetValid { off, len, on } => s.set_valid(base + off as u64, len as u64, on),
        BitsOp::SetVmask { off, mask } => s.set_vmask(base + off as u64, mask),
        BitsOp::CopyValid { src, dst, len } => {
            s.copy_valid(base + src as u64, base + dst as u64, len as u64)
        }
    }
}

/// Compares every observable of the two instances over the window.
fn assert_same_state(word: &ShadowBits, reference: &ShadowBits, base: u64, step: usize) {
    // Scans over the whole window and a handful of sub-ranges.
    let probes: [(u64, u64); 5] = [
        (base, SPAN),
        (base + 1, SPAN / 2),
        (base + PAGE_SIZE - 3, 7),
        (base + SPAN - 100, 200), // runs past the window; saturates up high
        (base + 4097, 8191),
    ];
    for (a, l) in probes {
        assert_eq!(
            word.first_inaccessible(a, l),
            reference.first_inaccessible(a, l),
            "step {step}: first_inaccessible({a:#x}, {l})"
        );
        assert_eq!(
            word.first_accessible(a, l),
            reference.first_accessible(a, l),
            "step {step}: first_accessible({a:#x}, {l})"
        );
        assert_eq!(
            word.first_invalid(a, l),
            reference.first_invalid(a, l),
            "step {step}: first_invalid({a:#x}, {l})"
        );
        assert_eq!(
            word.first_fully_valid(a, l),
            reference.first_fully_valid(a, l),
            "step {step}: first_fully_valid({a:#x}, {l})"
        );
    }
    // Per-byte observables across the full window.
    for off in 0..SPAN {
        let a = base + off;
        assert_eq!(
            word.vmask(a),
            reference.vmask(a),
            "step {step}: vmask({a:#x})"
        );
        assert_eq!(
            word.is_accessible(a),
            reference.is_accessible(a),
            "step {step}: is_accessible({a:#x})"
        );
    }
    // The memory proxy Fig. 9 semantics rest on.
    assert_eq!(
        word.tracked_pages(),
        reference.tracked_pages(),
        "step {step}: tracked_pages"
    );
    assert!(
        word.materialized_pages() <= word.tracked_pages(),
        "step {step}: distinguished pages cannot exceed tracked pages"
    );
}

fn run_differential(ops: &[BitsOp], base: u64) {
    let mut word = ShadowBits::with_mode(KernelMode::Word);
    let mut reference = ShadowBits::with_mode(KernelMode::Reference);
    for (step, &op) in ops.iter().enumerate() {
        apply(&mut word, base, op);
        apply(&mut reference, base, op);
        assert_same_state(&word, &reference, base, step);
    }
}

// ---- backend-level differential -----------------------------------------

/// One generated heap operation; legality is NOT enforced (dangling frees,
/// overflowing extents, uninitialized reads are the point).
#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc {
        slot: u8,
        api: u8,
        size: u16,
    },
    Free {
        slot: u8,
    },
    FreeClear {
        slot: u8,
    },
    Realloc {
        slot: u8,
        size: u16,
    },
    Write {
        slot: u8,
        off: u16,
        len: u16,
    },
    Read {
        slot: u8,
        off: u16,
        len: u16,
        sink: u8,
    },
    Copy {
        src: u8,
        dst: u8,
        len: u16,
    },
}

const SLOTS: usize = 4;
const INPUT: [u64; 2] = [500, 77];

fn arb_prog_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (any::<u8>(), any::<u8>(), 1u16..600).prop_map(|(slot, api, size)| Op::Alloc {
            slot,
            api,
            size
        }),
        any::<u8>().prop_map(|slot| Op::Free { slot }),
        any::<u8>().prop_map(|slot| Op::FreeClear { slot }),
        (any::<u8>(), 1u16..600).prop_map(|(slot, size)| Op::Realloc { slot, size }),
        (any::<u8>(), 0u16..700, 0u16..700).prop_map(|(slot, off, len)| Op::Write {
            slot,
            off,
            len
        }),
        (any::<u8>(), 0u16..700, 0u16..700, any::<u8>()).prop_map(|(slot, off, len, sink)| {
            Op::Read {
                slot,
                off,
                len,
                sink,
            }
        }),
        (any::<u8>(), any::<u8>(), 0u16..700).prop_map(|(src, dst, len)| Op::Copy {
            src,
            dst,
            len
        }),
    ];
    proptest::collection::vec(op, 1..32)
}

fn materialize(ops: &[Op]) -> Program {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let slots: Vec<SlotId> = pb.slots(SLOTS as u32);
    let chunks: Vec<&[Op]> = ops.chunks(4).collect();
    let mut funcs = Vec::new();
    for (ci, chunk) in chunks.iter().enumerate() {
        let f = pb.func(format!("part_{ci}"));
        funcs.push(f);
        pb.define(f, |b| {
            for &op in *chunk {
                match op {
                    Op::Alloc { slot, api, size } => {
                        let s = slots[slot as usize % SLOTS];
                        match api % 4 {
                            0 => b.alloc(s, AllocFn::Malloc, size as u64),
                            1 => b.alloc(s, AllocFn::Calloc, size as u64),
                            2 => b.memalign(s, 1u64 << (api % 5 + 4), size as u64),
                            _ => b.realloc(s, size as u64),
                        }
                    }
                    Op::Free { slot } => b.free(slots[slot as usize % SLOTS]),
                    Op::FreeClear { slot } => {
                        let s = slots[slot as usize % SLOTS];
                        b.free(s);
                        b.clear(s);
                    }
                    Op::Realloc { slot, size } => {
                        b.realloc(slots[slot as usize % SLOTS], size as u64)
                    }
                    Op::Write { slot, off, len } => {
                        let len_expr = if len % 5 == 0 {
                            Expr::Input(len as usize % INPUT.len())
                        } else {
                            Expr::from(len as u64)
                        };
                        b.write(slots[slot as usize % SLOTS], off as u64, len_expr, 0x42);
                    }
                    Op::Read {
                        slot,
                        off,
                        len,
                        sink,
                    } => {
                        let sink = match sink % 5 {
                            0 => Sink::Discard,
                            1 => Sink::Branch,
                            2 => Sink::Addr,
                            3 => Sink::Syscall,
                            _ => Sink::Leak,
                        };
                        b.read(slots[slot as usize % SLOTS], off as u64, len as u64, sink);
                    }
                    Op::Copy { src, dst, len } => {
                        let si = src as usize % SLOTS;
                        let di = dst as usize % SLOTS;
                        if si != di {
                            b.copy(slots[si], 0u64, slots[di], 0u64, len as u64);
                        }
                    }
                }
            }
        });
    }
    pb.define(main, |b| {
        for &f in &funcs {
            b.call(f);
        }
    });
    pb.build()
}

fn backend(reference_kernels: bool) -> ShadowBackend {
    ShadowBackend::with_config(ShadowConfig {
        reference_kernels,
        ..ShadowConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Word kernels and the byte-at-a-time oracle agree on every
    /// observable, low in the address space.
    #[test]
    fn bits_word_matches_reference_low_window(ops in arb_bits_ops()) {
        run_differential(&ops, 0);
    }

    /// Same, with the window pressed against `u64::MAX` so range ends
    /// saturate instead of overflowing (the satellite-1 regression).
    #[test]
    fn bits_word_matches_reference_high_window(ops in arb_bits_ops()) {
        run_differential(&ops, u64::MAX - SPAN);
    }

    /// The full analyzer produces identical warning streams and patches in
    /// both kernel modes on random (mostly illegal) heap programs.
    #[test]
    fn analyzer_warning_streams_identical(ops in arb_prog_ops()) {
        let prog = materialize(&ops);
        let plan = InstrumentationPlan::build(prog.graph(), SiteStrategy::Incremental, Scheme::Pcc);

        let mut fast = Interpreter::new(&prog, &plan, backend(false));
        let fast_report = fast.run(&INPUT);
        let fast_backend = fast.into_backend();

        let mut slow = Interpreter::new(&prog, &plan, backend(true));
        let slow_report = slow.run(&INPUT);
        let slow_backend = slow.into_backend();

        prop_assert_eq!(
            fast_backend.warnings(),
            slow_backend.warnings(),
            "warning streams diverge"
        );
        prop_assert_eq!(
            fast_backend.generate_patches("prop"),
            slow_backend.generate_patches("prop"),
            "patches diverge"
        );
        prop_assert_eq!(fast_report.bytes_written, slow_report.bytes_written);
        prop_assert_eq!(fast_report.bytes_read, slow_report.bytes_read);
        prop_assert_eq!(fast_report.frees, slow_report.frees);
    }
}
