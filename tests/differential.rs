//! Differential property testing: the defenses must be *behaviour
//! preserving* for correct programs.
//!
//! For randomly generated programs whose heap usage is entirely legal
//! (in-bounds accesses, reads only of written bytes, no dangling use), every
//! execution mode must observe identical program-visible behaviour:
//!
//! * plain (undefended),
//! * interposition only,
//! * full defense with an empty patch table,
//! * full defense with **every** allocation context patched `OF|UAF|UR`
//!   (the worst-case collision storm — maximum over-protection),
//! * the offline shadow analyzer (which additionally must report nothing).
//!
//! This is the paper's correctness core: "any of our enhancements do not
//! change the program logic".

use heaptherapy_plus::callgraph::Strategy as SiteStrategy;
use heaptherapy_plus::defense::{DefendedBackend, DefenseConfig};
use heaptherapy_plus::encoding::{InstrumentationPlan, Scheme};
use heaptherapy_plus::patch::{AllocFn, Patch, PatchTable, VulnFlags};
use heaptherapy_plus::shadow::ShadowBackend;
use heaptherapy_plus::simprog::{
    Expr, HeapBackend, Interpreter, Program, ProgramBuilder, Sink, SlotId,
};
use proptest::prelude::*;

/// One generated heap operation. Slot bookkeeping in the generator
/// guarantees legality (see `materialize`).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Allocate `size` via the API selected by `api % 4` into slot
    /// `slot % SLOTS`.
    Alloc { slot: u8, api: u8, size: u16 },
    /// Free the slot (skipped if empty).
    Free { slot: u8 },
    /// Grow/shrink the slot to `size` (skipped if empty).
    Realloc { slot: u8, size: u16 },
    /// Write `frac`/255 of the buffer with `byte`.
    Write { slot: u8, frac: u8, byte: u8 },
    /// Read within the written prefix, to sink `sink % 5`.
    Read { slot: u8, frac: u8, sink: u8 },
    /// memcpy from one live slot's written prefix into another live slot.
    Copy { src: u8, dst: u8, frac: u8 },
}

const SLOTS: usize = 6;

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (any::<u8>(), any::<u8>(), 1u16..2000).prop_map(|(slot, api, size)| Op::Alloc {
            slot,
            api,
            size
        }),
        any::<u8>().prop_map(|slot| Op::Free { slot }),
        (any::<u8>(), 1u16..2000).prop_map(|(slot, size)| Op::Realloc { slot, size }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(slot, frac, byte)| Op::Write {
            slot,
            frac,
            byte
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(slot, frac, sink)| Op::Read {
            slot,
            frac,
            sink
        }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(src, dst, frac)| Op::Copy {
            src,
            dst,
            frac
        }),
    ];
    proptest::collection::vec(op, 1..60)
}

/// Turns the op list into a legal modeled program. Ops are grouped into
/// helper functions so allocations happen under several distinct calling
/// contexts.
fn materialize(ops: &[Op]) -> Program {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let slots: Vec<SlotId> = pb.slots(SLOTS as u32);

    // Generator-side model: size and written prefix per slot (None = empty).
    let mut state: [Option<(u64, u64)>; SLOTS] = [None; SLOTS];
    let mut funcs = Vec::new();
    let mut current: Vec<(usize, Op)> = Vec::new();
    let mut chunks: Vec<Vec<(usize, Op)>> = Vec::new();
    for (i, &op) in ops.iter().enumerate() {
        current.push((i, op));
        if current.len() == 4 {
            chunks.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }

    for (ci, chunk) in chunks.iter().enumerate() {
        let f = pb.func(format!("gen_chunk_{ci}"));
        funcs.push(f);
        pb.define(f, |b| {
            for &(_, op) in chunk {
                match op {
                    Op::Alloc { slot, api, size } => {
                        let s = slots[slot as usize % SLOTS];
                        let idx = slot as usize % SLOTS;
                        // Never clobber a live buffer and never leave a
                        // dangling handle: free + null first if occupied,
                        // so a subsequent realloc is realloc(NULL).
                        if state[idx].is_some() {
                            b.free(s);
                            b.clear(s);
                        }
                        let size = size as u64;
                        match api % 4 {
                            0 => b.alloc(s, AllocFn::Malloc, size),
                            1 => {
                                b.alloc(s, AllocFn::Calloc, size);
                            }
                            2 => b.memalign(s, 1u64 << (api % 7 + 4), size),
                            _ => b.realloc(s, size), // realloc(NULL) = malloc
                        }
                        // Calloc counts as fully written (zeroed).
                        let written = if api % 4 == 1 { size } else { 0 };
                        state[idx] = Some((size, written));
                    }
                    Op::Free { slot } => {
                        let idx = slot as usize % SLOTS;
                        if state[idx].is_some() {
                            b.free(slots[idx]);
                            b.clear(slots[idx]);
                            state[idx] = None;
                        }
                    }
                    Op::Realloc { slot, size } => {
                        let idx = slot as usize % SLOTS;
                        if let Some((_, written)) = state[idx] {
                            let size = size as u64;
                            b.realloc(slots[idx], size);
                            state[idx] = Some((size, written.min(size)));
                        }
                    }
                    Op::Write { slot, frac, byte } => {
                        let idx = slot as usize % SLOTS;
                        if let Some((size, written)) = state[idx] {
                            let len = (size * frac as u64 / 255).max(1).min(size);
                            b.write(slots[idx], 0u64, len, byte);
                            state[idx] = Some((size, written.max(len)));
                        }
                    }
                    Op::Copy { src, dst, frac } => {
                        let si = src as usize % SLOTS;
                        let di = dst as usize % SLOTS;
                        if si == di {
                            continue;
                        }
                        if let (Some((_, sw)), Some((dsize, dw))) = (state[si], state[di]) {
                            let len = (sw.min(dsize) * frac as u64 / 255)
                                .max(1)
                                .min(sw.min(dsize));
                            if len > 0 && sw > 0 {
                                b.copy(slots[si], 0u64, slots[di], 0u64, len);
                                state[di] = Some((dsize, dw.max(len)));
                            }
                        }
                    }
                    Op::Read { slot, frac, sink } => {
                        let idx = slot as usize % SLOTS;
                        if let Some((_, written)) = state[idx] {
                            if written > 0 {
                                let len = (written * frac as u64 / 255).max(1).min(written);
                                let sink = match sink % 5 {
                                    0 => Sink::Discard,
                                    1 => Sink::Branch,
                                    2 => Sink::Addr,
                                    3 => Sink::Syscall,
                                    _ => Sink::Leak,
                                };
                                b.read(slots[idx], 0u64, len, sink);
                            }
                        }
                    }
                }
            }
        });
    }
    // Clean teardown: free everything still live so steady-state invariants
    // hold across backends.
    let live: Vec<SlotId> = (0..SLOTS)
        .filter(|&i| state[i].is_some())
        .map(|i| slots[i])
        .collect();
    pb.define(main, |b| {
        for &f in &funcs {
            b.call(f);
        }
        for &s in &live {
            b.free(s);
        }
    });
    let _ = Expr::Const(0);
    pb.build()
}

fn observe<B: HeapBackend>(
    prog: &Program,
    plan: &InstrumentationPlan,
    backend: B,
) -> (heaptherapy_plus::simprog::RunReport, B) {
    let mut interp = Interpreter::new(prog, plan, backend);
    let report = interp.run(&[]);
    (report, interp.into_backend())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every execution mode sees identical program-visible behaviour on
    /// legal programs — including under maximum over-protection.
    #[test]
    fn defenses_preserve_behaviour(ops in arb_ops()) {
        let prog = materialize(&ops);
        let plan = InstrumentationPlan::build(prog.graph(), SiteStrategy::Incremental, Scheme::Pcc);

        let (base, _) = observe(&prog, &plan, heaptherapy_plus::simprog::PlainBackend::new());
        prop_assert!(base.outcome.is_completed(), "{:?}", base.outcome);

        // Interposition only.
        let (r, _) = observe(
            &prog,
            &plan,
            DefendedBackend::new(DefenseConfig::interpose_only()),
        );
        prop_assert_eq!(&r.outcome, &base.outcome);
        prop_assert_eq!(&r.leaked, &base.leaked);
        prop_assert_eq!(r.allocs, base.allocs);
        prop_assert_eq!(r.frees, base.frees);

        // Full defense, no patches.
        let (r, _) = observe(&prog, &plan, DefendedBackend::new(DefenseConfig::default()));
        prop_assert_eq!(&r.outcome, &base.outcome);
        prop_assert_eq!(&r.leaked, &base.leaked);
        prop_assert_eq!(r.allocs, base.allocs);

        // Full defense with EVERY context patched OF|UAF|UR (collision
        // storm): still transparent.
        let patches: Vec<Patch> = base
            .ccid_freq
            .keys()
            .map(|&(fun, ccid)| Patch::new(fun, ccid, VulnFlags::ALL))
            .collect();
        let mut cfg = DefenseConfig::with_table(PatchTable::from_patches(patches));
        cfg.quarantine_quota = u64::MAX / 2;
        let (r, backend) = observe(&prog, &plan, DefendedBackend::new(cfg));
        prop_assert_eq!(&r.outcome, &base.outcome);
        prop_assert_eq!(&r.leaked, &base.leaked);
        prop_assert_eq!(r.allocs, base.allocs);
        // With every context patched, every allocation must have hit.
        prop_assert_eq!(backend.stats().table_hits, base.allocs.total());
    }

    /// The offline analyzer neither perturbs legal programs nor reports
    /// anything about them (zero false positives — the paper's guarantee).
    #[test]
    fn analyzer_is_silent_on_legal_programs(ops in arb_ops()) {
        let prog = materialize(&ops);
        let plan = InstrumentationPlan::build(prog.graph(), SiteStrategy::Slim, Scheme::Positional);
        let (base, _) = observe(&prog, &plan, heaptherapy_plus::simprog::PlainBackend::new());
        let (r, shadow) = observe(&prog, &plan, ShadowBackend::new());
        prop_assert_eq!(&r.outcome, &base.outcome);
        prop_assert_eq!(&r.leaked, &base.leaked);
        prop_assert!(
            shadow.generate_patches("fp").is_empty(),
            "false positives: {:?}",
            shadow.warnings()
        );
    }

    /// An injected use-after-free (free + later dangling read at a random
    /// offset) is always classified as UAF and attributed to the freed
    /// buffer's context.
    #[test]
    fn analyzer_catches_injected_uaf(size in 1u16..1500, off in 0u16..1500, api in 0u8..3) {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let buggy = pb.func("uaf_site");
        let user = pb.func("dangling_user");
        let victim = pb.slot();
        let fun = [AllocFn::Malloc, AllocFn::Calloc, AllocFn::Memalign][api as usize];
        let size = size as u64;
        let off = off as u64 % size;
        pb.define(buggy, move |b| {
            match fun {
                AllocFn::Memalign => b.memalign(victim, 32u64, size),
                f => b.alloc(victim, f, size),
            }
            b.write(victim, 0u64, size, 1);
            b.free(victim);
        });
        pb.define(user, move |b| {
            b.read(victim, off, 1u64, Sink::Addr);
        });
        pb.define(main, |b| {
            b.call(buggy);
            b.call(user);
        });
        let prog = pb.build();
        let plan = InstrumentationPlan::build(prog.graph(), SiteStrategy::Slim, Scheme::Additive);
        let (_, shadow) = observe(&prog, &plan, ShadowBackend::new());
        let patches = shadow.generate_patches("uaf");
        prop_assert_eq!(patches.len(), 1);
        prop_assert_eq!(patches[0].alloc_fn, fun);
        prop_assert_eq!(patches[0].vuln, VulnFlags::USE_AFTER_FREE);
    }

    /// An injected uninitialized read (checked sink past the written
    /// prefix) is always classified UR — except through `calloc`, which is
    /// inherently initialized and must stay silent.
    #[test]
    fn analyzer_catches_injected_uninit_read(
        size in 8u16..1500,
        written_frac in 0u8..200,
        calloc in proptest::bool::ANY,
    ) {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let site = pb.func("ur_site");
        let buf = pb.slot();
        let fun = if calloc { AllocFn::Calloc } else { AllocFn::Malloc };
        let size = size as u64;
        let written = size * written_frac as u64 / 255; // strictly < size
        pb.define(site, move |b| {
            b.alloc(buf, fun, size);
            if written > 0 {
                b.write(buf, 0u64, written, 7);
            }
            b.read(buf, 0u64, size, Sink::Syscall);
            b.free(buf);
        });
        pb.define(main, |b| b.call(site));
        let prog = pb.build();
        let plan =
            InstrumentationPlan::build(prog.graph(), SiteStrategy::Incremental, Scheme::Pcc);
        let (_, shadow) = observe(&prog, &plan, ShadowBackend::new());
        let patches = shadow.generate_patches("ur");
        if calloc {
            prop_assert!(patches.is_empty(), "calloc memory is defined: {patches:?}");
        } else {
            prop_assert_eq!(patches.len(), 1);
            prop_assert_eq!(patches[0].vuln, VulnFlags::UNINIT_READ);
        }
    }

    /// Appending one out-of-bounds write to an otherwise legal program is
    /// always caught by the analyzer and attributed to the right API.
    #[test]
    fn analyzer_catches_injected_overflow(ops in arb_ops(), api in 0u8..3) {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let legal = pb.func("legal_part");
        let buggy = pb.func("buggy_part");
        let victim = pb.slot();
        pb.define(legal, |_| {});
        let fun = [AllocFn::Malloc, AllocFn::Calloc, AllocFn::Memalign][api as usize];
        pb.define(buggy, move |b| {
            match fun {
                AllocFn::Memalign => b.memalign(victim, 64u64, 96u64),
                f => b.alloc(victim, f, 96u64),
            }
            b.write(victim, 0u64, 96u64 + 1 + (api as u64), 0x41); // 1..4 bytes over
            b.free(victim);
        });
        pb.define(main, |b| {
            b.call(legal);
            b.call(buggy);
        });
        let prog = pb.build();
        let _ = ops;
        let plan = InstrumentationPlan::build(prog.graph(), SiteStrategy::Incremental, Scheme::Pcc);
        let (_, shadow) = observe(&prog, &plan, ShadowBackend::new());
        let patches = shadow.generate_patches("of");
        prop_assert_eq!(patches.len(), 1);
        prop_assert_eq!(patches[0].alloc_fn, fun);
        prop_assert_eq!(patches[0].vuln, VulnFlags::OVERFLOW);
    }
}
