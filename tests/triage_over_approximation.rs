//! Property test for the static triage's over-approximation guarantee.
//!
//! For randomly generated programs — **including illegal ones** (out-of-
//! bounds extents, dangling uses, reads of unwritten bytes, attacker-sized
//! operations routed through `Input(i)`) — every patch the dynamic shadow
//! analyzer generates on a concrete input must be covered by a static
//! triage candidate with the same `(FUN, CCID)` key and a superset of its
//! vulnerability classes. The static pass sees no input at all; it runs
//! under the unconstrained attack domain.

use heaptherapy_plus::analysis::{triage, TriageConfig};
use heaptherapy_plus::callgraph::Strategy as SiteStrategy;
use heaptherapy_plus::encoding::{InstrumentationPlan, Scheme};
use heaptherapy_plus::patch::AllocFn;
use heaptherapy_plus::shadow::ShadowBackend;
use heaptherapy_plus::simprog::{Expr, Interpreter, Program, ProgramBuilder, Sink, SlotId};
use proptest::prelude::*;

/// One generated heap operation. Unlike the differential generator, no
/// legality bookkeeping: frees leave dangling handles, extents may exceed
/// the allocation, reads may precede writes.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Allocate `size` via `api % 4` into `slot % SLOTS`.
    Alloc { slot: u8, api: u8, size: u16 },
    /// Free the slot — WITHOUT clearing it (dangling handle stays).
    Free { slot: u8 },
    /// Free and clear (the legal variant).
    FreeClear { slot: u8 },
    /// `realloc` to `size` (may be `realloc(NULL)`).
    Realloc { slot: u8, size: u16 },
    /// Write `len` bytes at `off` — any extent, possibly input-sized.
    Write {
        slot: u8,
        off: u16,
        len: u16,
        via_input: bool,
    },
    /// Read `len` bytes at `off` to sink `sink % 5` — any extent.
    Read {
        slot: u8,
        off: u16,
        len: u16,
        sink: u8,
        via_input: bool,
    },
    /// memcpy between two slots with arbitrary offsets/length.
    Copy { src: u8, dst: u8, len: u16 },
}

const SLOTS: usize = 4;
/// Concrete input vector fed to the dynamic replay. The static pass never
/// sees it — `Input(i)` is `[0, u64::MAX]` to the triage.
const INPUT: [u64; 4] = [700, 90, 3, 41];

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (any::<u8>(), any::<u8>(), 1u16..600).prop_map(|(slot, api, size)| Op::Alloc {
            slot,
            api,
            size
        }),
        any::<u8>().prop_map(|slot| Op::Free { slot }),
        any::<u8>().prop_map(|slot| Op::FreeClear { slot }),
        (any::<u8>(), 1u16..600).prop_map(|(slot, size)| Op::Realloc { slot, size }),
        (any::<u8>(), 0u16..700, 0u16..700, any::<bool>()).prop_map(
            |(slot, off, len, via_input)| Op::Write {
                slot,
                off,
                len,
                via_input
            }
        ),
        (
            any::<u8>(),
            0u16..700,
            0u16..700,
            any::<u8>(),
            any::<bool>()
        )
            .prop_map(|(slot, off, len, sink, via_input)| Op::Read {
                slot,
                off,
                len,
                sink,
                via_input
            }),
        (any::<u8>(), any::<u8>(), 0u16..700).prop_map(|(src, dst, len)| Op::Copy {
            src,
            dst,
            len
        }),
    ];
    proptest::collection::vec(op, 1..40)
}

/// Materializes the ops with no legality filtering, grouped into helper
/// functions so allocations occur under distinct calling contexts.
fn materialize(ops: &[Op]) -> Program {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let slots: Vec<SlotId> = pb.slots(SLOTS as u32);

    let chunks: Vec<&[Op]> = ops.chunks(4).collect();
    let mut funcs = Vec::new();
    for (ci, chunk) in chunks.iter().enumerate() {
        let f = pb.func(format!("part_{ci}"));
        funcs.push(f);
        pb.define(f, |b| {
            for &op in *chunk {
                match op {
                    Op::Alloc { slot, api, size } => {
                        let s = slots[slot as usize % SLOTS];
                        match api % 4 {
                            0 => b.alloc(s, AllocFn::Malloc, size as u64),
                            1 => b.alloc(s, AllocFn::Calloc, size as u64),
                            2 => b.memalign(s, 1u64 << (api % 5 + 4), size as u64),
                            _ => b.realloc(s, size as u64),
                        }
                    }
                    Op::Free { slot } => b.free(slots[slot as usize % SLOTS]),
                    Op::FreeClear { slot } => {
                        let s = slots[slot as usize % SLOTS];
                        b.free(s);
                        b.clear(s);
                    }
                    Op::Realloc { slot, size } => {
                        b.realloc(slots[slot as usize % SLOTS], size as u64)
                    }
                    Op::Write {
                        slot,
                        off,
                        len,
                        via_input,
                    } => {
                        let len_expr = if via_input {
                            Expr::Input(len as usize % INPUT.len())
                        } else {
                            Expr::from(len as u64)
                        };
                        b.write(slots[slot as usize % SLOTS], off as u64, len_expr, 0x42);
                    }
                    Op::Read {
                        slot,
                        off,
                        len,
                        sink,
                        via_input,
                    } => {
                        let len_expr = if via_input {
                            Expr::Input(len as usize % INPUT.len())
                        } else {
                            Expr::from(len as u64)
                        };
                        let sink = match sink % 5 {
                            0 => Sink::Discard,
                            1 => Sink::Branch,
                            2 => Sink::Addr,
                            3 => Sink::Syscall,
                            _ => Sink::Leak,
                        };
                        b.read(slots[slot as usize % SLOTS], off as u64, len_expr, sink);
                    }
                    Op::Copy { src, dst, len } => {
                        let si = src as usize % SLOTS;
                        let di = dst as usize % SLOTS;
                        if si != di {
                            b.copy(slots[si], 0u64, slots[di], 0u64, len as u64);
                        }
                    }
                }
            }
        });
    }
    pb.define(main, |b| {
        for &f in &funcs {
            b.call(f);
        }
    });
    pb.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every dynamic patch has a covering static candidate, under both an
    /// imprecise (PCC) and a precise (Positional) plan.
    #[test]
    fn static_triage_over_approximates_the_shadow_analyzer(ops in arb_ops()) {
        let prog = materialize(&ops);
        for (strategy, scheme) in [
            (SiteStrategy::Incremental, Scheme::Pcc),
            (SiteStrategy::Tcs, Scheme::Positional),
        ] {
            let plan = InstrumentationPlan::build(prog.graph(), strategy, scheme);

            // Dynamic: concrete replay under the shadow analyzer.
            let mut interp = Interpreter::new(&prog, &plan, ShadowBackend::new());
            let _ = interp.run(&INPUT);
            let patches = interp.into_backend().generate_patches("prop");

            // Static: no input, unconstrained attack domain.
            let report = triage(&prog, &plan, &TriageConfig::default());
            prop_assert!(!report.bounded, "generated programs are loop/recursion free");

            for p in &patches {
                prop_assert!(
                    report.covers_patch(p),
                    "{scheme}: dynamic patch {p:?} has no static candidate; \
                     candidates: {:?}",
                    report.candidates
                );
            }
        }
    }
}
