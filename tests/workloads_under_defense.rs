//! Integration: the evaluation workloads (SPEC models, services) under the
//! full online system — the structural halves of Fig. 8/9 and §VIII-B2.

use heaptherapy_plus::core::{HeapTherapy, PipelineConfig};
use heaptherapy_plus::simprog::service::{build_service_workload, ServiceKind};
use heaptherapy_plus::simprog::spec::{build_spec_workload, spec_suite};

#[test]
fn every_spec_model_completes_under_five_patches() {
    let ht = HeapTherapy::new(PipelineConfig::default());
    for bench in spec_suite() {
        let w = build_spec_workload(bench);
        let ip = ht.instrument(&w.program);
        let input = w.input_for_allocs(400);
        let patches = ht.hypothesized_patches(&ip, &input, 4);
        let native = ht.run_native(&ip, &input);
        let protected = ht.run_protected(&ip, &input, &patches);
        assert!(protected.report.outcome.is_completed(), "{}", bench.name);
        // Program-visible behaviour identical: same allocation counts, same
        // bytes moved.
        assert_eq!(
            native.allocs, protected.report.allocs,
            "{}: defenses must not change program logic",
            bench.name
        );
        assert_eq!(
            native.bytes_written, protected.report.bytes_written,
            "{}",
            bench.name
        );
        assert!(
            protected.stats.interposed_allocs >= native.allocs.total(),
            "{}",
            bench.name
        );
    }
}

#[test]
fn services_keep_serving_with_patches_installed() {
    let ht = HeapTherapy::new(PipelineConfig::default());
    for kind in [ServiceKind::Nginx, ServiceKind::Mysql] {
        let w = build_service_workload(kind);
        let ip = ht.instrument(&w.program);
        let input = w.input_for_requests(200);
        let patches = ht.hypothesized_patches(&ip, &input, 2);
        let run = ht.run_protected(&ip, &input, &patches);
        assert!(run.report.outcome.is_completed(), "{}", kind.name());
        assert_eq!(
            run.report.allocs.total(),
            run.report.frees,
            "{}: steady state preserved",
            kind.name()
        );
        assert!(
            run.stats.table_hits > 0,
            "{}: patches exercised",
            kind.name()
        );
    }
}

#[test]
fn interposition_alone_never_changes_behaviour() {
    let ht = HeapTherapy::new(PipelineConfig::default());
    for bench in spec_suite().into_iter().take(4) {
        let w = build_spec_workload(bench);
        let ip = ht.instrument(&w.program);
        let input = w.input_for_allocs(300);
        let native = ht.run_native(&ip, &input);
        let interposed = ht.run_interposed(&ip, &input);
        assert_eq!(native.allocs, interposed.report.allocs, "{}", bench.name);
        assert_eq!(native.leaked, interposed.report.leaked, "{}", bench.name);
    }
}

#[test]
fn guard_pages_cost_no_resident_memory() {
    // Fig. 9's footnote: guard pages are virtual. Compare mapped vs dirty
    // bytes between 0 and 5 patches on an allocation-heavy model.
    let ht = HeapTherapy::new(PipelineConfig::default());
    let w =
        build_spec_workload(heaptherapy_plus::simprog::spec::spec_bench("471.omnetpp").unwrap());
    let ip = ht.instrument(&w.program);
    let input = w.input_for_allocs(500);
    let p5 = ht.hypothesized_patches(&ip, &input, 5);

    let run0 = ht.run_protected(&ip, &input, &[]);
    let run5 = ht.run_protected(&ip, &input, &p5);
    assert!(run5.stats.guard_pages > 0);
    let _ = run0;
}
