//! Cross-crate telemetry properties, exercised through the facade:
//!
//! * **Parity** — arming telemetry never changes what the pipeline computes.
//!   For any Table II app under any strategy/scheme, a telemetry-on
//!   `full_cycle` produces the identical `CycleReport` to a telemetry-off
//!   run (same patches, same config text, same verdicts).
//! * **Once-only** — `attack_telemetry` is deterministic and files exactly
//!   one report per distinct `(FUN, CCID, T)` across repeated runs.
//! * **Overflow exactness** — a saturated event ring never miscounts:
//!   delivered + dropped equals the number of pushes, and the drained
//!   prefix is the sequence-ordered head of the stream.

use heaptherapy_plus::callgraph::Strategy;
use heaptherapy_plus::core::{HeapTherapy, PipelineConfig};
use heaptherapy_plus::encoding::Scheme;
use heaptherapy_plus::patch::AllocFn;
use heaptherapy_plus::telemetry::{Event, EventKind, EventRing, TelemetryConfig, RING_CAPACITY};
use heaptherapy_plus::vulnapps;
use proptest::prelude::*;

fn pipeline(strategy: Strategy, scheme: Scheme, telemetry: bool) -> HeapTherapy {
    HeapTherapy::new(PipelineConfig {
        strategy,
        scheme,
        telemetry: if telemetry {
            TelemetryConfig::enabled()
        } else {
            TelemetryConfig::disabled()
        },
        ..PipelineConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Telemetry is an observer: for a random app / strategy / scheme the
    /// armed and unarmed pipelines agree on every output field.
    #[test]
    fn armed_pipeline_matches_unarmed_pipeline(
        app_idx in 0usize..30,
        strat_idx in 0usize..4,
        precise in any::<bool>(),
    ) {
        let suite = vulnapps::table2_suite();
        let app = &suite[app_idx % suite.len()];
        let strategy = [
            Strategy::Fcs,
            Strategy::Tcs,
            Strategy::Slim,
            Strategy::Incremental,
        ][strat_idx];
        let scheme = if precise { Scheme::Additive } else { Scheme::Pcc };

        let plain = pipeline(strategy, scheme, false)
            .full_cycle(app)
            .expect("unarmed cycle runs");
        let armed = pipeline(strategy, scheme, true)
            .full_cycle(app)
            .expect("armed cycle runs");

        prop_assert_eq!(&plain.detected, &armed.detected);
        prop_assert_eq!(&plain.patches_generated, &armed.patches_generated);
        prop_assert_eq!(&plain.config_text, &armed.config_text);
        prop_assert_eq!(
            plain.undefended_attack_succeeded,
            armed.undefended_attack_succeeded
        );
        prop_assert_eq!(plain.all_attacks_blocked, armed.all_attacks_blocked);
        prop_assert_eq!(plain.benign_ok, armed.benign_ok);
    }
}

/// Two `attack_telemetry` runs of the same app agree report-for-report, and
/// each files one report per distinct `(FUN, CCID, T)`.
#[test]
fn attack_telemetry_is_deterministic_and_once_only() {
    let ht = pipeline(Strategy::Incremental, Scheme::Additive, false);
    for app in [vulnapps::bc(), vulnapps::heartbleed(), vulnapps::optipng()] {
        let a = ht.attack_telemetry(&app).expect("telemetry cycle runs");
        let b = ht.attack_telemetry(&app).expect("telemetry cycle runs");
        let key = |t: &heaptherapy_plus::core::AppTelemetry| -> Vec<_> {
            t.reports
                .iter()
                .map(|r| (r.fun, r.ccid, r.vuln, r.call_chain.clone()))
                .collect()
        };
        let (ka, kb) = (key(&a), key(&b));
        assert!(!ka.is_empty(), "{}: no reports", app.name);
        assert_eq!(ka, kb, "{}: runs disagree", app.name);
        let mut uniq = ka.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ka.len(), "{}: duplicate report key", app.name);
    }
}

/// Pushing far past capacity loses only the overflow, exactly counted, and
/// what survives is the in-order head of the stream.
#[test]
fn event_ring_overflow_is_exactly_counted() {
    let ring = Box::new(EventRing::new());
    let total = 3 * RING_CAPACITY as u64;
    for i in 0..total {
        ring.push(Event::unattributed(
            EventKind::GuardTrip,
            AllocFn::Malloc,
            i,
        ));
    }
    let drained = ring.drain_vec();
    assert_eq!(drained.len(), RING_CAPACITY);
    assert_eq!(ring.delivered(), RING_CAPACITY as u64);
    assert_eq!(ring.dropped(), total - RING_CAPACITY as u64);
    // The retained prefix is the head of the stream, in push order.
    for (i, e) in drained.iter().enumerate() {
        assert_eq!(e.size, i as u64);
    }
    // The drained ring accepts new events again, still exactly counted.
    ring.push(Event::unattributed(
        EventKind::GuardTrip,
        AllocFn::Malloc,
        total,
    ));
    assert_eq!(ring.drain_vec().len(), 1);
    assert_eq!(ring.delivered(), RING_CAPACITY as u64 + 1);
}
