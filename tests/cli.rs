//! End-to-end smoke tests for the `heaptherapy` CLI binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_heaptherapy"))
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = bin().args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn list_names_the_suite() {
    let (stdout, _, ok) = run(&["list"]);
    assert!(ok);
    for needle in ["heartbleed", "bc-1.06", "samate-23", "multictx-overflow"] {
        assert!(stdout.contains(needle), "{needle} missing:\n{stdout}");
    }
}

#[test]
fn analyze_protect_round_trip_on_disk() {
    let conf = std::env::temp_dir().join("ht_cli_test_patches.conf");
    let conf_s = conf.to_str().unwrap();
    let (stdout, stderr, ok) = run(&["analyze", "ghostxps", "--out", conf_s]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("uninitialized-read"), "{stdout}");
    assert!(
        stdout.contains("xps_parse_color"),
        "decoded chain: {stdout}"
    );

    let (stdout, stderr, ok) = run(&["protect", "ghostxps", "--patches", conf_s]);
    assert!(ok, "attack must be defeated: {stdout}{stderr}");
    assert!(stdout.contains("attack succeeded  : false"), "{stdout}");
    std::fs::remove_file(conf).ok();
}

#[test]
fn demo_succeeds_for_single_context_apps() {
    let (stdout, _, ok) = run(&["demo", "wavpack"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("blocked=true"), "{stdout}");
}

#[test]
fn demo_multictx_requires_iterative_mode() {
    let (_, _, ok) = run(&["demo", "multictx"]);
    assert!(!ok, "one-shot patching must NOT cover both contexts");
    let (stdout, _, ok) = run(&["demo", "multictx", "--iterative", "true"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("2 round(s)"), "{stdout}");
}

#[test]
fn decode_names_the_chain() {
    let (stdout, _, ok) = run(&["decode", "heartbleed", "--fun", "malloc", "--ccid", "0x1"]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("main → tls1_process_heartbeat → malloc"),
        "{stdout}"
    );
}

#[test]
fn instrument_prints_strategy_ladder() {
    let (stdout, _, ok) = run(&["instrument", "bc-1.06"]);
    assert!(ok);
    for s in ["fcs", "tcs", "slim", "incremental"] {
        assert!(stdout.contains(s), "{stdout}");
    }
}

#[test]
fn lint_clean_spec_model_exits_zero() {
    let out = bin().args(["lint", "429.mcf"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("static triage: clean"), "{stdout}");
    assert!(stdout.contains("plan verifier: OK"), "{stdout}");
}

#[test]
fn lint_vulnapp_exits_two_with_decoded_chains() {
    let out = bin().args(["lint", "heartbleed"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "findings exit with 2: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("candidate context"), "{stdout}");
    assert!(
        stdout.contains("main → tls1_process_heartbeat"),
        "decoded call chain: {stdout}"
    );
    assert!(stdout.contains("covered=true"), "{stdout}");
    assert!(stdout.contains("plan verifier: OK"), "{stdout}");
}

#[test]
fn lint_respects_strategy_and_scheme_flags() {
    let out = bin()
        .args([
            "lint",
            "bc-1.06",
            "--strategy",
            "tcs",
            "--scheme",
            "positional",
        ])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("more_arrays → malloc"), "{stdout}");
    assert!(stdout.contains("0 uncovered"), "{stdout}");
}

#[test]
fn lint_unknown_app_errors() {
    let out = bin().args(["lint", "no-such-app"]).output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown app"), "{stderr}");
}

#[test]
fn unknown_app_and_usage_errors() {
    let (_, stderr, ok) = run(&["analyze", "no-such-app"]);
    assert!(!ok);
    assert!(stderr.contains("unknown app"), "{stderr}");
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}
