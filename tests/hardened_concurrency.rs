//! Threaded stress and property coverage for the sharded hardened
//! allocator: with 8 threads hammering patched and unpatched contexts, the
//! registry never loses or corrupts a live pointer, and the striped
//! counters conserve (allocs = frees, registry inserts = removes + live,
//! quarantined bytes = evicted bytes + bytes still held) — including under
//! eviction-heavy quarantine quotas and with telemetry armed.
//!
//! Everything goes through the public API plus the safe
//! [`throughput`](heaptherapy_plus::hardened_alloc::throughput) drivers —
//! no `unsafe` in this file.

use heaptherapy_plus::hardened_alloc::{throughput, HardenedAlloc, PatchEntry};
use heaptherapy_plus::patch::{AllocFn, VulnFlags};
use proptest::prelude::*;

/// Distinct instrumented call sites, one per vulnerability class.
const OVERFLOW_SITE: u64 = 0xF100;
const UAF_SITE: u64 = 0xF200;
const UR_SITE: u64 = 0xF300;

fn patched_alloc() -> Box<HardenedAlloc> {
    let a = Box::new(HardenedAlloc::new());
    let installed = a.install(&[
        PatchEntry::new(
            AllocFn::Malloc,
            throughput::site_ccid(OVERFLOW_SITE),
            VulnFlags::OVERFLOW,
        ),
        PatchEntry::new(
            AllocFn::Malloc,
            throughput::site_ccid(UAF_SITE),
            VulnFlags::USE_AFTER_FREE,
        ),
        PatchEntry::new(
            AllocFn::Malloc,
            throughput::site_ccid(UR_SITE),
            VulnFlags::UNINIT_READ,
        ),
    ]);
    assert_eq!(installed, 3);
    a.freeze();
    a
}

/// 8 threads × alternating vulnerability classes, every 4th allocation in a
/// patched context: exact counter conservation at the end.
#[test]
fn threaded_pairs_conserve_every_counter() {
    const THREADS: usize = 8;
    const PAIRS: u64 = 2000; // divisible by EVERY
    const EVERY: u64 = 4;
    let a = patched_alloc();

    let sites = [OVERFLOW_SITE, UAF_SITE, UR_SITE];
    ht_par::par_spawn(THREADS, |i| {
        let done =
            throughput::hardened_pairs(&a, PAIRS, 32 + i * 8, Some(sites[i % sites.len()]), EVERY);
        assert_eq!(done, PAIRS);
    });

    let st = a.stats();
    let total = THREADS as u64 * PAIRS;
    let patched_per_thread = PAIRS / EVERY;
    assert_eq!(st.interposed_allocs, total);
    assert_eq!(st.interposed_frees, total);
    assert_eq!(st.table_hits, THREADS as u64 * patched_per_thread);
    // Thread i uses sites[i % 3]: overflow on 0,3,6 (3 threads), UAF on
    // 1,4,7 (3 threads), UR on 2,5 (2 threads).
    assert_eq!(st.guard_pages, 3 * patched_per_thread);
    assert_eq!(st.quarantined, 3 * patched_per_thread);
    assert_eq!(st.zero_fills, 2 * patched_per_thread);
    assert!(st.evictions <= st.quarantined);
    assert_eq!(st.fail_open, 0, "registry/table never filled up");

    // Registry conservation: every guarded or quarantine-bound allocation
    // was inserted exactly once and removed exactly once (UR-only buffers
    // are zeroed, not registered; quarantined blocks leave the registry
    // when their free is deferred).
    let rs = a.registry_stats();
    assert_eq!(rs.inserts, rs.removes + rs.live());
    assert_eq!(rs.live(), 0, "no patched pointer leaked");
    assert_eq!(
        rs.inserts,
        st.guard_pages + st.quarantined,
        "each guarded/deferred allocation registered once"
    );
}

/// 8 threads each hold a large batch of patched allocations live at once —
/// entries from all threads interleave across every registry shard — then
/// verify their buffers byte-for-byte before freeing.
#[test]
fn threaded_batches_never_lose_or_corrupt_live_pointers() {
    const THREADS: usize = 8;
    const COUNT: usize = 96;
    let a = patched_alloc();

    ht_par::par_spawn(THREADS, |i| {
        for round in 0..4 {
            let corrupt = throughput::hardened_batch(&a, COUNT, 64 + round * 32, OVERFLOW_SITE);
            assert_eq!(corrupt, 0, "thread {i} round {round}: corrupted buffer");
        }
    });

    let st = a.stats();
    assert_eq!(st.interposed_allocs, st.interposed_frees);
    assert_eq!(st.fail_open, 0);
    assert_eq!(st.guard_pages, (THREADS * 4 * COUNT) as u64);
    let rs = a.registry_stats();
    assert_eq!(rs.live(), 0);
    assert_eq!(rs.inserts, (THREADS * 4 * COUNT) as u64);
}

/// 8 threads of use-after-free frees against a deliberately tiny quarantine
/// quota: blocks cycle through quarantine and back out to the system
/// allocator, the byte ledger conserves exactly, and armed telemetry
/// counts every patched allocation and files the UAF report exactly once.
#[test]
fn eviction_heavy_quarantine_conserves_bytes_and_reports_once() {
    const THREADS: usize = 8;
    const PAIRS: u64 = 512;
    const SIZE: usize = 128;
    const QUOTA: usize = 1024; // a handful of 128 B blocks across 8 shards
    let a = patched_alloc();
    a.set_quarantine_quota(QUOTA);
    a.set_telemetry(true);

    ht_par::par_spawn(THREADS, |_| {
        throughput::hardened_pairs(&a, PAIRS, SIZE, Some(UAF_SITE), 1);
    });

    let st = a.stats();
    let total = THREADS as u64 * PAIRS;
    assert_eq!(st.quarantined, total, "every free was deferred");
    assert!(st.evictions > 0, "tiny quota must evict: {st:?}");
    let (_, held_bytes) = a.quarantine_usage();
    assert!(held_bytes <= QUOTA, "usage {held_bytes} over quota {QUOTA}");
    assert_eq!(
        st.quarantined_bytes,
        st.evicted_bytes + held_bytes as u64,
        "deferred bytes either evicted or still held"
    );

    let snap = a.telemetry_snapshot();
    // Striped counters are exact even though the 1024-slot ring overflowed.
    assert_eq!(snap.per_patch.iter().map(|p| p.hits).sum::<u64>(), total);
    assert_eq!(
        snap.per_patch.iter().map(|p| p.bytes).sum::<u64>(),
        total * SIZE as u64
    );
    // Ring accounting is exact too: per pair one patch-hit and one defer
    // event, plus one evict event per eviction and the single UAF report.
    assert!(
        snap.dropped > 0,
        "workload must overflow the ring: {snap:?}"
    );
    assert_eq!(
        snap.delivered + snap.dropped,
        2 * total + st.evictions + 1,
        "every event either delivered or counted as dropped"
    );
    assert_eq!(snap.reports.len(), 1, "one UAF report, filed exactly once");
}

/// One thread's mixed workload, used as the proptest unit below.
#[derive(Debug, Clone, Copy)]
struct Workload {
    pairs: u64,
    size: usize,
    site: Option<u64>,
    every: u64,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (1u64..200, 1usize..512, 0usize..4, 1u64..8).prop_map(|(pairs, size, site, every)| Workload {
        pairs,
        size,
        site: [None, Some(OVERFLOW_SITE), Some(UAF_SITE), Some(UR_SITE)][site],
        every,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever mix of patched/unpatched workloads runs on however many
    /// threads — under the default quota or an eviction-heavy tiny one,
    /// with telemetry armed or off — the allocator's books balance
    /// afterwards, down to the byte.
    #[test]
    fn stats_conservation_holds_for_arbitrary_threaded_workloads(
        workloads in proptest::collection::vec(arb_workload(), 1..6),
        quota in prop_oneof![
            Just(usize::MAX),    // effectively unlimited: nothing evicts
            512usize..4096,      // eviction-heavy: most deferred frees cycle out
        ],
        telemetry in any::<bool>(),
    ) {
        let a = patched_alloc();
        a.set_quarantine_quota(quota);
        a.set_telemetry(telemetry);
        let expected_allocs: u64 = workloads.iter().map(|w| w.pairs).sum();
        let expected_hits: u64 = workloads
            .iter()
            .filter(|w| w.site.is_some())
            .map(|w| w.pairs.div_ceil(w.every))
            .sum();
        let expected_patched_bytes: u64 = workloads
            .iter()
            .filter(|w| w.site.is_some())
            .map(|w| w.pairs.div_ceil(w.every) * w.size as u64)
            .sum();
        // UR-only buffers are zeroed in place, never registered.
        let expected_registered: u64 = workloads
            .iter()
            .filter(|w| matches!(w.site, Some(OVERFLOW_SITE) | Some(UAF_SITE)))
            .map(|w| w.pairs.div_ceil(w.every))
            .sum();

        ht_par::par_spawn(workloads.len(), |i| {
            let w = workloads[i];
            throughput::hardened_pairs(&a, w.pairs, w.size, w.site, w.every);
        });

        let st = a.stats();
        prop_assert_eq!(st.interposed_allocs, expected_allocs);
        prop_assert_eq!(st.interposed_frees, expected_allocs);
        prop_assert_eq!(st.table_hits, expected_hits);
        prop_assert_eq!(
            st.guard_pages + st.quarantined + st.zero_fills,
            expected_hits
        );
        prop_assert!(st.evictions <= st.quarantined);
        prop_assert_eq!(st.fail_open, 0);
        // Byte conservation: whatever the quota forced out plus whatever is
        // still held is exactly what was deferred.
        let (_, held_bytes) = a.quarantine_usage();
        prop_assert_eq!(st.quarantined_bytes, st.evicted_bytes + held_bytes as u64);
        if quota != usize::MAX {
            prop_assert!(held_bytes <= quota);
        } else {
            prop_assert_eq!(st.evictions, 0);
        }

        let rs = a.registry_stats();
        prop_assert_eq!(rs.inserts, rs.removes + rs.live());
        prop_assert_eq!(rs.live(), 0);
        prop_assert_eq!(rs.inserts, expected_registered);

        // Telemetry's striped counters are exact (the ring may drop under
        // load; the counters never do), and disabled telemetry sees nothing.
        let snap = a.telemetry_snapshot();
        if telemetry {
            prop_assert_eq!(
                snap.per_patch.iter().map(|p| p.hits).sum::<u64>(),
                expected_hits
            );
            prop_assert_eq!(
                snap.per_patch.iter().map(|p| p.bytes).sum::<u64>(),
                expected_patched_bytes
            );
        } else {
            prop_assert!(snap.is_empty());
        }
    }
}
