//! Integration test reproducing Table II end-to-end across crates:
//! vulnapps → simprog → encoding → shadow → patch → defense.
//!
//! For every program in the suite (7 CVE models + 23 SAMATE cases) the
//! claims of the paper must hold: the attack works undefended, the offline
//! analyzer diagnoses the right class from ONE attack input, the patch file
//! deploys code-lessly, fresh attack instances are defeated, and benign
//! traffic is unharmed.

use heaptherapy_plus::core::{HeapTherapy, PipelineConfig};
use heaptherapy_plus::patch::VulnFlags;
use heaptherapy_plus::vulnapps;

#[test]
fn table2_full_suite() {
    let ht = HeapTherapy::new(PipelineConfig::default());
    let suite = vulnapps::table2_suite();
    assert_eq!(suite.len(), 30);
    let mut failures = Vec::new();
    for app in &suite {
        let r = match ht.full_cycle(app) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{}: pipeline error {e}", app.name));
                continue;
            }
        };
        if !r.undefended_attack_succeeded {
            failures.push(format!("{}: attack inert undefended", r.app));
        }
        if !r.detection_correct() {
            failures.push(format!(
                "{}: expected {} got {}",
                r.app, r.expected, r.detected
            ));
        }
        if !r.all_attacks_blocked {
            failures.push(format!("{}: an attack got through", r.app));
        }
        if !r.benign_ok {
            failures.push(format!("{}: benign behaviour broken", r.app));
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

#[test]
fn heartbleed_diagnoses_both_vulnerabilities_from_one_replay() {
    let ht = HeapTherapy::new(PipelineConfig::default());
    let r = ht.full_cycle(&vulnapps::heartbleed()).unwrap();
    assert!(r.detected.contains(VulnFlags::UNINIT_READ));
    assert!(r.detected.contains(VulnFlags::OVERFLOW));
    assert_eq!(r.patches_generated, 1, "one buffer, one patch, two bits");
}

#[test]
fn patches_do_not_cross_contaminate_applications() {
    // Patches generated for one app are keyed by CCIDs of *its* program;
    // deploying them on another program must be a no-op (all misses).
    let ht = HeapTherapy::new(PipelineConfig::default());
    let bc = vulnapps::bc();
    let ming = vulnapps::libming();
    let ip_bc = ht.instrument(&bc.program);
    let ip_ming = ht.instrument(&ming.program);
    let bc_patches = ht.analyze_attack(&ip_bc, bc.patching_input(), "bc").patches;
    // libming's attack still succeeds under bc's patches (different keys —
    // bc patches malloc, libming's culprit is calloc).
    let run = ht.run_protected(&ip_ming, ming.patching_input(), &bc_patches);
    assert!(
        ming.attack_succeeded(&run.report),
        "foreign patches must not accidentally defend"
    );
}
