//! Cross-crate integration: properties that only emerge when the whole
//! stack is wired together.

use heaptherapy_plus::callgraph::Strategy;
use heaptherapy_plus::core::{HeapTherapy, PipelineConfig};
use heaptherapy_plus::defense::{DefendedBackend, DefenseConfig};
use heaptherapy_plus::encoding::{decode, Ccid, Scheme};
use heaptherapy_plus::memsim::BumpAllocator;
use heaptherapy_plus::patch::{from_config_json, to_config_json, PatchTable};
use heaptherapy_plus::simprog::Interpreter;
use heaptherapy_plus::vulnapps;

/// The paper's "no dependency on specific allocators": run a protected
/// vulnapp over a *bump* allocator instead of the free-list one; the
/// overflow defense must still hold.
#[test]
fn defense_is_allocator_agnostic_end_to_end() {
    let app = vulnapps::bc();
    let ht = HeapTherapy::new(PipelineConfig::default());
    let ip = ht.instrument(&app.program);
    let patches = ht.analyze_attack(&ip, app.patching_input(), "bc").patches;
    let cfg = DefenseConfig::with_table(PatchTable::from_patches(patches));
    let backend = DefendedBackend::with_allocator(BumpAllocator::new(), cfg);
    let report = Interpreter::new(&app.program, &ip.plan, backend).run(app.patching_input());
    assert!(
        !app.attack_succeeded(&report),
        "guard page works over a completely different inner allocator"
    );
}

/// Patch CCIDs survive a JSON round trip and still decode to the culprit
/// calling context under the positional scheme.
#[test]
fn json_config_round_trip_and_decode() {
    let app = vulnapps::ghostxps();
    let ht = HeapTherapy::new(PipelineConfig {
        strategy: Strategy::Tcs,
        scheme: Scheme::Positional,
        ..PipelineConfig::default()
    });
    let ip = ht.instrument(&app.program);
    let patches = ht
        .analyze_attack(&ip, app.patching_input(), &app.reference)
        .patches;
    let loaded = from_config_json(&to_config_json(&patches)).unwrap();
    assert_eq!(loaded, patches);
    let graph = app.program.graph();
    for p in &loaded {
        let target = graph.func_by_name(p.alloc_fn.name()).unwrap();
        let path = decode(graph, &ip.plan, Ccid(p.ccid), target).expect("decodes");
        // The decoded chain must end at the allocation API.
        let last = *path.last().unwrap();
        assert_eq!(graph.edge(last).callee, target);
        // And pass through the vulnerable function of the model.
        let names: Vec<&str> = path
            .iter()
            .map(|&e| graph.func(graph.edge(e).callee).name.as_str())
            .collect();
        assert!(
            names.contains(&"xps_parse_color"),
            "decoded chain {names:?} names the culprit"
        );
    }
}

/// A PCC hash collision must never break correctness: force one by patching
/// a synthetic CCID equal to a benign context's encoding — the benign
/// context merely gets over-protected, and the program still works.
#[test]
fn ccid_collision_only_overprotects() {
    let app = vulnapps::bc();
    let ht = HeapTherapy::new(PipelineConfig::default());
    let ip = ht.instrument(&app.program);
    // Profile the benign run and patch EVERY observed context as overflow —
    // the worst possible "collision storm".
    let profile = ht.run_native(&ip, &app.benign_inputs[0]);
    let patches: Vec<_> = profile
        .ccid_freq
        .keys()
        .map(|&(fun, ccid)| {
            heaptherapy_plus::patch::Patch::new(
                fun,
                ccid,
                heaptherapy_plus::patch::VulnFlags::OVERFLOW,
            )
        })
        .collect();
    let run = ht.run_protected(&ip, &app.benign_inputs[0], &patches);
    assert!(
        run.report.outcome.is_completed(),
        "over-protection never changes program logic: {:?}",
        run.report.outcome
    );
    assert!(run.stats.guard_pages > 0, "defenses actually applied");
}

/// Every strategy/scheme combination protects every CVE model.
#[test]
fn strategy_scheme_matrix_on_cve_models() {
    for strategy in Strategy::ALL {
        for scheme in Scheme::ALL {
            let ht = HeapTherapy::new(PipelineConfig {
                strategy,
                scheme,
                ..PipelineConfig::default()
            });
            for app in [vulnapps::optipng(), vulnapps::libming()] {
                let r = ht.full_cycle(&app).unwrap();
                assert!(
                    r.all_attacks_blocked && r.benign_ok,
                    "{}/{}/{}",
                    strategy,
                    scheme,
                    app.name
                );
            }
        }
    }
}

/// Virtual dispatch (DeltaPath's case): the *dynamic* callee determines the
/// allocation context, so a patch generated for the vulnerable
/// implementation does not tax its sibling implementations.
#[test]
fn virtual_dispatch_contexts_are_patched_individually() {
    use heaptherapy_plus::patch::AllocFn;
    use heaptherapy_plus::simprog::{Expr, ProgramBuilder, Sink};

    // An image loader with two codec implementations behind one virtual
    // call; only the PNG codec has the overflow.
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let png = pb.func("png_codec::decode");
    let jpg = pb.func("jpg_codec::decode");
    let buf = pb.slot();
    let victim = pb.slot();
    pb.define(png, |b| {
        b.alloc(buf, AllocFn::Malloc, 64u64);
        b.alloc(victim, AllocFn::Malloc, 64u64);
        b.write(victim, 0u64, 8u64, 0x11);
        b.write(buf, 0u64, Expr::Input(1), 0x41); // attacker-length copy
        b.read(victim, 0u64, 8u64, Sink::Leak);
        b.free(victim);
        b.free(buf);
    });
    pb.define(jpg, |b| {
        b.alloc(buf, AllocFn::Malloc, 64u64);
        b.write(buf, 0u64, 64u64, 0x22); // correct codec
        b.free(buf);
    });
    pb.define(main, |b| b.call_virtual(&[png, jpg], Expr::Input(0)));
    let prog = pb.build();

    let ht = HeapTherapy::new(PipelineConfig::default());
    let ip = ht.instrument(&prog);

    // Attack through the PNG path; the patch keys on the PNG-side context.
    let attack = vec![0u64, 160];
    let analysis = ht.analyze_attack(&ip, &attack, "png-overflow");
    assert!(!analysis.patches.is_empty());
    assert!(
        analysis
            .patches
            .iter()
            .all(|p| p.alloc_fn == AllocFn::Malloc),
        "{:?}",
        analysis.patches
    );

    // Attack defeated through the virtual call...
    let run = ht.run_protected(&ip, &attack, &analysis.patches);
    assert!(!run.report.leaked.windows(8).any(|w| w == [0x41; 8]));
    // ...and the JPG path runs completely untaxed (no table hits).
    let jpg_run = ht.run_protected(&ip, &[1, 64], &analysis.patches);
    assert!(jpg_run.report.outcome.is_completed());
    assert_eq!(
        jpg_run.stats.table_hits, 0,
        "sibling implementation pays nothing"
    );
}

/// §IX: a tiny quarantine quota weakens the UAF deferral window — with a
/// quota of zero the defense degrades to prompt reuse and the attack
/// succeeds again. (This documents WHY the quota matters.)
#[test]
fn zero_quarantine_quota_disables_uaf_defense() {
    let app = vulnapps::optipng();
    let ht_weak = HeapTherapy::new(PipelineConfig {
        defense_quota: 0,
        ..PipelineConfig::default()
    });
    let ip = ht_weak.instrument(&app.program);
    let patches = ht_weak
        .analyze_attack(&ip, app.patching_input(), "x")
        .patches;
    let run = ht_weak.run_protected(&ip, app.patching_input(), &patches);
    assert!(
        app.attack_succeeded(&run.report),
        "zero quota ⇒ immediate eviction ⇒ reuse ⇒ hijack"
    );
    // Sanity: the default quota blocks it.
    let ht_strong = HeapTherapy::new(PipelineConfig::default());
    let run = ht_strong.run_protected(&ip, app.patching_input(), &patches);
    assert!(!app.attack_succeeded(&run.report));
}
