//! Patch durability: the paper's code-less patches only work if CCIDs are
//! *stable* — across program restarts, plan rebuilds, and config-file
//! round trips. These tests pin that contract.

use heaptherapy_plus::callgraph::Strategy;
use heaptherapy_plus::core::{HeapTherapy, PipelineConfig};
use heaptherapy_plus::encoding::{InstrumentationPlan, Scheme};
use heaptherapy_plus::simprog::spec::{build_spec_workload, spec_bench, spec_suite};
use ht_jsonio::{FromJson, Json, ToJson};

/// Rebuilding the same program and plan from scratch yields identical
/// CCIDs — a patch generated yesterday still matches today's run.
#[test]
fn ccids_survive_program_and_plan_rebuilds() {
    for bench in spec_suite().into_iter().take(4) {
        for scheme in Scheme::ALL {
            for strategy in [Strategy::Tcs, Strategy::Incremental] {
                let w1 = build_spec_workload(bench);
                let w2 = build_spec_workload(bench);
                let p1 = InstrumentationPlan::build(w1.program.graph(), strategy, scheme);
                let p2 = InstrumentationPlan::build(w2.program.graph(), strategy, scheme);
                assert_eq!(p1, p2, "{} {strategy}/{scheme}", bench.name);

                let input = w1.input_for_allocs(100);
                let r1 = heaptherapy_plus::simprog::interp::run_plain(&w1.program, &p1, &input);
                let r2 = heaptherapy_plus::simprog::interp::run_plain(&w2.program, &p2, &input);
                assert_eq!(
                    r1.ccid_freq, r2.ccid_freq,
                    "{} {strategy}/{scheme}: CCIDs drifted across rebuilds",
                    bench.name
                );
            }
        }
    }
}

/// Plans serialize and deserialize without loss (the instrumented binary's
/// encoding is effectively persisted state).
#[test]
fn plans_json_round_trip() {
    let w = build_spec_workload(spec_bench("403.gcc").unwrap());
    for scheme in Scheme::ALL {
        for strategy in Strategy::ALL {
            let plan = InstrumentationPlan::build(w.program.graph(), strategy, scheme);
            let json = plan.to_json().to_compact();
            let back = InstrumentationPlan::from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(plan, back, "{strategy}/{scheme}");
        }
    }
}

/// Patches generated under one pipeline instance defend a *fresh* pipeline
/// instance over a *rebuilt* program — the full cross-restart story.
#[test]
fn patches_survive_a_simulated_restart() {
    let cfg = PipelineConfig::default();
    let config_text = {
        let app = ht_vulnapps::heartbleed();
        let ht = HeapTherapy::new(cfg.clone());
        let ip = ht.instrument(&app.program);
        let analysis = ht.analyze_attack(&ip, app.patching_input(), &app.reference);
        ht_patch::to_config_text(&analysis.patches)
    };
    // "Restart": everything rebuilt from scratch, patches come from text.
    let app = ht_vulnapps::heartbleed();
    let ht = HeapTherapy::new(cfg);
    let ip = ht.instrument(&app.program);
    let patches = ht_patch::from_config_text(&config_text).unwrap();
    for input in &app.attack_inputs {
        let run = ht.run_protected(&ip, input, &patches);
        assert!(
            !app.attack_succeeded(&run.report),
            "patch expired on restart"
        );
    }
}

/// JSON round trip for the graph itself (tooling may persist call graphs).
#[test]
fn call_graphs_json_round_trip() {
    let w = build_spec_workload(spec_bench("456.hmmer").unwrap());
    let json = w.program.graph().to_json().to_compact();
    let back =
        heaptherapy_plus::callgraph::CallGraph::from_json(&Json::parse(&json).unwrap()).unwrap();
    assert_eq!(w.program.graph(), &back);
}
