//! Targeted calling-context encoding at a glance: the paper's Figure 2
//! example plus a SPEC-scale model, across all four strategies.
//!
//! ```sh
//! cargo run --example encoding_comparison
//! ```

use heaptherapy_plus::callgraph::{dot::to_dot, Strategy};
use heaptherapy_plus::encoding::{collision_report, InstrumentationPlan, Scheme};
use heaptherapy_plus::simprog::interp::run_plain;
use heaptherapy_plus::simprog::spec::{build_spec_workload, spec_bench};

fn main() {
    // --- The paper's Figure 2 example graph -------------------------------
    let g = ht_bench_example();
    println!("Figure 2 example graph, instrumented sites per strategy:");
    for strategy in Strategy::ALL {
        let set = strategy.select(&g);
        println!(
            "  {:<12} {:>2} / {} call sites",
            strategy.name(),
            set.len(),
            g.edge_count()
        );
    }
    let inc = Strategy::Incremental.select(&g);
    println!("\nGraphviz of the Incremental instrumentation (dashed = pruned):");
    println!("{}", to_dot(&g, Some(&inc)));

    // --- A SPEC-scale model ------------------------------------------------
    let w = build_spec_workload(spec_bench("403.gcc").unwrap());
    let input = w.input_for_allocs(5_000);
    println!(
        "403.gcc model: {} functions, {} call sites",
        w.program.graph().func_count(),
        w.program.graph().edge_count()
    );
    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>11}",
        "strategy", "static sites", "executed ops", "contexts", "collisions"
    );
    for strategy in Strategy::ALL {
        for scheme in Scheme::ALL {
            if scheme == Scheme::Positional && strategy != Strategy::Slim {
                continue; // one decodable row is enough for the demo
            }
            let plan = InstrumentationPlan::build(w.program.graph(), strategy, scheme);
            let ops = run_plain(&w.program, &plan, &input).encoder_ops;
            let rep = collision_report(w.program.graph(), &plan, 32, 4096);
            println!(
                "{:<12} {:>12} {:>14} {:>12} {:>11}  ({})",
                strategy.name(),
                plan.site_count(),
                ops,
                rep.contexts,
                rep.collisions,
                scheme.name()
            );
        }
    }
    println!("\nOK: fewer instrumented sites, same distinguishing power.");
}

/// Rebuilds the Fig. 2 example (A→B, A→C, B→F, C→E, C→F, E→T1, F→T1, F→T2,
/// D→H, H→I).
fn ht_bench_example() -> heaptherapy_plus::callgraph::CallGraph {
    use heaptherapy_plus::callgraph::CallGraphBuilder;
    let mut b = CallGraphBuilder::new();
    let a = b.func("A");
    let bb = b.func("B");
    let c = b.func("C");
    let d = b.func("D");
    let e = b.func("E");
    let f = b.func("F");
    let h = b.func("H");
    let i = b.func("I");
    let t1 = b.target("T1");
    let t2 = b.target("T2");
    b.call(a, bb);
    b.call(a, c);
    b.call(bb, f);
    b.call(c, e);
    b.call(c, f);
    b.call(e, t1);
    b.call(f, t1);
    b.call(f, t2);
    b.call(d, h);
    b.call(h, i);
    b.build()
}
