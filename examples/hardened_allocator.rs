//! The defenses on *real* memory: `HardenedAlloc` as this process's
//! `#[global_allocator]`.
//!
//! Every `Box`, `Vec` and `String` in this program flows through the
//! HeapTherapy+ interposition; the patched allocation site gets a real
//! `mmap`'d guard page (check `/proc/self/maps` output below), a quarantined
//! free, and zero-filling.
//!
//! ```sh
//! cargo run --example hardened_allocator
//! ```

use heaptherapy_plus::hardened_alloc::{ccid, HardenedAlloc, PatchEntry};
use heaptherapy_plus::patch::{AllocFn, VulnFlags};

#[global_allocator]
static ALLOC: HardenedAlloc = HardenedAlloc::new();

/// The site constants the instrumentation pass would assign.
const SITE_HANDLER: u64 = 0x9A31;
const SITE_PARSE: u64 = 0x44F7;

fn parse_request(payload: usize) -> Vec<u8> {
    let _site = ccid::CallScope::enter(SITE_PARSE);
    // The "vulnerable" allocation: in the patched context this buffer is
    // guarded, zeroed, and quarantine-freed.
    vec![0x41; payload]
}

fn handle_request(payload: usize) -> Vec<u8> {
    let _site = ccid::CallScope::enter(SITE_HANDLER);
    parse_request(payload)
}

fn vulnerable_ccid() -> u64 {
    let _a = ccid::CallScope::enter(SITE_HANDLER);
    let _b = ccid::CallScope::enter(SITE_PARSE);
    ccid::current()
}

fn perms_at(addr: usize) -> Option<String> {
    let maps = std::fs::read_to_string("/proc/self/maps").ok()?;
    for line in maps.lines() {
        let (range, rest) = line.split_once(' ')?;
        let (lo, hi) = range.split_once('-')?;
        let lo = usize::from_str_radix(lo, 16).ok()?;
        let hi = usize::from_str_radix(hi, 16).ok()?;
        if addr >= lo && addr < hi {
            return Some(rest.split(' ').next()?.to_string());
        }
    }
    None
}

fn main() {
    // Install the patch for the vulnerable calling context, as the online
    // defense generator does at startup from the configuration file.
    ALLOC.install(&[PatchEntry::new(
        AllocFn::Malloc,
        vulnerable_ccid(),
        VulnFlags::OVERFLOW | VulnFlags::USE_AFTER_FREE | VulnFlags::UNINIT_READ,
    )]);

    // Ordinary traffic: untouched.
    let plain = vec![1u8; 4096];
    println!("unpatched Vec at {:p}: no guard page", plain.as_ptr());

    // The patched context: the Vec's buffer is guarded on real pages.
    let hot = handle_request(4000);
    let guard = ALLOC
        .guard_page_of(hot.as_ptr() as *mut u8)
        .expect("patched allocation is guarded");
    println!(
        "patched Vec at {:p}: guard page at {:#x} with permissions {:?}",
        hot.as_ptr(),
        guard,
        perms_at(guard)
    );
    assert_eq!(perms_at(guard).as_deref(), Some("---p"));

    let ptr = hot.as_ptr() as *mut u8;
    drop(hot); // free → quarantine (UAF bit)
    println!(
        "after drop: quarantined = {}, quarantine usage = {:?}",
        ALLOC.is_quarantined(ptr),
        ALLOC.quarantine_usage()
    );

    let stats = ALLOC.stats();
    println!(
        "\nallocator stats: {} allocations interposed, {} table hits, \
         {} guard pages, {} zero-fills, {} quarantined",
        stats.interposed_allocs,
        stats.table_hits,
        stats.guard_pages,
        stats.zero_fills,
        stats.quarantined
    );
    println!("\nOK: HeapTherapy+ defenses active on the real process heap.");
}
