//! Heartbleed, step by step: the paper's flagship case study.
//!
//! A single attack replay diagnoses *two* vulnerabilities (uninitialized
//! read + overread), and the deployed patch leaves nothing but zeros to
//! steal.
//!
//! ```sh
//! cargo run --example heartbleed
//! ```

use heaptherapy_plus::core::{HeapTherapy, PipelineConfig};
use heaptherapy_plus::vulnapps::{self, SECRET_BYTE};

fn count_secret(leak: &[u8]) -> usize {
    leak.iter().filter(|&&b| b == SECRET_BYTE).count()
}

fn main() {
    let app = vulnapps::heartbleed();
    let ht = HeapTherapy::new(PipelineConfig::default());
    let ip = ht.instrument(&app.program);
    let attack = app.patching_input(); // claimed heartbeat length: 64 KB

    // 1. Undefended: the malicious heartbeat bleeds the previous TLS
    //    session's key material out of the heap.
    let native = ht.run_native(&ip, attack);
    println!(
        "[undefended] response bytes: {}, secret bytes leaked: {}",
        native.leaked.len(),
        count_secret(&native.leaked)
    );
    assert!(count_secret(&native.leaked) > 30_000);

    // 2. Offline analysis: one replay under shadow memory.
    let analysis = ht.analyze_attack(&ip, attack, "CVE-2014-0160");
    println!("\n[offline] analyzer warnings:");
    for w in &analysis.warnings {
        println!("  - {w}");
    }
    println!("[offline] generated patches:");
    for p in &analysis.patches {
        println!("  - {p}");
    }

    // 3. Online: patches deployed through the configuration file. The same
    //    attack now gets zeros and a guard-page stop instead of secrets.
    let protected = ht.run_protected(&ip, attack, &analysis.patches);
    println!("\n[patched] outcome: {:?}", protected.report.outcome);
    println!(
        "[patched] response bytes: {}, secret bytes leaked: {}",
        protected.report.leaked.len(),
        count_secret(&protected.report.leaked)
    );
    println!(
        "[patched] zero-filled bytes: {}, guard pages: {}",
        protected.stats.zero_fill_bytes, protected.stats.guard_pages
    );
    assert_eq!(count_secret(&protected.report.leaked), 0);

    // 4. Regular heartbeats still work.
    let benign = ht.run_protected(&ip, &app.benign_inputs[0], &analysis.patches);
    println!(
        "\n[benign] outcome: {:?}, response bytes: {}",
        benign.report.outcome,
        benign.report.leaked.len()
    );
    assert!(benign.report.outcome.is_completed());

    println!("\nOK: no data leaked except zeros — the paper's verdict, reproduced.");
}
