//! Quickstart: patch a heap overflow end-to-end in a dozen lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use heaptherapy_plus::core::{HeapTherapy, PipelineConfig};
use heaptherapy_plus::vulnapps;

fn main() {
    // A modeled vulnerable program (BugBench's bc-1.06 heap overflow) with
    // one attack input in hand — the paper's starting point.
    let app = vulnapps::bc();

    // The whole pipeline: instrument, replay the attack offline, generate
    // {FUN, CCID, T} patches, deploy them code-lessly, verify online.
    let ht = HeapTherapy::new(PipelineConfig::default());
    let cycle = ht.full_cycle(&app).expect("pipeline runs");

    println!(
        "application           : {} ({})",
        cycle.app, cycle.reference
    );
    println!(
        "attack works unpatched: {}",
        cycle.undefended_attack_succeeded
    );
    println!("diagnosed as          : {}", cycle.detected);
    println!("patches generated     : {}", cycle.patches_generated);
    println!("--- patch configuration file ---");
    print!("{}", cycle.config_text);
    println!("---------------------------------");
    println!("all attacks blocked   : {}", cycle.all_attacks_blocked);
    println!("benign runs unharmed  : {}", cycle.benign_ok);

    assert!(cycle.all_attacks_blocked && cycle.benign_ok);
    println!("\nOK: the overflow is defused without touching the program.");
}
