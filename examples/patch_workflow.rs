//! The operations view: patch files on disk, and decoding a patch's CCID
//! back into a human-readable call chain.
//!
//! Uses the precise positional encoding (PCCE-flavoured) so the integer in
//! the configuration file can be decoded into `main → … → malloc` for the
//! incident report.
//!
//! ```sh
//! cargo run --example patch_workflow
//! ```

use heaptherapy_plus::callgraph::Strategy;
use heaptherapy_plus::core::{HeapTherapy, PipelineConfig};
use heaptherapy_plus::encoding::{decode, Ccid, Scheme};
use heaptherapy_plus::patch::{from_config_text, to_config_text};
use heaptherapy_plus::vulnapps;

fn main() {
    // Decodable encodings: switch the pipeline to the positional scheme.
    let ht = HeapTherapy::new(PipelineConfig {
        strategy: Strategy::Slim,
        scheme: Scheme::Positional,
        ..PipelineConfig::default()
    });

    let app = vulnapps::tiff();
    let ip = ht.instrument(&app.program);
    let analysis = ht.analyze_attack(&ip, app.patching_input(), &app.reference);

    // Write the configuration file the way the offline generator would.
    let path = std::env::temp_dir().join("heaptherapy_patches.conf");
    let text = to_config_text(&analysis.patches);
    std::fs::write(&path, &text).expect("write config");
    println!(
        "wrote {} patch(es) to {}",
        analysis.patches.len(),
        path.display()
    );
    print!("{text}");

    // ... later, at service startup, the online defense loads it back.
    let loaded = from_config_text(&std::fs::read_to_string(&path).expect("read config"))
        .expect("parse config");
    assert_eq!(loaded, analysis.patches);

    // Decode each patch's CCID into the full calling context.
    let graph = app.program.graph();
    for p in &loaded {
        let target = graph
            .func_by_name(p.alloc_fn.name())
            .expect("allocation API in graph");
        let path = decode(graph, &ip.plan, Ccid(p.ccid), target)
            .expect("positional CCIDs decode on acyclic graphs");
        let chain: Vec<&str> = std::iter::once("main")
            .chain(
                path.iter()
                    .map(|&e| graph.func(graph.edge(e).callee).name.as_str()),
            )
            .collect();
        println!("{p}  ⇒  {}", chain.join(" → "));
    }

    // The deployed patches still defeat the attack.
    let protected = ht.run_protected(&ip, app.patching_input(), &loaded);
    assert!(!app.attack_succeeded(&protected.report));
    println!("\nOK: config file round-trips and the decoded context names the culprit.");
}
