//! `heaptherapy` — the command-line face of the pipeline, operating on the
//! bundled vulnerable-program models.
//!
//! ```text
//! heaptherapy list
//! heaptherapy analyze <app> [--out patches.conf] [--scheme pcc|positional|additive]
//! heaptherapy protect <app> --patches patches.conf [--attack N]
//! heaptherapy demo <app>
//! heaptherapy report <app> [--json] [--scheme pcc|positional|additive]
//! heaptherapy decode <app> --fun malloc --ccid 0x1f3a [--scheme additive]
//! heaptherapy lint <app> [--strategy fcs|tcs|slim|incremental] [--scheme pcc|positional|additive]
//! heaptherapy instrument <app> [--strategy fcs|tcs|slim|incremental]
//! ```

use heaptherapy_plus::callgraph::Strategy;
use heaptherapy_plus::core::{incident_report, HeapTherapy, PipelineConfig};
use heaptherapy_plus::encoding::{decode, Ccid, Scheme};
use heaptherapy_plus::patch::{from_config_text, to_config_text};
use heaptherapy_plus::vulnapps::{self, VulnApp};
use std::process::ExitCode;

fn find_app(name: &str) -> Option<VulnApp> {
    if name == "multictx" || name == "multictx-overflow" {
        return Some(vulnapps::multi_context_overflow());
    }
    vulnapps::table2_suite()
        .into_iter()
        .find(|a| a.name == name || a.name.starts_with(name))
}

fn parse_scheme(s: &str) -> Option<Scheme> {
    Scheme::ALL.into_iter().find(|x| x.name() == s)
}

fn parse_strategy(s: &str) -> Option<Strategy> {
    Strategy::ALL.into_iter().find(|x| x.name() == s)
}

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().unwrap_or_default();
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Self { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn pipeline(args: &Args) -> HeapTherapy {
    let scheme = args
        .flag("scheme")
        .and_then(parse_scheme)
        .unwrap_or(Scheme::Additive);
    let strategy = args
        .flag("strategy")
        .and_then(parse_strategy)
        .unwrap_or(Strategy::Incremental);
    HeapTherapy::new(PipelineConfig {
        strategy,
        scheme,
        ..PipelineConfig::default()
    })
}

fn cmd_list() -> ExitCode {
    println!("{:<30} {:<16} {:<10}", "name", "reference", "class");
    let mut apps = vulnapps::table2_suite();
    apps.push(vulnapps::multi_context_overflow());
    for a in apps {
        println!(
            "{:<30} {:<16} {:<10}",
            a.name,
            a.reference,
            a.expected.to_string()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_analyze(args: &Args) -> ExitCode {
    let Some(app) = args.positional.get(1).and_then(|n| find_app(n)) else {
        eprintln!("unknown app; try `heaptherapy list`");
        return ExitCode::from(2);
    };
    let ht = pipeline(args);
    let ip = ht.instrument(&app.program);
    let analysis = ht.analyze_attack(&ip, app.patching_input(), &app.reference);
    print!("{}", incident_report(&ip, &analysis, &app.name));
    let text = to_config_text(&analysis.patches);
    match args.flag("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {} patch(es) to {path}", analysis.patches.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn cmd_protect(args: &Args) -> ExitCode {
    let Some(app) = args.positional.get(1).and_then(|n| find_app(n)) else {
        eprintln!("unknown app; try `heaptherapy list`");
        return ExitCode::from(2);
    };
    let Some(path) = args.flag("patches") else {
        eprintln!("--patches <file> is required");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let patches = match from_config_text(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("bad patch file: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ht = pipeline(args);
    let ip = ht.instrument(&app.program);
    let attack_idx: usize = args
        .flag("attack")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let default_input = app.patching_input().to_vec();
    let input = app
        .attack_inputs
        .get(attack_idx)
        .cloned()
        .unwrap_or(default_input);
    let run = ht.run_protected(&ip, &input, &patches);
    println!("outcome           : {:?}", run.report.outcome);
    println!("bytes leaked      : {}", run.report.leaked.len());
    println!("attack succeeded  : {}", app.attack_succeeded(&run.report));
    println!(
        "defense activity  : {} hits, {} guard pages, {} zero-filled bytes, {} quarantined",
        run.stats.table_hits,
        run.stats.guard_pages,
        run.stats.zero_fill_bytes,
        run.stats.quarantined_blocks
    );
    if app.attack_succeeded(&run.report) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_demo(args: &Args) -> ExitCode {
    let Some(app) = args.positional.get(1).and_then(|n| find_app(n)) else {
        eprintln!("unknown app; try `heaptherapy list`");
        return ExitCode::from(2);
    };
    let ht = pipeline(args);
    if args.flag("iterative").is_some() {
        // §IX: keep cycling until every attack input is defeated (needed
        // for vulnerabilities exploitable through multiple contexts).
        return match ht.iterative_cycle(&app, 8) {
            Ok((patches, rounds)) => {
                println!(
                    "{}: converged in {rounds} round(s), {} patch(es)",
                    app.name,
                    patches.len()
                );
                print!("{}", to_config_text(&patches));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("iterative cycle failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match ht.full_cycle(&app) {
        Ok(cycle) => {
            println!("{}", cycle.table_row());
            print!("{}", cycle.config_text);
            if cycle.all_attacks_blocked && cycle.benign_ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_report(args: &Args) -> ExitCode {
    let Some(app) = args.positional.get(1).and_then(|n| find_app(n)) else {
        eprintln!("unknown app; try `heaptherapy list`");
        return ExitCode::from(2);
    };
    let ht = pipeline(args);
    match ht.attack_telemetry(&app) {
        Ok(tel) => {
            if args.flag("json").is_some() {
                use heaptherapy_plus::jsonio::ToJson;
                println!("{}", tel.to_json().to_pretty());
            } else {
                print!("{tel}");
            }
            if tel.reports.is_empty() {
                eprintln!("no defense activated — no attack report filed");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_decode(args: &Args) -> ExitCode {
    let Some(app) = args.positional.get(1).and_then(|n| find_app(n)) else {
        eprintln!("unknown app; try `heaptherapy list`");
        return ExitCode::from(2);
    };
    let Some(ccid) = args.flag("ccid").and_then(|v| {
        let v = v.strip_prefix("0x").unwrap_or(v);
        u64::from_str_radix(v, 16).ok().or_else(|| v.parse().ok())
    }) else {
        eprintln!("--ccid <hex or decimal> is required");
        return ExitCode::from(2);
    };
    let fun = args.flag("fun").unwrap_or("malloc");
    let ht = pipeline(args);
    let ip = ht.instrument(&app.program);
    let graph = app.program.graph();
    let Some(target) = graph.func_by_name(fun) else {
        eprintln!("{} never calls {fun}", app.name);
        return ExitCode::FAILURE;
    };
    match decode(graph, &ip.plan, Ccid(ccid), target) {
        Some(path) => {
            let chain: Vec<&str> = std::iter::once("main")
                .chain(
                    path.iter()
                        .map(|&e| graph.func(graph.edge(e).callee).name.as_str()),
                )
                .collect();
            println!("{}", chain.join(" → "));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "not decodable (scheme {} {}, or foreign CCID)",
                ip.plan.scheme(),
                if ip.plan.is_precise() {
                    "precise"
                } else {
                    "imprecise"
                }
            );
            ExitCode::FAILURE
        }
    }
}

fn cmd_lint(args: &Args) -> ExitCode {
    let Some(name) = args.positional.get(1) else {
        eprintln!("usage: heaptherapy lint <app|spec-bench> [--strategy S] [--scheme S]");
        return ExitCode::from(2);
    };
    let ht = pipeline(args);
    if let Some(app) = find_app(name) {
        let ip = ht.instrument(&app.program);
        let report = ht.lint(&app);
        print!("{}", report.render(&ip));
        println!("{}", report.agreement_row());
        return ExitCode::from(report.exit_code() as u8);
    }
    // Not a vulnapp — lint a SPEC workload model as a clean target.
    if let Some(bench) = heaptherapy_plus::simprog::spec::spec_bench(name) {
        let w = heaptherapy_plus::simprog::spec::build_spec_workload(bench);
        let ip = ht.instrument(&w.program);
        let triage = ht.static_triage(&ip);
        let verdict = ht.verify_plan(&ip);
        print!(
            "{}{}",
            heaptherapy_plus::analysis::render_report(w.program.graph(), &triage),
            heaptherapy_plus::analysis::render_verdict(&verdict)
        );
        return if triage.is_clean() && verdict.is_ok() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(2)
        };
    }
    eprintln!("unknown app; try `heaptherapy list`");
    ExitCode::from(2)
}

fn cmd_instrument(args: &Args) -> ExitCode {
    let Some(app) = args.positional.get(1).and_then(|n| find_app(n)) else {
        eprintln!("unknown app; try `heaptherapy list`");
        return ExitCode::from(2);
    };
    println!(
        "{:<14} {:>6} {:>10} {:>10}",
        "strategy", "sites", "of total", "size +%"
    );
    let base = app.program.base_size_bytes();
    for strategy in Strategy::ALL {
        let plan = heaptherapy_plus::encoding::InstrumentationPlan::build(
            app.program.graph(),
            strategy,
            Scheme::Pcc,
        );
        println!(
            "{:<14} {:>6} {:>10} {:>9.1}%",
            strategy.name(),
            plan.site_count(),
            app.program.graph().edge_count(),
            plan.size_increase_percent(base)
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = Args::parse();
    match args.positional.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("analyze") => cmd_analyze(&args),
        Some("protect") => cmd_protect(&args),
        Some("demo") => cmd_demo(&args),
        Some("report") => cmd_report(&args),
        Some("decode") => cmd_decode(&args),
        Some("lint") => cmd_lint(&args),
        Some("instrument") => cmd_instrument(&args),
        _ => {
            eprintln!(
                "usage: heaptherapy <list|analyze|protect|demo|report|decode|lint|instrument> [app] \
                 [--scheme pcc|positional|additive] [--strategy fcs|tcs|slim|incremental] \
                 [--out FILE] [--patches FILE] [--ccid HEX] [--fun NAME] [--attack N]"
            );
            ExitCode::from(2)
        }
    }
}
