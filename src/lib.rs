//! # HeapTherapy+ — code-less heap patching with targeted calling-context encoding
//!
//! A from-scratch Rust reproduction of *HeapTherapy+: Efficient Handling of
//! (Almost) All Heap Vulnerabilities Using Targeted Calling-Context Encoding*
//! (DSN 2019).
//!
//! This facade crate re-exports every subsystem:
//!
//! * [`callgraph`] — call graphs and targeted instrumentation-site selection
//!   (FCS / TCS / Slim / Incremental).
//! * [`encoding`] — calling-context encoding schemes (PCC, precise
//!   positional) and the runtime encoder.
//! * [`memsim`] — simulated paged virtual memory with page permissions and
//!   underlying heap allocators.
//! * [`patch`] — the `{FUN, CCID, T}` patch format, configuration files, and
//!   the frozen online patch table.
//! * [`simprog`] — the modeled-program substrate (statement language,
//!   interpreter, SPEC CPU2006 and service workload models).
//! * [`shadow`] — the offline shadow-memory attack analyzer and patch
//!   generator.
//! * [`defense`] — the online defense generator (allocation interposition,
//!   guard pages, deferred free, zero-init).
//! * [`hardened_alloc`] — a real `GlobalAlloc` carrying the same defenses on
//!   actual process memory.
//! * [`telemetry`] — runtime attack telemetry: the lock-free event ring,
//!   per-patch hit counters, one-time attack reports, and phase timings.
//! * [`vulnapps`] — modeled vulnerable programs reproducing the paper's
//!   Table II suite.
//! * [`analysis`] — static vulnerability triage (interval-domain abstract
//!   interpretation resolving candidates to `{FUN, CCID, T}`) and the
//!   encoding-plan verifier.
//! * [`core`] — the end-to-end pipeline: instrument → replay attack →
//!   generate patches → run protected, plus the static `lint` pre-pass.
//!
//! # Quickstart
//!
//! ```
//! use heaptherapy_plus::core::{HeapTherapy, PipelineConfig};
//! use heaptherapy_plus::vulnapps;
//!
//! // A modeled program with a heap overflow, one attack input in hand.
//! let app = vulnapps::bc();
//! let ht = HeapTherapy::new(PipelineConfig::default());
//! let cycle = ht.full_cycle(&app).expect("pipeline runs");
//! assert!(cycle.patches_generated > 0);
//! assert!(cycle.all_attacks_blocked);
//! ```

pub use heaptherapy_core as core;
pub use ht_analysis as analysis;
pub use ht_callgraph as callgraph;
pub use ht_defense as defense;
pub use ht_encoding as encoding;
pub use ht_hardened_alloc as hardened_alloc;
pub use ht_jsonio as jsonio;
pub use ht_memsim as memsim;
pub use ht_patch as patch;
pub use ht_shadow as shadow;
pub use ht_simprog as simprog;
pub use ht_telemetry as telemetry;
pub use ht_vulnapps as vulnapps;
