//! Deterministic RNG, configuration, and the `proptest!` macro.

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Resolves the case count, honoring the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// SplitMix64 — small, fast, and more than random enough for fuzzing.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a test name and case index (fully deterministic).
    pub fn for_test(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Prints the failing case index if the test body panics, so deterministic
/// replay is a matter of reading the seed out of the failure message.
pub struct CaseGuard {
    /// Test name.
    pub name: &'static str,
    /// Case index.
    pub case: u64,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: test `{}` failed at deterministic case #{}",
                self.name, self.case
            );
        }
    }
}

/// `assert!` that reads like proptest's.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` that reads like proptest's.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running `body` against deterministically
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __strat = ($($strat,)+);
            for __case in 0..__cfg.resolved_cases() as u64 {
                let __guard = $crate::test_runner::CaseGuard {
                    name: stringify!($name),
                    case: __case,
                };
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name), __case);
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                $body
                drop(__guard);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
