//! A minimal, dependency-free property-testing harness exposing the subset of
//! the `proptest` crate API this workspace uses.
//!
//! Semantics: each `proptest!` test runs its body against `cases`
//! deterministically generated inputs (seeded from the test name, so runs are
//! reproducible). There is no shrinking; on failure the case index is printed
//! so the failure can be re-derived.

pub mod strategy;
pub mod test_runner;

/// Value-generation strategies for `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy for an arbitrary `bool` (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 10u64..20) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..20).contains(&y), "y = {}", y);
        }

        #[test]
        fn maps_apply(e in arb_even()) {
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn oneof_and_collections(
            v in crate::collection::vec(prop_oneof![0u64..5, 100u64..105], 1..30),
            b in crate::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            prop_assert!(v.iter().all(|&x| x < 5 || (100..105).contains(&x)));
            let _ = b;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_test("seeded", 7);
        let mut b = crate::test_runner::TestRng::for_test("seeded", 7);
        let s = (any::<u64>(), 1u16..2000);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
