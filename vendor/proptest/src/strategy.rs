//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    };
}

tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// Uniform choice among boxed alternative strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// A union over `arms`; each draw picks one arm uniformly.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }

    /// Boxes one arm (used by the `prop_oneof!` macro for type erasure).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = V>>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Uniform choice among listed strategies, all yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::boxed($arm)),+
        ])
    };
}
