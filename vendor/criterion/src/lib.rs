//! A minimal, dependency-free benchmark harness exposing the subset of the
//! `criterion` crate API this workspace uses.
//!
//! Each benchmark adaptively picks an iteration count targeting a fixed
//! per-sample wall time, then reports the mean time per iteration. Output is
//! one line per benchmark: `group/id ... <time> per iter (<n> iters)`.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Wall time each measured sample aims for.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Identifies one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendered via `Display`.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _c: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finishes the group (reporting happens eagerly; this is a no-op).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.per_iter();
        let mut line = format!(
            "{}/{:<32} {:>12} per iter ({} iters)",
            self.name,
            id,
            format_duration(per_iter),
            b.iters
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if per_iter > Duration::ZERO && count > 0 {
                let rate = count as f64 / per_iter.as_secs_f64();
                line.push_str(&format!("  [{rate:.0} {unit}/s]"));
            }
        }
        println!("{line}");
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` over an adaptively chosen iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and size the sample to the time budget.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total += t1.elapsed();
        self.iters += iters;
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.total / self.iters as u32
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        group.bench_with_input(BenchmarkId::new("sq", 7usize), &7usize, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
