//! Minimal libc surface for this workspace, bound directly against the
//! platform C library. Only the symbols the hardened allocator uses are
//! declared; constants are the Linux values (the only supported target).
#![allow(non_camel_case_types)]

/// Opaque C `void`.
pub type c_void = core::ffi::c_void;
/// C `int`.
pub type c_int = i32;
/// C `size_t`.
pub type size_t = usize;
/// C `off_t` (Linux LP64).
pub type off_t = i64;

/// Pages may be read.
pub const PROT_READ: c_int = 1;
/// Pages may be written.
pub const PROT_WRITE: c_int = 2;
/// Pages may not be accessed.
pub const PROT_NONE: c_int = 0;
/// Private copy-on-write mapping.
pub const MAP_PRIVATE: c_int = 0x0002;
/// Mapping is not backed by any file.
pub const MAP_ANONYMOUS: c_int = 0x0020;
/// `mmap` failure sentinel.
pub const MAP_FAILED: *mut c_void = !0usize as *mut c_void;

extern "C" {
    /// Maps pages of memory.
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    /// Unmaps pages of memory.
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    /// Changes page protections.
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_round_trip() {
        unsafe {
            let p = mmap(
                core::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 0xAB;
            assert_eq!(*(p as *mut u8), 0xAB);
            assert_eq!(mprotect(p, 4096, PROT_NONE), 0);
            assert_eq!(munmap(p, 4096), 0);
        }
    }
}
