//! The online deferred-free FIFO (paper Section VI, "Handling use after
//! free").
//!
//! Unlike the offline analyzer, which quarantines *every* freed block, the
//! online defense quarantines only buffers patched as UAF-vulnerable — so
//! with the same quota each block stays quarantined far longer, raising the
//! bar for reuse-based exploitation.

use ht_memsim::Addr;
use std::collections::VecDeque;

/// One quarantined block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedBlock {
    /// The inner-allocator pointer to eventually free.
    pub inner_ptr: Addr,
    /// User size (for quota accounting).
    pub size: u64,
}

/// FIFO of deferred frees with a byte quota.
#[derive(Debug, Clone)]
pub struct Quarantine {
    queue: VecDeque<QuarantinedBlock>,
    bytes: u64,
    quota: u64,
    /// Total blocks ever evicted (handed back to the inner allocator).
    evictions: u64,
}

impl Quarantine {
    /// A quarantine holding at most `quota` bytes.
    pub fn new(quota: u64) -> Self {
        Self {
            queue: VecDeque::new(),
            bytes: 0,
            quota,
            evictions: 0,
        }
    }

    /// Defers a block. Returns the blocks evicted to stay within quota
    /// (oldest first) — the caller must release them to the inner allocator.
    #[must_use]
    pub fn push(&mut self, block: QuarantinedBlock) -> Vec<QuarantinedBlock> {
        self.queue.push_back(block);
        self.bytes += block.size;
        let mut evicted = Vec::new();
        while self.bytes > self.quota {
            let Some(b) = self.queue.pop_front() else {
                break;
            };
            self.bytes -= b.size;
            self.evictions += 1;
            evicted.push(b);
        }
        evicted
    }

    /// Whether `inner_ptr` is currently quarantined.
    pub fn contains(&self, inner_ptr: Addr) -> bool {
        self.queue.iter().any(|b| b.inner_ptr == inner_ptr)
    }

    /// Bytes currently deferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Blocks currently deferred.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the quarantine is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The byte quota.
    pub fn quota(&self) -> u64 {
        self.quota
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(p: Addr, size: u64) -> QuarantinedBlock {
        QuarantinedBlock { inner_ptr: p, size }
    }

    #[test]
    fn holds_blocks_within_quota() {
        let mut q = Quarantine::new(100);
        assert!(q.push(blk(0x10, 40)).is_empty());
        assert!(q.push(blk(0x20, 40)).is_empty());
        assert_eq!(q.bytes(), 80);
        assert_eq!(q.len(), 2);
        assert!(q.contains(0x10) && q.contains(0x20));
    }

    #[test]
    fn evicts_fifo_when_over_quota() {
        let mut q = Quarantine::new(100);
        let _ = q.push(blk(0x10, 60));
        let evicted = q.push(blk(0x20, 60));
        assert_eq!(evicted, vec![blk(0x10, 60)], "oldest goes first");
        assert!(!q.contains(0x10));
        assert!(q.contains(0x20));
        assert_eq!(q.evictions(), 1);
        assert_eq!(q.bytes(), 60);
    }

    #[test]
    fn oversized_block_passes_through() {
        let mut q = Quarantine::new(100);
        let evicted = q.push(blk(0x30, 500));
        assert_eq!(evicted, vec![blk(0x30, 500)], "cannot be held at all");
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
    }

    #[test]
    fn multi_eviction_cascade() {
        let mut q = Quarantine::new(100);
        let _ = q.push(blk(1, 30));
        let _ = q.push(blk(2, 30));
        let _ = q.push(blk(3, 30));
        let evicted = q.push(blk(4, 90));
        assert_eq!(evicted.len(), 3, "all small blocks evicted");
        assert!(q.contains(4));
        assert_eq!(q.quota(), 100);
    }
}
