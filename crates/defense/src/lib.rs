//! The online defense generator (paper Section VI).
//!
//! A shared library in the paper, a [`HeapBackend`] here: every allocation
//! call is intercepted; the `(FUN, CCID)` key is probed in the frozen
//! [`ht_patch::PatchTable`] in O(1); *only* buffers that hit receive
//! defenses:
//!
//! * **Overflow** → a guard page is appended right after the buffer
//!   ([`layout`] Structures 2/4); the first out-of-bounds contiguous access
//!   takes a fault instead of corrupting or leaking adjacent memory.
//! * **Use after free** → on `free`, the block enters a FIFO
//!   [`quarantine`] instead of the allocator's free list, deferring reuse.
//! * **Uninitialized read** → the buffer is zero-filled before being
//!   returned.
//!
//! The defense maintains its own metadata word per buffer ([`meta`]) so it
//! needs nothing from the underlying allocator — the paper's
//! "no dependency on specific heap allocators" property (exercised against
//! two different allocators in the tests).
//!
//! [`HeapBackend`]: ht_simprog::HeapBackend
//!
//! # Example
//!
//! ```
//! use ht_patch::{AllocFn, Patch, PatchTable, VulnFlags};
//! use ht_defense::{DefendedBackend, DefenseConfig};
//! use ht_simprog::{AllocRequest, HeapBackend};
//! use ht_encoding::Ccid;
//! use ht_callgraph::FuncId;
//!
//! let table = PatchTable::from_patches([
//!     Patch::new(AllocFn::Malloc, 0x42, VulnFlags::OVERFLOW),
//! ]);
//! let mut d = DefendedBackend::new(DefenseConfig::with_table(table));
//! let req = AllocRequest {
//!     fun: AllocFn::Malloc, size: 100, align: 16,
//!     ccid: Ccid(0x42), target: FuncId(0), old_ptr: None,
//! };
//! let p = d.alloc(&req).unwrap();
//! assert!(d.write(p, 100, 0xAA).is_ok());       // in bounds: fine
//! assert!(!d.write(p, 5000, 0xAA).is_ok());     // overflow: guard page trap
//! ```

pub mod interpose;
pub mod layout;
pub mod meta;
pub mod quarantine;

pub use interpose::{DefendedBackend, DefenseConfig, DefenseStats};
pub use layout::{BufferStructure, Layout};
pub use meta::MetaWord;
pub use quarantine::Quarantine;
