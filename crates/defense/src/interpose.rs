//! Allocation interposition: the online defense as a [`HeapBackend`].

use crate::layout::{BufferStructure, Layout};
use crate::meta::{MetaWord, META_SIZE};
use crate::quarantine::{Quarantine, QuarantinedBlock};
use ht_memsim::{
    Addr, AddressSpace, AllocStats, BaseAllocator, FreeListAllocator, Perm, SpaceStats, PAGE_SIZE,
};
use ht_patch::{AllocFn, PatchTable, VulnFlags};
use ht_simprog::{AccessOutcome, AllocRequest, HeapBackend, ReadResult, Sink, StopCause};
use ht_telemetry::{
    AttackReport, Event, EventKind, EventRing, PatchCounterRow, TelemetryConfig, TelemetrySnapshot,
    NO_SLOT,
};
use std::collections::HashMap;

/// Online-defense configuration.
#[derive(Debug, Clone)]
pub struct DefenseConfig {
    /// The frozen patch table loaded from the configuration file.
    pub table: PatchTable,
    /// Maintain the per-buffer metadata word. Disabling this yields the
    /// paper's "interposition only" configuration (Fig. 8's 1.9% bar) and
    /// requires an empty table.
    pub maintain_metadata: bool,
    /// Byte quota of the deferred-free FIFO.
    pub quarantine_quota: u64,
    /// Ablation: append a guard page to *every* buffer regardless of the
    /// table — the prohibitively expensive policy HeapTherapy+'s targeting
    /// avoids (paper Section VI).
    pub guard_all: bool,
    /// Attack telemetry (paper Section VII's diagnosis report). Disabled by
    /// default: a disabled backend allocates no telemetry state and the hot
    /// path pays nothing beyond one `Option` check on defended branches.
    pub telemetry: TelemetryConfig,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        Self {
            table: PatchTable::new(),
            maintain_metadata: true,
            quarantine_quota: 2 * 1024 * 1024 * 1024,
            guard_all: false,
            telemetry: TelemetryConfig::disabled(),
        }
    }
}

impl DefenseConfig {
    /// Full defenses driven by `table`.
    pub fn with_table(table: PatchTable) -> Self {
        Self {
            table,
            ..Self::default()
        }
    }

    /// The interposition-only configuration: calls are intercepted and
    /// forwarded, nothing else (paper Fig. 8, "interposition" series).
    pub fn interpose_only() -> Self {
        Self {
            maintain_metadata: false,
            ..Self::default()
        }
    }
}

/// Counters the defense maintains (feed Fig. 8 and the ablations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefenseStats {
    /// Allocation-family calls intercepted.
    pub interposed_allocs: u64,
    /// `free` calls intercepted.
    pub interposed_frees: u64,
    /// Patch-table probes performed.
    pub table_lookups: u64,
    /// Probes that hit (vulnerable buffers recognized).
    pub table_hits: u64,
    /// Guard pages installed.
    pub guard_pages: u64,
    /// Bytes zero-filled for uninitialized-read defenses.
    pub zero_fill_bytes: u64,
    /// Blocks pushed into the deferred-free FIFO.
    pub quarantined_blocks: u64,
    /// Accesses stopped by a protection fault (attacks blocked).
    pub blocked_accesses: u64,
}

/// Telemetry state of a defended backend. Allocated only when the
/// configuration enables telemetry, so the disabled mode carries no state.
///
/// The sim reuses the allocator's lock-free [`EventRing`] (identical
/// overflow-and-drop semantics) even though the interpreter is
/// single-threaded; counters and once-bits are plain vectors keyed by
/// [`PatchTable::slot_index`] — the dense position of a patch in the sorted
/// entry list.
#[derive(Debug)]
struct Telemetry {
    ring: Box<EventRing>,
    /// `(hits, bytes)` per patch-table slot.
    per_patch: Vec<(u64, u64)>,
    /// Once-bit mask per slot: which `T` bits already filed a report.
    reported: Vec<u8>,
    /// Attack reports in first-activation order.
    reports: Vec<AttackReport>,
    /// Live patched user pointers → slot (free-path attribution).
    live: HashMap<Addr, u32>,
    /// Quarantined inner pointers → slot (eviction attribution).
    deferred: HashMap<Addr, u32>,
}

impl Telemetry {
    fn new(patches: usize) -> Self {
        Self {
            ring: Box::new(EventRing::new()),
            per_patch: vec![(0, 0); patches],
            reported: vec![0; patches],
            reports: Vec::new(),
            live: HashMap::new(),
            deferred: HashMap::new(),
        }
    }

    /// Files the one-time attack report for `(slot, t)` if this is the
    /// first activation; later activations of the same pair are silent.
    fn report_once(&mut self, slot: u32, t: VulnFlags, fun: AllocFn, ccid: u64, size: u64) {
        let s = slot as usize;
        if self.reported[s] & t.bits() != 0 {
            return;
        }
        self.reported[s] |= t.bits();
        self.ring.push(Event::patched(
            EventKind::AttackReported,
            fun,
            t,
            slot,
            ccid,
            size,
        ));
        self.reports.push(AttackReport {
            fun,
            ccid,
            vuln: t,
            slot,
            size,
            call_chain: Vec::new(),
        });
    }
}

/// The online defense generator over an arbitrary inner allocator.
///
/// All heap traffic flows through this backend; buffers whose
/// `(FUN, CCID)` hits the patch table are enhanced per paper Section VI,
/// everything else pays one hash probe plus one metadata word.
#[derive(Debug)]
pub struct DefendedBackend<A: BaseAllocator = FreeListAllocator> {
    space: AddressSpace,
    inner: A,
    cfg: DefenseConfig,
    quarantine: Quarantine,
    stats: DefenseStats,
    telemetry: Option<Telemetry>,
}

impl DefendedBackend<FreeListAllocator> {
    /// A defended backend over the free-list allocator.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` disables metadata but carries patches — the defenses
    /// cannot be applied without per-buffer metadata.
    pub fn new(cfg: DefenseConfig) -> Self {
        Self::with_allocator(FreeListAllocator::new(), cfg)
    }
}

impl<A: BaseAllocator> DefendedBackend<A> {
    /// A defended backend over a caller-chosen inner allocator —
    /// HeapTherapy+ is allocator-agnostic.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` disables metadata but carries patches.
    pub fn with_allocator(inner: A, cfg: DefenseConfig) -> Self {
        assert!(
            cfg.maintain_metadata || (cfg.table.is_empty() && !cfg.guard_all),
            "defenses require metadata maintenance"
        );
        let quota = cfg.quarantine_quota;
        let telemetry = cfg
            .telemetry
            .is_enabled()
            .then(|| Telemetry::new(cfg.table.len()));
        Self {
            space: AddressSpace::new(),
            inner,
            cfg,
            quarantine: Quarantine::new(quota),
            stats: DefenseStats::default(),
            telemetry,
        }
    }

    /// Defense counters.
    pub fn stats(&self) -> DefenseStats {
        self.stats
    }

    /// Quarantine state (for tests and the quota ablation).
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// The simulated address space (RSS measurements).
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    fn misuse(e: impl std::fmt::Display) -> StopCause {
        StopCause::HeapMisuse(e.to_string())
    }

    /// The vulnerability bits for an allocation about to happen.
    fn probe(&mut self, fun: AllocFn, ccid: u64) -> VulnFlags {
        self.stats.table_lookups += 1;
        let mut vuln = self.cfg.table.lookup(fun, ccid).unwrap_or(VulnFlags::NONE);
        if !vuln.is_empty() {
            self.stats.table_hits += 1;
        }
        if self.cfg.guard_all {
            vuln |= VulnFlags::OVERFLOW;
        }
        vuln
    }

    /// The `(FUN, CCID)` identity of patch-table slot `slot`, or a
    /// placeholder for unattributed events (`guard_all` injections).
    fn patch_identity(table: &PatchTable, slot: u32) -> (AllocFn, u64) {
        if slot == NO_SLOT {
            return (AllocFn::Malloc, 0);
        }
        table
            .entry(slot as usize)
            .map_or((AllocFn::Malloc, 0), |(f, c, _)| (f, c))
    }

    /// Records telemetry for one successful defended allocation.
    fn note_alloc(&mut self, fun: AllocFn, ccid: u64, size: u64, vuln: VulnFlags, user: Addr) {
        let Some(tel) = &mut self.telemetry else {
            return;
        };
        if vuln.is_empty() {
            return;
        }
        let slot = self
            .cfg
            .table
            .slot_index(fun, ccid)
            .map_or(NO_SLOT, |s| s as u32);
        if slot != NO_SLOT {
            let c = &mut tel.per_patch[slot as usize];
            c.0 += 1;
            c.1 += size;
            tel.ring.push(Event::patched(
                EventKind::PatchHit,
                fun,
                vuln,
                slot,
                ccid,
                size,
            ));
            // Live-pointer attribution for the free path.
            tel.live.insert(user, slot);
        }
        for (t, kind) in [
            (VulnFlags::OVERFLOW, EventKind::GuardInstall),
            (VulnFlags::UNINIT_READ, EventKind::ZeroInit),
        ] {
            if vuln.contains(t) {
                tel.ring
                    .push(Event::patched(kind, fun, t, slot, ccid, size));
                // Alloc-time defenses count as activations: first one per
                // `(FUN, CCID, T)` files the attack report.
                if slot != NO_SLOT {
                    tel.report_once(slot, t, fun, ccid, size);
                }
            }
        }
    }

    /// Records a deferred free (quarantine entry) of a UAF-patched block.
    fn note_defer(&mut self, user: Addr, pi: Addr, size: u64) {
        let Some(tel) = &mut self.telemetry else {
            return;
        };
        let slot = tel.live.remove(&user).unwrap_or(NO_SLOT);
        tel.deferred.insert(pi, slot);
        let (fun, ccid) = Self::patch_identity(&self.cfg.table, slot);
        tel.ring.push(Event::patched(
            EventKind::QuarantineDefer,
            fun,
            VulnFlags::USE_AFTER_FREE,
            slot,
            ccid,
            size,
        ));
        if slot != NO_SLOT {
            tel.report_once(slot, VulnFlags::USE_AFTER_FREE, fun, ccid, size);
        }
    }

    /// Records a quota eviction out of the quarantine.
    fn note_evict(&mut self, b: &QuarantinedBlock) {
        let Some(tel) = &mut self.telemetry else {
            return;
        };
        let slot = tel.deferred.remove(&b.inner_ptr).unwrap_or(NO_SLOT);
        let (fun, ccid) = Self::patch_identity(&self.cfg.table, slot);
        tel.ring.push(Event::patched(
            EventKind::QuarantineEvict,
            fun,
            VulnFlags::USE_AFTER_FREE,
            slot,
            ccid,
            b.size,
        ));
    }

    /// Records an access stopped at a guard page. The faulting access does
    /// not identify its buffer, so the event is unattributed (the paper's
    /// SIGSEGV handler recovers the context from the fault address; the sim
    /// keeps only the count and the attempted length).
    fn note_trip(&mut self, len: u64) {
        if let Some(tel) = &mut self.telemetry {
            tel.ring.push(Event::unattributed(
                EventKind::GuardTrip,
                AllocFn::Malloc,
                len,
            ));
        }
    }

    /// Drains and returns everything telemetry observed so far, or `None`
    /// when the configuration disabled telemetry. Ring events drain
    /// destructively; per-patch counters and reports are cumulative.
    pub fn telemetry_snapshot(&mut self) -> Option<TelemetrySnapshot> {
        let tel = self.telemetry.as_mut()?;
        let events = tel.ring.drain_vec();
        let table = &self.cfg.table;
        let per_patch = tel
            .per_patch
            .iter()
            .enumerate()
            .filter(|&(_, &(hits, _))| hits > 0)
            .map(|(s, &(hits, bytes))| {
                let (fun, ccid, vuln) = table.entry(s).expect("counter slot within table");
                PatchCounterRow {
                    slot: s,
                    fun,
                    ccid,
                    vuln,
                    hits,
                    bytes,
                }
            })
            .collect();
        Some(TelemetrySnapshot {
            events,
            delivered: tel.ring.delivered(),
            dropped: tel.ring.dropped(),
            per_patch,
            reports: tel.reports.clone(),
        })
    }

    /// Allocates one defended buffer (Structures 1–4).
    fn defended_alloc(
        &mut self,
        fun: AllocFn,
        size: u64,
        align: u64,
        vuln: VulnFlags,
    ) -> Result<Addr, StopCause> {
        let structure = BufferStructure::select(fun, vuln);
        let layout = Layout::plan(structure, size, align);
        let raw = if structure.is_aligned() {
            self.inner
                .memalign(&mut self.space, layout.raw_align, layout.raw_size)
                .map_err(Self::misuse)?
        } else {
            self.inner
                .malloc(&mut self.space, layout.raw_size)
                .map_err(Self::misuse)?
        };
        let user = layout.user_addr(raw);
        let align_log2 = structure
            .is_aligned()
            .then(|| layout.raw_align.trailing_zeros() as u8);
        let meta = if let Some(guard) = layout.guard_addr(user, size) {
            // Zero the slack between the buffer end and the guard page: an
            // overread is stopped *at* the guard, so the bytes before it
            // must not carry stale data.
            self.space
                .fill(user + size, guard - (user + size), 0)
                .map_err(Self::misuse)?;
            // User size lives in the first word of the guard page; write it
            // before the page becomes inaccessible.
            self.space
                .write_u64_raw(guard, size)
                .map_err(Self::misuse)?;
            self.space
                .protect(guard, PAGE_SIZE, Perm::None)
                .map_err(Self::misuse)?;
            self.stats.guard_pages += 1;
            MetaWord::guarded(vuln, guard, align_log2)
        } else {
            MetaWord::unguarded(vuln, size, align_log2)
        };
        self.space
            .write_u64_raw(user - META_SIZE, meta.0)
            .map_err(Self::misuse)?;
        if vuln.contains(VulnFlags::UNINIT_READ) || fun == AllocFn::Calloc {
            self.space.fill(user, size, 0).map_err(Self::misuse)?;
            self.stats.zero_fill_bytes += size;
        }
        Ok(user)
    }

    /// Reads the metadata of a previously defended buffer.
    fn read_meta(&self, user: Addr) -> Result<MetaWord, StopCause> {
        self.space
            .read_u64_raw(user - META_SIZE)
            .map(MetaWord)
            .map_err(Self::misuse)
    }

    /// The user size of a defended buffer.
    fn user_size(&self, user: Addr, meta: MetaWord) -> Result<u64, StopCause> {
        if meta.has_guard() {
            let _ = user;
            self.space
                .read_u64_raw(meta.guard_page())
                .map_err(Self::misuse)
        } else {
            Ok(meta.size())
        }
    }

    /// The free-path of paper Fig. 7.
    fn defended_free(&mut self, user: Addr) -> Result<(), StopCause> {
        let meta = self.read_meta(user)?;
        let size = self.user_size(user, meta)?;
        if meta.has_guard() {
            // (1) make the guard page accessible again so the block can be
            // recycled.
            self.space
                .protect(meta.guard_page(), PAGE_SIZE, Perm::ReadWrite)
                .map_err(Self::misuse)?;
        }
        // (2) recover the inner pointer.
        let pi = Layout::inner_ptr(meta.is_aligned(), meta.alignment(), user);
        // (3) defer or release.
        if meta.vuln().contains(VulnFlags::USE_AFTER_FREE) {
            self.stats.quarantined_blocks += 1;
            self.note_defer(user, pi, size);
            let evicted = self.quarantine.push(QuarantinedBlock {
                inner_ptr: pi,
                size,
            });
            for b in evicted {
                self.note_evict(&b);
                self.inner
                    .free(&mut self.space, b.inner_ptr)
                    .map_err(Self::misuse)?;
            }
            Ok(())
        } else {
            if let Some(tel) = &mut self.telemetry {
                tel.live.remove(&user);
            }
            self.inner.free(&mut self.space, pi).map_err(Self::misuse)
        }
    }
}

impl<A: BaseAllocator> HeapBackend for DefendedBackend<A> {
    fn alloc(&mut self, req: &AllocRequest) -> Result<Addr, StopCause> {
        self.stats.interposed_allocs += 1;
        if !self.cfg.maintain_metadata {
            // Interposition-only: forward untouched.
            let ptr = match (req.fun, req.old_ptr) {
                (AllocFn::Realloc, Some(old)) => self.inner.realloc(&mut self.space, old, req.size),
                (AllocFn::Memalign, _) => self.inner.memalign(&mut self.space, req.align, req.size),
                _ => self.inner.malloc(&mut self.space, req.size),
            }
            .map_err(Self::misuse)?;
            if req.fun == AllocFn::Calloc {
                self.space.fill(ptr, req.size, 0).map_err(Self::misuse)?;
            }
            return Ok(ptr);
        }
        let vuln = self.probe(req.fun, req.ccid.0);
        let user = match (req.fun, req.old_ptr) {
            (AllocFn::Realloc, Some(old)) => {
                // Paper Section V: the buffer's CCID is updated to the
                // realloc-time context — the new buffer is enhanced per the
                // *realloc* patch lookup.
                let old_meta = self.read_meta(old)?;
                let old_size = self.user_size(old, old_meta)?;
                let user = self.defended_alloc(AllocFn::Realloc, req.size, req.align, vuln)?;
                let keep = old_size.min(req.size);
                if keep > 0 {
                    self.space.copy_raw(old, user, keep).map_err(Self::misuse)?;
                }
                self.stats.interposed_frees += 1;
                self.defended_free(old)?;
                user
            }
            _ => self.defended_alloc(req.fun, req.size, req.align, vuln)?,
        };
        self.note_alloc(req.fun, req.ccid.0, req.size, vuln, user);
        Ok(user)
    }

    fn free(&mut self, ptr: Addr) -> AccessOutcome {
        self.stats.interposed_frees += 1;
        if !self.cfg.maintain_metadata {
            return match self.inner.free(&mut self.space, ptr) {
                Ok(()) => AccessOutcome::Ok,
                Err(e) => AccessOutcome::Stop(Self::misuse(e)),
            };
        }
        match self.defended_free(ptr) {
            Ok(()) => AccessOutcome::Ok,
            Err(c) => AccessOutcome::Stop(c),
        }
    }

    fn write(&mut self, addr: Addr, len: u64, byte: u8) -> AccessOutcome {
        match self.space.fill(addr, len, byte) {
            Ok(()) => AccessOutcome::Ok,
            Err(f) => {
                self.stats.blocked_accesses += 1;
                self.note_trip(len);
                AccessOutcome::Stop(StopCause::Segfault {
                    addr: f.addr,
                    write: true,
                })
            }
        }
    }

    fn read(&mut self, addr: Addr, len: u64, _sink: Sink) -> ReadResult {
        let mut data = vec![0u8; len as usize];
        match self.space.read(addr, &mut data) {
            Ok(()) => ReadResult {
                data,
                outcome: AccessOutcome::Ok,
            },
            Err(f) => {
                self.stats.blocked_accesses += 1;
                self.note_trip(len);
                data.truncate(f.completed as usize);
                ReadResult {
                    data,
                    outcome: AccessOutcome::Stop(StopCause::Segfault {
                        addr: f.addr,
                        write: false,
                    }),
                }
            }
        }
    }

    fn copy(&mut self, src: Addr, dst: Addr, len: u64) -> AccessOutcome {
        let mut buf = vec![0u8; len as usize];
        if let Err(f) = self.space.read(src, &mut buf) {
            self.stats.blocked_accesses += 1;
            self.note_trip(len);
            return AccessOutcome::Stop(StopCause::Segfault {
                addr: f.addr,
                write: false,
            });
        }
        match self.space.write(dst, &buf) {
            Ok(()) => AccessOutcome::Ok,
            Err(f) => {
                self.stats.blocked_accesses += 1;
                self.note_trip(len);
                AccessOutcome::Stop(StopCause::Segfault {
                    addr: f.addr,
                    write: true,
                })
            }
        }
    }

    fn mem_stats(&self) -> Option<(SpaceStats, AllocStats)> {
        Some((self.space.stats(), self.inner.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_callgraph::FuncId;
    use ht_encoding::Ccid;
    use ht_memsim::BumpAllocator;
    use ht_patch::Patch;

    fn req(fun: AllocFn, size: u64, ccid: u64) -> AllocRequest {
        AllocRequest {
            fun,
            size,
            align: 16,
            ccid: Ccid(ccid),
            target: FuncId(0),
            old_ptr: None,
        }
    }

    fn table(fun: AllocFn, ccid: u64, vuln: VulnFlags) -> PatchTable {
        PatchTable::from_patches([Patch::new(fun, ccid, vuln)])
    }

    const VULN: u64 = 0xBAD;
    const SAFE: u64 = 0x600D;

    #[test]
    fn unpatched_buffers_behave_normally() {
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Malloc,
            VULN,
            VulnFlags::OVERFLOW,
        )));
        let p = d.alloc(&req(AllocFn::Malloc, 64, SAFE)).unwrap();
        assert!(d.write(p, 64, 0xAA).is_ok());
        let r = d.read(p, 64, Sink::Discard);
        assert_eq!(r.data, vec![0xAA; 64]);
        assert!(d.free(p).is_ok());
        let st = d.stats();
        assert_eq!(st.guard_pages, 0);
        assert_eq!(st.table_lookups, 1);
        assert_eq!(st.table_hits, 0);
    }

    #[test]
    fn overflow_patch_blocks_overwrite_at_guard() {
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Malloc,
            VULN,
            VulnFlags::OVERFLOW,
        )));
        let p = d.alloc(&req(AllocFn::Malloc, 100, VULN)).unwrap();
        assert_eq!(d.stats().guard_pages, 1);
        assert!(d.write(p, 100, 0x41).is_ok(), "in-bounds fine");
        // A long contiguous overflow is stopped at the page boundary.
        match d.write(p, 100_000, 0x41) {
            AccessOutcome::Stop(StopCause::Segfault { addr, write: true }) => {
                assert_eq!(addr % PAGE_SIZE, 0, "fault exactly at the guard page");
                assert!(addr >= p + 100 && addr - (p + 100) < PAGE_SIZE);
            }
            other => panic!("expected guard fault, got {other:?}"),
        }
        assert_eq!(d.stats().blocked_accesses, 1);
    }

    #[test]
    fn overflow_patch_blocks_overread() {
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Malloc,
            VULN,
            VulnFlags::OVERFLOW,
        )));
        let p = d.alloc(&req(AllocFn::Malloc, 100, VULN)).unwrap();
        d.write(p, 100, 0x41);
        let r = d.read(p, 100_000, Sink::Leak);
        assert!(!r.outcome.is_ok(), "overread blocked");
        assert!(
            r.data.len() < 100 + PAGE_SIZE as usize,
            "leak capped at guard"
        );
    }

    #[test]
    fn uaf_patch_defers_reuse() {
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Malloc,
            VULN,
            VulnFlags::USE_AFTER_FREE,
        )));
        let p = d.alloc(&req(AllocFn::Malloc, 64, VULN)).unwrap();
        d.write(p, 64, 0x01);
        assert!(d.free(p).is_ok());
        assert_eq!(d.quarantine().len(), 1);
        // Attacker's same-size allocation must not land on the block.
        let q = d
            .alloc(&req(AllocFn::Malloc, 64 + META_SIZE, SAFE))
            .unwrap();
        assert_ne!(q, p);
        d.write(q, 64, 0x66);
        // Dangling read sees stale victim data, not attacker bytes.
        let r = d.read(p, 8, Sink::Addr);
        assert_eq!(r.data, vec![0x01; 8], "no hijack: stale data only");
    }

    #[test]
    fn unpatched_free_is_promptly_reused() {
        // Contrast with the UAF test: without a patch the inner allocator's
        // LIFO behaviour shows through (the defense adds nothing).
        let mut d = DefendedBackend::new(DefenseConfig::default());
        let p = d.alloc(&req(AllocFn::Malloc, 64, SAFE)).unwrap();
        d.free(p);
        let q = d.alloc(&req(AllocFn::Malloc, 64, SAFE)).unwrap();
        assert_eq!(q, p, "same raw block recycled immediately");
    }

    #[test]
    fn ur_patch_zero_fills() {
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Malloc,
            VULN,
            VulnFlags::UNINIT_READ,
        )));
        // Pollute two blocks through an unpatched context and free both.
        let warm1 = d.alloc(&req(AllocFn::Malloc, 64, SAFE)).unwrap();
        d.write(warm1, 64, 0xEE);
        let warm2 = d.alloc(&req(AllocFn::Malloc, 64, SAFE)).unwrap();
        d.write(warm2, 64, 0xEE);
        d.free(warm1);
        d.free(warm2);
        // Patched context reuses the LIFO head (warm2): must come back zeroed.
        let q = d.alloc(&req(AllocFn::Malloc, 64, VULN)).unwrap();
        let r = d.read(q, 64, Sink::Leak);
        assert_eq!(r.data, vec![0u8; 64], "nothing but zeros leaks");
        assert_eq!(d.stats().zero_fill_bytes, 64);
        // An unpatched sibling (reusing warm1) still sees stale bytes —
        // the defense is targeted, not global.
        let s = d.alloc(&req(AllocFn::Malloc, 64, SAFE)).unwrap();
        let r = d.read(s, 64, Sink::Leak);
        assert_eq!(r.data, vec![0xEE; 64], "unpatched context untouched");
    }

    #[test]
    fn memalign_patched_gets_structure_4() {
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Memalign,
            VULN,
            VulnFlags::OVERFLOW,
        )));
        let mut r = req(AllocFn::Memalign, 1000, VULN);
        r.align = 256;
        let p = d.alloc(&r).unwrap();
        assert_eq!(p % 256, 0, "alignment honored");
        assert!(d.write(p, 1000, 1).is_ok());
        assert!(!d.write(p, 50_000, 1).is_ok(), "guard present");
        assert!(d.free(p).is_ok());
    }

    #[test]
    fn free_restores_guard_page_for_reuse() {
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Malloc,
            VULN,
            VulnFlags::OVERFLOW,
        )));
        let p = d.alloc(&req(AllocFn::Malloc, 100, VULN)).unwrap();
        assert!(d.free(p).is_ok());
        // Reallocate through an unpatched context of a size that recycles
        // the same class block; writing across the former guard's location
        // must now succeed.
        let q = d
            .alloc(&req(AllocFn::Malloc, 2 * PAGE_SIZE + 100, SAFE))
            .unwrap();
        assert!(d.write(q, 2 * PAGE_SIZE + 100, 3).is_ok());
    }

    #[test]
    fn realloc_reprobes_under_new_context() {
        // The realloc-time CCID decides the defense (paper Section V).
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Realloc,
            VULN,
            VulnFlags::OVERFLOW,
        )));
        let p = d.alloc(&req(AllocFn::Malloc, 32, SAFE)).unwrap();
        d.write(p, 32, 0x22);
        let mut r = req(AllocFn::Realloc, 64, VULN);
        r.old_ptr = Some(p);
        let q = d.alloc(&r).unwrap();
        // Content preserved.
        let got = d.read(q, 32, Sink::Discard);
        assert_eq!(got.data, vec![0x22; 32]);
        // New buffer is guarded.
        assert!(!d.write(q, 10_000, 1).is_ok());
    }

    #[test]
    fn realloc_shrink_keeps_prefix() {
        let mut d = DefendedBackend::new(DefenseConfig::default());
        let p = d.alloc(&req(AllocFn::Malloc, 100, SAFE)).unwrap();
        d.write(p, 100, 0x77);
        let mut r = req(AllocFn::Realloc, 10, SAFE);
        r.old_ptr = Some(p);
        let q = d.alloc(&r).unwrap();
        let got = d.read(q, 10, Sink::Discard);
        assert_eq!(got.data, vec![0x77; 10]);
    }

    #[test]
    fn quarantine_quota_eviction_releases_to_inner() {
        let mut cfg =
            DefenseConfig::with_table(table(AllocFn::Malloc, VULN, VulnFlags::USE_AFTER_FREE));
        cfg.quarantine_quota = 100;
        let mut d = DefendedBackend::new(cfg);
        let p1 = d.alloc(&req(AllocFn::Malloc, 80, VULN)).unwrap();
        let p2 = d.alloc(&req(AllocFn::Malloc, 80, VULN)).unwrap();
        d.free(p1);
        d.free(p2); // evicts p1's block
        assert_eq!(d.quarantine().len(), 1);
        assert_eq!(d.quarantine().evictions(), 1);
        assert_eq!(d.stats().quarantined_blocks, 2);
    }

    #[test]
    fn multi_vulnerability_patch_applies_all_defenses() {
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Malloc,
            VULN,
            VulnFlags::ALL,
        )));
        // Pre-pollute the size class.
        let warm = d.alloc(&req(AllocFn::Malloc, 6000, SAFE)).unwrap();
        d.write(warm, 6000, 0xEE);
        d.free(warm);
        let p = d.alloc(&req(AllocFn::Malloc, 100, VULN)).unwrap();
        // UR: zeroed.
        let r = d.read(p, 100, Sink::Leak);
        assert_eq!(r.data, vec![0u8; 100]);
        // OF: guarded.
        assert!(!d.write(p, 9_000, 1).is_ok());
        // UAF: deferred.
        d.free(p);
        assert_eq!(d.quarantine().len(), 1);
    }

    #[test]
    fn interpose_only_forwards_everything() {
        let mut d = DefendedBackend::new(DefenseConfig::interpose_only());
        let p = d.alloc(&req(AllocFn::Malloc, 64, VULN)).unwrap();
        d.write(p, 64, 1);
        assert!(d.free(p).is_ok());
        let st = d.stats();
        assert_eq!(st.interposed_allocs, 1);
        assert_eq!(st.interposed_frees, 1);
        assert_eq!(st.table_lookups, 0, "no probe without metadata");
        // calloc zeroes even here.
        let c = d.alloc(&req(AllocFn::Calloc, 32, SAFE)).unwrap();
        let r = d.read(c, 32, Sink::Discard);
        assert_eq!(r.data, vec![0u8; 32]);
    }

    #[test]
    #[should_panic(expected = "require metadata")]
    fn interpose_only_with_patches_panics() {
        let mut cfg = DefenseConfig::interpose_only();
        cfg.table = table(AllocFn::Malloc, 1, VulnFlags::OVERFLOW);
        let _ = DefendedBackend::new(cfg);
    }

    #[test]
    fn allocator_independence_bump_allocator() {
        // The same defenses over a completely different inner allocator.
        let mut d = DefendedBackend::with_allocator(
            BumpAllocator::new(),
            DefenseConfig::with_table(table(AllocFn::Malloc, VULN, VulnFlags::OVERFLOW)),
        );
        let p = d.alloc(&req(AllocFn::Malloc, 100, VULN)).unwrap();
        assert!(d.write(p, 100, 1).is_ok());
        assert!(!d.write(p, 50_000, 1).is_ok(), "guard works over bump too");
        assert!(d.free(p).is_ok());
    }

    #[test]
    fn guard_all_ablation_guards_everything() {
        let cfg = DefenseConfig {
            guard_all: true,
            ..DefenseConfig::default()
        };
        let mut d = DefendedBackend::new(cfg);
        for i in 0..10u64 {
            let p = d.alloc(&req(AllocFn::Malloc, 64, i)).unwrap();
            assert!(!d.write(p, 10_000, 1).is_ok(), "every buffer guarded");
            d.free(p);
        }
        assert_eq!(d.stats().guard_pages, 10);
    }

    #[test]
    fn calloc_still_zeroes_under_defense() {
        let mut d = DefendedBackend::new(DefenseConfig::default());
        let p = d.alloc(&req(AllocFn::Malloc, 64, SAFE)).unwrap();
        d.write(p, 64, 0xFF);
        d.free(p);
        let q = d.alloc(&req(AllocFn::Calloc, 64, SAFE)).unwrap();
        let r = d.read(q, 64, Sink::Discard);
        assert_eq!(r.data, vec![0u8; 64]);
    }

    #[test]
    fn copy_respects_guard_pages() {
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Malloc,
            VULN,
            VulnFlags::OVERFLOW,
        )));
        let src = d.alloc(&req(AllocFn::Malloc, 8192, SAFE)).unwrap();
        d.write(src, 8192, 0x11);
        let dst = d.alloc(&req(AllocFn::Malloc, 100, VULN)).unwrap();
        // In-bounds memcpy is fine.
        assert!(d.copy(src, dst, 100).is_ok());
        // An oversized memcpy into the guarded buffer traps at the guard.
        match d.copy(src, dst, 8192) {
            AccessOutcome::Stop(StopCause::Segfault { addr, write: true }) => {
                assert_eq!(addr % PAGE_SIZE, 0, "stopped at the guard page");
            }
            other => panic!("expected guard fault, got {other:?}"),
        }
        assert!(d.stats().blocked_accesses >= 1);
        // Reading out of the guarded buffer as a memcpy source is capped too.
        let r = d.copy(dst, src, 8192);
        assert!(!r.is_ok(), "overread via memcpy blocked");
    }

    fn telemetry_cfg(table: PatchTable) -> DefenseConfig {
        DefenseConfig {
            telemetry: TelemetryConfig::enabled(),
            ..DefenseConfig::with_table(table)
        }
    }

    #[test]
    fn telemetry_disabled_by_default_and_stateless() {
        let mut d = DefendedBackend::new(DefenseConfig::with_table(table(
            AllocFn::Malloc,
            VULN,
            VulnFlags::OVERFLOW,
        )));
        let p = d.alloc(&req(AllocFn::Malloc, 64, VULN)).unwrap();
        assert!(!d.write(p, 10_000, 1).is_ok());
        assert!(
            d.telemetry_snapshot().is_none(),
            "disabled telemetry has no snapshot, even after defenses fired"
        );
    }

    #[test]
    fn telemetry_files_one_report_per_t_and_counts_hits() {
        let mut d =
            DefendedBackend::new(telemetry_cfg(table(AllocFn::Malloc, VULN, VulnFlags::ALL)));
        for _ in 0..3 {
            let p = d.alloc(&req(AllocFn::Malloc, 100, VULN)).unwrap();
            d.free(p);
        }
        let snap = d.telemetry_snapshot().unwrap();
        // Exactly one report per (FUN, CCID, T) despite three activations.
        assert_eq!(
            snap.reports.len(),
            3,
            "one report per T bit: {:?}",
            snap.reports
        );
        for t in [
            VulnFlags::OVERFLOW,
            VulnFlags::USE_AFTER_FREE,
            VulnFlags::UNINIT_READ,
        ] {
            let matching: Vec<_> = snap.reports.iter().filter(|r| r.vuln == t).collect();
            assert_eq!(matching.len(), 1, "exactly one report for {t:?}");
            assert_eq!(matching[0].fun, AllocFn::Malloc);
            assert_eq!(matching[0].ccid, VULN);
            assert_eq!(matching[0].slot, 0);
        }
        // Per-patch counters accumulate every hit.
        assert_eq!(snap.per_patch.len(), 1);
        assert_eq!(snap.per_patch[0].hits, 3);
        assert_eq!(snap.per_patch[0].bytes, 300);
        // Event stream: 3 hits, 3 guard installs, 3 zero-inits, 3 defers,
        // 3 reports (one per T).
        let count = |k: EventKind| snap.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::PatchHit), 3);
        assert_eq!(count(EventKind::GuardInstall), 3);
        assert_eq!(count(EventKind::ZeroInit), 3);
        assert_eq!(count(EventKind::QuarantineDefer), 3);
        assert_eq!(count(EventKind::AttackReported), 3);
        assert_eq!(snap.dropped, 0);
        // A second snapshot drains nothing new but keeps cumulative state.
        let again = d.telemetry_snapshot().unwrap();
        assert!(again.events.is_empty(), "ring drained destructively");
        assert_eq!(again.reports.len(), 3, "reports are cumulative");
        assert_eq!(again.per_patch[0].hits, 3);
    }

    #[test]
    fn telemetry_attributes_guard_trips_and_evictions() {
        let mut cfg = telemetry_cfg(table(AllocFn::Malloc, VULN, VulnFlags::USE_AFTER_FREE));
        cfg.quarantine_quota = 100;
        let mut d = DefendedBackend::new(cfg);
        let p1 = d.alloc(&req(AllocFn::Malloc, 80, VULN)).unwrap();
        let p2 = d.alloc(&req(AllocFn::Malloc, 80, VULN)).unwrap();
        d.free(p1);
        d.free(p2); // quota forces p1's block out
        let snap = d.telemetry_snapshot().unwrap();
        let evicts: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.kind == EventKind::QuarantineEvict)
            .collect();
        assert_eq!(evicts.len(), 1);
        assert_eq!(evicts[0].slot, 0, "eviction resolves back to the patch");
        assert_eq!(evicts[0].ccid, VULN);
        assert_eq!(evicts[0].size, 80);
        // Only the first deferred free files the UAF report.
        assert_eq!(snap.reports.len(), 1);
        assert_eq!(snap.reports[0].vuln, VulnFlags::USE_AFTER_FREE);
    }

    #[test]
    fn telemetry_records_blocked_accesses_as_guard_trips() {
        let mut d = DefendedBackend::new(telemetry_cfg(table(
            AllocFn::Malloc,
            VULN,
            VulnFlags::OVERFLOW,
        )));
        let p = d.alloc(&req(AllocFn::Malloc, 100, VULN)).unwrap();
        assert!(!d.write(p, 50_000, 1).is_ok());
        let r = d.read(p, 50_000, Sink::Leak);
        assert!(!r.outcome.is_ok());
        let snap = d.telemetry_snapshot().unwrap();
        let trips = snap
            .events
            .iter()
            .filter(|e| e.kind == EventKind::GuardTrip)
            .count();
        assert_eq!(trips, 2, "write + read both tripped the guard");
    }

    #[test]
    fn telemetry_does_not_change_defense_behavior() {
        // The same workload with telemetry on and off must produce identical
        // allocation results, stats, and quarantine state (observation only;
        // the cross-crate proptest widens this to random workloads).
        let run = |telemetry: TelemetryConfig| {
            let mut cfg = DefenseConfig::with_table(table(AllocFn::Malloc, VULN, VulnFlags::ALL));
            cfg.telemetry = telemetry;
            cfg.quarantine_quota = 200;
            let mut d = DefendedBackend::new(cfg);
            let mut log = Vec::new();
            for i in 0..20u64 {
                let ccid = if i % 3 == 0 { VULN } else { SAFE };
                let p = d.alloc(&req(AllocFn::Malloc, 64 + i, ccid)).unwrap();
                log.push(p);
                d.write(p, 8, i as u8);
                if i % 2 == 0 {
                    d.free(p);
                }
            }
            (log, d.stats(), d.quarantine().len())
        };
        assert_eq!(
            run(TelemetryConfig::disabled()),
            run(TelemetryConfig::enabled()),
        );
    }

    #[test]
    fn stats_count_interpositions() {
        let mut d = DefendedBackend::new(DefenseConfig::default());
        for i in 0..5u64 {
            let p = d.alloc(&req(AllocFn::Malloc, 32, i)).unwrap();
            d.free(p);
        }
        let st = d.stats();
        assert_eq!(st.interposed_allocs, 5);
        assert_eq!(st.interposed_frees, 5);
        assert_eq!(st.table_lookups, 5);
        assert_eq!(st.table_hits, 0);
    }
}
