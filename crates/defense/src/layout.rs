//! Buffer structure selection and placement math (paper Fig. 6 + Table I).
//!
//! | Structure | aligned | guard page | used for |
//! |-----------|---------|------------|----------|
//! | 1         | no      | no         | unpatched / UAF / UR via `malloc` |
//! | 2         | no      | yes        | overflow patches via `malloc` |
//! | 3         | yes     | no         | unpatched / UAF / UR via `memalign` |
//! | 4         | yes     | yes        | overflow patches via `memalign` |

use crate::meta::META_SIZE;
use ht_memsim::{align_up, Addr, PAGE_SIZE};
use ht_patch::{AllocFn, VulnFlags};

/// The four buffer structures of paper Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferStructure {
    /// `[meta][user]`
    S1,
    /// `[meta][user][pad][guard page]`
    S2,
    /// `[pad][meta][user]` (user is alignment-aligned)
    S3,
    /// `[pad][meta][user][pad][guard page]`
    S4,
}

impl BufferStructure {
    /// Table I: which structure serves a buffer with vulnerability bits
    /// `vuln` allocated through `fun`.
    pub fn select(fun: AllocFn, vuln: VulnFlags) -> Self {
        let aligned = fun == AllocFn::Memalign;
        let guarded = vuln.contains(VulnFlags::OVERFLOW);
        match (aligned, guarded) {
            (false, false) => BufferStructure::S1,
            (false, true) => BufferStructure::S2,
            (true, false) => BufferStructure::S3,
            (true, true) => BufferStructure::S4,
        }
    }

    /// Whether this structure appends a guard page.
    pub fn has_guard(self) -> bool {
        matches!(self, BufferStructure::S2 | BufferStructure::S4)
    }

    /// Whether this structure serves aligned allocations.
    pub fn is_aligned(self) -> bool {
        matches!(self, BufferStructure::S3 | BufferStructure::S4)
    }
}

/// Concrete placement of one defended buffer inside a raw block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// The structure in use.
    pub structure: BufferStructure,
    /// Bytes to request from the inner allocator.
    pub raw_size: u64,
    /// Alignment to request from the inner allocator (1 = plain `malloc`).
    pub raw_align: u64,
}

impl Layout {
    /// Computes the raw request for `size` user bytes.
    ///
    /// `align` must be a power of two ≥ 16 for aligned structures (the
    /// paper's Structure 3/4 place the metadata word inside the leading
    /// padding, so the padding must hold at least one word).
    pub fn plan(structure: BufferStructure, size: u64, align: u64) -> Layout {
        match structure {
            BufferStructure::S1 => Layout {
                structure,
                raw_size: META_SIZE + size,
                raw_align: 1,
            },
            BufferStructure::S2 => Layout {
                structure,
                // meta + user + worst-case pad to the page boundary + guard.
                raw_size: META_SIZE + size + (PAGE_SIZE - 1) + PAGE_SIZE,
                raw_align: 1,
            },
            BufferStructure::S3 => {
                let a = align.max(16);
                Layout {
                    structure,
                    // [pad = align][user]: user = raw + align (paper §VI:
                    // pi = p − A on free).
                    raw_size: a + size,
                    raw_align: a,
                }
            }
            BufferStructure::S4 => {
                let a = align.max(16);
                Layout {
                    structure,
                    raw_size: a + size + (PAGE_SIZE - 1) + PAGE_SIZE,
                    raw_align: a,
                }
            }
        }
    }

    /// The user-buffer address inside a raw block at `raw`.
    pub fn user_addr(&self, raw: Addr) -> Addr {
        match self.structure {
            BufferStructure::S1 | BufferStructure::S2 => raw + META_SIZE,
            BufferStructure::S3 | BufferStructure::S4 => raw + self.raw_align,
        }
    }

    /// The guard-page address for a user buffer of `size` bytes at `user`
    /// (guarded structures only).
    pub fn guard_addr(&self, user: Addr, size: u64) -> Option<Addr> {
        if !self.structure.has_guard() {
            return None;
        }
        Some(align_up(user + size, PAGE_SIZE))
    }

    /// Recovers the raw (inner-allocator) pointer from a user pointer —
    /// the `pi` computation of paper Fig. 7.
    pub fn inner_ptr(aligned: bool, alignment: u64, user: Addr) -> Addr {
        if aligned {
            user - alignment
        } else {
            user - META_SIZE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_structure_selection() {
        use BufferStructure::*;
        // Rows of Table I: every vulnerability combination × plain/aligned.
        let cases = [
            (VulnFlags::NONE, S1, S3),
            (VulnFlags::OVERFLOW, S2, S4),
            (VulnFlags::USE_AFTER_FREE, S1, S3),
            (VulnFlags::UNINIT_READ, S1, S3),
            (VulnFlags::OVERFLOW | VulnFlags::USE_AFTER_FREE, S2, S4),
            (VulnFlags::OVERFLOW | VulnFlags::UNINIT_READ, S2, S4),
            (VulnFlags::USE_AFTER_FREE | VulnFlags::UNINIT_READ, S1, S3),
            (VulnFlags::ALL, S2, S4),
        ];
        for (vuln, plain, aligned) in cases {
            assert_eq!(
                BufferStructure::select(AllocFn::Malloc, vuln),
                plain,
                "{vuln}"
            );
            assert_eq!(
                BufferStructure::select(AllocFn::Calloc, vuln),
                plain,
                "{vuln}"
            );
            assert_eq!(
                BufferStructure::select(AllocFn::Realloc, vuln),
                plain,
                "{vuln}"
            );
            assert_eq!(
                BufferStructure::select(AllocFn::Memalign, vuln),
                aligned,
                "{vuln}"
            );
        }
    }

    #[test]
    fn s1_layout_is_tight() {
        let l = Layout::plan(BufferStructure::S1, 100, 16);
        assert_eq!(l.raw_size, 108);
        assert_eq!(l.user_addr(0x1000), 0x1008);
        assert_eq!(l.guard_addr(0x1008, 100), None);
    }

    #[test]
    fn s2_guard_page_is_page_aligned_and_in_bounds() {
        for size in [1u64, 100, 4088, 4096, 10_000] {
            let l = Layout::plan(BufferStructure::S2, size, 16);
            // Simulate an arbitrary raw placement.
            for raw in [0x10000u64, 0x10008, 0x10ff8] {
                let user = l.user_addr(raw);
                let guard = l.guard_addr(user, size).unwrap();
                assert_eq!(guard % PAGE_SIZE, 0);
                assert!(guard >= user + size, "guard after user buffer");
                assert!(guard - (user + size) < PAGE_SIZE, "pad under one page");
                assert!(
                    guard + PAGE_SIZE <= raw + l.raw_size,
                    "guard inside raw block: size={size} raw={raw:#x}"
                );
            }
        }
    }

    #[test]
    fn s3_user_is_aligned_and_meta_fits() {
        let l = Layout::plan(BufferStructure::S3, 100, 64);
        assert_eq!(l.raw_align, 64);
        let raw = 0x4000; // inner memalign returns aligned raw
        let user = l.user_addr(raw);
        assert_eq!(user % 64, 0);
        assert_eq!(user - raw, 64, "pi = p − A recovers raw");
        assert!(user - META_SIZE >= raw, "meta word inside the pad");
        assert_eq!(Layout::inner_ptr(true, 64, user), raw);
    }

    #[test]
    fn s4_combines_alignment_and_guard() {
        let l = Layout::plan(BufferStructure::S4, 5000, 256);
        let raw = 0x10000; // 256-aligned
        let user = l.user_addr(raw);
        assert_eq!(user % 256, 0);
        let guard = l.guard_addr(user, 5000).unwrap();
        assert_eq!(guard % PAGE_SIZE, 0);
        assert!(guard + PAGE_SIZE <= raw + l.raw_size);
    }

    #[test]
    fn small_alignment_is_bumped_to_hold_meta() {
        let l = Layout::plan(BufferStructure::S3, 10, 2);
        assert!(l.raw_align >= 16);
    }

    #[test]
    fn inner_ptr_unaligned() {
        assert_eq!(Layout::inner_ptr(false, 0, 0x1008), 0x1000);
    }
}
