//! The per-buffer metadata word (paper Fig. 6).
//!
//! One 64-bit word immediately before every user buffer:
//!
//! ```text
//! bits  0..=3   type field: OVERFLOW | UAF | UNINIT_READ | ALIGNED
//! bits  4..=39  (guarded buffers)    guard-page number (addr >> 12, 36 bits)
//! bits  4..=51  (unguarded buffers)  user size (48 bits)
//! bits 58..=63  (aligned buffers)    log2(alignment) (6 bits)
//! ```
//!
//! 36 bits suffice for the guard-page location because 64-bit systems use a
//! 48-bit virtual address space and a guard page is 2¹²-aligned:
//! 48 − 12 = 36. For guarded buffers the user size is stored in the first
//! word of the guard page instead.

use ht_memsim::Addr;
use ht_patch::VulnFlags;
use std::fmt;

/// Width of the metadata word in bytes.
pub const META_SIZE: u64 = 8;

const ALIGNED_BIT: u64 = 1 << 3;
const PAYLOAD_SHIFT: u32 = 4;
const GUARD_MASK: u64 = (1 << 36) - 1;
const SIZE_MASK: u64 = (1 << 48) - 1;
const ALIGN_SHIFT: u32 = 58;

/// The decoded/encoded metadata word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetaWord(pub u64);

impl MetaWord {
    /// Encodes a word for an *unguarded* buffer (Structures 1/3): the
    /// payload is the user size.
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds 48 bits or `align_log2` exceeds 6 bits.
    pub fn unguarded(vuln: VulnFlags, size: u64, align_log2: Option<u8>) -> Self {
        assert!(size <= SIZE_MASK, "size {size} exceeds 48 bits");
        let mut w = (vuln.bits() as u64 & 0b111) | ((size & SIZE_MASK) << PAYLOAD_SHIFT);
        if let Some(a) = align_log2 {
            assert!(a < 64, "alignment log2 {a} exceeds 6 bits");
            w |= ALIGNED_BIT | ((a as u64) << ALIGN_SHIFT);
        }
        MetaWord(w)
    }

    /// Encodes a word for a *guarded* buffer (Structures 2/4): the payload
    /// is the guard page's page number; the size lives in the guard page.
    ///
    /// # Panics
    ///
    /// Panics if `guard_page` is not page-aligned, does not fit 36 bits, or
    /// `align_log2` exceeds 6 bits.
    pub fn guarded(vuln: VulnFlags, guard_page: Addr, align_log2: Option<u8>) -> Self {
        assert_eq!(guard_page % 4096, 0, "guard page must be page aligned");
        let pno = guard_page >> 12;
        assert!(pno <= GUARD_MASK, "guard page beyond 48-bit address space");
        let mut w = (vuln.bits() as u64 & 0b111) | (pno << PAYLOAD_SHIFT);
        if let Some(a) = align_log2 {
            assert!(a < 64, "alignment log2 {a} exceeds 6 bits");
            w |= ALIGNED_BIT | ((a as u64) << ALIGN_SHIFT);
        }
        debug_assert!(
            w & (VulnFlags::OVERFLOW.bits() as u64) != 0 || vuln.is_empty(),
            "guarded words should carry the overflow bit"
        );
        MetaWord(w)
    }

    /// The three vulnerability-type bits.
    pub fn vuln(self) -> VulnFlags {
        VulnFlags::from_bits_truncate((self.0 & 0b111) as u8)
    }

    /// Whether the buffer has a guard page (overflow defense active).
    pub fn has_guard(self) -> bool {
        self.vuln().contains(VulnFlags::OVERFLOW)
    }

    /// Whether the buffer was allocated with `memalign`.
    pub fn is_aligned(self) -> bool {
        self.0 & ALIGNED_BIT != 0
    }

    /// The guard page address (only meaningful when [`Self::has_guard`]).
    pub fn guard_page(self) -> Addr {
        ((self.0 >> PAYLOAD_SHIFT) & GUARD_MASK) << 12
    }

    /// The user size (only meaningful when `!has_guard()`).
    pub fn size(self) -> u64 {
        (self.0 >> PAYLOAD_SHIFT) & SIZE_MASK
    }

    /// The alignment in bytes (only meaningful when [`Self::is_aligned`]).
    pub fn alignment(self) -> u64 {
        1u64 << ((self.0 >> ALIGN_SHIFT) & 0x3F)
    }
}

impl fmt::Display for MetaWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "meta[{}", self.vuln())?;
        if self.is_aligned() {
            write!(f, ", align={}", self.alignment())?;
        }
        if self.has_guard() {
            write!(f, ", guard={:#x}]", self.guard_page())
        } else {
            write!(f, ", size={}]", self.size())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unguarded_round_trip() {
        let w = MetaWord::unguarded(VulnFlags::UNINIT_READ, 123_456, None);
        assert_eq!(w.vuln(), VulnFlags::UNINIT_READ);
        assert!(!w.has_guard());
        assert!(!w.is_aligned());
        assert_eq!(w.size(), 123_456);
    }

    #[test]
    fn guarded_round_trip() {
        let guard = 0x7f12_3456_7000;
        let w = MetaWord::guarded(VulnFlags::OVERFLOW, guard, None);
        assert!(w.has_guard());
        assert_eq!(w.guard_page(), guard);
        assert_eq!(w.vuln(), VulnFlags::OVERFLOW);
    }

    #[test]
    fn aligned_variants_carry_log2() {
        let w = MetaWord::unguarded(VulnFlags::USE_AFTER_FREE, 64, Some(12));
        assert!(w.is_aligned());
        assert_eq!(w.alignment(), 4096);
        assert_eq!(w.size(), 64);
        let g = MetaWord::guarded(VulnFlags::OVERFLOW, 0x1000, Some(6));
        assert!(g.is_aligned());
        assert_eq!(g.alignment(), 64);
        assert_eq!(g.guard_page(), 0x1000);
    }

    #[test]
    fn max_payloads_fit() {
        let w = MetaWord::unguarded(VulnFlags::ALL, SIZE_MASK, Some(63));
        assert_eq!(w.size(), SIZE_MASK);
        assert_eq!(w.alignment(), 1u64 << 63);
        // Highest representable guard page: 2^48 - 4096.
        let max_guard = ((1u64 << 48) - 1) & !0xFFF;
        let g = MetaWord::guarded(VulnFlags::OVERFLOW, max_guard, None);
        assert_eq!(g.guard_page(), max_guard);
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn oversized_size_panics() {
        MetaWord::unguarded(VulnFlags::NONE, 1 << 48, None);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn misaligned_guard_panics() {
        MetaWord::guarded(VulnFlags::OVERFLOW, 0x1001, None);
    }

    #[test]
    fn type_field_matches_patch_bits() {
        for bits in 0..8u8 {
            let v = VulnFlags::from_bits_truncate(bits);
            let w = MetaWord::unguarded(v, 16, None);
            assert_eq!(w.vuln(), v);
            assert_eq!(w.0 & 0b111, bits as u64, "low bits are the type field");
        }
    }

    #[test]
    fn display_forms() {
        let w = MetaWord::unguarded(VulnFlags::UNINIT_READ, 99, Some(5));
        let s = w.to_string();
        assert!(
            s.contains("UR") && s.contains("size=99") && s.contains("align=32"),
            "{s}"
        );
        let g = MetaWord::guarded(VulnFlags::OVERFLOW, 0x2000, None);
        assert!(g.to_string().contains("guard=0x2000"));
    }
}
