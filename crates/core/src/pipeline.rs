//! Pipeline orchestration.

use ht_callgraph::Strategy;
use ht_defense::{DefendedBackend, DefenseConfig, DefenseStats};
use ht_encoding::{InstrumentationPlan, Scheme};
use ht_patch::{from_config_text, to_config_text, AllocFn, Patch, PatchTable, VulnFlags};
use ht_shadow::{ShadowBackend, ShadowConfig, Warning};
use ht_simprog::{Interpreter, Limits, PlainBackend, Program, RunReport};
use ht_telemetry::{AttackReport, PatchCounterRow, TelemetryConfig, TelemetrySnapshot, Timeline};
use ht_vulnapps::VulnApp;
use std::collections::BTreeMap;
use std::fmt;

/// Pipeline-wide configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Instrumentation-site selection strategy (paper default: the most
    /// optimized, Incremental).
    pub strategy: Strategy,
    /// Encoding scheme (paper uses PCC).
    pub scheme: Scheme,
    /// Offline analyzer configuration.
    pub shadow: ShadowConfig,
    /// Online deferred-free quota.
    pub defense_quota: u64,
    /// Interpreter limits for every run.
    pub limits: Limits,
    /// Runtime attack telemetry for protected runs (disabled by default —
    /// the online hot path pays nothing when off).
    pub telemetry: TelemetryConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::Incremental,
            scheme: Scheme::Pcc,
            shadow: ShadowConfig::default(),
            defense_quota: 2 * 1024 * 1024 * 1024,
            limits: Limits::default(),
            telemetry: TelemetryConfig::disabled(),
        }
    }
}

/// A program together with its instrumentation plan — the output of the
/// paper's one-time Program Instrumentation Tool.
#[derive(Debug)]
pub struct InstrumentedProgram<'p> {
    /// The (unmodified) program.
    pub program: &'p Program,
    /// The encoding plan its binary would carry.
    pub plan: InstrumentationPlan,
}

/// Output of one offline attack replay.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Everything the analyzer flagged.
    pub warnings: Vec<Warning>,
    /// The generated patches.
    pub patches: Vec<Patch>,
    /// The replay's run report.
    pub run: RunReport,
}

/// Output of one protected (online) run.
#[derive(Debug)]
pub struct ProtectedRun {
    /// The run report.
    pub report: RunReport,
    /// Defense-side counters.
    pub stats: DefenseStats,
    /// Drained telemetry, when [`PipelineConfig::telemetry`] enabled it.
    pub telemetry: Option<TelemetrySnapshot>,
}

/// Verdict of a full patch-generation/deployment cycle on one vulnerable
/// application (one row of Table II).
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// Application name.
    pub app: String,
    /// CVE / dataset reference.
    pub reference: String,
    /// Ground-truth vulnerability class.
    pub expected: VulnFlags,
    /// Union of the vulnerability bits across generated patches.
    pub detected: VulnFlags,
    /// How many patches were generated.
    pub patches_generated: usize,
    /// The configuration-file content that deployed them.
    pub config_text: String,
    /// Whether the first attack input succeeded on the undefended program.
    pub undefended_attack_succeeded: bool,
    /// Whether every attack input was defeated under the deployed patches.
    pub all_attacks_blocked: bool,
    /// Whether every benign input completed cleanly under the patches.
    pub benign_ok: bool,
}

impl CycleReport {
    /// Whether the analyzer found (at least) the ground-truth class.
    pub fn detection_correct(&self) -> bool {
        self.detected.contains(self.expected)
    }

    /// One row of the Table II reproduction.
    pub fn table_row(&self) -> String {
        format!(
            "{:<28} {:<16} expected={:<9} detected={:<9} patches={} blocked={} benign_ok={}",
            self.app,
            self.reference,
            self.expected.to_string(),
            self.detected.to_string(),
            self.patches_generated,
            self.all_attacks_blocked,
            self.benign_ok
        )
    }
}

impl fmt::Display for CycleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table_row())
    }
}

/// Runtime telemetry gathered from protected replays of one application's
/// inputs — the observable side of the paper's Section VII "attack gets
/// reported" claim, plus offline phase timings.
#[derive(Debug, Clone)]
pub struct AppTelemetry {
    /// Application name.
    pub app: String,
    /// CVE / dataset reference.
    pub reference: String,
    /// One report per distinct `(FUN, CCID, T)` across all inputs, in
    /// first-activation order, call chains decoded when the encoding scheme
    /// permits (allocation site first).
    pub reports: Vec<AttackReport>,
    /// Per-patch hit/byte counters summed across inputs.
    pub per_patch: Vec<PatchCounterRow>,
    /// Events accepted by the rings across all runs.
    pub delivered: u64,
    /// Events lost to ring overflow across all runs.
    pub dropped: u64,
    /// Wall-clock spans of the offline phases and the protected replays.
    pub timeline: Timeline,
}

impl fmt::Display for AppTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "app     : {} ({})", self.app, self.reference)?;
        writeln!(
            f,
            "events  : {} delivered, {} dropped",
            self.delivered, self.dropped
        )?;
        for row in &self.per_patch {
            writeln!(
                f,
                "patch   : {{{}, {:#x}, {}}}  hits={} bytes={}",
                row.fun, row.ccid, row.vuln, row.hits, row.bytes
            )?;
        }
        for r in &self.reports {
            write!(f, "{r}")?;
        }
        write!(f, "{}", self.timeline)
    }
}

impl ht_jsonio::ToJson for AppTelemetry {
    fn to_json(&self) -> ht_jsonio::Json {
        use ht_jsonio::{obj, Json, ToJson};
        obj([
            ("app", Json::Str(self.app.clone())),
            ("reference", Json::Str(self.reference.clone())),
            (
                "reports",
                Json::Arr(self.reports.iter().map(ToJson::to_json).collect()),
            ),
            (
                "per_patch",
                Json::Arr(self.per_patch.iter().map(ToJson::to_json).collect()),
            ),
            ("delivered", Json::U64(self.delivered)),
            ("dropped", Json::U64(self.dropped)),
            ("phases", self.timeline.to_json()),
        ])
    }
}

/// Error from [`HeapTherapy::full_cycle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The offline analyzer produced no patches for the attack input.
    NoPatchesGenerated(String),
    /// The patch configuration failed to round-trip.
    ConfigRoundTrip(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NoPatchesGenerated(app) => {
                write!(f, "no patches generated for {app}")
            }
            PipelineError::ConfigRoundTrip(e) => write!(f, "config round-trip failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// The HeapTherapy+ system.
#[derive(Debug, Clone, Default)]
pub struct HeapTherapy {
    cfg: PipelineConfig,
}

impl HeapTherapy {
    /// A pipeline with the given configuration.
    pub fn new(cfg: PipelineConfig) -> Self {
        Self { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// One-time program instrumentation.
    pub fn instrument<'p>(&self, program: &'p Program) -> InstrumentedProgram<'p> {
        InstrumentedProgram {
            program,
            plan: InstrumentationPlan::build(program.graph(), self.cfg.strategy, self.cfg.scheme),
        }
    }

    /// Runs the program natively (no interposition, no defenses).
    pub fn run_native(&self, ip: &InstrumentedProgram<'_>, input: &[u64]) -> RunReport {
        Interpreter::new(ip.program, &ip.plan, PlainBackend::new())
            .with_limits(self.cfg.limits)
            .run(input)
    }

    /// Runs with allocation interposition only (Fig. 8 "interposition").
    pub fn run_interposed(&self, ip: &InstrumentedProgram<'_>, input: &[u64]) -> ProtectedRun {
        let backend = DefendedBackend::new(DefenseConfig::interpose_only());
        let mut interp =
            Interpreter::new(ip.program, &ip.plan, backend).with_limits(self.cfg.limits);
        let report = interp.run(input);
        ProtectedRun {
            report,
            stats: interp.backend().stats(),
            telemetry: None,
        }
    }

    /// Offline phase: replays `input` under the shadow analyzer and
    /// generates patches attributed to `origin`.
    pub fn analyze_attack(
        &self,
        ip: &InstrumentedProgram<'_>,
        input: &[u64],
        origin: &str,
    ) -> AnalysisReport {
        let backend = ShadowBackend::with_config(self.cfg.shadow);
        let mut interp =
            Interpreter::new(ip.program, &ip.plan, backend).with_limits(self.cfg.limits);
        let run = interp.run(input);
        let shadow = interp.into_backend();
        AnalysisReport {
            warnings: shadow.warnings().to_vec(),
            patches: shadow.generate_patches(origin),
            run,
        }
    }

    /// Online phase: runs under the defended allocator with `patches`
    /// deployed.
    pub fn run_protected(
        &self,
        ip: &InstrumentedProgram<'_>,
        input: &[u64],
        patches: &[Patch],
    ) -> ProtectedRun {
        let mut cfg = DefenseConfig::with_table(PatchTable::from_patches(patches.to_vec()));
        cfg.quarantine_quota = self.cfg.defense_quota;
        cfg.telemetry = self.cfg.telemetry;
        let backend = DefendedBackend::new(cfg);
        let mut interp =
            Interpreter::new(ip.program, &ip.plan, backend).with_limits(self.cfg.limits);
        let report = interp.run(input);
        let mut backend = interp.into_backend();
        ProtectedRun {
            report,
            stats: backend.stats(),
            telemetry: backend.telemetry_snapshot(),
        }
    }

    /// §IX: replays the attack in `n` executions, each deferring only the
    /// buffers whose allocation-time CCID falls in its subspace, and merges
    /// the patches — the memory-bounded variant of [`Self::analyze_attack`]
    /// for programs whose free churn would drain the quarantine quota.
    pub fn analyze_attack_partitioned(
        &self,
        ip: &InstrumentedProgram<'_>,
        input: &[u64],
        origin: &str,
        n: u64,
    ) -> AnalysisReport {
        let mut warnings = Vec::new();
        let mut merged: Vec<Patch> = Vec::new();
        let mut last_run = None;
        for index in 0..n.max(1) {
            let mut cfg = self.cfg.shadow;
            cfg.partition = Some(ht_shadow::CcidPartition {
                index,
                of: n.max(1),
            });
            let backend = ShadowBackend::with_config(cfg);
            let mut interp =
                Interpreter::new(ip.program, &ip.plan, backend).with_limits(self.cfg.limits);
            last_run = Some(interp.run(input));
            let shadow = interp.into_backend();
            warnings.extend(shadow.warnings().iter().cloned());
            merged.extend(shadow.generate_patches(origin));
        }
        // Merge duplicate keys (overflow/UR warnings repeat every replay).
        // PatchTable::iter is sorted by (FUN, CCID), so the report order is
        // deterministic across runs.
        let table = PatchTable::from_patches(merged);
        let patches: Vec<Patch> = table
            .iter()
            .map(|(fun, ccid, vuln)| Patch::new(fun, ccid, vuln).with_origin(origin))
            .collect();
        AnalysisReport {
            warnings,
            patches,
            run: last_run.expect("n >= 1 replay ran"),
        }
    }

    /// §IX: the defense-generation *cycle* for vulnerabilities exploitable
    /// through multiple calling contexts. Each round deploys the patches
    /// gathered so far, retries every attack input, and analyzes the first
    /// input that still succeeds — "whenever the attack exploits a buffer
    /// allocated in a new calling context, our system simply treats it as a
    /// new vulnerability and starts another defense generation cycle."
    ///
    /// Returns the accumulated patches and the number of rounds taken.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NoPatchesGenerated`] if an attack keeps succeeding
    /// but the analyzer finds nothing new to patch (would loop forever).
    pub fn iterative_cycle(
        &self,
        app: &VulnApp,
        max_rounds: usize,
    ) -> Result<(Vec<Patch>, usize), PipelineError> {
        let ip = self.instrument(&app.program);
        let mut deployed: Vec<Patch> = Vec::new();
        for round in 1..=max_rounds {
            let breached = app.attack_inputs.iter().find(|input| {
                let run = self.run_protected(&ip, input, &deployed);
                app.attack_succeeded(&run.report)
            });
            let Some(input) = breached else {
                return Ok((deployed, round - 1));
            };
            let analysis = self.analyze_attack(&ip, input, &app.reference);
            let before = PatchTable::from_patches(deployed.clone());
            let fresh: Vec<Patch> = analysis
                .patches
                .into_iter()
                .filter(|p| {
                    before
                        .lookup(p.alloc_fn, p.ccid)
                        .is_none_or(|v| !v.contains(p.vuln))
                })
                .collect();
            if fresh.is_empty() {
                return Err(PipelineError::NoPatchesGenerated(format!(
                    "{} (round {round}: attack persists, nothing new found)",
                    app.name
                )));
            }
            deployed.extend(fresh);
        }
        // Out of rounds with an attack still breaching.
        Err(PipelineError::NoPatchesGenerated(format!(
            "{} (attack persists after {max_rounds} rounds)",
            app.name
        )))
    }

    /// Fig. 8's hypothesized patches: rank the program's allocation-time
    /// CCIDs by frequency (profiling run on `input`), take the `n`
    /// median-frequency contexts, and patch them as overflow-vulnerable
    /// (the most expensive defense).
    pub fn hypothesized_patches(
        &self,
        ip: &InstrumentedProgram<'_>,
        input: &[u64],
        n: usize,
    ) -> Vec<Patch> {
        let profile = self.run_native(ip, input);
        profile
            .median_frequency_ccids(n)
            .into_iter()
            .map(|(fun, ccid)| Patch::new(fun, ccid, VulnFlags::OVERFLOW))
            .collect()
    }

    /// Generates patches offline, then replays every input protected with
    /// telemetry armed, aggregating the one-time attack reports, per-patch
    /// counters, and phase wall-clock.
    ///
    /// Each replay is an independent process image (fresh backend, fresh
    /// once-bits), so reports are deduplicated across runs: the result holds
    /// exactly one report per distinct `(FUN, CCID, T)` that activated.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::full_cycle`].
    pub fn attack_telemetry(&self, app: &VulnApp) -> Result<AppTelemetry, PipelineError> {
        let mut tl = Timeline::new();
        let ip = tl.time("instrument", || self.instrument(&app.program));
        let analysis = tl.time("analyze", || {
            self.analyze_attack(&ip, app.patching_input(), &app.reference)
        });
        if analysis.patches.is_empty() {
            return Err(PipelineError::NoPatchesGenerated(app.name.clone()));
        }
        let deployed = tl
            .time("patch-gen", || {
                from_config_text(&to_config_text(&analysis.patches))
            })
            .map_err(|e| PipelineError::ConfigRoundTrip(e.to_string()))?;

        let mut armed = self.clone();
        armed.cfg.telemetry = TelemetryConfig::enabled();
        let mut reports: Vec<AttackReport> = Vec::new();
        let mut per_patch: BTreeMap<usize, PatchCounterRow> = BTreeMap::new();
        let (mut delivered, mut dropped) = (0u64, 0u64);
        tl.time("protected", || {
            for input in app.attack_inputs.iter().chain(&app.benign_inputs) {
                let run = armed.run_protected(&ip, input, &deployed);
                let Some(snap) = run.telemetry else { continue };
                delivered += snap.delivered;
                dropped += snap.dropped;
                for mut r in snap.reports {
                    let fresh = !reports
                        .iter()
                        .any(|x| (x.fun, x.ccid, x.vuln) == (r.fun, r.ccid, r.vuln));
                    if fresh {
                        r.call_chain = crate::report::decode_chain(&ip, r.fun, r.ccid)
                            .map(|mut chain| {
                                // Attack reports list the allocation site
                                // first (innermost frame at #0).
                                chain.reverse();
                                chain
                            })
                            .unwrap_or_default();
                        reports.push(r);
                    }
                }
                for row in snap.per_patch {
                    per_patch
                        .entry(row.slot)
                        .and_modify(|e| {
                            e.hits += row.hits;
                            e.bytes += row.bytes;
                        })
                        .or_insert(row);
                }
            }
        });
        Ok(AppTelemetry {
            app: app.name.clone(),
            reference: app.reference.clone(),
            reports,
            per_patch: per_patch.into_values().collect(),
            delivered,
            dropped,
            timeline: tl,
        })
    }

    /// The full Table II cycle for one vulnerable application.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NoPatchesGenerated`] if the analyzer found nothing
    /// to patch; [`PipelineError::ConfigRoundTrip`] if the configuration
    /// file failed to parse back (never expected).
    pub fn full_cycle(&self, app: &VulnApp) -> Result<CycleReport, PipelineError> {
        let ip = self.instrument(&app.program);

        // Ground truth: the exploit works when undefended.
        let native = self.run_native(&ip, app.patching_input());
        let undefended_attack_succeeded = app.attack_succeeded(&native);

        // Offline: one attack input → patches.
        let analysis = self.analyze_attack(&ip, app.patching_input(), &app.reference);
        if analysis.patches.is_empty() {
            return Err(PipelineError::NoPatchesGenerated(app.name.clone()));
        }

        // Code-less deployment: write the configuration file, read it back.
        let config_text = to_config_text(&analysis.patches);
        let deployed = from_config_text(&config_text)
            .map_err(|e| PipelineError::ConfigRoundTrip(e.to_string()))?;

        let detected = deployed.iter().fold(VulnFlags::NONE, |acc, p| acc | p.vuln);

        // Online: every attack input must be defeated...
        let all_attacks_blocked = app.attack_inputs.iter().all(|input| {
            let run = self.run_protected(&ip, input, &deployed);
            !app.attack_succeeded(&run.report)
        });
        // ...and benign inputs must run to completion, unharmed.
        let benign_ok = app.benign_inputs.iter().all(|input| {
            let run = self.run_protected(&ip, input, &deployed);
            run.report.outcome.is_completed() && !app.attack_succeeded(&run.report)
        });

        Ok(CycleReport {
            app: app.name.clone(),
            reference: app.reference.clone(),
            expected: app.expected,
            detected,
            patches_generated: deployed.len(),
            config_text,
            undefended_attack_succeeded,
            all_attacks_blocked,
            benign_ok,
        })
    }
}

/// Re-exported for convenience in harnesses.
pub fn alloc_fn_name(fun: AllocFn) -> &'static str {
    fun.name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_shadow::WarningKind;

    fn ht() -> HeapTherapy {
        HeapTherapy::new(PipelineConfig::default())
    }

    #[test]
    fn full_cycle_bc_overflow() {
        let report = ht().full_cycle(&ht_vulnapps::bc()).unwrap();
        assert!(report.undefended_attack_succeeded);
        assert_eq!(report.detected, VulnFlags::OVERFLOW);
        assert!(report.detection_correct());
        assert!(report.all_attacks_blocked);
        assert!(report.benign_ok);
        assert!(report.config_text.contains("malloc"));
    }

    #[test]
    fn full_cycle_heartbleed_multi_vuln() {
        let report = ht().full_cycle(&ht_vulnapps::heartbleed()).unwrap();
        assert!(report.detected.contains(VulnFlags::UNINIT_READ));
        assert!(report.detected.contains(VulnFlags::OVERFLOW));
        assert!(
            report.all_attacks_blocked,
            "all fresh attack inputs defeated"
        );
        assert!(report.benign_ok);
    }

    #[test]
    fn full_cycle_uaf_apps() {
        for app in [ht_vulnapps::optipng(), ht_vulnapps::wavpack()] {
            let report = ht().full_cycle(&app).unwrap();
            assert_eq!(report.detected, VulnFlags::USE_AFTER_FREE, "{}", report.app);
            assert!(report.all_attacks_blocked, "{}", report.app);
            assert!(report.benign_ok, "{}", report.app);
        }
    }

    #[test]
    fn full_cycle_realloc_and_calloc_origins() {
        let tiff = ht().full_cycle(&ht_vulnapps::tiff()).unwrap();
        assert!(tiff.config_text.contains("realloc"), "{}", tiff.config_text);
        assert!(tiff.all_attacks_blocked);
        let ming = ht().full_cycle(&ht_vulnapps::libming()).unwrap();
        assert!(ming.config_text.contains("calloc"), "{}", ming.config_text);
        assert!(ming.all_attacks_blocked);
    }

    #[test]
    fn analysis_report_carries_warnings() {
        let app = ht_vulnapps::ghostxps();
        let ht = ht();
        let ip = ht.instrument(&app.program);
        let analysis = ht.analyze_attack(&ip, app.patching_input(), "CVE-2017-9740");
        assert!(analysis
            .warnings
            .iter()
            .any(|w| w.kind == WarningKind::UninitRead));
        assert_eq!(analysis.patches.len(), 1);
        assert_eq!(analysis.patches[0].origin, "CVE-2017-9740");
    }

    #[test]
    fn benign_input_generates_no_patches() {
        let app = ht_vulnapps::bc();
        let ht = ht();
        let ip = ht.instrument(&app.program);
        let analysis = ht.analyze_attack(&ip, &app.benign_inputs[0], "none");
        assert!(analysis.patches.is_empty(), "zero false positives");
    }

    #[test]
    fn hypothesized_patches_pick_median_contexts() {
        let w = ht_simprog::spec::build_spec_workload(
            ht_simprog::spec::spec_bench("456.hmmer").unwrap(),
        );
        let ht = ht();
        let ip = ht.instrument(&w.program);
        let input = w.input_for_allocs(500);
        for n in [1usize, 5] {
            let patches = ht.hypothesized_patches(&ip, &input, n);
            assert_eq!(patches.len(), n);
            for p in &patches {
                assert_eq!(p.vuln, VulnFlags::OVERFLOW);
            }
            // The protected run must still complete (defenses are
            // transparent to program logic).
            let run = ht.run_protected(&ip, &input, &patches);
            assert!(run.report.outcome.is_completed());
            assert!(run.stats.table_hits > 0, "patched contexts were exercised");
        }
    }

    #[test]
    fn strategies_and_schemes_all_work_end_to_end() {
        for strategy in Strategy::ALL {
            for scheme in Scheme::ALL {
                let cfg = PipelineConfig {
                    strategy,
                    scheme,
                    ..PipelineConfig::default()
                };
                let report = HeapTherapy::new(cfg)
                    .full_cycle(&ht_vulnapps::bc())
                    .unwrap();
                assert!(
                    report.all_attacks_blocked && report.benign_ok,
                    "{strategy}/{scheme}"
                );
            }
        }
    }

    #[test]
    fn interposed_run_counts_calls() {
        let app = ht_vulnapps::bc();
        let ht = ht();
        let ip = ht.instrument(&app.program);
        let run = ht.run_interposed(&ip, &app.benign_inputs[0]);
        assert!(run.report.outcome.is_completed());
        assert!(run.stats.interposed_allocs >= 2);
        assert_eq!(run.stats.table_lookups, 0);
    }

    #[test]
    fn partitioned_analysis_matches_single_replay() {
        // §IX: splitting the CCID space across N replays must find the same
        // patches as one replay with an unbounded quota.
        for app in [ht_vulnapps::optipng(), ht_vulnapps::heartbleed()] {
            let ht = ht();
            let ip = ht.instrument(&app.program);
            let single = ht.analyze_attack(&ip, app.patching_input(), "x");
            for n in [2u64, 4] {
                let parts = ht.analyze_attack_partitioned(&ip, app.patching_input(), "x", n);
                assert_eq!(parts.patches, single.patches, "{} n={n}", app.name);
            }
        }
    }

    #[test]
    fn iterative_cycle_single_context_takes_one_round() {
        let (patches, rounds) = ht().iterative_cycle(&ht_vulnapps::bc(), 5).unwrap();
        assert_eq!(rounds, 1, "one context, one cycle");
        // A wide overflow can violate both the overflowed array and the
        // neighbour's red zone, so one round may emit one or two patches.
        assert!((1..=2).contains(&patches.len()), "{patches:?}");
    }

    #[test]
    fn iterative_cycle_discovers_the_second_context() {
        // §IX: the first round patches the context of the first attack
        // input; the second attack drives the same bug through a different
        // handler and forces a second round.
        let app = ht_vulnapps::multi_context_overflow();
        let ht = ht();

        // Sanity: one-shot patching is NOT enough for this app.
        let ip = ht.instrument(&app.program);
        let one_shot = ht.analyze_attack(&ip, app.patching_input(), "x").patches;
        assert_eq!(one_shot.len(), 1);
        let second_attack = &app.attack_inputs[1];
        let run = ht.run_protected(&ip, second_attack, &one_shot);
        assert!(
            app.attack_succeeded(&run.report),
            "the second context is still exposed after round one"
        );

        // The cycle converges in two rounds with two context patches.
        let (patches, rounds) = ht.iterative_cycle(&app, 5).unwrap();
        assert_eq!(rounds, 2, "one extra round per new calling context");
        assert_eq!(patches.len(), 2);
        for input in &app.attack_inputs {
            let run = ht.run_protected(&ip, input, &patches);
            assert!(!app.attack_succeeded(&run.report));
        }
        for input in &app.benign_inputs {
            let run = ht.run_protected(&ip, input, &patches);
            assert!(run.report.outcome.is_completed());
        }
    }

    #[test]
    fn iterative_cycle_zero_rounds_when_already_safe() {
        // Benign-only "attacks": nothing breaches, zero rounds.
        let mut app = ht_vulnapps::bc();
        app.attack_inputs = app.benign_inputs.clone();
        let (patches, rounds) = ht().iterative_cycle(&app, 5).unwrap();
        assert_eq!(rounds, 0);
        assert!(patches.is_empty());
    }

    #[test]
    fn attack_telemetry_files_one_report_per_fun_ccid_t() {
        for app in [
            ht_vulnapps::bc(),
            ht_vulnapps::heartbleed(),
            ht_vulnapps::optipng(),
        ] {
            let tel = ht().attack_telemetry(&app).unwrap();
            assert!(!tel.reports.is_empty(), "{}: defense fired", app.name);
            let mut keys: Vec<_> = tel
                .reports
                .iter()
                .map(|r| (r.fun, r.ccid, r.vuln))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(
                keys.len(),
                tel.reports.len(),
                "{}: exactly one report per (FUN, CCID, T)",
                app.name
            );
            // Every report's vuln bit is a single T.
            for r in &tel.reports {
                assert_eq!(r.vuln.bits().count_ones(), 1, "{}: {r:?}", app.name);
            }
            assert!(tel.per_patch.iter().all(|p| p.hits > 0));
            assert!(tel.delivered > 0);
            for phase in ["instrument", "analyze", "patch-gen", "protected"] {
                assert!(tel.timeline.get(phase).is_some(), "{phase} span recorded");
            }
        }
    }

    #[test]
    fn attack_telemetry_decodes_chains_under_precise_scheme() {
        let cfg = PipelineConfig {
            strategy: Strategy::Slim,
            scheme: Scheme::Positional,
            ..PipelineConfig::default()
        };
        let tel = HeapTherapy::new(cfg)
            .attack_telemetry(&ht_vulnapps::bc())
            .unwrap();
        let of = tel
            .reports
            .iter()
            .find(|r| r.vuln == VulnFlags::OVERFLOW)
            .expect("overflow report");
        assert!(!of.call_chain.is_empty(), "precise scheme decodes");
        assert_eq!(
            of.call_chain.last().map(String::as_str),
            Some("main"),
            "allocation site first, entry last: {:?}",
            of.call_chain
        );
        assert!(
            of.call_chain.iter().any(|f| f == "more_arrays"),
            "culprit frame named: {:?}",
            of.call_chain
        );
        // The report matches the offline patch identity.
        let text = of.to_string();
        assert!(text.contains("guard page"), "{text}");
    }

    #[test]
    fn telemetry_armed_run_matches_plain_run() {
        // Arming telemetry must not change what the defense does.
        let app = ht_vulnapps::heartbleed();
        let plain = ht().full_cycle(&app).unwrap();
        let armed = HeapTherapy::new(PipelineConfig {
            telemetry: ht_telemetry::TelemetryConfig::enabled(),
            ..PipelineConfig::default()
        })
        .full_cycle(&app)
        .unwrap();
        assert_eq!(plain.detected, armed.detected);
        assert_eq!(plain.config_text, armed.config_text);
        assert_eq!(plain.all_attacks_blocked, armed.all_attacks_blocked);
        assert_eq!(plain.benign_ok, armed.benign_ok);
    }

    #[test]
    fn cycle_report_row_renders() {
        let report = ht().full_cycle(&ht_vulnapps::optipng()).unwrap();
        let row = report.to_string();
        assert!(row.contains("optipng"), "{row}");
        assert!(row.contains("CVE-2015-7801"), "{row}");
    }
}
