//! Human-readable incident reports: patches with their decoded calling
//! contexts.
//!
//! Under a precise encoding ([`Scheme::Positional`] or
//! [`Scheme::Additive`]), the integer CCID stored in a patch decodes back to
//! the full call chain — the PCCE capability the paper highlights: the
//! configuration file entry `malloc 0x1f3a OF` becomes
//! `main → yyparse → more_arrays → malloc` in the incident report.
//!
//! [`Scheme::Positional`]: ht_encoding::Scheme::Positional
//! [`Scheme::Additive`]: ht_encoding::Scheme::Additive

use crate::pipeline::{AnalysisReport, InstrumentedProgram};
use ht_encoding::{decode, Ccid};
use ht_patch::{AllocFn, Patch};
use std::fmt;

/// Decodes a patch CCID into its call chain (entry function first, the
/// allocation API last), when the plan's encoding scheme supports decoding.
pub fn decode_chain(ip: &InstrumentedProgram<'_>, fun: AllocFn, ccid: u64) -> Option<Vec<String>> {
    let graph = ip.program.graph();
    let target = graph.func_by_name(fun.name())?;
    let path = decode(graph, &ip.plan, Ccid(ccid), target)?;
    let mut chain = vec!["main".to_string()];
    chain.extend(
        path.iter()
            .map(|&e| graph.func(graph.edge(e).callee).name.clone()),
    );
    Some(chain)
}

/// One patch with its decoded provenance.
#[derive(Debug, Clone)]
pub struct PatchReport {
    /// The patch as deployed.
    pub patch: Patch,
    /// The decoded calling context (function names from the entry to the
    /// allocation API), when the plan's encoding supports decoding.
    pub call_chain: Option<Vec<String>>,
}

impl fmt::Display for PatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.patch)?;
        match &self.call_chain {
            Some(chain) => write!(f, "  ⇐  {}", chain.join(" → ")),
            None => write!(f, "  ⇐  (context not decodable under this scheme)"),
        }
    }
}

/// The rendered outcome of one offline analysis.
#[derive(Debug, Clone)]
pub struct IncidentReport {
    /// Application / incident label.
    pub title: String,
    /// Analyzer warnings, rendered.
    pub warnings: Vec<String>,
    /// Patches with provenance.
    pub patches: Vec<PatchReport>,
}

impl fmt::Display for IncidentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "incident: {}", self.title)?;
        writeln!(f, "  warnings:")?;
        for w in &self.warnings {
            writeln!(f, "    - {w}")?;
        }
        writeln!(f, "  patches:")?;
        for p in &self.patches {
            writeln!(f, "    - {p}")?;
        }
        Ok(())
    }
}

/// Builds an incident report from an offline analysis, decoding each
/// patch's CCID to its call chain when the plan permits.
pub fn incident_report(
    ip: &InstrumentedProgram<'_>,
    analysis: &AnalysisReport,
    title: impl Into<String>,
) -> IncidentReport {
    let patches = analysis
        .patches
        .iter()
        .map(|patch| PatchReport {
            patch: patch.clone(),
            call_chain: decode_chain(ip, patch.alloc_fn, patch.ccid),
        })
        .collect();
    IncidentReport {
        title: title.into(),
        warnings: analysis.warnings.iter().map(|w| w.to_string()).collect(),
        patches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{HeapTherapy, PipelineConfig};
    use ht_callgraph::Strategy;
    use ht_encoding::Scheme;

    fn analyze(scheme: Scheme) -> (String, bool) {
        let app = ht_vulnapps::bc();
        let ht = HeapTherapy::new(PipelineConfig {
            strategy: Strategy::Slim,
            scheme,
            ..PipelineConfig::default()
        });
        let ip = ht.instrument(&app.program);
        let analysis = ht.analyze_attack(&ip, app.patching_input(), &app.reference);
        let report = incident_report(&ip, &analysis, "bc overflow");
        let decoded = report.patches.iter().all(|p| p.call_chain.is_some());
        (report.to_string(), decoded)
    }

    #[test]
    fn precise_schemes_name_the_culprit_chain() {
        for scheme in [Scheme::Positional, Scheme::Additive] {
            let (text, decoded) = analyze(scheme);
            assert!(decoded, "{scheme}: {text}");
            assert!(text.contains("more_arrays"), "{scheme}: {text}");
            assert!(text.contains("main →"), "{scheme}: {text}");
            assert!(text.contains("overflow"), "{scheme}: {text}");
        }
    }

    #[test]
    fn pcc_reports_without_chains() {
        let (text, decoded) = analyze(Scheme::Pcc);
        assert!(!decoded);
        assert!(text.contains("not decodable"), "{text}");
        assert!(text.contains("incident: bc overflow"));
    }
}
