//! The static pre-pass: triage + plan verification, cross-checked against
//! the dynamic shadow analyzer.
//!
//! The invariant the lint enforces is *over-approximation*: the static
//! triage must flag (at least) every `(FUN, CCID)` the dynamic analyzer
//! patches on any attack input. A dynamic patch with no static candidate is
//! a triage false negative — reported in [`LintReport::uncovered`].

use crate::pipeline::{HeapTherapy, InstrumentedProgram};
pub use ht_analysis::PlanVerdict;
use ht_analysis::{
    render_report, render_verdict, triage, verify_plan, TriageConfig, TriageReport, VerifierLimits,
};
use ht_patch::{Patch, PatchTable};
use ht_vulnapps::VulnApp;

/// Result of linting one application: the static findings, the plan
/// verdict, and the dynamic ground truth they are checked against.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Application name.
    pub app: String,
    /// Static triage findings.
    pub triage: TriageReport,
    /// Encoding-plan verdict.
    pub verdict: PlanVerdict,
    /// Patches the dynamic analyzer generates, merged across every attack
    /// input (empty for clean apps).
    pub dynamic_patches: Vec<Patch>,
    /// Dynamic patches with no covering static candidate (triage false
    /// negatives; must be empty unless the triage was bounded).
    pub uncovered: Vec<Patch>,
}

impl LintReport {
    /// Whether the static triage over-approximated the dynamic analyzer:
    /// every dynamic patch has a static candidate with the same key and a
    /// superset of its vulnerability classes.
    pub fn static_over_approximates(&self) -> bool {
        self.uncovered.is_empty()
    }

    /// Exit status for the CLI: 0 when the triage is clean, 2 otherwise.
    pub fn exit_code(&self) -> i32 {
        if self.triage.is_clean() {
            0
        } else {
            2
        }
    }

    /// One static-vs-dynamic agreement row for the `reproduce lint` table.
    pub fn agreement_row(&self) -> String {
        format!(
            "{:<28} static={:<3} dynamic={:<3} covered={:<5} plan={}",
            self.app,
            self.triage.candidates.len(),
            self.dynamic_patches.len(),
            self.static_over_approximates(),
            if self.verdict.is_ok() { "ok" } else { "FAILED" },
        )
    }

    /// The full multi-line lint output (triage findings + plan verdict +
    /// agreement line), as the CLI prints it.
    pub fn render(&self, ip: &InstrumentedProgram<'_>) -> String {
        let mut out = render_report(ip.program.graph(), &self.triage);
        out.push_str(&render_verdict(&self.verdict));
        out.push_str(&format!(
            "dynamic cross-check: {} patch(es), {} uncovered\n",
            self.dynamic_patches.len(),
            self.uncovered.len()
        ));
        out
    }
}

impl HeapTherapy {
    /// Static vulnerability triage over an instrumented program: abstract
    /// interpretation under an unconstrained attack-input domain, with the
    /// shadow analyzer's red-zone width so "wild" classification agrees.
    pub fn static_triage(&self, ip: &InstrumentedProgram<'_>) -> TriageReport {
        let cfg = TriageConfig {
            redzone: self.config().shadow.redzone,
            ..TriageConfig::default()
        };
        triage(ip.program, &ip.plan, &cfg)
    }

    /// Verifies the instrumented program's encoding plan (precision,
    /// strategy inclusion, site selection, target coverage).
    pub fn verify_plan(&self, ip: &InstrumentedProgram<'_>) -> PlanVerdict {
        verify_plan(ip.program.graph(), &ip.plan, &VerifierLimits::default())
    }

    /// Lints one application: static triage + plan verification,
    /// cross-checked against the dynamic patches of every attack input.
    pub fn lint(&self, app: &VulnApp) -> LintReport {
        let ip = self.instrument(&app.program);
        let triage = self.static_triage(&ip);
        let verdict = self.verify_plan(&ip);

        // Dynamic ground truth: merge the patches of every attack input.
        let mut all: Vec<Patch> = Vec::new();
        for input in &app.attack_inputs {
            all.extend(self.analyze_attack(&ip, input, &app.reference).patches);
        }
        // PatchTable::iter is sorted by (FUN, CCID) — lint output stays
        // byte-identical across runs without a local sort.
        let table = PatchTable::from_patches(all);
        let dynamic_patches: Vec<Patch> = table
            .iter()
            .map(|(fun, ccid, vuln)| Patch::new(fun, ccid, vuln).with_origin(&app.reference))
            .collect();

        let uncovered: Vec<Patch> = dynamic_patches
            .iter()
            .filter(|p| !triage.covers_patch(p))
            .cloned()
            .collect();

        LintReport {
            app: app.name.clone(),
            triage,
            verdict,
            dynamic_patches,
            uncovered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use ht_patch::VulnFlags;

    #[test]
    fn lint_flags_the_vulnapp_and_covers_its_dynamic_patches() {
        let ht = HeapTherapy::new(PipelineConfig::default());
        let report = ht.lint(&ht_vulnapps::bc());
        assert!(!report.triage.is_clean());
        assert!(!report.dynamic_patches.is_empty());
        assert!(report.static_over_approximates(), "{:?}", report.uncovered);
        assert!(report.verdict.is_ok());
        assert_eq!(report.exit_code(), 2);
        assert!(report
            .triage
            .candidates
            .iter()
            .any(|c| c.vuln.contains(VulnFlags::OVERFLOW)));
    }

    #[test]
    fn lint_render_and_row_mention_the_key_facts() {
        let ht = HeapTherapy::new(PipelineConfig::default());
        let app = ht_vulnapps::optipng();
        let ip = ht.instrument(&app.program);
        let report = ht.lint(&app);
        let text = report.render(&ip);
        assert!(text.contains("static triage"), "{text}");
        assert!(text.contains("plan verifier: OK"), "{text}");
        assert!(report.agreement_row().contains("covered=true"));
    }

    #[test]
    fn spec_models_lint_clean() {
        let ht = HeapTherapy::new(PipelineConfig::default());
        let w =
            ht_simprog::spec::build_spec_workload(ht_simprog::spec::spec_bench("429.mcf").unwrap());
        let ip = ht.instrument(&w.program);
        let triage = ht.static_triage(&ip);
        assert!(triage.is_clean(), "{:?}", triage.candidates);
        assert!(ht.verify_plan(&ip).is_ok());
    }
}
