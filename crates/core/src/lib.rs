//! The HeapTherapy+ pipeline: instrument → replay attack offline → generate
//! patches → deploy code-lessly → run protected.
//!
//! This crate is the system of the paper's Fig. 1, wired end-to-end:
//!
//! 1. **Program instrumentation** ([`HeapTherapy::instrument`]) — builds the
//!    targeted calling-context-encoding plan for the program's call graph.
//! 2. **Offline patch generation** ([`HeapTherapy::analyze_attack`]) —
//!    replays an attack input under the shadow-memory analyzer and folds the
//!    warnings into `{FUN, CCID, T}` patches.
//! 3. **Code-less deployment** — patches are written to a configuration
//!    file and read back (never touching the program), exactly as the
//!    online defense generator would at startup.
//! 4. **Online defense** ([`HeapTherapy::run_protected`]) — the same
//!    program runs over the defended allocator; only buffers whose
//!    `(FUN, CCID)` hits the table are enhanced.
//!
//! A static pre-pass ([`HeapTherapy::lint`]) complements the dynamic loop:
//! it triages candidate vulnerable allocation contexts without running any
//! attack, verifies the encoding plan's claims, and cross-checks that the
//! static candidates over-approximate the dynamic patches.
//!
//! [`HeapTherapy::full_cycle`] performs the whole loop against a
//! [`ht_vulnapps::VulnApp`] and verifies the paper's Table II claims: the
//! attack works undefended, the analyzer identifies the right vulnerability
//! type, and the deployed patch defeats fresh attack instances while benign
//! inputs run unharmed.
//!
//! # Example
//!
//! ```
//! use heaptherapy_core::{HeapTherapy, PipelineConfig};
//!
//! let ht = HeapTherapy::new(PipelineConfig::default());
//! let cycle = ht.full_cycle(&ht_vulnapps::heartbleed()).expect("pipeline runs");
//! assert!(cycle.undefended_attack_succeeded);
//! assert!(cycle.detected.contains(ht_patch::VulnFlags::UNINIT_READ));
//! assert!(cycle.all_attacks_blocked);
//! assert!(cycle.benign_ok);
//! ```

#![forbid(unsafe_code)]

pub mod lint;
pub mod pipeline;
pub mod report;

pub use lint::{LintReport, PlanVerdict};
pub use pipeline::{
    AnalysisReport, AppTelemetry, CycleReport, HeapTherapy, InstrumentedProgram, PipelineConfig,
    ProtectedRun,
};
pub use report::{decode_chain, incident_report, IncidentReport, PatchReport};
