//! The seven CVE-derived models of Table II.
//!
//! Each model reproduces the heap *event signature* of the real
//! vulnerability: who allocates what and where, which calling context the
//! vulnerable buffer comes from, and how the attack input stretches an
//! access past its legal bounds (or through a dangling pointer).

use crate::{VulnApp, ATTACK_BYTE, SECRET_BYTE, SPRAY_BYTE};
use ht_patch::{AllocFn, VulnFlags};
use ht_simprog::{Expr, ProgramBuilder, Sink};

/// CVE-2014-0160 — OpenSSL Heartbleed.
///
/// The heartbeat handler allocates a 34 KB response buffer and copies back
/// `payload_length` bytes *as claimed by the attacker* (input 0), even though
/// only the actual payload (input 1) was written. A previous TLS session
/// filled the same allocation class with key material. Claimed lengths up to
/// 64 KB leak stale session data (uninitialized read) and run past the
/// buffer's end (overread) — the paper's "mix of uninitialized read and
/// overflow".
///
/// Inputs: `[claimed_len, payload_len]`.
pub fn heartbleed() -> VulnApp {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let tls_session = pb.func("tls1_process_session");
    let heartbeat = pb.func("tls1_process_heartbeat");
    let dtls_write = pb.func("dtls1_write_bytes");
    let session = pb.slot();
    let reqbuf = pb.slot();

    // A completed TLS session leaves 36 KB of key material on the heap.
    pb.define(tls_session, |b| {
        b.alloc(session, AllocFn::Malloc, 36_000u64);
        b.write(session, 0u64, 36_000u64, SECRET_BYTE);
        b.free(session);
    });
    // The heartbeat response buffer: 34 KB, same allocation class (64 KB).
    pb.define(heartbeat, |b| {
        b.alloc(reqbuf, AllocFn::Malloc, 34_816u64);
        // memcpy(bp, pl, payload) — only the real payload is written.
        b.write(reqbuf, 0u64, Expr::Input(1), ATTACK_BYTE);
        b.call(dtls_write);
        b.free(reqbuf);
    });
    // dtls1_write_bytes sends `claimed_len` bytes back to the peer.
    pb.define(dtls_write, |b| {
        b.read(reqbuf, 0u64, Expr::Input(0), Sink::Leak);
    });
    pb.define(main, |b| {
        b.call(tls_session);
        b.call(heartbeat);
    });

    VulnApp {
        name: "heartbleed".into(),
        reference: "CVE-2014-0160".into(),
        expected: VulnFlags::UNINIT_READ | VulnFlags::OVERFLOW,
        program: pb.build(),
        benign_inputs: vec![vec![16, 16], vec![1024, 1024]],
        attack_inputs: vec![vec![65_535, 16], vec![40_000, 64]],
        success_markers: vec![vec![SECRET_BYTE; 16]],
    }
}

/// BugBench bc-1.06 — heap buffer overflow in `more_arrays`.
///
/// `bc` grows its array-of-arrays with a miscomputed element count; a long
/// enough expression overflows into adjacent interpreter state, hijacking
/// control data. Inputs: `[array_count, write_count]` (×8 bytes each).
pub fn bc() -> VulnApp {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let parse = pb.func("yyparse");
    let more_arrays = pb.func("more_arrays");
    let use_arrays = pb.func("execute");
    let arrays = pb.slot();
    let victim = pb.slot();

    pb.define(more_arrays, |b| {
        b.alloc(arrays, AllocFn::Malloc, Expr::Input(0).mul(Expr::Const(8)));
        // Interpreter control data allocated right after (same class).
        b.alloc(victim, AllocFn::Malloc, Expr::Input(0).mul(Expr::Const(8)));
        b.write(victim, 0u64, 8u64, 0x11);
        // The buggy copy: attacker controls the count.
        b.write(
            arrays,
            0u64,
            Expr::Input(1).mul(Expr::Const(8)),
            ATTACK_BYTE,
        );
    });
    pb.define(use_arrays, |b| {
        // The interpreter jumps through its (possibly corrupted) control
        // data.
        b.read(victim, 0u64, 8u64, Sink::Addr);
        b.read(victim, 0u64, 8u64, Sink::Leak);
        b.free(victim);
        b.free(arrays);
    });
    pb.define(parse, |b| b.call(more_arrays));
    pb.define(main, |b| {
        b.call(parse);
        b.call(use_arrays);
    });

    VulnApp {
        name: "bc-1.06".into(),
        reference: "BugBench".into(),
        expected: VulnFlags::OVERFLOW,
        program: pb.build(),
        benign_inputs: vec![vec![8, 8], vec![8, 4]],
        attack_inputs: vec![vec![8, 16], vec![8, 32]],
        success_markers: vec![vec![ATTACK_BYTE; 8]],
    }
}

/// CVE-2017-9740 — GhostXPS uninitialized read.
///
/// A color-conversion buffer is only partially initialized when the crafted
/// document claims fewer components than the buffer holds; the renderer then
/// `memcpy`s it into the output buffer, which is sent to the client. The
/// patchable context is the *color buffer's* — finding it requires tracing
/// the leaked bytes back through the copy (origin tracking, paper §V).
/// Inputs: `[_, initialized_len]`.
pub fn ghostxps() -> VulnApp {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let doc_setup = pb.func("xps_init_font_cache");
    let load = pb.func("xps_load_part");
    let parse_color = pb.func("xps_parse_color");
    let render = pb.func("xps_render_page");
    let cache = pb.slot();
    let colorbuf = pb.slot();
    let outbuf = pb.slot();

    // Earlier work leaves sensitive bytes in the 256-byte class.
    pb.define(doc_setup, |b| {
        b.alloc(cache, AllocFn::Malloc, 256u64);
        b.write(cache, 0u64, 256u64, SECRET_BYTE);
        b.free(cache);
    });
    pb.define(parse_color, |b| {
        b.alloc(colorbuf, AllocFn::Malloc, 256u64);
        // Only `input[1]` bytes are initialized from the document.
        b.write(colorbuf, 0u64, Expr::Input(1), 0x22);
        b.call(render);
        b.free(colorbuf);
    });
    pb.define(render, |b| {
        // The renderer copies the color data into the output page...
        b.alloc(outbuf, AllocFn::Calloc, 256u64);
        b.copy(colorbuf, 0u64, outbuf, 0u64, 256u64);
        // ...which is written to the produced document.
        b.read(outbuf, 0u64, 256u64, Sink::Leak);
        b.free(outbuf);
    });
    pb.define(load, |b| b.call(parse_color));
    pb.define(main, |b| {
        b.call(doc_setup);
        b.call(load);
    });

    VulnApp {
        name: "ghostxps-9.21".into(),
        reference: "CVE-2017-9740".into(),
        expected: VulnFlags::UNINIT_READ,
        program: pb.build(),
        benign_inputs: vec![vec![0, 256]],
        attack_inputs: vec![vec![0, 64], vec![0, 8]],
        success_markers: vec![vec![SECRET_BYTE; 8]],
    }
}

/// CVE-2015-7801 — OptiPNG use after free.
///
/// A malformed PNG frees an image-row object on an error path but keeps
/// using it; the attacker's subsequent chunk data reclaims the block, so the
/// dangling virtual call dispatches through attacker bytes. Inputs:
/// `[trigger_error_path]`.
pub fn optipng() -> VulnApp {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let decode = pb.func("png_decode_image");
    let chunk = pb.func("opng_handle_chunk");
    let spray_fn = pb.func("png_handle_unknown");
    let finish = pb.func("opng_finish");
    let obj = pb.slot();
    let spray = pb.slot();

    pb.define(chunk, |b| {
        b.alloc(obj, AllocFn::Malloc, 48u64);
        b.write(obj, 0u64, 48u64, 0x11);
        // The bug: an error path frees the object that stays referenced.
        b.when(Expr::Input(0), |b| b.free(obj));
    });
    pb.define(spray_fn, |b| {
        // Attacker-controlled chunk payload lands in the freed class.
        b.alloc(spray, AllocFn::Malloc, 48u64);
        b.write(spray, 0u64, 48u64, SPRAY_BYTE);
    });
    pb.define(finish, |b| {
        // Dangling virtual dispatch.
        b.read(obj, 0u64, 8u64, Sink::Addr);
        b.read(obj, 0u64, 8u64, Sink::Leak);
        b.free(spray);
    });
    pb.define(decode, |b| b.call(chunk));
    pb.define(main, |b| {
        b.call(decode);
        b.call(spray_fn);
        b.call(finish);
    });

    VulnApp {
        name: "optipng-0.6.4".into(),
        reference: "CVE-2015-7801".into(),
        expected: VulnFlags::USE_AFTER_FREE,
        program: pb.build(),
        benign_inputs: vec![vec![0]],
        attack_inputs: vec![vec![1]],
        success_markers: vec![vec![SPRAY_BYTE; 8]],
    }
}

/// CVE-2017-9935 — LibTIFF `t2p_write_pdf` heap overflow.
///
/// The PDF transcoder sizes a buffer with `realloc` from a field the crafted
/// TIFF controls, then writes more than it reserved, corrupting the adjacent
/// object. Inputs: `[reserved_count, write_count]` (×8 bytes each).
pub fn tiff() -> VulnApp {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let open = pb.func("TIFFOpen");
    let write_pdf = pb.func("t2p_write_pdf");
    let sample = pb.func("t2p_readwrite_pdf_image");
    let pdfbuf = pb.slot();
    let victim = pb.slot();

    pb.define(open, |_| {});
    pb.define(write_pdf, |b| {
        // realloc(NULL, n) — the transcoder's growing output buffer.
        b.realloc(pdfbuf, Expr::Input(0).mul(Expr::Const(8)));
        b.alloc(victim, AllocFn::Malloc, Expr::Input(0).mul(Expr::Const(8)));
        b.write(victim, 0u64, 8u64, 0x11);
        b.call(sample);
    });
    pb.define(sample, |b| {
        // The under-accounted write.
        b.write(
            pdfbuf,
            0u64,
            Expr::Input(1).mul(Expr::Const(8)),
            ATTACK_BYTE,
        );
        b.read(victim, 0u64, 8u64, Sink::Leak);
        b.free(victim);
        b.free(pdfbuf);
    });
    pb.define(main, |b| {
        b.call(open);
        b.call(write_pdf);
    });

    VulnApp {
        name: "tiff-4.0.8".into(),
        reference: "CVE-2017-9935".into(),
        expected: VulnFlags::OVERFLOW,
        program: pb.build(),
        benign_inputs: vec![vec![8, 8]],
        attack_inputs: vec![vec![8, 24]],
        success_markers: vec![vec![ATTACK_BYTE; 8]],
    }
}

/// CVE-2018-7253 — WavPack use after free in the DSD header parser.
///
/// A malformed DSD header frees the decoder context on a parse error but the
/// unpacker still dereferences it after the attacker's audio payload has
/// reclaimed the block. Inputs: `[trigger_error_path]`.
pub fn wavpack() -> VulnApp {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let open = pb.func("WavpackOpenFileInputEx64");
    let read_hdr = pb.func("read_wavpack_header");
    let parse_dsd = pb.func("ParseDsdiffHeaderConfig");
    let unpack = pb.func("WavpackUnpackSamples");
    let payload = pb.func("read_audio_block");
    let ctx = pb.slot();
    let audio = pb.slot();

    pb.define(parse_dsd, |b| {
        b.alloc(ctx, AllocFn::Malloc, 80u64);
        b.write(ctx, 0u64, 80u64, 0x11);
        b.when(Expr::Input(0), |b| b.free(ctx));
    });
    pb.define(read_hdr, |b| b.call(parse_dsd));
    pb.define(open, |b| b.call(read_hdr));
    pb.define(payload, |b| {
        b.alloc(audio, AllocFn::Malloc, 80u64);
        b.write(audio, 0u64, 80u64, SPRAY_BYTE);
    });
    pb.define(unpack, |b| {
        b.read(ctx, 0u64, 8u64, Sink::Addr);
        b.read(ctx, 0u64, 8u64, Sink::Leak);
        b.free(audio);
    });
    pb.define(main, |b| {
        b.call(open);
        b.call(payload);
        b.call(unpack);
    });

    VulnApp {
        name: "wavpack-5.1.0".into(),
        reference: "CVE-2018-7253".into(),
        expected: VulnFlags::USE_AFTER_FREE,
        program: pb.build(),
        benign_inputs: vec![vec![0]],
        attack_inputs: vec![vec![1]],
        success_markers: vec![vec![SPRAY_BYTE; 8]],
    }
}

/// CVE-2018-7877 — libming heap overflow (`calloc`'d buffer).
///
/// The SWF MP3 parser `calloc`s a frame table sized from one header field
/// but fills it using another; a crafted file overflows into the adjacent
/// movie object. Inputs: `[frame_count, write_count]` (×4 bytes each).
pub fn libming() -> VulnApp {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let parse = pb.func("parseSWF_DEFINESOUND");
    let mp3 = pb.func("writeMp3Headers");
    let frames = pb.slot();
    let victim = pb.slot();

    pb.define(mp3, |b| {
        b.alloc(frames, AllocFn::Calloc, Expr::Input(0).mul(Expr::Const(4)));
        b.alloc(victim, AllocFn::Malloc, Expr::Input(0).mul(Expr::Const(4)));
        b.write(victim, 0u64, 8u64, 0x11);
        b.write(
            frames,
            0u64,
            Expr::Input(1).mul(Expr::Const(4)),
            ATTACK_BYTE,
        );
        b.read(victim, 0u64, 8u64, Sink::Leak);
        b.free(victim);
        b.free(frames);
    });
    pb.define(parse, |b| b.call(mp3));
    pb.define(main, |b| b.call(parse));

    VulnApp {
        name: "libming-0.4.8".into(),
        reference: "CVE-2018-7877".into(),
        expected: VulnFlags::OVERFLOW,
        program: pb.build(),
        benign_inputs: vec![vec![16, 16]],
        attack_inputs: vec![vec![16, 48]],
        success_markers: vec![vec![ATTACK_BYTE; 8]],
    }
}

/// §IX's hard case: one vulnerability exploitable through **multiple
/// calling contexts**.
///
/// Two request handlers share the buggy copy routine; an attacker who finds
/// the first context patched simply drives the exploit down the second. The
/// paper's answer is another defense-generation cycle per new context —
/// exercised by `HeapTherapy::iterative_cycle`.
///
/// Inputs: `[path_selector, element_count, write_count]`.
pub fn multi_context_overflow() -> VulnApp {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let handler_a = pb.func("handle_get");
    let handler_b = pb.func("handle_post");
    let copy = pb.func("buggy_copy");
    let buf = pb.slot();
    let victim = pb.slot();

    pb.define(copy, |b| {
        b.alloc(buf, AllocFn::Malloc, Expr::Input(1).mul(Expr::Const(8)));
        b.alloc(victim, AllocFn::Malloc, Expr::Input(1).mul(Expr::Const(8)));
        b.write(victim, 0u64, 8u64, 0x11);
        b.write(buf, 0u64, Expr::Input(2).mul(Expr::Const(8)), ATTACK_BYTE);
        b.read(victim, 0u64, 8u64, Sink::Leak);
        b.free(victim);
        b.free(buf);
    });
    pb.define(handler_a, |b| b.call(copy));
    pb.define(handler_b, |b| b.call(copy));
    pb.define(main, |b| {
        b.if_else(Expr::Input(0), |b| b.call(handler_a), |b| b.call(handler_b));
    });

    VulnApp {
        name: "multictx-overflow".into(),
        reference: "§IX multi-CCID".into(),
        expected: VulnFlags::OVERFLOW,
        program: pb.build(),
        benign_inputs: vec![vec![1, 8, 8], vec![0, 8, 8]],
        // Two attack instances exploiting the SAME bug through DIFFERENT
        // contexts.
        attack_inputs: vec![vec![1, 8, 24], vec![0, 8, 24]],
        success_markers: vec![vec![ATTACK_BYTE; 8]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_callgraph::Strategy;
    use ht_encoding::{InstrumentationPlan, Scheme};
    use ht_simprog::{Interpreter, PlainBackend};

    /// Undefended, every model's attack must actually work, and every
    /// benign input must stay clean — the Table II baseline.
    #[test]
    fn attacks_succeed_and_benign_runs_are_clean_undefended() {
        for app in crate::table2_suite() {
            let plan =
                InstrumentationPlan::build(app.program.graph(), Strategy::Incremental, Scheme::Pcc);
            for attack in &app.attack_inputs {
                let rep = Interpreter::new(&app.program, &plan, PlainBackend::new()).run(attack);
                assert!(
                    app.attack_succeeded(&rep),
                    "{}: attack {attack:?} should succeed undefended (outcome {:?})",
                    app.name,
                    rep.outcome
                );
            }
            for benign in &app.benign_inputs {
                let rep = Interpreter::new(&app.program, &plan, PlainBackend::new()).run(benign);
                assert!(
                    rep.outcome.is_completed(),
                    "{}: benign {benign:?} must complete: {:?}",
                    app.name,
                    rep.outcome
                );
                assert!(
                    !app.attack_succeeded(&rep),
                    "{}: benign {benign:?} must not trip the success marker",
                    app.name
                );
            }
        }
    }

    #[test]
    fn heartbleed_leaks_secret_undefended() {
        let app = heartbleed();
        let plan = InstrumentationPlan::build(app.program.graph(), Strategy::Slim, Scheme::Pcc);
        let rep =
            Interpreter::new(&app.program, &plan, PlainBackend::new()).run(&app.attack_inputs[0]);
        let secret_bytes = rep.leaked.iter().filter(|&&b| b == SECRET_BYTE).count();
        assert!(
            secret_bytes > 30_000,
            "bulk of the session key material leaks: {secret_bytes}"
        );
    }

    #[test]
    fn single_roots() {
        for app in crate::table2_suite() {
            assert_eq!(
                app.program.graph().roots(),
                vec![app.program.entry()],
                "{}",
                app.name
            );
        }
    }
}
