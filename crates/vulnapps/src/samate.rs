//! The SAMATE-style dataset: 23 generated heap-vulnerability cases.
//!
//! NIST's SAMATE dataset (paper Table II) holds 23 small C programs with
//! heap overflow, use-after-free, and uninitialized-read bugs. This module
//! generates 23 equivalent modeled cases as a cross-product of vulnerability
//! class × allocation API × calling-context depth, so the pipeline is
//! exercised for every `(FUN, T)` combination the online defense supports.

use crate::{VulnApp, ATTACK_BYTE, SECRET_BYTE, SPRAY_BYTE};
use ht_callgraph::FuncId;
use ht_patch::{AllocFn, VulnFlags};
use ht_simprog::{Expr, ProgramBuilder, Sink};

/// The vulnerability shapes in the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    OverflowWrite,
    OverflowRead,
    UafRead,
    UafWrite,
    UninitRead,
}

impl Shape {
    fn expected(self) -> VulnFlags {
        match self {
            Shape::OverflowWrite | Shape::OverflowRead => VulnFlags::OVERFLOW,
            Shape::UafRead | Shape::UafWrite => VulnFlags::USE_AFTER_FREE,
            Shape::UninitRead => VulnFlags::UNINIT_READ,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Shape::OverflowWrite => "of-write",
            Shape::OverflowRead => "of-read",
            Shape::UafRead => "uaf-read",
            Shape::UafWrite => "uaf-write",
            Shape::UninitRead => "uninit-read",
        }
    }
}

/// Buffer size used by every case.
const SIZE: u64 = 64;
/// Alignment for the memalign cases.
const ALIGN: u64 = 16;

/// A neighbour size that lands in the same inner size class as the
/// vulnerable buffer, so overflows reach it on the undefended substrate.
/// `memalign` pads its request by the alignment, bumping the class.
fn neighbour_size(fun: AllocFn) -> u64 {
    match fun {
        AllocFn::Memalign => 100, // class(64+16)=128 → neighbour in class 128
        _ => 48,                  // class(64)=64   → neighbour in class 64
    }
}

/// Builds one case. Inputs: `[trigger, len]` — `trigger` gates the buggy
/// free (UAF shapes); `len` is the attacker-controlled access length
/// (overflow shapes) or initialized prefix (UR shape).
fn case(index: usize, shape: Shape, fun: AllocFn, depth: usize) -> VulnApp {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let buf = pb.slot();
    let other = pb.slot();

    // A chain of `depth` wrappers in front of the vulnerable function gives
    // each case a distinct, non-trivial calling context.
    let mut chain: Vec<FuncId> = Vec::new();
    for d in 0..depth {
        chain.push(pb.func(format!("samate{index}_wrap{d}")));
    }
    let vuln_fn = pb.func(format!("samate{index}_{}", shape.name()));
    for w in chain.windows(2) {
        let (a, b) = (w[0], w[1]);
        pb.define(a, move |bb| bb.call(b));
    }
    if let (Some(&first), Some(&last)) = (chain.first(), chain.last()) {
        pb.define(last, move |bb| bb.call(vuln_fn));
        pb.define(main, move |bb| bb.call(first));
    } else {
        pb.define(main, move |bb| bb.call(vuln_fn));
    }

    let alloc_into = move |bb: &mut ht_simprog::BodyBuilder<'_>, slot, size: u64| match fun {
        AllocFn::Memalign => bb.memalign(slot, ALIGN, size),
        AllocFn::Realloc => bb.realloc(slot, size),
        f => bb.alloc(slot, f, size),
    };

    match shape {
        Shape::OverflowWrite => pb.define(vuln_fn, move |b| {
            alloc_into(b, buf, SIZE);
            b.alloc(other, AllocFn::Malloc, neighbour_size(fun));
            b.write(other, 0u64, 8u64, 0x11);
            b.write(buf, 0u64, Expr::Input(1), ATTACK_BYTE);
            b.read(other, 0u64, 8u64, Sink::Leak);
            b.free(other);
            b.free(buf);
        }),
        Shape::OverflowRead => pb.define(vuln_fn, move |b| {
            alloc_into(b, buf, SIZE);
            b.write(buf, 0u64, SIZE, 0x22);
            b.alloc(other, AllocFn::Malloc, neighbour_size(fun));
            b.write(other, 0u64, neighbour_size(fun), SECRET_BYTE);
            b.read(buf, 0u64, Expr::Input(1), Sink::Leak);
            b.free(other);
            b.free(buf);
        }),
        Shape::UafRead => pb.define(vuln_fn, move |b| {
            alloc_into(b, buf, SIZE);
            b.write(buf, 0u64, SIZE, 0x11);
            b.when(Expr::Input(0), |b| b.free(buf));
            alloc_into(b, other, SIZE);
            b.write(other, 0u64, SIZE, SPRAY_BYTE);
            b.read(buf, 0u64, 8u64, Sink::Addr);
            b.read(buf, 0u64, 8u64, Sink::Leak);
            b.free(other);
        }),
        Shape::UafWrite => pb.define(vuln_fn, move |b| {
            alloc_into(b, buf, SIZE);
            b.write(buf, 0u64, SIZE, 0x11);
            b.when(Expr::Input(0), |b| b.free(buf));
            // Critical data reclaims the block...
            alloc_into(b, other, SIZE);
            b.write(other, 0u64, SIZE, 0x11);
            // ...and the dangling write corrupts it.
            b.write(buf, 0u64, 8u64, SPRAY_BYTE);
            b.read(other, 0u64, 8u64, Sink::Leak);
            b.free(other);
        }),
        Shape::UninitRead => pb.define(vuln_fn, move |b| {
            // Seed the class with secret data through the same API/size.
            alloc_into(b, other, SIZE);
            b.write(other, 0u64, SIZE, SECRET_BYTE);
            b.free(other);
            alloc_into(b, buf, SIZE);
            b.write(buf, 0u64, Expr::Input(1), 0x22);
            b.read(buf, 0u64, SIZE, Sink::Leak);
            b.free(buf);
        }),
    }

    let (benign, attack) = match shape {
        Shape::OverflowWrite => (vec![0, SIZE], vec![0, 4 * SIZE]),
        Shape::OverflowRead => (vec![0, SIZE], vec![0, 5 * SIZE]),
        Shape::UafRead | Shape::UafWrite => (vec![0, 0], vec![1, 0]),
        Shape::UninitRead => (vec![0, SIZE], vec![0, 8]),
    };
    let marker = match shape {
        Shape::OverflowWrite => vec![ATTACK_BYTE; 8],
        Shape::OverflowRead => vec![SECRET_BYTE; 8],
        Shape::UafRead | Shape::UafWrite => vec![SPRAY_BYTE; 8],
        Shape::UninitRead => vec![SECRET_BYTE; 8],
    };

    VulnApp {
        name: format!("samate-{index:02}-{}-{}", shape.name(), fun.name()),
        reference: "SAMATE".into(),
        expected: shape.expected(),
        program: pb.build(),
        benign_inputs: vec![benign],
        attack_inputs: vec![attack],
        success_markers: vec![marker],
    }
}

/// The 23 SAMATE-style cases.
///
/// 4 overflow-write + 4 overflow-read + 4 UAF-read + 4 UAF-write (one per
/// allocation API each) + 3 uninitialized-read (`calloc` is inherently
/// initialized) + 4 deep-calling-context variants.
pub fn suite() -> Vec<VulnApp> {
    let apis = [
        AllocFn::Malloc,
        AllocFn::Calloc,
        AllocFn::Memalign,
        AllocFn::Realloc,
    ];
    let mut out = Vec::new();
    let mut idx = 1;
    for shape in [
        Shape::OverflowWrite,
        Shape::OverflowRead,
        Shape::UafRead,
        Shape::UafWrite,
    ] {
        for fun in apis {
            out.push(case(idx, shape, fun, 1));
            idx += 1;
        }
    }
    for fun in [AllocFn::Malloc, AllocFn::Memalign, AllocFn::Realloc] {
        out.push(case(idx, Shape::UninitRead, fun, 1));
        idx += 1;
    }
    // Deep-context variants: same bugs behind 4-deep call chains.
    out.push(case(idx, Shape::OverflowWrite, AllocFn::Malloc, 4));
    idx += 1;
    out.push(case(idx, Shape::UafRead, AllocFn::Malloc, 4));
    idx += 1;
    out.push(case(idx, Shape::UninitRead, AllocFn::Malloc, 4));
    idx += 1;
    out.push(case(idx, Shape::OverflowRead, AllocFn::Calloc, 4));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_twenty_three_cases() {
        let s = suite();
        assert_eq!(s.len(), 23);
    }

    #[test]
    fn covers_every_api_and_class() {
        let s = suite();
        for fun in [
            AllocFn::Malloc,
            AllocFn::Calloc,
            AllocFn::Memalign,
            AllocFn::Realloc,
        ] {
            assert!(
                s.iter().any(|a| a.name.contains(fun.name())),
                "{fun} missing"
            );
        }
        for cls in [
            VulnFlags::OVERFLOW,
            VulnFlags::USE_AFTER_FREE,
            VulnFlags::UNINIT_READ,
        ] {
            assert!(s.iter().any(|a| a.expected == cls));
        }
    }

    #[test]
    fn no_calloc_uninit_read_case() {
        // calloc memory is zero-initialized by definition.
        assert!(!suite()
            .iter()
            .any(|a| a.expected == VulnFlags::UNINIT_READ && a.name.contains("calloc")));
    }
}
