//! Modeled vulnerable programs — the paper's Table II effectiveness suite.
//!
//! Each function returns a [`VulnApp`]: a modeled program reproducing the
//! *heap behaviour* of a real CVE (buffer sizes, vulnerable calling context,
//! attack-input parameterization), together with benign and attack inputs and
//! the ground-truth vulnerability class.
//!
//! | model | vulnerability | reproduces |
//! |---|---|---|
//! | [`heartbleed`] | UR & overflow (overread) | CVE-2014-0160 |
//! | [`bc`] | overflow (overwrite) | BugBench bc-1.06 |
//! | [`ghostxps`] | uninitialized read | CVE-2017-9740 |
//! | [`optipng`] | use after free | CVE-2015-7801 |
//! | [`tiff`] | overflow via `realloc` | CVE-2017-9935 |
//! | [`wavpack`] | use after free | CVE-2018-7253 |
//! | [`libming`] | overflow in `calloc` buffer | CVE-2018-7877 |
//! | [`samate::suite`] | 23 mixed cases | NIST SAMATE dataset |
//!
//! Attack success is judged from observable effects: bytes that reach the
//! attacker ([`RunReport::leaked`]) containing either the victim's secret or
//! the attacker's injected marker.
//!
//! [`RunReport::leaked`]: ht_simprog::RunReport

#![forbid(unsafe_code)]

pub mod samate;

mod apps;

pub use apps::{bc, ghostxps, heartbleed, libming, multi_context_overflow, optipng, tiff, wavpack};

use ht_patch::VulnFlags;
use ht_simprog::{Program, RunReport};

/// The byte the victim's secret data is filled with (`'S'`).
pub const SECRET_BYTE: u8 = 0x53;
/// The byte attacker-controlled payloads are filled with (`'A'`).
pub const ATTACK_BYTE: u8 = 0x41;
/// The byte attacker-sprayed heap data is filled with (`'f'`).
pub const SPRAY_BYTE: u8 = 0x66;

/// A modeled vulnerable application.
#[derive(Debug)]
pub struct VulnApp {
    /// Short model name (`"heartbleed"`, `"bc-1.06"`, ...).
    pub name: String,
    /// The CVE or dataset reference the model reproduces.
    pub reference: String,
    /// Ground-truth vulnerability class(es).
    pub expected: VulnFlags,
    /// The modeled program.
    pub program: Program,
    /// Inputs a legitimate user would send.
    pub benign_inputs: Vec<Vec<u64>>,
    /// Inputs that exploit the vulnerability. The first is used for patch
    /// generation; the rest verify the deployed patch against *different*
    /// attack instances (as the paper does for Heartbleed).
    pub attack_inputs: Vec<Vec<u64>>,
    /// Byte patterns whose appearance in the leak stream means the attack
    /// achieved its goal (stolen secret or successful hijack/corruption).
    pub success_markers: Vec<Vec<u8>>,
}

impl VulnApp {
    /// Judges whether a run's observable effects mean the attack succeeded.
    ///
    /// A crashed run never counts as success: turning an exploit into a
    /// clean denial of service is exactly what the paper's defenses do.
    pub fn attack_succeeded(&self, report: &RunReport) -> bool {
        self.success_markers
            .iter()
            .any(|m| contains_subslice(&report.leaked, m))
    }

    /// The attack input used for offline patch generation.
    pub fn patching_input(&self) -> &[u64] {
        &self.attack_inputs[0]
    }
}

/// Naive subslice search (leak streams are small).
pub(crate) fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// Every Table II model: the seven CVE programs plus the 23 SAMATE cases.
pub fn table2_suite() -> Vec<VulnApp> {
    let mut v = vec![
        heartbleed(),
        bc(),
        ghostxps(),
        optipng(),
        tiff(),
        wavpack(),
        libming(),
    ];
    v.extend(samate::suite());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subslice_search() {
        assert!(contains_subslice(b"hello world", b"lo wo"));
        assert!(!contains_subslice(b"hello", b"world"));
        assert!(!contains_subslice(b"hello", b""));
        assert!(contains_subslice(b"abc", b"abc"));
        assert!(!contains_subslice(b"ab", b"abc"));
    }

    #[test]
    fn suite_is_thirty() {
        let suite = table2_suite();
        assert_eq!(suite.len(), 30, "7 CVE models + 23 SAMATE cases");
        for app in &suite {
            assert!(!app.attack_inputs.is_empty(), "{}", app.name);
            assert!(!app.benign_inputs.is_empty(), "{}", app.name);
            assert!(!app.success_markers.is_empty(), "{}", app.name);
            assert!(!app.expected.is_empty(), "{}", app.name);
        }
    }

    #[test]
    fn suite_names_are_unique() {
        let suite = table2_suite();
        let mut names: Vec<&str> = suite.iter().map(|a| a.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }
}
