//! Runtime attack telemetry across the Table II corpus.
//!
//! Not a table of the paper, but the paper's Section VII claim made
//! measurable: every model whose defense fires must file exactly one
//! attack report per distinct `(FUN, CCID, T)`, with the calling context
//! decoded back from the CCID (the corpus runs under the additive precise
//! encoding so decoding succeeds). The rows also surface what the
//! observability costs: events delivered/dropped per app and the offline
//! vs protected-replay phase wall-clock.

use heaptherapy_core::{AppTelemetry, HeapTherapy, PipelineConfig};
use ht_encoding::Scheme;
use ht_jsonio::{Json, ToJson};

/// Gathers telemetry from every Table II model, `threads` apps at a time.
/// Rows are input-order deterministic (each app's cycle is independent).
pub fn rows(threads: usize) -> Vec<AppTelemetry> {
    let ht = HeapTherapy::new(PipelineConfig {
        scheme: Scheme::Additive,
        ..PipelineConfig::default()
    });
    ht_par::par_map(threads, &ht_vulnapps::table2_suite(), |_, app| {
        ht.attack_telemetry(app)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name))
    })
}

/// Microseconds spent in the offline phases (everything but `protected`).
fn offline_micros(t: &AppTelemetry) -> u64 {
    let protected = t.timeline.get("protected").map_or(0, |s| s.micros);
    t.timeline.total_micros() - protected
}

/// One text-table row per app.
pub fn table_row(t: &AppTelemetry) -> String {
    let decoded = t
        .reports
        .iter()
        .filter(|r| !r.call_chain.is_empty())
        .count();
    format!(
        "{:<28} reports={:<2} decoded={:<2} hits={:<5} events={:<5} dropped={:<3} offline={:>8.3}ms protected={:>8.3}ms",
        t.app,
        t.reports.len(),
        decoded,
        t.per_patch.iter().map(|p| p.hits).sum::<u64>(),
        t.delivered,
        t.dropped,
        offline_micros(t) as f64 / 1000.0,
        t.timeline.get("protected").map_or(0, |s| s.micros) as f64 / 1000.0,
    )
}

/// Whether every app's reports are unique per `(FUN, CCID, T)` — the
/// tentpole's once-only property.
pub fn reports_are_unique(rows: &[AppTelemetry]) -> bool {
    rows.iter().all(|t| {
        let mut keys: Vec<_> = t.reports.iter().map(|r| (r.fun, r.ccid, r.vuln)).collect();
        let n = keys.len();
        keys.sort_unstable();
        keys.dedup();
        keys.len() == n
    })
}

/// A one-line verdict over all rows.
pub fn summary(rows: &[AppTelemetry]) -> String {
    let total_reports: usize = rows.iter().map(|t| t.reports.len()).sum();
    let with_reports = rows.iter().filter(|t| !t.reports.is_empty()).count();
    let decoded: usize = rows
        .iter()
        .flat_map(|t| &t.reports)
        .filter(|r| !r.call_chain.is_empty())
        .count();
    let dropped: u64 = rows.iter().map(|t| t.dropped).sum();
    format!(
        "{} apps: {with_reports} filed reports ({total_reports} total, {decoded} with decoded \
         contexts), one per (FUN, CCID, T) = {}, {dropped} events dropped",
        rows.len(),
        reports_are_unique(rows),
    )
}

/// Machine-readable export for the CI smoke job.
pub fn to_json(rows: &[AppTelemetry]) -> Json {
    let total_reports: u64 = rows.iter().map(|t| t.reports.len() as u64).sum();
    let with_reports = rows.iter().filter(|t| !t.reports.is_empty()).count() as u64;
    Json::Obj(vec![
        ("apps".into(), Json::U64(rows.len() as u64)),
        ("apps_with_reports".into(), Json::U64(with_reports)),
        ("total_reports".into(), Json::U64(total_reports)),
        (
            "reports_unique_per_key".into(),
            Json::Bool(reports_are_unique(rows)),
        ),
        (
            "rows".into(),
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_files_unique_decodable_reports() {
        let rows = rows(2);
        assert_eq!(rows.len(), 30);
        assert!(reports_are_unique(&rows));
        // Every Table II model's attack drives a patched context, so every
        // app files at least one report...
        for t in &rows {
            assert!(!t.reports.is_empty(), "{}: no defense activated", t.app);
            // ...and under the additive encoding its context decodes.
            for r in &t.reports {
                assert!(
                    !r.call_chain.is_empty(),
                    "{}: undecoded report {r:?}",
                    t.app
                );
            }
        }
        let j = to_json(&rows);
        assert_eq!(j.get("apps").and_then(Json::as_u64), Some(30));
        assert!(j.get("total_reports").and_then(Json::as_u64).unwrap() >= 30);
        let parsed = Json::parse(&j.to_pretty()).expect("self-emitted JSON parses");
        assert_eq!(parsed, j);
    }

    #[test]
    fn rows_are_deterministic_across_thread_counts() {
        let serial = rows(1);
        let parallel = rows(4);
        let key = |ts: &[AppTelemetry]| -> Vec<(String, usize, u64)> {
            ts.iter()
                .map(|t| {
                    (
                        t.app.clone(),
                        t.reports.len(),
                        t.per_patch.iter().map(|p| p.hits).sum(),
                    )
                })
                .collect()
        };
        assert_eq!(key(&serial), key(&parallel));
    }
}
