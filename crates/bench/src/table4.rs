//! Table IV — SPEC CPU2006 heap allocation statistics.
//!
//! The models replay the paper's per-API allocation mix at a configurable
//! fraction of the original volume; this module verifies the replayed
//! counts and prints them against the paper's.

use ht_callgraph::Strategy;
use ht_encoding::{InstrumentationPlan, Scheme};
use ht_simprog::interp::run_plain;
use ht_simprog::spec::{build_spec_workload, spec_suite};

/// One row: paper counts and replayed counts.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Paper `malloc` / `calloc` / `realloc` counts.
    pub paper: [u64; 3],
    /// Replayed counts at the requested fraction.
    pub replayed: [u64; 3],
}

/// Replays each benchmark at `fraction` of its Table IV volume, `threads`
/// benchmarks at a time (replays are independent; row order is
/// deterministic).
pub fn rows(threads: usize, fraction: f64) -> Vec<Table4Row> {
    ht_par::par_map(threads, &spec_suite(), |_, &bench| {
        let w = build_spec_workload(bench);
        let plan =
            InstrumentationPlan::build(w.program.graph(), Strategy::Incremental, Scheme::Pcc);
        let rep = run_plain(&w.program, &plan, &w.input_for_fraction(fraction));
        Table4Row {
            bench: bench.name,
            paper: [bench.mallocs, bench.callocs, bench.reallocs],
            replayed: [rep.allocs.malloc, rep.allocs.calloc, rep.allocs.realloc],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_mix_tracks_the_paper() {
        for r in rows(2, 2e-6) {
            // Whichever API dominates in the paper dominates in the replay.
            let paper_max = (0..3).max_by_key(|&i| r.paper[i]).unwrap();
            let replay_max = (0..3).max_by_key(|&i| r.replayed[i]).unwrap();
            let total: u64 = r.replayed.iter().sum();
            assert!(total > 0, "{}", r.bench);
            if r.paper[paper_max] > 10 * r.paper.iter().sum::<u64>() / 20 {
                assert_eq!(paper_max, replay_max, "{}: {:?}", r.bench, r.replayed);
            }
            // APIs unused in the paper stay unused in the replay (modulo the
            // malloc piggyback of realloc contexts).
            if r.paper[1] == 0 {
                assert_eq!(r.replayed[1], 0, "{}: spurious callocs", r.bench);
            }
            if r.paper[2] == 0 {
                assert_eq!(r.replayed[2], 0, "{}: spurious reallocs", r.bench);
            }
        }
    }
}
