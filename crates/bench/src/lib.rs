//! Experiment harness: regenerates every table and figure of the
//! HeapTherapy+ evaluation (paper Section VIII).
//!
//! Each `expN` module produces the rows of one paper artifact; the
//! `reproduce` binary prints them next to the paper's reported numbers, and
//! the Criterion benches in `benches/` measure the timing-based ones
//! statistically. Absolute numbers differ from the paper (the substrate is a
//! simulator, not the authors' Xeon) — the *shape* is what reproduces.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig2`] | Fig. 2 — instrumentation of the example graph |
//! | [`table1`] | Table I — buffer structure selection |
//! | [`table2`] | Table II — effectiveness on the vulnerable programs |
//! | [`table3`] | Table III — binary size increase per encoding |
//! | [`table4`] | Table IV — SPEC heap allocation statistics |
//! | [`encoding`] | §VIII-B1 — encoding runtime overhead |
//! | [`fig8`] | Fig. 8 — runtime overhead vs. patch count |
//! | [`fig9`] | Fig. 9 — memory overhead |
//! | [`services`] | §VIII-B2 — Nginx/MySQL throughput |
//! | [`ablation`] | design-choice ablations (stack walking, guard-all, quota, lookup) |
//! | [`lint`] | static triage — static-vs-dynamic agreement on the Table II suite |
//! | [`scaling`] | multi-threaded allocation-throughput scaling (not in the paper) |
//! | [`shadow`] | offline-replay kernel throughput, word vs. reference (not in the paper) |

pub mod ablation;
pub mod encoding;
pub mod fig2;
pub mod fig8;
pub mod fig9;
pub mod lint;
pub mod scaling;
pub mod services;
pub mod shadow;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

use std::time::Instant;

/// Median-of-`n` wall-time measurement of `f`, in seconds.
///
/// Runs one untimed warm-up iteration first so cold-start effects (page
/// faults, lazy allocations, branch-predictor training) land outside the
/// measured samples.
pub fn time_median<F: FnMut()>(n: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..n.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Percent overhead of `x` over baseline `base`.
pub fn overhead_pct(base: f64, x: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    100.0 * (x - base) / base
}
