//! Experiment harness: regenerates every table and figure of the
//! HeapTherapy+ evaluation (paper Section VIII).
//!
//! Each `expN` module produces the rows of one paper artifact; the
//! `reproduce` binary prints them next to the paper's reported numbers, and
//! the Criterion benches in `benches/` measure the timing-based ones
//! statistically. Absolute numbers differ from the paper (the substrate is a
//! simulator, not the authors' Xeon) — the *shape* is what reproduces.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig2`] | Fig. 2 — instrumentation of the example graph |
//! | [`table1`] | Table I — buffer structure selection |
//! | [`table2`] | Table II — effectiveness on the vulnerable programs |
//! | [`table3`] | Table III — binary size increase per encoding |
//! | [`table4`] | Table IV — SPEC heap allocation statistics |
//! | [`encoding`] | §VIII-B1 — encoding runtime overhead |
//! | [`fig8`] | Fig. 8 — runtime overhead vs. patch count |
//! | [`fig9`] | Fig. 9 — memory overhead |
//! | [`services`] | §VIII-B2 — Nginx/MySQL throughput |
//! | [`ablation`] | design-choice ablations (stack walking, guard-all, quota, lookup) |
//! | [`lint`] | static triage — static-vs-dynamic agreement on the Table II suite |
//! | [`scaling`] | multi-threaded allocation-throughput scaling (not in the paper) |
//! | [`shadow`] | offline-replay kernel throughput, word vs. reference (not in the paper) |
//! | [`telemetry`] | §VII — one-time attack reports across the Table II corpus |

pub mod ablation;
pub mod encoding;
pub mod fig2;
pub mod fig8;
pub mod fig9;
pub mod lint;
pub mod scaling;
pub mod services;
pub mod shadow;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod telemetry;

use std::time::Instant;

/// Median-of-`n` wall-time measurement of `f`, in seconds.
///
/// Runs one untimed warm-up iteration first so cold-start effects (page
/// faults, lazy allocations, branch-predictor training) land outside the
/// measured samples.
pub fn time_median<F: FnMut()>(n: usize, mut f: F) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..n.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // True median: even-length samples average the two middle elements
    // (indexing `len / 2` alone would bias toward the slower half).
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

/// Percent overhead of `x` over baseline `base`.
pub fn overhead_pct(base: f64, x: f64) -> f64 {
    if base <= 0.0 {
        return 0.0;
    }
    100.0 * (x - base) / base
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    /// A closure whose i-th invocation sleeps `schedule[i]` milliseconds
    /// (cycling), so the sorted sample vector is fully deterministic in
    /// *rank order* even if absolute timings jitter.
    fn staged(schedule: &'static [u64]) -> (impl FnMut(), std::rc::Rc<Cell<usize>>) {
        let calls = std::rc::Rc::new(Cell::new(0usize));
        let c = calls.clone();
        let f = move || {
            let i = c.get();
            c.set(i + 1);
            std::thread::sleep(std::time::Duration::from_millis(
                schedule[i % schedule.len()],
            ));
        };
        (f, calls)
    }

    #[test]
    fn warm_up_iteration_is_excluded_from_samples() {
        // Warm-up call is the first (index 0, 50 ms); the n=2 measured
        // calls sleep 1 ms each. If the warm-up leaked into the samples the
        // median would exceed 25 ms.
        let (f, calls) = staged(&[50, 1, 1]);
        let m = time_median(2, f);
        assert_eq!(calls.get(), 3, "one warm-up + two measured");
        assert!(m < 0.025, "median {m} polluted by warm-up");
    }

    #[test]
    fn even_n_averages_the_two_middle_samples() {
        // Measured sleeps (after 1 warm-up): 0, 0, 40, 40 ms → sorted the
        // middle pair is (0 ms, 40 ms); the median must land near 20 ms.
        // The old upper-middle indexing returned ~40 ms.
        let (f, _) = staged(&[0, 0, 0, 40, 40]);
        let m = time_median(4, f);
        assert!(m > 0.010, "median {m} ignored the upper middle sample");
        assert!(
            m < 0.035,
            "median {m} is the upper element, not the midpoint"
        );
    }

    #[test]
    fn odd_n_returns_the_middle_sample() {
        let (f, _) = staged(&[0, 0, 20, 0, 0]);
        // Measured: 0, 20, 0 ms → median is the 0/20/0 middle, i.e. 0 ms
        // after sorting ([0, 0, 20] → 0). Must stay well under 10 ms.
        let m = time_median(3, f);
        assert!(m < 0.010, "odd-length median {m} not the middle element");
    }

    #[test]
    fn overhead_pct_basics() {
        assert_eq!(overhead_pct(2.0, 3.0), 50.0);
        assert_eq!(overhead_pct(0.0, 3.0), 0.0);
        assert_eq!(overhead_pct(4.0, 3.0), -25.0);
    }
}
