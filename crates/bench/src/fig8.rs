//! Fig. 8 — normalized execution-time overhead of the online system.
//!
//! Paper series on SPEC CPU2006: interposition only 1.9%, zero patches
//! 4.3%, one patch 4.7%, five patches 5.2%. What must reproduce: the
//! ordering native ≤ interpose ≤ 0-patch ≤ 1-patch ≤ 5-patch with small
//! deltas, patched contexts actually exercised, and allocation-intensive
//! models (perlbench-like) as the outliers.

use crate::{overhead_pct, time_median};
use heaptherapy_core::{HeapTherapy, PipelineConfig};
use ht_simprog::spec::{build_spec_workload, spec_suite};

/// Paper-reported averages: interpose, 0, 1, 5 patches (percent).
pub const PAPER_AVG: [f64; 4] = [1.9, 4.3, 4.7, 5.2];

/// One benchmark's Fig. 8 measurements.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Overhead over native, percent: `[interpose, 0, 1, 5 patches]`.
    pub pct: [f64; 4],
    /// Patch-table hits during the 1-patch and 5-patch runs.
    pub hits: [u64; 2],
    /// Guard pages installed during the 5-patch run.
    pub guard_pages5: u64,
}

/// Regenerates Fig. 8, `threads` benchmarks at a time.
///
/// Each benchmark replays `fraction` of its Table IV allocation volume (the
/// paper runs each benchmark's natural workload — allocation-poor
/// benchmarks like bzip2 allocate almost nothing and show ~zero overhead);
/// wall time is the median of `samples` runs. Patch selection follows the
/// paper: the median-frequency allocation contexts, patched as
/// overflow-vulnerable.
///
/// The five timing series of one benchmark always run back-to-back on one
/// thread, so within-benchmark comparisons (the overhead percentages) stay
/// honest; use `threads = 1` when absolute wall times matter, since
/// co-running benchmarks contend for cores.
pub fn rows(threads: usize, fraction: f64, samples: usize) -> Vec<Fig8Row> {
    let ht = HeapTherapy::new(PipelineConfig::default());
    ht_par::par_map(threads, &spec_suite(), |_, &bench| {
        let w = build_spec_workload(bench);
        let ip = ht.instrument(&w.program);
        let mut input = w.input_for_fraction(fraction);
        // Floor the run length so wall-clock medians are not dominated
        // by microsecond-scale noise on allocation-poor benchmarks.
        input[0] = input[0].max(200);
        let p1 = ht.hypothesized_patches(&ip, &input, 1);
        let p5 = ht.hypothesized_patches(&ip, &input, 5);

        let t_native = time_median(samples, || {
            ht.run_native(&ip, &input);
        });
        let t_interpose = time_median(samples, || {
            ht.run_interposed(&ip, &input);
        });
        let t_p0 = time_median(samples, || {
            ht.run_protected(&ip, &input, &[]);
        });
        let t_p1 = time_median(samples, || {
            ht.run_protected(&ip, &input, &p1);
        });
        let t_p5 = time_median(samples, || {
            ht.run_protected(&ip, &input, &p5);
        });

        let r1 = ht.run_protected(&ip, &input, &p1);
        let r5 = ht.run_protected(&ip, &input, &p5);

        Fig8Row {
            bench: bench.name,
            pct: [
                overhead_pct(t_native, t_interpose),
                overhead_pct(t_native, t_p0),
                overhead_pct(t_native, t_p1),
                overhead_pct(t_native, t_p5),
            ],
            hits: [r1.stats.table_hits, r5.stats.table_hits],
            guard_pages5: r5.stats.guard_pages,
        }
    })
}

/// Column averages of the overhead percentages.
pub fn averages(rows: &[Fig8Row]) -> [f64; 4] {
    let mut avg = [0.0; 4];
    for r in rows {
        for (a, &p) in avg.iter_mut().zip(&r.pct) {
            *a += p;
        }
    }
    for a in &mut avg {
        *a /= rows.len().max(1) as f64;
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patched_contexts_are_exercised_and_protected_runs_complete() {
        // Timing assertions are meaningless in debug builds; verify the
        // structural half of Fig. 8: patches land on live contexts, guard
        // pages go up, and the runs complete. Only allocation-rich models
        // are asserted (bzip2 at natural volume allocates a handful).
        let rows = rows(2, 2e-6, 1);
        assert_eq!(rows.len(), 12);
        for r in rows
            .iter()
            .filter(|r| ["400.perlbench", "471.omnetpp", "483.xalancbmk"].contains(&r.bench))
        {
            assert!(r.hits[0] > 0, "{}: 1-patch run hit nothing", r.bench);
            assert!(r.hits[1] >= r.hits[0], "{}", r.bench);
            assert!(r.guard_pages5 > 0, "{}", r.bench);
        }
    }
}
