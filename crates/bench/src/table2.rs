//! Table II — effectiveness on the vulnerable-program suite.

use heaptherapy_core::{CycleReport, HeapTherapy, PipelineConfig};
use ht_shadow::ShadowConfig;

/// Runs the full patch-generation/deployment cycle on every Table II model
/// (7 CVE programs + 23 SAMATE cases), `threads` apps at a time. Every app's
/// cycle is independent, so the row order (and content) is identical at any
/// thread count.
pub fn rows(threads: usize) -> Vec<CycleReport> {
    rows_with(threads, false)
}

/// [`rows`], optionally forcing the byte-at-a-time reference shadow
/// kernels. Word and reference kernels must produce byte-identical rows —
/// CI diffs the two (`--reference-kernels`).
pub fn rows_with(threads: usize, reference_kernels: bool) -> Vec<CycleReport> {
    let ht = HeapTherapy::new(PipelineConfig {
        shadow: ShadowConfig {
            reference_kernels,
            ..ShadowConfig::default()
        },
        ..PipelineConfig::default()
    });
    ht_par::par_map(threads, &ht_vulnapps::table2_suite(), |_, app| {
        ht.full_cycle(app)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name))
    })
}

/// A one-line verdict over all rows (printed by `reproduce`).
pub fn summary(rows: &[CycleReport]) -> String {
    let total = rows.len();
    let detected = rows.iter().filter(|r| r.detection_correct()).count();
    let blocked = rows.iter().filter(|r| r.all_attacks_blocked).count();
    let benign = rows.iter().filter(|r| r.benign_ok).count();
    let exploitable = rows
        .iter()
        .filter(|r| r.undefended_attack_succeeded)
        .count();
    format!(
        "{total} programs: {exploitable} exploitable undefended, \
         {detected} correctly diagnosed, {blocked} fully protected, \
         {benign} benign-behaviour preserved"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_reproduces_the_paper_verdict() {
        let rows = rows(2);
        assert_eq!(rows.len(), 30);
        for r in &rows {
            assert!(r.undefended_attack_succeeded, "{}", r.app);
            assert!(r.detection_correct(), "{}: detected {}", r.app, r.detected);
            assert!(r.all_attacks_blocked, "{}", r.app);
            assert!(r.benign_ok, "{}", r.app);
        }
        let s = summary(&rows);
        assert!(s.contains("30 programs"), "{s}");
    }
}
