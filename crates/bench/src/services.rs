//! §VIII-B2 — service-program throughput (Nginx, MySQL).
//!
//! Paper: Nginx loses ~4.2% throughput under the full system; MySQL shows
//! no observable overhead (its per-request work dwarfs allocation); memory
//! overhead negligible. What must reproduce: both services keep serving
//! under the defense, Nginx's overhead exceeds MySQL's, and both stay
//! small.

use crate::time_median;
use heaptherapy_core::{HeapTherapy, PipelineConfig};
use ht_simprog::service::{build_service_workload, ServiceKind};

/// Paper-reported throughput overheads, percent.
pub const PAPER: [(&str, f64); 2] = [("nginx", 4.2), ("mysql", 0.0)];

/// One service's measurements.
#[derive(Debug, Clone)]
pub struct ServiceRow {
    /// Service name.
    pub service: &'static str,
    /// Requests per second, native.
    pub native_rps: f64,
    /// Requests per second under the deployed system (interposition +
    /// metadata + patch-table probe; the paper's service measurement).
    pub defended_rps: f64,
    /// Throughput overhead percent.
    pub overhead_pct: f64,
    /// Peak RSS proxy overhead percent.
    pub mem_pct: f64,
}

/// Regenerates the service-throughput comparison.
pub fn rows(requests: u64, samples: usize) -> Vec<ServiceRow> {
    let ht = HeapTherapy::new(PipelineConfig::default());
    [ServiceKind::Nginx, ServiceKind::Mysql]
        .into_iter()
        .map(|kind| {
            let w = build_service_workload(kind);
            let ip = ht.instrument(&w.program);
            let input = w.input_for_requests(requests);
            // The deployed system: defenses loaded, table probed on every
            // allocation, but no patch on the per-request hot path (the
            // paper's vulnerable contexts are rare, not once-per-request).
            let patches: Vec<ht_patch::Patch> = Vec::new();

            let t_native = time_median(samples, || {
                ht.run_native(&ip, &input);
            });
            let t_defended = time_median(samples, || {
                ht.run_protected(&ip, &input, &patches);
            });

            let native_mem = {
                let mut i = ht_simprog::Interpreter::new(
                    &w.program,
                    &ip.plan,
                    ht_simprog::PlainBackend::new(),
                );
                i.run(&input);
                ht_simprog::HeapBackend::mem_stats(i.backend())
                    .unwrap()
                    .0
                    .peak_rss_bytes
            };
            let defended_mem = {
                let cfg = ht_defense::DefenseConfig::with_table(
                    ht_patch::PatchTable::from_patches(patches.clone()),
                );
                let mut i = ht_simprog::Interpreter::new(
                    &w.program,
                    &ip.plan,
                    ht_defense::DefendedBackend::new(cfg),
                );
                i.run(&input);
                ht_simprog::HeapBackend::mem_stats(i.backend())
                    .unwrap()
                    .0
                    .peak_rss_bytes
            };

            ServiceRow {
                service: kind.name(),
                native_rps: requests as f64 / t_native.max(1e-12),
                defended_rps: requests as f64 / t_defended.max(1e-12),
                overhead_pct: crate::overhead_pct(t_native, t_defended),
                mem_pct: crate::overhead_pct(native_mem as f64, defended_mem as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn services_survive_the_defense() {
        let rows = rows(50, 1);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.native_rps > 0.0 && r.defended_rps > 0.0, "{}", r.service);
            // Memory overhead stays modest (paper: negligible).
            assert!(r.mem_pct < 150.0, "{}: {}", r.service, r.mem_pct);
        }
    }
}
