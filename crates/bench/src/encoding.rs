//! §VIII-B1 — runtime overhead of the encoding strategies.
//!
//! Paper: on SPEC CPU2006, FCS costs 2.4% while TCS/Slim/Incremental cost
//! 0.6% / 0.5% / 0.4% — a 6× reduction. What must reproduce: executed
//! instrumentation work strictly shrinks FCS → TCS → Slim → Incremental, and
//! wall-clock overhead over the uninstrumented baseline follows the same
//! order.

use crate::{overhead_pct, time_median};
use ht_callgraph::Strategy;
use ht_encoding::{InstrumentationPlan, Scheme};
use ht_simprog::interp::run_plain;
use ht_simprog::spec::{build_spec_workload, spec_suite, SpecWorkload};

/// Paper-reported average slowdowns (FCS, TCS, Slim, Incremental), percent.
pub const PAPER_AVG: [f64; 4] = [2.4, 0.6, 0.5, 0.4];

/// One benchmark's encoding-overhead measurements.
#[derive(Debug, Clone)]
pub struct EncodingRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Executed instrumentation updates per strategy
    /// `[FCS, TCS, Slim, Incremental]`.
    pub ops: [u64; 4],
    /// Wall-clock overhead over the uninstrumented run, percent (same
    /// order). Only meaningful in release builds with `timed = true`.
    pub time_pct: [f64; 4],
}

fn workload_rows(
    workloads: &[SpecWorkload],
    allocs: u64,
    timed: bool,
    samples: usize,
) -> Vec<EncodingRow> {
    workloads
        .iter()
        .map(|w| {
            let input = w.input_for_allocs(allocs);
            let baseline_plan = InstrumentationPlan::uninstrumented(w.program.graph());
            let base_time = if timed {
                time_median(samples, || {
                    run_plain(&w.program, &baseline_plan, &input);
                })
            } else {
                0.0
            };
            let mut ops = [0u64; 4];
            let mut time_pct = [0.0f64; 4];
            for (i, &s) in Strategy::ALL.iter().enumerate() {
                let plan = InstrumentationPlan::build(w.program.graph(), s, Scheme::Pcc);
                ops[i] = run_plain(&w.program, &plan, &input).encoder_ops;
                if timed {
                    let t = time_median(samples, || {
                        run_plain(&w.program, &plan, &input);
                    });
                    time_pct[i] = overhead_pct(base_time, t);
                }
            }
            EncodingRow {
                bench: w.bench.name,
                ops,
                time_pct,
            }
        })
        .collect()
}

/// Regenerates the comparison over all 12 SPEC models.
///
/// `allocs` bounds the allocation volume per run; `timed` additionally
/// measures wall-clock overhead (`samples` runs, median).
pub fn rows(allocs: u64, timed: bool, samples: usize) -> Vec<EncodingRow> {
    let workloads: Vec<SpecWorkload> = spec_suite().into_iter().map(build_spec_workload).collect();
    workload_rows(&workloads, allocs, timed, samples)
}

/// Column averages of executed instrumentation ops.
pub fn avg_ops(rows: &[EncodingRow]) -> [f64; 4] {
    let mut avg = [0.0; 4];
    for r in rows {
        for (a, &o) in avg.iter_mut().zip(&r.ops) {
            *a += o as f64;
        }
    }
    for a in &mut avg {
        *a /= rows.len().max(1) as f64;
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_shrink_monotonically_everywhere() {
        let rows = rows(300, false, 1);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            for i in 0..3 {
                assert!(r.ops[i] >= r.ops[i + 1], "{}: {:?}", r.bench, r.ops);
            }
            assert!(r.ops[0] > 0, "{}", r.bench);
        }
        let avg = avg_ops(&rows);
        // The paper's 6× speedup: FCS executes several times the
        // instrumentation work of Incremental on average.
        assert!(
            avg[0] > 2.0 * avg[3],
            "FCS {:.0} vs Incremental {:.0}",
            avg[0],
            avg[3]
        );
    }
}
