//! Offline-replay throughput of the shadow-memory analyzer kernels.
//!
//! Not a paper artifact — the paper reports the offline phase only as
//! "heavyweight but off the critical path" — but replay throughput bounds
//! how fast attack inputs can be triaged and patches regenerated, so it is
//! the offline analogue of the Fig. 8 online overhead measurement.
//!
//! Two measurements, both against the Table II corpus (every attack *and*
//! benign input of all 30 vulnerable-program models, replayed through the
//! full offline pipeline):
//!
//! * **corpus replay** — shadow events/sec (allocations + frees + bytes
//!   written + bytes read) with the word-level kernels
//!   ([`KernelMode::Word`]) vs. the byte-at-a-time reference kernels
//!   (`--reference-kernels`, [`KernelMode::Reference`]). Both modes produce
//!   byte-identical warnings and patches — only the clock differs.
//! * **per-kernel microbenches** — ns/op of the individual `ShadowBits` /
//!   `HeapMap` operations the replay is built from, word vs. reference.

use heaptherapy_core::{HeapTherapy, PipelineConfig};
use ht_jsonio::Json;
use ht_memsim::PAGE_SIZE;
use ht_shadow::{HeapMap, KernelMode, ShadowBits, ShadowConfig};

/// Size of the range the per-kernel microbenches operate on (16 pages).
pub const KERNEL_SPAN: u64 = 16 * PAGE_SIZE;

/// One replay pass over the whole Table II corpus in one kernel mode.
/// Returns `(shadow_events, warning_count)` — the event count is the
/// throughput denominator, the warning count a cheap cross-mode fingerprint.
pub fn replay_corpus(reference_kernels: bool) -> (u64, u64) {
    let ht = HeapTherapy::new(PipelineConfig {
        shadow: ShadowConfig {
            reference_kernels,
            ..ShadowConfig::default()
        },
        ..PipelineConfig::default()
    });
    let mut events = 0u64;
    let mut warnings = 0u64;
    for app in ht_vulnapps::table2_suite() {
        let ip = ht.instrument(&app.program);
        for input in app.attack_inputs.iter().chain(app.benign_inputs.iter()) {
            let analysis = ht.analyze_attack(&ip, input, &app.name);
            let r = &analysis.run;
            events += r.allocs.total() + r.frees + r.bytes_written + r.bytes_read;
            warnings += analysis.warnings.len() as u64;
        }
    }
    (events, warnings)
}

/// Corpus-replay throughput of one kernel mode.
#[derive(Debug, Clone, Copy)]
pub struct ReplaySeries {
    /// Shadow events per corpus pass.
    pub events: u64,
    /// Median wall seconds per corpus pass.
    pub secs: f64,
}

impl ReplaySeries {
    /// Events per second.
    pub fn events_per_sec(&self) -> f64 {
        if self.secs <= 0.0 {
            return 0.0;
        }
        self.events as f64 / self.secs
    }
}

/// One per-kernel microbench row: median ns/op, word vs. reference.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel under test.
    pub name: &'static str,
    /// Reference (byte-at-a-time) ns per operation.
    pub reference_ns: f64,
    /// Word-kernel ns per operation.
    pub word_ns: f64,
}

impl KernelRow {
    /// Reference time over word time.
    pub fn speedup(&self) -> f64 {
        if self.word_ns <= 0.0 {
            return 0.0;
        }
        self.reference_ns / self.word_ns
    }
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct ShadowBenchReport {
    /// Word-kernel corpus replay.
    pub word: ReplaySeries,
    /// Reference-kernel corpus replay.
    pub reference: ReplaySeries,
    /// Per-kernel microbench rows.
    pub kernels: Vec<KernelRow>,
}

impl ShadowBenchReport {
    /// Corpus-replay event-throughput speedup of word over reference
    /// kernels (the ≥ 5× acceptance number).
    pub fn replay_speedup(&self) -> f64 {
        if self.word.secs <= 0.0 {
            return 0.0;
        }
        self.reference.secs / self.word.secs
    }
}

/// Mode under measurement → a fresh [`ShadowBits`].
fn bits(mode: KernelMode) -> ShadowBits {
    ShadowBits::with_mode(mode)
}

/// A [`ShadowBits`] with [`KERNEL_SPAN`] bytes accessible+valid except the
/// very last byte (so scans traverse the whole span and *find* something).
fn scan_target(mode: KernelMode) -> ShadowBits {
    let mut s = bits(mode);
    s.set_accessible(0, KERNEL_SPAN, true);
    s.set_valid(0, KERNEL_SPAN, true);
    s.set_accessible(KERNEL_SPAN - 1, 1, false);
    s.set_vmask(KERNEL_SPAN - 1, 0x7F);
    s
}

/// Measures `op` as median-of-`samples` over `iters` iterations, in ns/op.
fn ns_per_op<F: FnMut()>(samples: usize, iters: u64, mut op: F) -> f64 {
    let secs = crate::time_median(samples, || {
        for _ in 0..iters {
            op();
        }
    });
    secs * 1e9 / iters as f64
}

/// Runs every per-kernel microbench in one mode; row order is fixed.
fn kernel_ns(mode: KernelMode, samples: usize) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();

    // Range set: mark a 16-page span valid, then invalid again.
    let mut s = bits(mode);
    s.set_accessible(0, KERNEL_SPAN, true);
    out.push((
        "set_valid_range",
        ns_per_op(samples, 8, || {
            s.set_valid(0, KERNEL_SPAN, true);
            s.set_valid(0, KERNEL_SPAN, false);
        }),
    ));

    // Range set on the A-plane (allocate/quarantine traffic).
    let mut s = bits(mode);
    out.push((
        "set_accessible_range",
        ns_per_op(samples, 8, || {
            s.set_accessible(0, KERNEL_SPAN, true);
            s.set_accessible(0, KERNEL_SPAN, false);
        }),
    ));

    // Scans over an almost-uniform span (the hot check paths).
    let s = scan_target(mode);
    out.push((
        "first_invalid_scan",
        ns_per_op(samples, 8, || {
            assert_eq!(s.first_invalid(0, KERNEL_SPAN), Some(KERNEL_SPAN - 1));
        }),
    ));
    out.push((
        "first_inaccessible_scan",
        ns_per_op(samples, 8, || {
            assert_eq!(s.first_inaccessible(0, KERNEL_SPAN), Some(KERNEL_SPAN - 1));
        }),
    ));

    // Realloc carry-over: cross-page, non-overlapping copy of half the span.
    let mut s = scan_target(mode);
    out.push((
        "copy_valid",
        ns_per_op(samples, 8, || {
            s.copy_valid(17, KERNEL_SPAN / 2 + 17, KERNEL_SPAN / 2 - 64);
        }),
    ));

    // Point queries streaming through one page (the last-page cache).
    let s = scan_target(mode);
    out.push((
        "vmask_stream",
        ns_per_op(samples, 4, || {
            let mut acc = 0u64;
            for a in 0..PAGE_SIZE {
                acc += s.vmask(a) as u64;
            }
            assert!(acc > 0);
        }),
    ));

    // HeapMap same-buffer lookup streaks (the one-entry interval cache).
    let mut m = HeapMap::with_cache(mode == KernelMode::Word);
    for i in 0..64u64 {
        m.insert(
            0x10000 + i * 0x1000,
            256,
            0x10000 + i * 0x1000 - 16,
            ht_patch::AllocFn::Malloc,
            ht_encoding::Ccid(i),
            16,
        );
    }
    out.push((
        "heap_lookup_streak",
        ns_per_op(samples, 4, || {
            let mut hits = 0u64;
            for a in 0x18000u64..0x18000 + 256 {
                hits += u64::from(m.lookup(a).is_some());
            }
            assert_eq!(hits, 256);
        }),
    ));

    out
}

/// Runs the whole benchmark: `samples` median samples per measurement,
/// `repeat` corpus passes inside each timed replay sample.
pub fn run(samples: usize, repeat: usize) -> ShadowBenchReport {
    let samples = samples.max(1);
    let repeat = repeat.max(1);

    // The two modes must agree on everything observable before their clocks
    // are worth comparing.
    let (events, warn_word) = replay_corpus(false);
    let (events_ref, warn_ref) = replay_corpus(true);
    assert_eq!(events, events_ref, "modes disagree on replayed events");
    assert_eq!(warn_word, warn_ref, "modes disagree on warnings");

    let word_secs = crate::time_median(samples, || {
        for _ in 0..repeat {
            replay_corpus(false);
        }
    }) / repeat as f64;
    let reference_secs = crate::time_median(samples, || {
        for _ in 0..repeat {
            replay_corpus(true);
        }
    }) / repeat as f64;

    let word_rows = kernel_ns(KernelMode::Word, samples);
    let ref_rows = kernel_ns(KernelMode::Reference, samples);
    let kernels = word_rows
        .into_iter()
        .zip(ref_rows)
        .map(|((name, word_ns), (rname, reference_ns))| {
            debug_assert_eq!(name, rname);
            KernelRow {
                name,
                reference_ns,
                word_ns,
            }
        })
        .collect();

    ShadowBenchReport {
        word: ReplaySeries {
            events,
            secs: word_secs,
        },
        reference: ReplaySeries {
            events,
            secs: reference_secs,
        },
        kernels,
    }
}

/// The committed-baseline JSON shape (`BENCH_shadow.json`). The wire format
/// is integer-only, so ratios are stored ×100.
pub fn to_json(r: &ShadowBenchReport, samples: usize, repeat: usize) -> Json {
    Json::Obj(vec![
        ("samples".into(), Json::U64(samples as u64)),
        ("repeat".into(), Json::U64(repeat as u64)),
        ("corpus_events".into(), Json::U64(r.word.events)),
        (
            "word_events_per_sec".into(),
            Json::U64(r.word.events_per_sec() as u64),
        ),
        (
            "reference_events_per_sec".into(),
            Json::U64(r.reference.events_per_sec() as u64),
        ),
        (
            "replay_speedup_x100".into(),
            Json::U64((r.replay_speedup() * 100.0) as u64),
        ),
        (
            "kernels".into(),
            Json::Arr(
                r.kernels
                    .iter()
                    .map(|k| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(k.name.into())),
                            ("reference_ns".into(), Json::U64(k.reference_ns as u64)),
                            ("word_ns".into(), Json::U64(k.word_ns as u64)),
                            (
                                "speedup_x100".into(),
                                Json::U64((k.speedup() * 100.0) as u64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_replay_modes_agree_and_produce_events() {
        let (events, warnings) = replay_corpus(false);
        assert!(events > 10_000, "corpus is non-trivial: {events}");
        assert!(warnings > 0, "the attack inputs trip warnings");
        assert_eq!((events, warnings), replay_corpus(true), "mode parity");
    }

    #[test]
    fn kernel_rows_cover_both_modes_in_order() {
        let w = kernel_ns(KernelMode::Word, 1);
        let r = kernel_ns(KernelMode::Reference, 1);
        assert_eq!(w.len(), r.len());
        for ((wn, wns), (rn, rns)) in w.iter().zip(&r) {
            assert_eq!(wn, rn);
            assert!(*wns > 0.0 && *rns > 0.0, "{wn}: {wns} / {rns}");
        }
    }

    #[test]
    fn json_round_trips() {
        let report = ShadowBenchReport {
            word: ReplaySeries {
                events: 1000,
                secs: 0.010,
            },
            reference: ReplaySeries {
                events: 1000,
                secs: 0.100,
            },
            kernels: vec![KernelRow {
                name: "set_valid_range",
                reference_ns: 950.5,
                word_ns: 10.2,
            }],
        };
        assert!((report.replay_speedup() - 10.0).abs() < 1e-9);
        let j = to_json(&report, 3, 1);
        let parsed = Json::parse(&j.to_pretty()).expect("self-emitted JSON parses");
        assert_eq!(parsed, j);
    }
}
