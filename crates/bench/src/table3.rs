//! Table III — program size increase per encoding strategy.
//!
//! The paper measures instrumented-binary growth; the model equivalent is
//! `instrumented sites × bytes-per-site` over the model's estimated base
//! size. What must reproduce: FCS ≥ TCS ≥ Slim ≥ Incremental per benchmark,
//! with allocation-poor benchmarks (bzip2, sjeng) collapsing to ~0 under
//! TCS.

use ht_callgraph::Strategy;
use ht_encoding::{InstrumentationPlan, Scheme};
use ht_simprog::spec::{build_spec_workload, spec_suite};

/// Paper-reported Table III percentages for comparison.
pub const PAPER: [(&str, [f64; 4]); 12] = [
    ("400.perlbench", [19.6, 16.2, 15.9, 15.9]),
    ("401.bzip2", [8.8, 0.12, 0.12, 0.12]),
    ("403.gcc", [18.6, 14.7, 13.6, 13.6]),
    ("429.mcf", [0.53, 0.53, 0.53, 0.53]),
    ("445.gobmk", [4.8, 3.2, 2.5, 2.5]),
    ("456.hmmer", [18.9, 5.9, 2.4, 1.2]),
    ("458.sjeng", [10.6, 0.08, 0.08, 0.08]),
    ("462.libquantum", [15.0, 7.7, 7.7, 7.7]),
    ("464.h264ref", [8.3, 3.6, 1.8, 1.8]),
    ("471.omnetpp", [15.8, 7.2, 6.7, 6.7]),
    ("473.astar", [7.0, 7.0, 0.2, 0.2]),
    ("483.xalancbmk", [14.5, 4.1, 3.8, 3.8]),
];

/// One measured row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Measured size increase in percent, indexed as
    /// `[FCS, TCS, Slim, Incremental]`.
    pub measured: [f64; 4],
    /// Instrumented site counts in the same order.
    pub sites: [usize; 4],
    /// The paper's reported percentages.
    pub paper: [f64; 4],
}

/// Regenerates Table III over the 12 SPEC models, `threads` benchmarks at
/// a time (plan building is pure; row order is deterministic).
pub fn rows(threads: usize) -> Vec<Table3Row> {
    ht_par::par_map(threads, &spec_suite(), |_, &bench| {
        let w = build_spec_workload(bench);
        let base = w.program.base_size_bytes();
        let mut measured = [0.0f64; 4];
        let mut sites = [0usize; 4];
        for (i, &s) in Strategy::ALL.iter().enumerate() {
            let plan = InstrumentationPlan::build(w.program.graph(), s, Scheme::Pcc);
            measured[i] = plan.size_increase_percent(base);
            sites[i] = plan.site_count();
        }
        let paper = PAPER
            .iter()
            .find(|(n, _)| *n == bench.name)
            .map(|(_, p)| *p)
            .unwrap_or_default();
        Table3Row {
            bench: bench.name,
            measured,
            sites,
            paper,
        }
    })
}

/// Column averages of the measured percentages.
pub fn averages(rows: &[Table3Row]) -> [f64; 4] {
    let mut avg = [0.0; 4];
    for r in rows {
        for (a, &m) in avg.iter_mut().zip(&r.measured) {
            *a += m;
        }
    }
    for a in &mut avg {
        *a /= rows.len().max(1) as f64;
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let rows = rows(2);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            // Monotone shrink per benchmark.
            for i in 0..3 {
                assert!(
                    r.measured[i] >= r.measured[i + 1] - 1e-9,
                    "{}: {:?}",
                    r.bench,
                    r.measured
                );
            }
        }
        // Allocation-poor benchmarks collapse under TCS (paper: bzip2
        // 8.8%→0.12%, sjeng 10.6%→0.08%).
        for name in ["401.bzip2", "458.sjeng"] {
            let r = rows.iter().find(|r| r.bench == name).unwrap();
            assert!(
                r.measured[1] < r.measured[0] / 5.0,
                "{name}: TCS {} vs FCS {}",
                r.measured[1],
                r.measured[0]
            );
        }
        // Averages ordered like the paper's 12 / 6 / 4.5 / 4.4.
        let avg = averages(&rows);
        assert!(
            avg[0] > avg[1] && avg[1] > avg[2] && avg[2] >= avg[3],
            "{avg:?}"
        );
    }
}
