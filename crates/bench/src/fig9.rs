//! Fig. 9 — normalized memory overhead of the online system.
//!
//! Paper: 4.3% average RSS overhead, attributed to the per-buffer metadata;
//! guard pages are virtual and cost nothing resident. What must reproduce:
//! the defended RSS proxy tracks the native one closely, and installing
//! guard-page patches moves *mapped* bytes, not resident bytes.

use heaptherapy_core::{HeapTherapy, PipelineConfig};
use ht_simprog::spec::{build_spec_workload, spec_suite};
use ht_simprog::{HeapBackend, Interpreter};

/// Paper-reported average memory overhead, percent.
pub const PAPER_AVG: f64 = 4.3;

/// One benchmark's memory measurements (bytes are the dirty-page RSS proxy).
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Native peak RSS proxy.
    pub native_rss: u64,
    /// Defended peak RSS proxy, zero patches — the paper's Fig. 9
    /// configuration (the overhead it reports is the per-buffer metadata).
    pub defended_rss: u64,
    /// Defended peak RSS with 5 overflow patches installed. Each *live*
    /// guarded buffer additionally keeps its guard page's first word
    /// resident (the stored user size), so this can exceed the metadata-only
    /// figure when a patch lands on a long-lived allocation context.
    pub defended5_rss: u64,
    /// Defended mapped bytes with 5 patches (includes virtual guard pages).
    pub defended_mapped: u64,
    /// Metadata-only RSS overhead percent (the paper's quantity).
    pub pct: f64,
}

/// Regenerates Fig. 9 at `fraction` of each benchmark's natural volume,
/// `threads` benchmarks at a time (memory measurements are deterministic,
/// so parallelism cannot change the rows).
pub fn rows(threads: usize, fraction: f64) -> Vec<Fig9Row> {
    let ht = HeapTherapy::new(PipelineConfig::default());
    ht_par::par_map(threads, &spec_suite(), |_, &bench| {
        let w = build_spec_workload(bench);
        let ip = ht.instrument(&w.program);
        // Natural volume — no iteration floor: memory is deterministic,
        // and flooring would force allocation-poor benchmarks into an
        // unrealistic guarded-churn profile.
        let input = w.input_for_fraction(fraction);

        let native_rss = {
            let backend = ht_simprog::PlainBackend::new();
            let mut interp = Interpreter::new(&w.program, &ip.plan, backend);
            interp.run(&input);
            interp.backend().mem_stats().unwrap().0.peak_rss_bytes
        };

        let measure = |patches: Vec<ht_patch::Patch>| {
            let mut cfg =
                ht_defense::DefenseConfig::with_table(ht_patch::PatchTable::from_patches(patches));
            cfg.quarantine_quota = 2 << 30;
            let backend = ht_defense::DefendedBackend::new(cfg);
            let mut interp = Interpreter::new(&w.program, &ip.plan, backend);
            interp.run(&input);
            let stats = interp.backend().mem_stats().unwrap().0;
            (stats.peak_rss_bytes, stats.mapped_bytes)
        };
        let (defended_rss, _) = measure(Vec::new());
        let patches = ht.hypothesized_patches(&ip, &input, 5);
        let (defended5_rss, defended_mapped) = measure(patches);

        Fig9Row {
            bench: bench.name,
            native_rss,
            defended_rss,
            defended5_rss,
            defended_mapped,
            pct: crate::overhead_pct(native_rss as f64, defended_rss as f64),
        }
    })
}

/// Average RSS overhead percent.
pub fn average(rows: &[Fig9Row]) -> f64 {
    rows.iter().map(|r| r.pct).sum::<f64>() / rows.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_overhead_is_modest_and_guard_pages_stay_virtual() {
        let rows = rows(2, 2e-6);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.native_rss > 0, "{}", r.bench);
            // The defense adds metadata words and some class rounding — the
            // RSS proxy must stay in the same ballpark. At test scale the
            // 4 KiB page granularity dominates, so bound the absolute gap
            // rather than the percentage.
            assert!(
                r.defended_rss <= r.native_rss * 4 + 64 * 1024,
                "{}: defended {} vs native {}",
                r.bench,
                r.defended_rss,
                r.native_rss
            );
            // Guard pages are mapped but never dirtied.
            assert!(r.defended_mapped >= r.defended_rss, "{}", r.bench);
        }
    }
}
