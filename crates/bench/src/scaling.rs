//! Multi-threaded allocation-throughput scaling of the hardened allocator.
//!
//! Not a paper artifact — the paper evaluates single-threaded SPEC and
//! multi-process services — but the property it probes is the paper's
//! central engineering claim: the online defense adds *no global lock* to
//! the allocation path (the patch table is frozen read-only, the registry
//! and quarantine are sharded), so throughput should scale with threads
//! like the native allocator does.
//!
//! Four series, each at 1/2/4/8 threads (capped by `--threads`):
//!
//! * **native** — the system allocator, the ceiling,
//! * **interpose** — [`HardenedAlloc`] with an empty patch table (the
//!   paper's "interposition only" bar),
//! * **hardened** — [`HardenedAlloc`] with 5 patches installed and frozen,
//!   one patched context exercised every 64th allocation (guard page +
//!   registry + quarantine traffic on the patched slice),
//! * **hardened+telemetry** — the same configuration with attack telemetry
//!   armed (event ring + striped per-patch counters), probing the claim
//!   that telemetry-off costs nothing and telemetry-on stays within noise.
//!
//! Workers start behind a [`Barrier`] and time only their own work loop, so
//! thread-spawn cost is excluded; a series' wall time is the slowest
//! worker's. Ops/sec counts allocate–touch–free *pairs* per second summed
//! over threads.

use ht_hardened_alloc::{throughput, HardenedAlloc, PatchEntry};
use ht_jsonio::Json;
use ht_patch::{AllocFn, VulnFlags};
use std::sync::Barrier;
use std::time::Instant;

/// Allocation size used by every series (a small-object workload).
pub const ALLOC_SIZE: usize = 64;
/// On the hardened series, every `PATCHED_EVERY`-th pair enters a patched
/// calling context.
pub const PATCHED_EVERY: u64 = 64;
/// The instrumented call sites the 5 patches target.
pub const PATCHED_SITES: [u64; 5] = [0xA1, 0xA2, 0xA3, 0xA4, 0xA5];

/// Throughput of the three series at one thread count.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Number of concurrent worker threads.
    pub threads: usize,
    /// System-allocator pairs/sec (summed over threads).
    pub native_ops: f64,
    /// Empty-table hardened-allocator pairs/sec.
    pub interpose_ops: f64,
    /// 5-patch frozen-table hardened-allocator pairs/sec.
    pub hardened_ops: f64,
    /// The hardened series with attack telemetry armed.
    pub telemetry_ops: f64,
}

impl ScalingRow {
    /// Hardened throughput relative to this row's native throughput.
    pub fn hardened_vs_native(&self) -> f64 {
        if self.native_ops <= 0.0 {
            return 0.0;
        }
        self.hardened_ops / self.native_ops
    }

    /// Telemetry-armed throughput relative to the telemetry-off hardened
    /// series (1.0 = telemetry is free).
    pub fn telemetry_vs_hardened(&self) -> f64 {
        if self.hardened_ops <= 0.0 {
            return 0.0;
        }
        self.telemetry_ops / self.hardened_ops
    }
}

/// A heap-allocated empty-table allocator (the "interpose" configuration).
fn empty_alloc() -> Box<HardenedAlloc> {
    Box::new(HardenedAlloc::new())
}

/// The thread counts a `--threads max` run exercises.
pub fn thread_counts(max: usize) -> Vec<usize> {
    [1, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= max.max(1))
        .collect()
}

/// Runs `work` on `n` barrier-synchronized threads and returns total
/// pairs/sec, charged to the slowest worker.
fn run_series<F: Fn(usize) -> u64 + Sync>(n: usize, work: F) -> f64 {
    let barrier = Barrier::new(n);
    let results = ht_par::par_spawn(n, |i| {
        barrier.wait();
        let t0 = Instant::now();
        let pairs = work(i);
        (pairs, t0.elapsed().as_secs_f64())
    });
    let total_pairs: u64 = results.iter().map(|&(p, _)| p).sum();
    let slowest = results.iter().map(|&(_, s)| s).fold(0.0f64, f64::max);
    if slowest <= 0.0 {
        return 0.0;
    }
    total_pairs as f64 / slowest
}

/// A hardened allocator with the 5 scaling patches installed and the table
/// frozen (the configuration the "hardened" series runs against).
///
/// Boxed: a `HardenedAlloc` embeds its sharded tables, event ring, and
/// striped counters (~430 KiB), which in unoptimized builds would otherwise
/// occupy a fresh stack slot per temporary.
pub fn patched_alloc() -> Box<HardenedAlloc> {
    let a = empty_alloc();
    let patches: Vec<PatchEntry> = PATCHED_SITES
        .iter()
        .map(|&site| {
            PatchEntry::new(
                AllocFn::Malloc,
                throughput::site_ccid(site),
                VulnFlags::OVERFLOW,
            )
        })
        .collect();
    let installed = a.install(&patches);
    assert_eq!(installed, patches.len(), "scaling patches must install");
    a.freeze();
    a
}

/// Measures all three series at each thread count in
/// [`thread_counts`]`(max_threads)`, `pairs_per_thread` allocate–touch–free
/// round trips per worker.
pub fn rows(max_threads: usize, pairs_per_thread: u64) -> Vec<ScalingRow> {
    let interpose = empty_alloc();
    let hardened = patched_alloc();
    let telemetry = patched_alloc();
    telemetry.set_telemetry(true);
    thread_counts(max_threads)
        .into_iter()
        .map(|n| {
            let native_ops = run_series(n, |_| {
                throughput::native_pairs(pairs_per_thread, ALLOC_SIZE)
            });
            let interpose_ops = run_series(n, |_| {
                throughput::hardened_pairs(&interpose, pairs_per_thread, ALLOC_SIZE, None, 1)
            });
            let hardened_ops = run_series(n, |i| {
                throughput::hardened_pairs(
                    &hardened,
                    pairs_per_thread,
                    ALLOC_SIZE,
                    Some(PATCHED_SITES[i % PATCHED_SITES.len()]),
                    PATCHED_EVERY,
                )
            });
            let telemetry_ops = run_series(n, |i| {
                throughput::hardened_pairs(
                    &telemetry,
                    pairs_per_thread,
                    ALLOC_SIZE,
                    Some(PATCHED_SITES[i % PATCHED_SITES.len()]),
                    PATCHED_EVERY,
                )
            });
            // Keep the ring from saturating its drop counter across rows.
            telemetry.drain_events();
            ScalingRow {
                threads: n,
                native_ops,
                interpose_ops,
                hardened_ops,
                telemetry_ops,
            }
        })
        .collect()
}

/// The committed-baseline JSON shape (`BENCH_scaling.json`): ops/sec
/// rounded to integers, since the wire format is integer-only.
pub fn to_json(rows: &[ScalingRow], pairs_per_thread: u64) -> Json {
    Json::Obj(vec![
        ("alloc_size".into(), Json::U64(ALLOC_SIZE as u64)),
        ("pairs_per_thread".into(), Json::U64(pairs_per_thread)),
        ("patched_every".into(), Json::U64(PATCHED_EVERY)),
        (
            "rows".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("threads".into(), Json::U64(r.threads as u64)),
                            ("native_ops".into(), Json::U64(r.native_ops as u64)),
                            ("interpose_ops".into(), Json::U64(r.interpose_ops as u64)),
                            ("hardened_ops".into(), Json::U64(r.hardened_ops as u64)),
                            ("telemetry_ops".into(), Json::U64(r.telemetry_ops as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_the_requested_thread_range() {
        assert_eq!(thread_counts(1), vec![1]);
        assert_eq!(thread_counts(2), vec![1, 2]);
        assert_eq!(thread_counts(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_counts(5), vec![1, 2, 4]);
        assert_eq!(thread_counts(0), vec![1], "clamped to one thread");
    }

    #[test]
    fn series_produce_positive_throughput() {
        let rows = rows(2, 500);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.native_ops > 0.0, "{r:?}");
            assert!(r.interpose_ops > 0.0, "{r:?}");
            assert!(r.hardened_ops > 0.0, "{r:?}");
            assert!(r.telemetry_ops > 0.0, "{r:?}");
        }
    }

    #[test]
    fn telemetry_series_records_its_patch_hits() {
        let a = patched_alloc();
        a.set_telemetry(true);
        throughput::hardened_pairs(&a, 128, ALLOC_SIZE, Some(PATCHED_SITES[0]), PATCHED_EVERY);
        let snap = a.telemetry_snapshot();
        assert!(
            snap.per_patch.iter().any(|p| p.hits > 0),
            "patched slice of the workload was counted: {snap:?}"
        );
    }

    #[test]
    fn patched_alloc_is_frozen_and_hits_its_contexts() {
        let a = patched_alloc();
        assert!(a.is_frozen());
        // A frozen table rejects further installs.
        assert_eq!(
            a.install(&[PatchEntry::new(AllocFn::Malloc, 99, VulnFlags::OVERFLOW)]),
            0
        );
        throughput::hardened_pairs(&a, PATCHED_EVERY, ALLOC_SIZE, Some(PATCHED_SITES[0]), 1);
        let st = a.stats();
        assert_eq!(st.table_hits, PATCHED_EVERY, "every pair was patched");
        assert_eq!(st.guard_pages, PATCHED_EVERY);
    }

    #[test]
    fn json_round_trips() {
        let rs = [ScalingRow {
            threads: 2,
            native_ops: 1234.7,
            interpose_ops: 1000.2,
            hardened_ops: 900.9,
            telemetry_ops: 880.0,
        }];
        let j = to_json(&rs, 500);
        let parsed = Json::parse(&j.to_pretty()).expect("self-emitted JSON parses");
        assert_eq!(parsed, j);
    }
}
