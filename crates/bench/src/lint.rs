//! Static-vs-dynamic agreement: lints every Table II model and reports
//! whether the static triage over-approximated the dynamic patches and
//! whether the encoding plan verified.

use heaptherapy_core::{HeapTherapy, LintReport, PipelineConfig};

/// One agreement row per vulnerable-program model.
#[derive(Debug, Clone)]
pub struct LintRow {
    /// Application name.
    pub app: String,
    /// Static candidate count.
    pub static_candidates: usize,
    /// Dynamic patch count (merged across attack inputs).
    pub dynamic_patches: usize,
    /// Every dynamic patch had a covering static candidate.
    pub covered: bool,
    /// The encoding plan passed verification.
    pub verifier_ok: bool,
}

impl LintRow {
    fn from_report(r: &LintReport) -> Self {
        Self {
            app: r.app.clone(),
            static_candidates: r.triage.candidates.len(),
            dynamic_patches: r.dynamic_patches.len(),
            covered: r.static_over_approximates(),
            verifier_ok: r.verdict.is_ok(),
        }
    }

    /// One table line.
    pub fn table_row(&self) -> String {
        format!(
            "{:<28} static={:<3} dynamic={:<3} covered={:<5} plan={}",
            self.app,
            self.static_candidates,
            self.dynamic_patches,
            self.covered,
            if self.verifier_ok { "ok" } else { "FAILED" },
        )
    }
}

/// Lints the whole Table II suite under the default pipeline, `threads`
/// apps at a time (each lint is independent; row order is deterministic).
pub fn rows(threads: usize) -> Vec<LintRow> {
    let ht = HeapTherapy::new(PipelineConfig::default());
    ht_par::par_map(threads, &ht_vulnapps::table2_suite(), |_, app| {
        LintRow::from_report(&ht.lint(app))
    })
}

/// One-line verdict over all rows.
pub fn summary(rows: &[LintRow]) -> String {
    let total = rows.len();
    let covered = rows.iter().filter(|r| r.covered).count();
    let verified = rows.iter().filter(|r| r.verifier_ok).count();
    format!(
        "{total} programs: {covered} with static ⊇ dynamic agreement, \
         {verified} with verified encoding plans"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_agrees() {
        let rows = rows(2);
        assert_eq!(rows.len(), 30);
        for r in &rows {
            assert!(r.covered, "{}", r.app);
            assert!(r.verifier_ok, "{}", r.app);
            assert!(r.static_candidates > 0, "{}", r.app);
        }
        assert!(summary(&rows).contains("30 programs"));
    }
}
