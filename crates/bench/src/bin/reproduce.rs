//! Regenerates every table and figure of the HeapTherapy+ evaluation.
//!
//! ```text
//! reproduce [all|fig2|table1|table2|lint|table3|table4|encoding|fig8|fig9|services|ablations|scaling|shadow|telemetry]
//!           [--allocs N] [--samples N] [--requests N] [--threads N]
//!           [--pairs N] [--repeat N] [--reference-kernels] [--json PATH]
//! ```
//!
//! Paper-reported numbers are printed beside the measured ones. Absolute
//! values differ (simulated substrate); the shape is what reproduces. Run
//! with `--release` for meaningful timings.

use ht_bench::{
    ablation, encoding, fig2, fig8, fig9, lint, scaling, services, shadow, table1, table2, table3,
    table4, telemetry,
};

struct Opts {
    what: String,
    allocs: u64,
    fraction: f64,
    samples: usize,
    requests: u64,
    /// Worker threads for the offline pipeline (and the cap for `scaling`).
    threads: usize,
    /// Allocate/free pairs per worker in the scaling benchmark.
    pairs: u64,
    /// Corpus passes inside each timed sample of the shadow benchmark.
    repeat: usize,
    /// Run the byte-at-a-time reference shadow kernels (table2 parity runs).
    reference_kernels: bool,
    /// Optional path to write the scaling/shadow rows as JSON.
    json: Option<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        what: "all".to_string(),
        allocs: 20_000,
        fraction: 2e-4,
        samples: 5,
        requests: 2_000,
        threads: ht_par::available_threads(),
        pairs: 200_000,
        repeat: 1,
        reference_kernels: false,
        json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--allocs" => opts.allocs = args.next().and_then(|v| v.parse().ok()).unwrap_or(20_000),
            "--fraction" => {
                opts.fraction = args.next().and_then(|v| v.parse().ok()).unwrap_or(2e-4)
            }
            "--samples" => opts.samples = args.next().and_then(|v| v.parse().ok()).unwrap_or(5),
            "--requests" => {
                opts.requests = args.next().and_then(|v| v.parse().ok()).unwrap_or(2_000)
            }
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or(1)
            }
            "--pairs" => opts.pairs = args.next().and_then(|v| v.parse().ok()).unwrap_or(200_000),
            "--repeat" => {
                opts.repeat = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or(1)
            }
            "--reference-kernels" => opts.reference_kernels = true,
            "--json" => opts.json = args.next(),
            other if !other.starts_with("--") => opts.what = other.to_string(),
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    opts
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn run_fig2() {
    header("Figure 2 — targeted instrumentation of the example graph");
    for r in fig2::rows() {
        println!("{:<12} {:>2} sites   {}", r.strategy, r.sites, r.edges);
    }
    println!("(paper panels: FCS=all, TCS prunes D→H/H→I, Slim prunes B/E, Incremental keeps AB,AC,CE,CF)");
}

fn run_table1() {
    header("Table I — buffer structure selection");
    println!(
        "{:<10} {:>8} {:>9} {:>14} {:>10}",
        "vuln", "plain", "aligned", "deferred-free", "zero-init"
    );
    for r in table1::rows() {
        println!(
            "{:<10} {:>8} {:>9} {:>14} {:>10}",
            r.vuln.to_string(),
            format!("{:?}", r.plain),
            format!("{:?}", r.aligned),
            r.deferred_free,
            r.zero_init
        );
    }
}

fn run_table2(opts: &Opts) {
    header("Table II — effectiveness (7 CVE models + 23 SAMATE cases)");
    let rows = table2::rows_with(opts.threads, opts.reference_kernels);
    for r in &rows {
        println!("{}", r.table_row());
    }
    println!("\n{}", table2::summary(&rows));
    println!("(paper: patches generated and attacks prevented for all programs)");
}

fn run_lint(opts: &Opts) {
    header("Static triage — static-vs-dynamic agreement per vulnerable program");
    let rows = lint::rows(opts.threads);
    for r in &rows {
        println!("{}", r.table_row());
    }
    println!("\n{}", lint::summary(&rows));
    println!("(static candidates must cover every dynamically generated patch)");
}

fn run_table3(opts: &Opts) {
    header("Table III — program size increase (%) per encoding strategy");
    println!(
        "{:<16} {:>22}  {:>30}",
        "benchmark", "measured FCS/TCS/Slim/Inc", "paper FCS/TCS/Slim/Inc"
    );
    let rows = table3::rows(opts.threads);
    for r in &rows {
        println!(
            "{:<16} {:>5.1} {:>5.1} {:>5.1} {:>5.1}   {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            r.bench,
            r.measured[0],
            r.measured[1],
            r.measured[2],
            r.measured[3],
            r.paper[0],
            r.paper[1],
            r.paper[2],
            r.paper[3]
        );
    }
    let avg = table3::averages(&rows);
    println!(
        "{:<16} {:>5.1} {:>5.1} {:>5.1} {:>5.1}   {:>6.2} {:>6.2} {:>6.2} {:>6.2}   (averages)",
        "AVERAGE", avg[0], avg[1], avg[2], avg[3], 12.0, 6.0, 4.5, 4.4
    );
}

fn run_table4(opts: &Opts) {
    header("Table IV — heap allocation statistics (replayed at reduced scale)");
    println!(
        "{:<16} {:>36} {:>30}",
        "benchmark", "paper malloc/calloc/realloc", "replayed malloc/calloc/realloc"
    );
    for r in table4::rows(opts.threads, opts.fraction) {
        println!(
            "{:<16} {:>14} {:>10} {:>10} {:>12} {:>8} {:>8}",
            r.bench,
            r.paper[0],
            r.paper[1],
            r.paper[2],
            r.replayed[0],
            r.replayed[1],
            r.replayed[2]
        );
    }
}

fn run_encoding(opts: &Opts) {
    header("§VIII-B1 — encoding runtime overhead (FCS vs targeted)");
    println!(
        "{:<16} {:>34} {:>34}",
        "benchmark", "instr. ops FCS/TCS/Slim/Inc", "time overhead % FCS/TCS/Slim/Inc"
    );
    let rows = encoding::rows(opts.allocs, true, opts.samples);
    for r in &rows {
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>8}   {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            r.bench,
            r.ops[0],
            r.ops[1],
            r.ops[2],
            r.ops[3],
            r.time_pct[0],
            r.time_pct[1],
            r.time_pct[2],
            r.time_pct[3]
        );
    }
    let avg = encoding::avg_ops(&rows);
    println!(
        "AVERAGE ops      {:>8.0} {:>8.0} {:>8.0} {:>8.0}   (paper time %: {:?})",
        avg[0],
        avg[1],
        avg[2],
        avg[3],
        encoding::PAPER_AVG
    );
}

fn run_fig8(opts: &Opts) {
    header("Figure 8 — runtime overhead vs patch count (% over native)");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}   {:>6} {:>6} {:>7}",
        "benchmark", "interpose", "0 patches", "1 patch", "5 patches", "hits1", "hits5", "guards5"
    );
    let rows = fig8::rows(opts.threads, opts.fraction, opts.samples);
    for r in &rows {
        println!(
            "{:<16} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%   {:>6} {:>6} {:>7}",
            r.bench, r.pct[0], r.pct[1], r.pct[2], r.pct[3], r.hits[0], r.hits[1], r.guard_pages5
        );
    }
    let avg = fig8::averages(&rows);
    println!(
        "AVERAGE          {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%   (paper: {:?})",
        avg[0],
        avg[1],
        avg[2],
        avg[3],
        fig8::PAPER_AVG
    );
}

fn run_fig9(opts: &Opts) {
    header("Figure 9 — memory overhead (RSS proxy)");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "benchmark", "native", "defended", "defended+5p", "mapped", "overhead"
    );
    let rows = fig9::rows(opts.threads, opts.fraction);
    for r in &rows {
        println!(
            "{:<16} {:>12} {:>12} {:>12} {:>12} {:>8.1}%",
            r.bench, r.native_rss, r.defended_rss, r.defended5_rss, r.defended_mapped, r.pct
        );
    }
    println!(
        "AVERAGE overhead {:.1}%   (paper: {:.1}%; guard pages are mapped, never resident)",
        fig9::average(&rows),
        fig9::PAPER_AVG
    );
}

fn run_services(opts: &Opts) {
    header("§VIII-B2 — service throughput under the defense");
    println!(
        "{:<8} {:>14} {:>14} {:>10} {:>8}",
        "service", "native req/s", "defended req/s", "overhead", "mem"
    );
    for r in services::rows(opts.requests, opts.samples) {
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>9.2}% {:>7.1}%",
            r.service, r.native_rps, r.defended_rps, r.overhead_pct, r.mem_pct
        );
    }
    println!("(paper: nginx ≈4.2% throughput overhead, mysql ≈0%, memory negligible)");
}

fn run_ablations(opts: &Opts) {
    header("Ablation — stack walking vs encoding (1M context reads, depth 32)");
    let (enc, walk, frames) = ablation::walk_vs_encode(32, 1_000_000);
    println!(
        "encoder read: {:.3} ms   stack walk: {:.3} ms   ({}x, {} frames visited)",
        enc * 1e3,
        walk * 1e3,
        walk / enc.max(1e-12),
        frames
    );

    header("Ablation — targeted guard pages vs guard-everything (403.gcc model)");
    let (targeted, all, pages) = ablation::guard_all_cost(opts.allocs, opts.samples);
    println!(
        "targeted: {:.3} ms   guard-all: {:.3} ms ({:.2}x, {} guard pages)",
        targeted * 1e3,
        all * 1e3,
        all / targeted.max(1e-12),
        pages
    );

    header("Ablation — quarantine quota sweep (§IX), 10k UAF frees of 64 B");
    println!("{:>12} {:>12} {:>12}", "quota", "held blocks", "evictions");
    for (quota, held, evicted) in ablation::quarantine_sweep(
        &[4 * 1024, 64 * 1024, 1024 * 1024, 16 * 1024 * 1024],
        10_000,
    ) {
        println!("{quota:>12} {held:>12} {evicted:>12}");
    }

    header("Ablation — offline heavyweight vs online lightweight (456.hmmer model)");
    let (plain, shadow) = ablation::shadow_cost(opts.allocs.min(20_000), opts.samples);
    println!(
        "native run: {:.3} ms   shadow-memory replay: {:.3} ms ({:.1}x) — why analysis is offline",
        plain * 1e3,
        shadow * 1e3,
        shadow / plain.max(1e-12)
    );

    header("Ablation — patch lookup: O(1) hash vs linear scan (64 patches, 100k probes)");
    let (hash, linear) = ablation::lookup_comparison(64, 100_000);
    println!(
        "hash: {:.3} ms   linear: {:.3} ms ({:.1}x)",
        hash * 1e3,
        linear * 1e3,
        linear / hash.max(1e-12)
    );
}

fn run_scaling(opts: &Opts) {
    header("Scaling — multi-threaded allocation throughput (Mops/s, alloc+free pairs)");
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14} {:>16} {:>15}",
        "threads",
        "native",
        "interpose",
        "hardened(5p)",
        "telemetry(5p)",
        "hardened/native",
        "telem/hardened"
    );
    let rows = scaling::rows(opts.threads, opts.pairs);
    for r in &rows {
        println!(
            "{:<8} {:>12.3} {:>12.3} {:>14.3} {:>14.3} {:>15.2}x {:>14.2}x",
            r.threads,
            r.native_ops / 1e6,
            r.interpose_ops / 1e6,
            r.hardened_ops / 1e6,
            r.telemetry_ops / 1e6,
            r.hardened_vs_native(),
            r.telemetry_vs_hardened()
        );
    }
    println!(
        "(patched context every {} allocs of {} B; registry/quarantine sharded, patch table frozen)",
        scaling::PATCHED_EVERY,
        scaling::ALLOC_SIZE
    );
    if let Some(path) = &opts.json {
        let j = scaling::to_json(&rows, opts.pairs);
        std::fs::write(path, j.to_pretty() + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

fn run_shadow(opts: &Opts) {
    header("Shadow — offline-replay kernel throughput (word vs byte-at-a-time reference)");
    let report = shadow::run(opts.samples, opts.repeat);
    println!(
        "corpus: {} shadow events (Table II suite, all attack + benign inputs)",
        report.word.events
    );
    println!(
        "{:<12} {:>14} {:>14} {:>9}",
        "kernels", "events/s", "secs/pass", "speedup"
    );
    println!(
        "{:<12} {:>14.0} {:>14.4} {:>9}",
        "reference",
        report.reference.events_per_sec(),
        report.reference.secs,
        "1.00x"
    );
    println!(
        "{:<12} {:>14.0} {:>14.4} {:>8.2}x",
        "word",
        report.word.events_per_sec(),
        report.word.secs,
        report.replay_speedup()
    );
    println!(
        "\nper-kernel microbenches ({} B span):",
        shadow::KERNEL_SPAN
    );
    println!(
        "{:<24} {:>14} {:>12} {:>9}",
        "kernel", "reference ns", "word ns", "speedup"
    );
    for k in &report.kernels {
        println!(
            "{:<24} {:>14.0} {:>12.0} {:>8.2}x",
            k.name,
            k.reference_ns,
            k.word_ns,
            k.speedup()
        );
    }
    println!("(distinguished pages + word scans + last-page/interval caches; both modes emit identical warnings)");
    if let Some(path) = &opts.json {
        let j = shadow::to_json(&report, opts.samples, opts.repeat);
        std::fs::write(path, j.to_pretty() + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

fn run_telemetry(opts: &Opts) {
    header("Telemetry — one-time attack reports across the Table II corpus (§VII)");
    let rows = telemetry::rows(opts.threads);
    for t in &rows {
        println!("{}", telemetry::table_row(t));
    }
    println!("\n{}", telemetry::summary(&rows));
    if let Some((app, sample)) = rows
        .iter()
        .find_map(|t| t.reports.first().map(|r| (&t.app, r)))
    {
        println!("\nsample report ({app}):");
        print!("{sample}");
    }
    println!("(each report fires exactly once per (FUN, CCID, T); contexts decoded from the CCID)");
    if let Some(path) = &opts.json {
        let j = telemetry::to_json(&rows);
        std::fs::write(path, j.to_pretty() + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

fn run_extras() {
    use heaptherapy_core::{incident_report, HeapTherapy, PipelineConfig};
    use ht_callgraph::Strategy;
    use ht_encoding::Scheme;

    header("§IX — multi-context vulnerability: iterative defense generation");
    let ht = HeapTherapy::new(PipelineConfig::default());
    let app = ht_vulnapps::multi_context_overflow();
    let (patches, rounds) = ht.iterative_cycle(&app, 8).expect("converges");
    println!(
        "{}: converged in {rounds} rounds with {} patches",
        app.name,
        patches.len()
    );
    for p in &patches {
        println!("  - {p}");
    }

    header("§IX — CCID-subspace partitioned analysis (quota-bounded replays)");
    let uaf = ht_vulnapps::optipng();
    let ip = ht.instrument(&uaf.program);
    let single = ht.analyze_attack(&ip, uaf.patching_input(), &uaf.reference);
    let parts = ht.analyze_attack_partitioned(&ip, uaf.patching_input(), &uaf.reference, 4);
    println!(
        "optipng UAF: 1 replay → {} patch(es); 4 partitioned replays → {} patch(es); equal = {}",
        single.patches.len(),
        parts.patches.len(),
        single.patches == parts.patches
    );

    header("Incident report — decoded calling contexts (additive/PCCE encoding)");
    let ht_precise = HeapTherapy::new(PipelineConfig {
        strategy: Strategy::Slim,
        scheme: Scheme::Additive,
        ..PipelineConfig::default()
    });
    let hb = ht_vulnapps::heartbleed();
    let ip = ht_precise.instrument(&hb.program);
    let analysis = ht_precise.analyze_attack(&ip, hb.patching_input(), &hb.reference);
    print!("{}", incident_report(&ip, &analysis, "CVE-2014-0160"));
}

fn run_extras_silently_ok() {
    run_extras();
}

fn main() {
    let opts = parse_args();
    if cfg!(debug_assertions) {
        eprintln!("note: debug build — timings are not meaningful; use --release");
    }
    match opts.what.as_str() {
        "fig2" => run_fig2(),
        "table1" => run_table1(),
        "table2" => run_table2(&opts),
        "lint" => run_lint(&opts),
        "table3" => run_table3(&opts),
        "table4" => run_table4(&opts),
        "encoding" => run_encoding(&opts),
        "fig8" => run_fig8(&opts),
        "fig9" => run_fig9(&opts),
        "services" => run_services(&opts),
        "ablations" => run_ablations(&opts),
        "scaling" => run_scaling(&opts),
        "shadow" => run_shadow(&opts),
        "telemetry" => run_telemetry(&opts),
        "extras" => run_extras(),
        "all" => {
            run_fig2();
            run_extras_silently_ok();
            run_table1();
            run_table2(&opts);
            run_lint(&opts);
            run_table3(&opts);
            run_table4(&opts);
            run_encoding(&opts);
            run_fig8(&opts);
            run_fig9(&opts);
            run_services(&opts);
            run_ablations(&opts);
        }
        other => {
            eprintln!(
                "unknown target `{other}`; expected one of all, fig2, table1, table2, \
                 table3, table4, encoding, fig8, fig9, services, ablations, lint, scaling, \
                 shadow, telemetry"
            );
            std::process::exit(2);
        }
    }
}
