//! Table I — which buffer structure serves which vulnerability combination.

use ht_defense::BufferStructure;
use ht_patch::{AllocFn, VulnFlags};

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The vulnerability-type combination.
    pub vuln: VulnFlags,
    /// Structure for plain (`malloc`/`calloc`/`realloc`) buffers.
    pub plain: BufferStructure,
    /// Structure for aligned (`memalign`) buffers.
    pub aligned: BufferStructure,
    /// Whether frees go through the deferred-free queue.
    pub deferred_free: bool,
    /// Whether the buffer is zero-initialized.
    pub zero_init: bool,
}

/// All eight vulnerability combinations.
pub fn rows() -> Vec<Table1Row> {
    (0..8u8)
        .map(VulnFlags::from_bits_truncate)
        .map(|vuln| Table1Row {
            vuln,
            plain: BufferStructure::select(AllocFn::Malloc, vuln),
            aligned: BufferStructure::select(AllocFn::Memalign, vuln),
            deferred_free: vuln.contains(VulnFlags::USE_AFTER_FREE),
            zero_init: vuln.contains(VulnFlags::UNINIT_READ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_rows_consistent_with_selection() {
        let rows = rows();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert_eq!(r.plain.has_guard(), r.vuln.contains(VulnFlags::OVERFLOW));
            assert_eq!(r.aligned.has_guard(), r.plain.has_guard());
            assert!(r.aligned.is_aligned());
            assert!(!r.plain.is_aligned());
        }
    }
}
