//! Ablations of the design choices DESIGN.md calls out.

use crate::time_median;
use ht_callgraph::{CallGraphBuilder, Strategy};
use ht_defense::{DefendedBackend, DefenseConfig};
use ht_encoding::{Encoder, InstrumentationPlan, Scheme, StackWalker};
use ht_patch::{AllocFn, Patch, PatchTable, VulnFlags};
use ht_simprog::spec::{build_spec_workload, spec_bench};
use ht_simprog::Interpreter;

/// Encoding vs. stack walking: cost of obtaining a context ID at call depth
/// `depth`, over `iters` allocation events.
///
/// Returns `(encoder_seconds, walker_seconds, frames_walked)` — the reason
/// HeapTherapy+ (and PCC before it) rejects per-allocation stack walks.
pub fn walk_vs_encode(depth: usize, iters: u64) -> (f64, f64, u64) {
    // A linear chain main → f1 → … → f_depth → malloc.
    let mut b = CallGraphBuilder::new();
    let mut prev = b.func("main");
    let mut edges = Vec::new();
    for i in 0..depth {
        let f = b.func(format!("f{i}"));
        edges.push(b.call(prev, f));
        prev = f;
    }
    let m = b.target("malloc");
    edges.push(b.call(prev, m));
    let g = b.build();
    let plan = InstrumentationPlan::build(&g, Strategy::Fcs, Scheme::Pcc);

    let enc_time = time_median(3, || {
        let mut enc = Encoder::new(&plan);
        for &e in &edges {
            enc.on_call(e);
        }
        let mut acc = 0u64;
        for _ in 0..iters {
            acc = acc.wrapping_add(enc.current().0); // O(1) read per alloc
        }
        std::hint::black_box(acc);
    });

    let mut frames = 0;
    let walk_time = time_median(3, || {
        let mut w = StackWalker::new();
        for &e in &edges {
            w.on_call(e);
        }
        let mut acc = 0u64;
        for _ in 0..iters {
            acc = acc.wrapping_add(w.walk().0); // O(depth) walk per alloc
        }
        frames = w.frames_walked();
        std::hint::black_box(acc);
    });
    (enc_time, walk_time, frames)
}

/// Targeted guard pages vs. guarding *every* buffer (the policy the paper's
/// targeting makes affordable). Returns
/// `(targeted_seconds, guard_all_seconds, guard_all_pages)`.
pub fn guard_all_cost(allocs: u64, samples: usize) -> (f64, f64, u64) {
    let w = build_spec_workload(spec_bench("403.gcc").expect("gcc model"));
    let plan = InstrumentationPlan::build(w.program.graph(), Strategy::Incremental, Scheme::Pcc);
    let input = w.input_for_allocs(allocs);

    let targeted = time_median(samples, || {
        let backend = DefendedBackend::new(DefenseConfig::default());
        Interpreter::new(&w.program, &plan, backend).run(&input);
    });

    let mut pages = 0;
    let guard_all = time_median(samples, || {
        let cfg = DefenseConfig {
            guard_all: true,
            ..DefenseConfig::default()
        };
        let backend = DefendedBackend::new(cfg);
        let mut i = Interpreter::new(&w.program, &plan, backend);
        i.run(&input);
        pages = i.backend().stats().guard_pages;
    });
    (targeted, guard_all, pages)
}

/// Quarantine-quota sweep (paper §IX): smaller quotas evict earlier,
/// shortening the deferral window. Returns `(quota, held_blocks, evictions)`
/// per quota after a UAF-heavy run.
pub fn quarantine_sweep(quotas: &[u64], frees: u64) -> Vec<(u64, usize, u64)> {
    quotas
        .iter()
        .map(|&quota| {
            let mut cfg = DefenseConfig::with_table(PatchTable::from_patches([Patch::new(
                AllocFn::Malloc,
                0, // entry-context CCID: allocations below are unwrapped
                VulnFlags::USE_AFTER_FREE,
            )]));
            cfg.quarantine_quota = quota;
            let mut backend = DefendedBackend::new(cfg);
            // Drive the backend directly: alloc/free churn in the patched
            // context.
            use ht_simprog::{AllocRequest, HeapBackend};
            for _ in 0..frees {
                let req = AllocRequest {
                    fun: AllocFn::Malloc,
                    size: 64,
                    align: 16,
                    ccid: ht_encoding::Ccid(0),
                    target: ht_callgraph::FuncId(0),
                    old_ptr: None,
                };
                let p = backend.alloc(&req).expect("alloc");
                assert!(backend.free(p).is_ok());
            }
            (
                quota,
                backend.quarantine().len(),
                backend.quarantine().evictions(),
            )
        })
        .collect()
}

/// The offline/online cost split (paper §X: shadow memory incurs tens of
/// times of slowdown and is therefore reserved for offline analysis).
/// Returns `(plain_seconds, shadow_seconds)` for the same workload.
pub fn shadow_cost(allocs: u64, samples: usize) -> (f64, f64) {
    let w = build_spec_workload(spec_bench("456.hmmer").expect("hmmer model"));
    let plan = InstrumentationPlan::build(w.program.graph(), Strategy::Incremental, Scheme::Pcc);
    let input = w.input_for_allocs(allocs);
    let plain = time_median(samples, || {
        Interpreter::new(&w.program, &plan, ht_simprog::PlainBackend::new()).run(&input);
    });
    let shadow = time_median(samples, || {
        Interpreter::new(&w.program, &plan, ht_shadow::ShadowBackend::new()).run(&input);
    });
    (plain, shadow)
}

/// O(1) hash probe vs. linear patch-list scan, `probes` lookups against
/// `entries` installed patches. Returns `(hash_seconds, linear_seconds)`.
pub fn lookup_comparison(entries: u64, probes: u64) -> (f64, f64) {
    let patches: Vec<Patch> = (0..entries)
        .map(|i| Patch::new(AllocFn::Malloc, i * 7919, VulnFlags::OVERFLOW))
        .collect();
    let table = PatchTable::from_patches(patches.clone());

    let hash = time_median(3, || {
        let mut hits = 0u64;
        for i in 0..probes {
            if table.lookup(AllocFn::Malloc, i).is_some() {
                hits += 1;
            }
        }
        std::hint::black_box(hits);
    });
    let linear = time_median(3, || {
        let mut hits = 0u64;
        for i in 0..probes {
            if patches
                .iter()
                .any(|p| p.alloc_fn == AllocFn::Malloc && p.ccid == i)
            {
                hits += 1;
            }
        }
        std::hint::black_box(hits);
    });
    (hash, linear)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_visits_depth_frames_per_event() {
        let (_, _, frames) = walk_vs_encode(32, 100);
        assert_eq!(frames, 33 * 100, "O(depth) per allocation event");
    }

    #[test]
    fn guard_all_installs_a_page_per_buffer() {
        let (_, _, pages) = guard_all_cost(100, 1);
        // One iteration of the gcc model allocates ~80 buffers; every one
        // must be guarded.
        assert!(pages >= 60, "every allocation guarded: {pages}");
    }

    #[test]
    fn quota_sweep_trades_held_blocks_for_evictions() {
        let rows = quarantine_sweep(&[64, 640, 6400], 100);
        // Larger quota → more blocks still held, fewer evictions.
        assert!(rows[0].1 <= rows[1].1 && rows[1].1 <= rows[2].1, "{rows:?}");
        assert!(rows[0].2 >= rows[1].2 && rows[1].2 >= rows[2].2, "{rows:?}");
        // Conservation: held + evicted = frees.
        for (_, held, evicted) in &rows {
            assert_eq!(*held as u64 + evicted, 100);
        }
    }

    #[test]
    fn lookup_comparison_runs() {
        let (h, l) = lookup_comparison(64, 1000);
        assert!(h > 0.0 && l > 0.0);
    }
}
