//! Fig. 2 — targeted instrumentation of the paper's example graph.

use ht_callgraph::{CallGraph, CallGraphBuilder, Strategy};

/// Builds the paper's Figure 2 example graph
/// (A→B, A→C, B→F, C→E, C→F, E→T1, F→T1, F→T2, D→H, H→I).
pub fn example_graph() -> CallGraph {
    let mut b = CallGraphBuilder::new();
    let a = b.func("A");
    let bb = b.func("B");
    let c = b.func("C");
    let d = b.func("D");
    let e = b.func("E");
    let f = b.func("F");
    let h = b.func("H");
    let i = b.func("I");
    let t1 = b.target("T1");
    let t2 = b.target("T2");
    b.call(a, bb);
    b.call(a, c);
    b.call(bb, f);
    b.call(c, e);
    b.call(c, f);
    b.call(e, t1);
    b.call(f, t1);
    b.call(f, t2);
    b.call(d, h);
    b.call(h, i);
    b.build()
}

/// One row: strategy name, instrumented-site count, and the site list.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Strategy name.
    pub strategy: &'static str,
    /// Instrumented call sites.
    pub sites: usize,
    /// Rendered edge list, e.g. `"A→B, A→C"`.
    pub edges: String,
}

/// The four panels of Fig. 2.
pub fn rows() -> Vec<Fig2Row> {
    let g = example_graph();
    Strategy::ALL
        .iter()
        .map(|&s| {
            let set = s.select(&g);
            let edges = set
                .iter()
                .map(|e| {
                    let info = g.edge(e);
                    format!("{}→{}", g.func(info.caller).name, g.func(info.callee).name)
                })
                .collect::<Vec<_>>()
                .join(", ");
            Fig2Row {
                strategy: match s {
                    Strategy::Fcs => "FCS",
                    Strategy::Tcs => "TCS",
                    Strategy::Slim => "Slim",
                    Strategy::Incremental => "Incremental",
                },
                sites: set.len(),
                edges,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_panels() {
        let rows = rows();
        assert_eq!(rows[0].sites, 10, "FCS instruments everything");
        assert_eq!(rows[1].sites, 8, "TCS prunes D→H, H→I");
        assert_eq!(rows[2].sites, 6, "Slim prunes B and E");
        assert_eq!(rows[3].sites, 4, "Incremental keeps AB, AC, CE, CF");
        assert_eq!(rows[3].edges, "A→B, A→C, C→E, C→F");
    }
}
