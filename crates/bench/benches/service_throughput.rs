//! §VIII-B2 — service throughput: Nginx/MySQL request loops, native vs
//! defended (Criterion measures time per batch of requests; throughput is
//! its inverse).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use heaptherapy_core::{HeapTherapy, PipelineConfig};
use ht_simprog::service::{build_service_workload, ServiceKind};

const REQUESTS: u64 = 500;

fn bench_services(c: &mut Criterion) {
    let ht = HeapTherapy::new(PipelineConfig::default());
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(15);
    group.throughput(Throughput::Elements(REQUESTS));
    for kind in [ServiceKind::Nginx, ServiceKind::Mysql] {
        let w = build_service_workload(kind);
        let ip = ht.instrument(&w.program);
        let input = w.input_for_requests(REQUESTS);
        let patches = ht.hypothesized_patches(&ip, &input, 1);
        group.bench_with_input(
            BenchmarkId::new("native", kind.name()),
            &input,
            |b, input| b.iter(|| ht.run_native(&ip, input)),
        );
        group.bench_with_input(
            BenchmarkId::new("defended", kind.name()),
            &input,
            |b, input| b.iter(|| ht.run_protected(&ip, input, &patches)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_services);
criterion_main!(benches);
