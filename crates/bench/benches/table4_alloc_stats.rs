//! Table IV — heap allocation statistics. Prints the replayed-vs-paper
//! counts once, then benches the replay of the most allocation-intensive
//! models (the workload generator's own cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ht_bench::table4;
use ht_callgraph::Strategy;
use ht_encoding::{InstrumentationPlan, Scheme};
use ht_simprog::interp::run_plain;
use ht_simprog::spec::{build_spec_workload, spec_bench};

fn bench_table4(c: &mut Criterion) {
    println!("\nTable IV — allocation statistics (paper | replayed at 1e-4 scale):");
    for r in table4::rows(1, 1e-4) {
        println!(
            "  {:<16} {:>11} {:>9} {:>10} | {:>8} {:>6} {:>6}",
            r.bench,
            r.paper[0],
            r.paper[1],
            r.paper[2],
            r.replayed[0],
            r.replayed[1],
            r.replayed[2]
        );
    }
    println!();

    let mut group = c.benchmark_group("table4_workload_replay");
    group.sample_size(10);
    for name in ["400.perlbench", "471.omnetpp", "483.xalancbmk"] {
        let w = build_spec_workload(spec_bench(name).unwrap());
        let plan =
            InstrumentationPlan::build(w.program.graph(), Strategy::Incremental, Scheme::Pcc);
        let input = w.input_for_allocs(10_000);
        group.bench_with_input(BenchmarkId::new("replay", name), &input, |b, input| {
            b.iter(|| run_plain(&w.program, &plan, input))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
