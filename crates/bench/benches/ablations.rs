//! Ablation benches for the design choices DESIGN.md calls out:
//! per-allocation stack walking vs O(1) encoding reads, guard-everything vs
//! targeted guard pages, and hash vs linear patch lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ht_callgraph::{CallGraphBuilder, Strategy};
use ht_defense::{DefendedBackend, DefenseConfig};
use ht_encoding::{Encoder, InstrumentationPlan, Scheme, StackWalker};
use ht_patch::{AllocFn, Patch, PatchTable};
use ht_simprog::spec::{build_spec_workload, spec_bench};
use ht_simprog::Interpreter;

fn chain_graph(depth: usize) -> (ht_callgraph::CallGraph, Vec<ht_callgraph::EdgeId>) {
    let mut b = CallGraphBuilder::new();
    let mut prev = b.func("main");
    let mut edges = Vec::new();
    for i in 0..depth {
        let f = b.func(format!("f{i}"));
        edges.push(b.call(prev, f));
        prev = f;
    }
    let m = b.target("malloc");
    edges.push(b.call(prev, m));
    (b.build(), edges)
}

fn bench_walk_vs_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_context_retrieval");
    for depth in [8usize, 32, 128] {
        let (g, edges) = chain_graph(depth);
        let plan = InstrumentationPlan::build(&g, Strategy::Fcs, Scheme::Pcc);
        group.bench_with_input(BenchmarkId::new("encoder_read", depth), &depth, |b, _| {
            let mut enc = Encoder::new(&plan);
            for &e in &edges {
                enc.on_call(e);
            }
            b.iter(|| enc.current())
        });
        group.bench_with_input(BenchmarkId::new("stack_walk", depth), &depth, |b, _| {
            let mut w = StackWalker::new();
            for &e in &edges {
                w.on_call(e);
            }
            b.iter(|| w.walk())
        });
    }
    group.finish();
}

fn bench_guard_policy(c: &mut Criterion) {
    let w = build_spec_workload(spec_bench("403.gcc").unwrap());
    let plan = InstrumentationPlan::build(w.program.graph(), Strategy::Incremental, Scheme::Pcc);
    let input = w.input_for_allocs(2_000);
    let mut group = c.benchmark_group("ablation_guard_policy");
    group.sample_size(10);
    group.bench_function("targeted_no_patches", |b| {
        b.iter(|| {
            let backend = DefendedBackend::new(DefenseConfig::default());
            Interpreter::new(&w.program, &plan, backend).run(&input)
        })
    });
    group.bench_function("guard_every_buffer", |b| {
        b.iter(|| {
            let cfg = DefenseConfig {
                guard_all: true,
                ..DefenseConfig::default()
            };
            let backend = DefendedBackend::new(cfg);
            Interpreter::new(&w.program, &plan, backend).run(&input)
        })
    });
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let patches: Vec<Patch> = (0..64u64)
        .map(|i| Patch::new(AllocFn::Malloc, i * 7919, ht_patch::VulnFlags::OVERFLOW))
        .collect();
    let table = PatchTable::from_patches(patches.clone());
    let mut group = c.benchmark_group("ablation_patch_lookup");
    group.bench_function("hash_table", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            table.lookup(AllocFn::Malloc, i)
        })
    });
    group.bench_function("linear_scan", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            patches
                .iter()
                .find(|p| p.alloc_fn == AllocFn::Malloc && p.ccid == i)
                .map(|p| p.vuln)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_walk_vs_encode,
    bench_guard_policy,
    bench_lookup
);
criterion_main!(benches);
