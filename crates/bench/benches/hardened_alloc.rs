//! Real-memory cost of the hardened allocator: allocation/free throughput
//! through `HardenedAlloc` vs. the system allocator, for unpatched traffic,
//! patched-UR, patched-UAF, and guarded (patched-OF) contexts.
//!
//! This is the `#[global_allocator]` deliverable's analogue of Fig. 8: the
//! unpatched path should cost one table probe over `System`, and each
//! defense should price in honestly (guard pages pay an `mmap`+`mprotect`
//! pair).

use criterion::{criterion_group, criterion_main, Criterion};
use ht_hardened_alloc::{ccid, HardenedAlloc, PatchEntry};
use ht_patch::{AllocFn, VulnFlags};
use std::alloc::{GlobalAlloc, Layout, System};

const SITE_UR: u64 = 0x11;
const SITE_UAF: u64 = 0x22;
const SITE_OF: u64 = 0x33;

fn bench_hardened(c: &mut Criterion) {
    static ALLOC: HardenedAlloc = HardenedAlloc::new();
    let ur = ccid::with_site(SITE_UR, ccid::current);
    let uaf = ccid::with_site(SITE_UAF, ccid::current);
    let of = ccid::with_site(SITE_OF, ccid::current);
    ALLOC.install(&[
        PatchEntry::new(AllocFn::Malloc, ur, VulnFlags::UNINIT_READ),
        PatchEntry::new(AllocFn::Malloc, uaf, VulnFlags::USE_AFTER_FREE),
        PatchEntry::new(AllocFn::Malloc, of, VulnFlags::OVERFLOW),
    ]);
    ALLOC.set_quarantine_quota(1 << 20);

    let layout = Layout::from_size_align(256, 16).unwrap();
    let mut group = c.benchmark_group("hardened_alloc_real_memory");

    group.bench_function("system_baseline", |b| {
        b.iter(|| unsafe {
            let p = System.alloc(layout);
            std::ptr::write_volatile(p, 1);
            System.dealloc(p, layout);
        })
    });
    group.bench_function("unpatched_context", |b| {
        b.iter(|| unsafe {
            let p = ALLOC.alloc(layout);
            std::ptr::write_volatile(p, 1);
            ALLOC.dealloc(p, layout);
        })
    });
    group.bench_function("patched_ur_zero_fill", |b| {
        b.iter(|| unsafe {
            let _site = ccid::CallScope::enter(SITE_UR);
            let p = ALLOC.alloc(layout);
            std::ptr::write_volatile(p, 1);
            ALLOC.dealloc(p, layout);
        })
    });
    group.bench_function("patched_uaf_quarantine", |b| {
        b.iter(|| unsafe {
            let _site = ccid::CallScope::enter(SITE_UAF);
            let p = ALLOC.alloc(layout);
            std::ptr::write_volatile(p, 1);
            ALLOC.dealloc(p, layout);
        })
    });
    group.bench_function("patched_of_guard_page", |b| {
        b.iter(|| unsafe {
            let _site = ccid::CallScope::enter(SITE_OF);
            let p = ALLOC.alloc(layout);
            std::ptr::write_volatile(p, 1);
            ALLOC.dealloc(p, layout);
        })
    });
    group.finish();

    let st = ALLOC.stats();
    println!(
        "\nhardened-alloc stats: {} interposed, {} hits, {} guard pages, \
         {} zero-fills, {} quarantined, {} evictions\n",
        st.interposed_allocs,
        st.table_hits,
        st.guard_pages,
        st.zero_fills,
        st.quarantined,
        st.evictions
    );
}

criterion_group!(benches, bench_hardened);
criterion_main!(benches);
