//! Fig. 9 — memory overhead. Prints the RSS-proxy table once (memory is a
//! deterministic quantity here, not a timing), then benches the defended
//! run so regressions in the memory-tracking path show up as time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heaptherapy_core::{HeapTherapy, PipelineConfig};
use ht_bench::fig9;
use ht_simprog::spec::{build_spec_workload, spec_bench};

fn bench_fig9(c: &mut Criterion) {
    // The actual figure: print once.
    let rows = fig9::rows(1, 2e-4);
    println!(
        "\nFig. 9 — memory overhead (RSS proxy), paper avg {:.1}%:",
        fig9::PAPER_AVG
    );
    for r in &rows {
        println!(
            "  {:<16} native={:<10} defended={:<10} (+5 patches: {:<10}) {:+.1}%",
            r.bench, r.native_rss, r.defended_rss, r.defended5_rss, r.pct
        );
    }
    println!("  AVERAGE {:+.1}%\n", fig9::average(&rows));

    let ht = HeapTherapy::new(PipelineConfig::default());
    let mut group = c.benchmark_group("fig9_memory_overhead");
    group.sample_size(10);
    for name in ["471.omnetpp", "403.gcc"] {
        let w = build_spec_workload(spec_bench(name).unwrap());
        let ip = ht.instrument(&w.program);
        let input = w.input_for_allocs(5_000);
        let p5 = ht.hypothesized_patches(&ip, &input, 5);
        group.bench_with_input(BenchmarkId::new("defended5", name), &input, |b, input| {
            b.iter(|| ht.run_protected(&ip, input, &p5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
