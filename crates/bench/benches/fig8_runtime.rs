//! Fig. 8 — Criterion measurement of online-system runtime overhead.
//!
//! Series per benchmark: native, interposition only, defended with 0/1/5
//! patches (median-frequency contexts patched as overflow, the paper's
//! methodology). Expected shape: a small, monotone overhead ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heaptherapy_core::{HeapTherapy, PipelineConfig};
use ht_simprog::spec::{build_spec_workload, spec_bench};

const ALLOCS: u64 = 5_000;

fn bench_fig8(c: &mut Criterion) {
    let ht = HeapTherapy::new(PipelineConfig::default());
    let mut group = c.benchmark_group("fig8_runtime_overhead");
    group.sample_size(15);
    for name in ["400.perlbench", "403.gcc", "456.hmmer"] {
        let w = build_spec_workload(spec_bench(name).unwrap());
        let ip = ht.instrument(&w.program);
        let input = w.input_for_allocs(ALLOCS);
        let p1 = ht.hypothesized_patches(&ip, &input, 1);
        let p5 = ht.hypothesized_patches(&ip, &input, 5);

        group.bench_with_input(BenchmarkId::new("native", name), &input, |b, input| {
            b.iter(|| ht.run_native(&ip, input))
        });
        group.bench_with_input(BenchmarkId::new("interpose", name), &input, |b, input| {
            b.iter(|| ht.run_interposed(&ip, input))
        });
        group.bench_with_input(BenchmarkId::new("patch0", name), &input, |b, input| {
            b.iter(|| ht.run_protected(&ip, input, &[]))
        });
        group.bench_with_input(BenchmarkId::new("patch1", name), &input, |b, input| {
            b.iter(|| ht.run_protected(&ip, input, &p1))
        });
        group.bench_with_input(BenchmarkId::new("patch5", name), &input, |b, input| {
            b.iter(|| ht.run_protected(&ip, input, &p5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
