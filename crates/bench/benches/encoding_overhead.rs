//! §VIII-B1 — Criterion measurement of encoding-strategy runtime overhead.
//!
//! Benches the full interpreter run of representative SPEC models under the
//! uninstrumented baseline and each strategy. The paper's result to
//! reproduce: FCS is measurably slower than TCS/Slim/Incremental, which are
//! nearly free.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ht_callgraph::Strategy;
use ht_encoding::{InstrumentationPlan, Scheme};
use ht_simprog::interp::run_plain;
use ht_simprog::spec::{build_spec_workload, spec_bench};

const ALLOCS: u64 = 5_000;

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding_overhead");
    group.sample_size(20);
    for name in ["400.perlbench", "403.gcc", "401.bzip2"] {
        let w = build_spec_workload(spec_bench(name).unwrap());
        let input = w.input_for_allocs(ALLOCS);
        let baseline = InstrumentationPlan::uninstrumented(w.program.graph());
        group.bench_with_input(BenchmarkId::new("none", name), &input, |b, input| {
            b.iter(|| run_plain(&w.program, &baseline, input))
        });
        for strategy in Strategy::ALL {
            let plan = InstrumentationPlan::build(w.program.graph(), strategy, Scheme::Pcc);
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), name),
                &input,
                |b, input| b.iter(|| run_plain(&w.program, &plan, input)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
