//! Table II — effectiveness. Prints the verdict table once (effectiveness
//! is pass/fail, not a timing), then benches the cost of the offline
//! pipeline itself: attack replay + patch generation, and the full cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heaptherapy_core::{HeapTherapy, PipelineConfig};
use ht_bench::table2;

fn bench_table2(c: &mut Criterion) {
    let rows = table2::rows(1);
    println!("\nTable II — effectiveness:");
    for r in &rows {
        println!("  {}", r.table_row());
    }
    println!("  {}\n", table2::summary(&rows));
    assert!(
        rows.iter()
            .all(|r| r.all_attacks_blocked && r.benign_ok && r.detection_correct()),
        "Table II verdict regressed"
    );

    let ht = HeapTherapy::new(PipelineConfig::default());
    let mut group = c.benchmark_group("table2_pipeline_cost");
    group.sample_size(10);
    for app in [
        ht_vulnapps::heartbleed(),
        ht_vulnapps::bc(),
        ht_vulnapps::optipng(),
    ] {
        let ip = ht.instrument(&app.program);
        group.bench_with_input(
            BenchmarkId::new("offline_analysis", &app.name),
            app.patching_input(),
            |b, input| b.iter(|| ht.analyze_attack(&ip, input, &app.reference)),
        );
        group.bench_function(BenchmarkId::new("full_cycle", &app.name), |b| {
            b.iter(|| ht.full_cycle(&app).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
