//! Table III — binary size increase. Prints the measured-vs-paper table
//! once (a static quantity), then benches instrumentation-plan construction
//! (the build-time cost of the paper's one-time LLVM pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ht_bench::table3;
use ht_callgraph::Strategy;
use ht_encoding::{InstrumentationPlan, Scheme};
use ht_simprog::spec::{build_spec_workload, spec_bench};

fn bench_table3(c: &mut Criterion) {
    let rows = table3::rows(1);
    println!("\nTable III — size increase % (measured | paper):");
    for r in &rows {
        println!(
            "  {:<16} {:>5.1} {:>5.1} {:>5.1} {:>5.1} | {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            r.bench,
            r.measured[0],
            r.measured[1],
            r.measured[2],
            r.measured[3],
            r.paper[0],
            r.paper[1],
            r.paper[2],
            r.paper[3]
        );
    }
    let avg = table3::averages(&rows);
    println!(
        "  AVERAGE          {:>5.1} {:>5.1} {:>5.1} {:>5.1} | {:>6.2} {:>6.2} {:>6.2} {:>6.2}\n",
        avg[0], avg[1], avg[2], avg[3], 12.0, 6.0, 4.5, 4.4
    );

    let mut group = c.benchmark_group("table3_plan_construction");
    group.sample_size(30);
    let w = build_spec_workload(spec_bench("403.gcc").unwrap());
    for strategy in Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::new("build_plan", strategy.name()),
            &strategy,
            |b, &s| b.iter(|| InstrumentationPlan::build(w.program.graph(), s, Scheme::Pcc)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
