//! Minimal scoped data-parallelism for the offline pipeline.
//!
//! The container this workspace builds in is network-isolated, so rayon is
//! unavailable; this crate provides the small subset the reproduce pipeline
//! needs, on `std` alone and with no `unsafe`:
//!
//! * [`par_map`] — order-preserving parallel map over a slice, distributing
//!   work as contiguous chunks claimed from a shared atomic cursor (a
//!   "work-stealing-free chunked deque": idle workers take the next chunk,
//!   nobody steals from anybody),
//! * [`par_spawn`] — run one closure per worker index (the shape a
//!   multi-threaded throughput benchmark needs),
//! * [`available_threads`] — the pool width: `HT_THREADS` if set, else
//!   [`std::thread::available_parallelism`].
//!
//! Everything runs under [`std::thread::scope`], so borrows of the caller's
//! stack work and worker panics propagate to the caller at scope exit.
//!
//! Determinism: [`par_map`] writes each result into the slot of its input
//! index, so the output order is identical to the serial map regardless of
//! the thread count — `reproduce` tables are byte-identical at any `-j`.
//!
//! ```
//! let squares = ht_par::par_map(4, &[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads to use by default: the `HT_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism (1 if that cannot be determined).
pub fn available_threads() -> usize {
    std::env::var("HT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A shared queue handing out contiguous index chunks `[start, end)` of a
/// work list. Claiming is a single `fetch_add`; there is no per-item
/// synchronization and no stealing.
#[derive(Debug)]
pub struct ChunkQueue {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkQueue {
    /// A queue over `len` items handed out `chunk` at a time (`chunk` is
    /// clamped to at least 1).
    pub fn new(len: usize, chunk: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next unprocessed chunk, or `None` when the work is gone.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }
}

/// Picks a chunk size that gives each worker several claims (for balance)
/// without making the claim counter a hot spot.
fn chunk_size(len: usize, threads: usize) -> usize {
    (len / (threads * 4)).max(1)
}

/// Order-preserving parallel map: `out[i] = f(i, &items[i])` computed on up
/// to `threads` scoped workers. With `threads <= 1` (or one item) this is a
/// plain serial map on the caller's thread — no pool, no locks.
///
/// Panics in `f` propagate to the caller when the scope joins.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let queue = ChunkQueue::new(items.len(), chunk_size(items.len(), workers));
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    while let Some(range) = queue.claim() {
                        for i in range {
                            let r = f(i, &items[i]);
                            *slots[i].lock().expect("result slot poisoned") = Some(r);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            // Explicit join so a worker's panic payload reaches the caller
            // verbatim (scope's automatic join would repackage it).
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Runs `f(worker_index)` on `n` scoped threads at once and returns the
/// results in worker order. Unlike [`par_map`] every closure runs on its own
/// thread simultaneously — the shape throughput benchmarks need.
///
/// With `n <= 1` the closure runs on the caller's thread.
pub fn par_spawn<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n <= 1 {
        return vec![f(0)];
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = slots
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let f = &f;
                s.spawn(move || {
                    *slot.lock().expect("result slot poisoned") = Some(f(i));
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker stored its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order_at_every_width() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 8, 300] {
            assert_eq!(
                par_map(threads, &items, |_, &x| x * 3 + 1),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn par_map_passes_the_index() {
        let items = ["a", "b", "c"];
        assert_eq!(
            par_map(2, &items, |i, s| format!("{i}{s}")),
            vec!["0a", "1b", "2c"]
        );
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(8, &items, |i, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(i, x);
            x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn par_spawn_runs_all_workers() {
        let ids = par_spawn(4, |i| i);
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chunk_queue_covers_the_range_without_overlap() {
        let q = ChunkQueue::new(10, 3);
        let mut seen = [false; 10];
        while let Some(r) = q.claim() {
            for i in r {
                assert!(!seen[i], "index {i} handed out twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        par_map(2, &[1, 2, 3, 4], |_, &x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
