//! Heap-object tracking for the analyzer: which buffer owns which bytes,
//! and what was its allocation context (origin tracking).

use ht_encoding::Ccid;
use ht_memsim::{Addr, FastMap};
use ht_patch::AllocFn;
use std::cell::Cell;
use std::collections::BTreeMap;

/// Identity of one heap buffer tracked by the analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufId(pub u64);

/// Lifecycle state of a tracked buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufState {
    /// Allocated and not yet freed.
    Live,
    /// Freed, sitting in the quarantine (memory retained, inaccessible).
    Freed,
}

/// Which part of a buffer's footprint an address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The red zone before the user buffer.
    LeftRedZone,
    /// The user-visible buffer.
    User,
    /// The red zone after the user buffer.
    RightRedZone,
}

/// Everything the analyzer knows about one buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufRecord {
    /// Buffer identity.
    pub id: BufId,
    /// User-visible base address.
    pub user: Addr,
    /// User-visible size in bytes.
    pub size: u64,
    /// Pointer returned by the *inner* allocator (what must be freed).
    pub inner_ptr: Addr,
    /// Allocation API.
    pub fun: AllocFn,
    /// Allocation-time calling-context ID — the patch key (origin tracking).
    pub ccid: Ccid,
    /// Lifecycle state.
    pub state: BufState,
    /// Red-zone width used for this buffer.
    pub redzone: u64,
}

impl BufRecord {
    /// Start of the tracked footprint (left red zone).
    pub fn footprint_start(&self) -> Addr {
        self.user - self.redzone
    }

    /// End (exclusive) of the tracked footprint (right red zone end).
    pub fn footprint_end(&self) -> Addr {
        self.user + self.size + self.redzone
    }
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    end: Addr,
    buf: BufId,
    region: Region,
}

/// One cached interval segment: the last `[start, end)` a lookup resolved.
#[derive(Debug, Clone, Copy)]
struct CachedSeg {
    start: Addr,
    end: Addr,
    buf: BufId,
    region: Region,
}

/// Interval map from addresses to buffer regions.
///
/// This is the origin-tracking backbone: given a faulting address, the
/// analyzer asks which buffer (and which part of it) is involved.
///
/// Access streams overwhelmingly stay inside one buffer for many
/// consecutive bytes, so [`HeapMap::lookup`] keeps a one-entry cache of the
/// last resolved segment and skips the `BTreeMap` range query on a hit.
/// Every mutation ([`HeapMap::insert`], [`HeapMap::remove`],
/// [`HeapMap::mark_freed`]) invalidates it.
#[derive(Debug)]
pub struct HeapMap {
    intervals: BTreeMap<Addr, Interval>,
    records: FastMap<BufId, BufRecord>,
    next_id: u64,
    cache: Cell<Option<CachedSeg>>,
    cache_enabled: bool,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl Default for HeapMap {
    fn default() -> Self {
        Self::with_cache(true)
    }
}

impl HeapMap {
    /// Empty map (lookup cache enabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty map with the lookup cache switched on or off (off reproduces
    /// the reference baseline: a `BTreeMap` range query per lookup).
    pub fn with_cache(enabled: bool) -> Self {
        Self {
            intervals: BTreeMap::new(),
            records: FastMap::default(),
            next_id: 0,
            cache: Cell::new(None),
            cache_enabled: enabled,
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Lookup-cache `(hits, misses)` counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    #[inline]
    fn invalidate(&mut self) {
        self.cache.set(None);
    }

    /// Registers a freshly allocated buffer and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the footprint overlaps an existing tracked buffer — the
    /// inner allocator must never hand out overlapping blocks.
    pub fn insert(
        &mut self,
        user: Addr,
        size: u64,
        inner_ptr: Addr,
        fun: AllocFn,
        ccid: Ccid,
        redzone: u64,
    ) -> BufId {
        let id = BufId(self.next_id);
        self.next_id += 1;
        let rec = BufRecord {
            id,
            user,
            size,
            inner_ptr,
            fun,
            ccid,
            state: BufState::Live,
            redzone,
        };
        let segments = [
            (rec.footprint_start(), user, Region::LeftRedZone),
            (user, user + size, Region::User),
            (user + size, rec.footprint_end(), Region::RightRedZone),
        ];
        for (start, end, region) in segments {
            if start == end {
                continue;
            }
            if let Some((_, iv)) = self.intervals.range(..end).next_back() {
                assert!(
                    iv.end <= start || !self.records.contains_key(&iv.buf),
                    "overlapping heap footprints at {start:#x}"
                );
            }
            self.intervals.insert(
                start,
                Interval {
                    end,
                    buf: id,
                    region,
                },
            );
        }
        self.records.insert(id, rec);
        self.invalidate();
        id
    }

    /// Which buffer/region covers `addr`, if tracked.
    pub fn lookup(&self, addr: Addr) -> Option<(&BufRecord, Region)> {
        if self.cache_enabled {
            if let Some(c) = self.cache.get() {
                if addr >= c.start && addr < c.end {
                    self.hits.set(self.hits.get() + 1);
                    return self.records.get(&c.buf).map(|r| (r, c.region));
                }
            }
            self.misses.set(self.misses.get() + 1);
        }
        let (&start, iv) = self.intervals.range(..=addr).next_back()?;
        if addr >= iv.end {
            return None;
        }
        let rec = self.records.get(&iv.buf)?;
        if self.cache_enabled {
            self.cache.set(Some(CachedSeg {
                start,
                end: iv.end,
                buf: iv.buf,
                region: iv.region,
            }));
        }
        Some((rec, iv.region))
    }

    /// The record of a buffer whose *user base* is `user`, if live-tracked.
    pub fn by_user_ptr(&self, user: Addr) -> Option<&BufRecord> {
        match self.lookup(user) {
            Some((rec, Region::User)) if rec.user == user => Some(rec),
            _ => None,
        }
    }

    /// Record by id.
    pub fn record(&self, id: BufId) -> Option<&BufRecord> {
        self.records.get(&id)
    }

    /// Marks a buffer freed (quarantined).
    pub fn mark_freed(&mut self, id: BufId) {
        self.invalidate();
        if let Some(r) = self.records.get_mut(&id) {
            r.state = BufState::Freed;
        }
    }

    /// Removes a buffer and its intervals entirely (quarantine eviction).
    pub fn remove(&mut self, id: BufId) -> Option<BufRecord> {
        self.invalidate();
        let rec = self.records.remove(&id)?;
        for start in [rec.footprint_start(), rec.user, rec.user + rec.size] {
            if let Some(iv) = self.intervals.get(&start) {
                if iv.buf == id {
                    self.intervals.remove(&start);
                }
            }
        }
        Some(rec)
    }

    /// Number of tracked buffers (live + quarantined).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(map: &mut HeapMap, user: Addr, size: u64) -> BufId {
        map.insert(user, size, user - 16, AllocFn::Malloc, Ccid(7), 16)
    }

    #[test]
    fn lookup_classifies_regions() {
        let mut m = HeapMap::new();
        let id = rec(&mut m, 0x1010, 32);
        let (r, reg) = m.lookup(0x1000).unwrap();
        assert_eq!((r.id, reg), (id, Region::LeftRedZone));
        let (_, reg) = m.lookup(0x1010).unwrap();
        assert_eq!(reg, Region::User);
        let (_, reg) = m.lookup(0x1010 + 31).unwrap();
        assert_eq!(reg, Region::User);
        let (_, reg) = m.lookup(0x1010 + 32).unwrap();
        assert_eq!(reg, Region::RightRedZone);
        let (_, reg) = m.lookup(0x1010 + 32 + 15).unwrap();
        assert_eq!(reg, Region::RightRedZone);
        assert!(m.lookup(0x1010 + 32 + 16).is_none());
        assert!(m.lookup(0xfff).is_none());
    }

    #[test]
    fn by_user_ptr_requires_exact_base() {
        let mut m = HeapMap::new();
        let id = rec(&mut m, 0x2010, 64);
        assert_eq!(m.by_user_ptr(0x2010).unwrap().id, id);
        assert!(m.by_user_ptr(0x2011).is_none());
        assert!(m.by_user_ptr(0x2000).is_none(), "red zone is not a base");
    }

    #[test]
    fn state_transitions_and_removal() {
        let mut m = HeapMap::new();
        let id = rec(&mut m, 0x3010, 16);
        assert_eq!(m.record(id).unwrap().state, BufState::Live);
        m.mark_freed(id);
        assert_eq!(m.record(id).unwrap().state, BufState::Freed);
        // Freed buffers still resolve (that is the UAF origin lookup).
        assert!(m.lookup(0x3010).is_some());
        let rec = m.remove(id).unwrap();
        assert_eq!(rec.size, 16);
        assert!(m.lookup(0x3010).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn multiple_buffers_resolve_independently() {
        let mut m = HeapMap::new();
        let a = rec(&mut m, 0x1010, 16);
        let b = rec(&mut m, 0x2010, 16);
        assert_eq!(m.lookup(0x1010).unwrap().0.id, a);
        assert_eq!(m.lookup(0x2010).unwrap().0.id, b);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn footprint_bounds() {
        let r = BufRecord {
            id: BufId(0),
            user: 100,
            size: 10,
            inner_ptr: 84,
            fun: AllocFn::Malloc,
            ccid: Ccid(0),
            state: BufState::Live,
            redzone: 16,
        };
        assert_eq!(r.footprint_start(), 84);
        assert_eq!(r.footprint_end(), 126);
    }

    #[test]
    fn lookup_cache_hits_on_repeated_lookups() {
        let mut m = HeapMap::new();
        rec(&mut m, 0x1010, 32);
        assert_eq!(m.cache_stats(), (0, 0));
        m.lookup(0x1010); // populates the cache (miss)
        for a in 0x1010..0x1010 + 32 {
            assert!(m.lookup(a).is_some());
        }
        let (hits, misses) = m.cache_stats();
        assert_eq!(misses, 1, "only the first lookup walks the BTreeMap");
        assert_eq!(hits, 32);
        // Outside the cached segment: a miss, then the new segment caches.
        m.lookup(0x1000);
        m.lookup(0x1001);
        let (hits2, misses2) = m.cache_stats();
        assert_eq!(misses2, 2);
        assert_eq!(hits2, 33);
    }

    #[test]
    fn lookup_cache_invalidated_by_mutations() {
        let mut m = HeapMap::new();
        let a = rec(&mut m, 0x1010, 32);
        m.lookup(0x1010);
        m.lookup(0x1010);
        assert_eq!(m.cache_stats().0, 1, "cache warm");

        // mark_freed invalidates: the next lookup misses but must still
        // resolve (and see the Freed state).
        m.mark_freed(a);
        let misses_before = m.cache_stats().1;
        let (r, _) = m.lookup(0x1010).unwrap();
        assert_eq!(r.state, BufState::Freed);
        assert_eq!(
            m.cache_stats().1,
            misses_before + 1,
            "miss after mark_freed"
        );

        // remove invalidates: the cached segment must not resurrect it.
        m.lookup(0x1010); // re-warm
        m.remove(a);
        assert!(m.lookup(0x1010).is_none(), "stale cache would return it");

        // insert of an overlapping interval invalidates: the same address
        // must resolve to the *new* buffer, not the cached old segment.
        let b = rec(&mut m, 0x1010, 8);
        m.lookup(0x1010);
        let c = rec(&mut m, 0x1040, 8); // nearby insert also invalidates
        assert_eq!(m.lookup(0x1010).unwrap().0.id, b);
        assert_eq!(m.lookup(0x1040).unwrap().0.id, c);
    }

    #[test]
    fn disabled_cache_never_counts() {
        let mut m = HeapMap::with_cache(false);
        rec(&mut m, 0x1010, 32);
        for _ in 0..10 {
            assert!(m.lookup(0x1010).is_some());
        }
        assert_eq!(m.cache_stats(), (0, 0));
    }

    #[test]
    fn zero_size_buffer_tracked() {
        let mut m = HeapMap::new();
        let id = m.insert(0x5010, 0, 0x5000, AllocFn::Malloc, Ccid(1), 16);
        // Only red zones exist; the user region is empty.
        let (r, reg) = m.lookup(0x5010).unwrap();
        assert_eq!((r.id, reg), (id, Region::RightRedZone));
    }
}
