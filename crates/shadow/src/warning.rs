//! Analyzer warnings and their mapping to patch vulnerability bits.

use ht_encoding::Ccid;
use ht_memsim::Addr;
use ht_patch::{AllocFn, VulnFlags};
use std::fmt;

/// What kind of violation a warning reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WarningKind {
    /// Contiguous over-access into a red zone (overwrite or overread).
    Overflow,
    /// Access to quarantined freed memory.
    UseAfterFree,
    /// A value carrying invalid bits reached a checked sink.
    UninitRead,
    /// `free` of a pointer that is not a live buffer base (incl. double
    /// free). Not patchable — diagnostics only.
    InvalidFree,
    /// Access to memory no tracked buffer owns (wild pointer). Not
    /// patchable — diagnostics only.
    Wild,
}

impl WarningKind {
    /// The patch bit for this warning, if the paper's online system defends
    /// against it.
    pub fn to_vuln_flags(self) -> Option<VulnFlags> {
        match self {
            WarningKind::Overflow => Some(VulnFlags::OVERFLOW),
            WarningKind::UseAfterFree => Some(VulnFlags::USE_AFTER_FREE),
            WarningKind::UninitRead => Some(VulnFlags::UNINIT_READ),
            WarningKind::InvalidFree | WarningKind::Wild => None,
        }
    }
}

impl fmt::Display for WarningKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WarningKind::Overflow => "overflow",
            WarningKind::UseAfterFree => "use-after-free",
            WarningKind::UninitRead => "uninitialized-read",
            WarningKind::InvalidFree => "invalid-free",
            WarningKind::Wild => "wild-access",
        };
        f.write_str(s)
    }
}

/// One analyzer warning, attributed (when possible) to the origin buffer's
/// allocation context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// What happened.
    pub kind: WarningKind,
    /// The faulting / checked address.
    pub addr: Addr,
    /// Whether the offending access was a write.
    pub write: bool,
    /// Origin buffer's allocation API, if attributed.
    pub fun: Option<AllocFn>,
    /// Origin buffer's allocation-time CCID, if attributed.
    pub ccid: Option<Ccid>,
    /// Origin buffer's user size, if attributed.
    pub buf_size: Option<u64>,
}

impl Warning {
    /// The patch key `(FUN, CCID)` if this warning is patchable and
    /// attributed.
    pub fn patch_key(&self) -> Option<(AllocFn, u64)> {
        match (self.kind.to_vuln_flags(), self.fun, self.ccid) {
            (Some(_), Some(f), Some(c)) => Some((f, c.0)),
            _ => None,
        }
    }
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = if self.write { "write" } else { "read" };
        write!(f, "{} on {} at {:#x}", self.kind, op, self.addr)?;
        if let (Some(fun), Some(ccid)) = (self.fun, self.ccid) {
            write!(f, " (buffer from {fun} at {ccid}")?;
            if let Some(sz) = self.buf_size {
                write!(f, ", {sz} bytes")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_patch_bits() {
        assert_eq!(
            WarningKind::Overflow.to_vuln_flags(),
            Some(VulnFlags::OVERFLOW)
        );
        assert_eq!(
            WarningKind::UseAfterFree.to_vuln_flags(),
            Some(VulnFlags::USE_AFTER_FREE)
        );
        assert_eq!(
            WarningKind::UninitRead.to_vuln_flags(),
            Some(VulnFlags::UNINIT_READ)
        );
        assert_eq!(WarningKind::InvalidFree.to_vuln_flags(), None);
        assert_eq!(WarningKind::Wild.to_vuln_flags(), None);
    }

    #[test]
    fn patch_key_requires_attribution() {
        let mut w = Warning {
            kind: WarningKind::Overflow,
            addr: 0x100,
            write: true,
            fun: Some(AllocFn::Malloc),
            ccid: Some(Ccid(9)),
            buf_size: Some(64),
        };
        assert_eq!(w.patch_key(), Some((AllocFn::Malloc, 9)));
        w.ccid = None;
        assert_eq!(w.patch_key(), None);
        w.ccid = Some(Ccid(9));
        w.kind = WarningKind::Wild;
        assert_eq!(w.patch_key(), None);
    }

    #[test]
    fn display_is_informative() {
        let w = Warning {
            kind: WarningKind::UninitRead,
            addr: 0xbeef,
            write: false,
            fun: Some(AllocFn::Calloc),
            ccid: Some(Ccid(0x22)),
            buf_size: Some(128),
        };
        let s = w.to_string();
        assert!(s.contains("uninitialized-read"), "{s}");
        assert!(s.contains("0xbeef"), "{s}");
        assert!(s.contains("calloc"), "{s}");
        assert!(s.contains("128 bytes"), "{s}");
    }
}
