//! Shadow bit planes: A-bits (accessibility, per byte) and V-bits
//! (validity, per bit).
//!
//! The planes are stored per 4 KiB page with three layers of optimization
//! (all behaviour-preserving — see `tests/shadow_kernels.rs` for the
//! differential proof against the byte-at-a-time reference):
//!
//! * **Page-span word kernels** — every range operation is split into
//!   per-page segments (one page-table lookup per *page*, not per byte);
//!   range sets use `slice::fill`/masked head–tail bytes, range scans read
//!   eight bytes at a time as `u64` words.
//! * **Distinguished pages** (Memcheck-style) — a page that is uniformly
//!   `NoAccess` (inaccessible + invalid), `Undefined` (accessible +
//!   invalid, fresh `malloc` memory) or `Defined` (accessible + valid) is
//!   represented by a one-byte tag; the ~4.5 KiB of plane data is
//!   materialized copy-on-write only when a partial update breaks the
//!   uniformity. [`ShadowBits::tracked_pages`] still counts tagged pages
//!   (the memory-cost *proxy* keeps its meaning), while
//!   [`ShadowBits::materialized_pages`] reports the real footprint.
//! * **A one-entry last-page cache** — the analyzer's access streams hit
//!   the same page repeatedly; the last resolved `(page, slot)` pair skips
//!   the hash lookup.
//!
//! [`KernelMode::Reference`] switches every operation back to the
//! byte-at-a-time, lookup-per-byte implementation (always-materialized
//! pages, no cache). It is the oracle for the differential tests and the
//! baseline of the `reproduce shadow` benchmark.

use ht_memsim::FastMap;
use ht_memsim::{Addr, PAGE_SIZE};
use std::cell::Cell;

const PAGE: usize = PAGE_SIZE as usize;
const ABYTES: usize = PAGE / 8;
/// Sentinel page number for an empty last-page cache (no real page has this
/// number: the highest is `u64::MAX / PAGE_SIZE`).
const NO_PAGE: u64 = u64::MAX;

/// Which kernel implementations a [`ShadowBits`] (and the analyzer on top
/// of it) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Page-span, word-wide kernels with distinguished pages (the default).
    #[default]
    Word,
    /// Byte-at-a-time loops with a page lookup per byte — the seed
    /// implementation, kept as the differential-test oracle and benchmark
    /// baseline.
    Reference,
}

/// Saturating end of `[addr, addr+len)`: ranges reaching past the top of
/// the address space clamp to `u64::MAX` instead of wrapping. (The single
/// byte at `u64::MAX` itself is unreachable — no workload can notice.)
#[inline]
fn range_end(addr: Addr, len: u64) -> u64 {
    addr.saturating_add(len)
}

/// Distinguished page states (Memcheck's NOACCESS / UNDEFINED / DEFINED).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tag {
    /// Every byte inaccessible, every bit invalid — untracked memory, red
    /// zones, freed blocks.
    NoAccess,
    /// Every byte accessible, every bit invalid — fresh `malloc` memory.
    Undefined,
    /// Every byte accessible, every bit valid — `calloc`ed or fully
    /// written memory.
    Defined,
}

impl Tag {
    #[inline]
    fn accessible(self) -> bool {
        !matches!(self, Tag::NoAccess)
    }
    #[inline]
    fn vfill(self) -> u8 {
        if matches!(self, Tag::Defined) {
            0xFF
        } else {
            0x00
        }
    }
    #[inline]
    fn afill(self) -> u8 {
        if self.accessible() {
            0xFF
        } else {
            0x00
        }
    }
}

struct ShadowPage {
    /// One validity mask byte per data byte (bit i ⇔ bit i of that byte).
    vbits: Box<[u8]>,
    /// One accessibility bit per data byte.
    abits: Box<[u8]>,
}

impl ShadowPage {
    fn from_tag(tag: Tag) -> Self {
        Self {
            vbits: vec![tag.vfill(); PAGE].into_boxed_slice(),
            abits: vec![tag.afill(); ABYTES].into_boxed_slice(),
        }
    }
}

enum PageRepr {
    /// Distinguished page: uniform state, no plane data allocated.
    Tag(Tag),
    /// Materialized plane data.
    Mat(ShadowPage),
}

/// Bits `[lo, hi)` of one byte, as a mask.
#[inline]
fn bit_mask(lo: usize, hi: usize) -> u8 {
    debug_assert!(lo <= hi && hi <= 8);
    (((1u16 << (hi - lo)) - 1) as u8) << lo
}

/// Sets or clears the bit range `[start, end)` of a bit plane.
fn set_bit_range(bits: &mut [u8], start: usize, end: usize, on: bool) {
    if start >= end {
        return;
    }
    let apply = |bits: &mut [u8], idx: usize, m: u8| {
        if on {
            bits[idx] |= m;
        } else {
            bits[idx] &= !m;
        }
    };
    let (sb, si) = (start / 8, start % 8);
    let (eb, ei) = (end / 8, end % 8);
    if sb == eb {
        apply(bits, sb, bit_mask(si, ei));
        return;
    }
    apply(bits, sb, bit_mask(si, 8));
    bits[sb + 1..eb].fill(if on { 0xFF } else { 0x00 });
    if ei > 0 {
        apply(bits, eb, bit_mask(0, ei));
    }
}

/// First bit index in `[start, end)` whose value equals `want_set`,
/// scanning eight bytes (64 bits) at a time.
fn find_bit(bits: &[u8], start: usize, end: usize, want_set: bool) -> Option<usize> {
    if start >= end {
        return None;
    }
    let probe = |idx: usize, lo: usize, hi: usize| -> Option<usize> {
        let b = if want_set { bits[idx] } else { !bits[idx] };
        let m = b & bit_mask(lo, hi);
        (m != 0).then(|| idx * 8 + m.trailing_zeros() as usize)
    };
    let (sb, si) = (start / 8, start % 8);
    let (eb, ei) = (end / 8, end % 8);
    if sb == eb {
        return probe(sb, si, ei);
    }
    if si != 0 {
        if let Some(i) = probe(sb, si, 8) {
            return Some(i);
        }
    }
    let wstart = if si == 0 { sb } else { sb + 1 };
    let full = &bits[wstart..eb];
    let mut chunks = full.chunks_exact(8);
    for (k, c) in chunks.by_ref().enumerate() {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        let w = if want_set { w } else { !w };
        if w != 0 {
            return Some((wstart + k * 8) * 8 + w.trailing_zeros() as usize);
        }
    }
    let roff = wstart + full.len() - chunks.remainder().len();
    for (k, &b) in chunks.remainder().iter().enumerate() {
        let b = if want_set { b } else { !b };
        if b != 0 {
            return Some((roff + k) * 8 + b.trailing_zeros() as usize);
        }
    }
    if ei > 0 {
        return probe(eb, 0, ei);
    }
    None
}

/// First index in `bytes` whose value is not `0xFF` (word scan).
fn find_byte_not_ff(bytes: &[u8]) -> Option<usize> {
    let mut chunks = bytes.chunks_exact(8);
    for (k, c) in chunks.by_ref().enumerate() {
        let w = u64::from_le_bytes(c.try_into().unwrap());
        if w != u64::MAX {
            return Some(k * 8 + ((!w).trailing_zeros() / 8) as usize);
        }
    }
    let off = bytes.len() - chunks.remainder().len();
    chunks
        .remainder()
        .iter()
        .position(|&b| b != 0xFF)
        .map(|i| off + i)
}

/// First index in `bytes` whose value IS `0xFF` (SWAR zero-byte scan on the
/// complement: the classic `haszero` trick locates the lowest zero byte).
fn find_byte_ff(bytes: &[u8]) -> Option<usize> {
    const L: u64 = 0x0101_0101_0101_0101;
    const H: u64 = 0x8080_8080_8080_8080;
    let mut chunks = bytes.chunks_exact(8);
    for (k, c) in chunks.by_ref().enumerate() {
        let v = !u64::from_le_bytes(c.try_into().unwrap()); // zero byte ⇔ 0xFF
        let z = v.wrapping_sub(L) & !v & H;
        if z != 0 {
            return Some(k * 8 + (z.trailing_zeros() / 8) as usize);
        }
    }
    let off = bytes.len() - chunks.remainder().len();
    chunks
        .remainder()
        .iter()
        .position(|&b| b == 0xFF)
        .map(|i| off + i)
}

/// Per-page segments `(page_number, offset, len)` of `[addr, addr+len)`,
/// with a saturating (non-wrapping) end.
struct Segments {
    a: u64,
    end: u64,
}

fn segments(addr: Addr, len: u64) -> Segments {
    Segments {
        a: addr,
        end: range_end(addr, len),
    }
}

impl Iterator for Segments {
    type Item = (u64, usize, usize);
    fn next(&mut self) -> Option<(u64, usize, usize)> {
        if self.a >= self.end {
            return None;
        }
        let pno = self.a / PAGE_SIZE;
        let off = (self.a % PAGE_SIZE) as usize;
        let n = ((PAGE_SIZE - self.a % PAGE_SIZE).min(self.end - self.a)) as usize;
        self.a += n as u64;
        Some((pno, off, n))
    }
}

/// The shadow planes for the whole address space.
///
/// Untracked memory is inaccessible and invalid — the analyzer marks heap
/// regions explicitly on every allocation event.
pub struct ShadowBits {
    /// Page number → slot in `slots`. Pages are never removed, so slots are
    /// stable and the one-entry cache can hold plain indices.
    index: FastMap<u64, u32>,
    slots: Vec<PageRepr>,
    /// Last `(page, slot)` resolved — the one-entry page cache.
    last: Cell<(u64, u32)>,
    mode: KernelMode,
}

impl Default for ShadowBits {
    fn default() -> Self {
        Self::with_mode(KernelMode::Word)
    }
}

impl std::fmt::Debug for ShadowBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowBits")
            .field("tracked_pages", &self.tracked_pages())
            .field("materialized_pages", &self.materialized_pages())
            .field("mode", &self.mode)
            .finish()
    }
}

impl ShadowBits {
    /// Empty shadow (everything inaccessible/invalid), word kernels.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty shadow running the given kernel implementations.
    pub fn with_mode(mode: KernelMode) -> Self {
        Self {
            index: FastMap::default(),
            slots: Vec::new(),
            last: Cell::new((NO_PAGE, 0)),
            mode,
        }
    }

    /// Which kernels this instance runs.
    pub fn mode(&self) -> KernelMode {
        self.mode
    }

    /// Resolves an existing page's slot through the one-entry cache.
    #[inline]
    fn find(&self, pno: u64) -> Option<u32> {
        let (lp, ls) = self.last.get();
        if lp == pno {
            return Some(ls);
        }
        let s = *self.index.get(&pno)?;
        self.last.set((pno, s));
        Some(s)
    }

    /// Slot of `pno`, inserting a distinguished `NoAccess` page (the
    /// untracked default, now counted as tracked) if absent.
    #[inline]
    fn slot_of(&mut self, pno: u64) -> u32 {
        let (lp, ls) = self.last.get();
        if lp == pno {
            return ls;
        }
        let slots = &mut self.slots;
        let s = *self.index.entry(pno).or_insert_with(|| {
            let s = slots.len() as u32;
            slots.push(PageRepr::Tag(Tag::NoAccess));
            s
        });
        self.last.set((pno, s));
        s
    }

    /// Copy-on-write materialization of a distinguished page.
    fn mat(&mut self, slot: u32) -> &mut ShadowPage {
        let r = &mut self.slots[slot as usize];
        if let PageRepr::Tag(t) = *r {
            *r = PageRepr::Mat(ShadowPage::from_tag(t));
        }
        match r {
            PageRepr::Mat(p) => p,
            PageRepr::Tag(_) => unreachable!("just materialized"),
        }
    }

    /// The distinguished tag of a slot, or `None` if materialized.
    #[inline]
    fn tag_of(&self, slot: u32) -> Option<Tag> {
        match &self.slots[slot as usize] {
            PageRepr::Tag(t) => Some(*t),
            PageRepr::Mat(_) => None,
        }
    }

    // ---- reference (byte-at-a-time) primitives -------------------------

    /// The seed implementation's `page_mut`: materializes unconditionally,
    /// one hash lookup per call, no cache.
    fn ref_page_mut(&mut self, pno: u64) -> &mut ShadowPage {
        let slots = &mut self.slots;
        let s = *self.index.entry(pno).or_insert_with(|| {
            let s = slots.len() as u32;
            slots.push(PageRepr::Tag(Tag::NoAccess));
            s
        });
        self.mat(s)
    }

    fn ref_repr(&self, pno: u64) -> Option<&PageRepr> {
        self.index.get(&pno).map(|&s| &self.slots[s as usize])
    }

    fn ref_is_accessible(&self, addr: Addr) -> bool {
        match self.ref_repr(addr / PAGE_SIZE) {
            None => false,
            Some(PageRepr::Tag(t)) => t.accessible(),
            Some(PageRepr::Mat(p)) => {
                let off = (addr % PAGE_SIZE) as usize;
                p.abits[off / 8] & (1 << (off % 8)) != 0
            }
        }
    }

    fn ref_vmask(&self, addr: Addr) -> u8 {
        match self.ref_repr(addr / PAGE_SIZE) {
            None => 0,
            Some(PageRepr::Tag(t)) => t.vfill(),
            Some(PageRepr::Mat(p)) => p.vbits[(addr % PAGE_SIZE) as usize],
        }
    }

    // ---- public API ----------------------------------------------------

    /// Marks `[addr, addr+len)` accessible or inaccessible.
    pub fn set_accessible(&mut self, addr: Addr, len: u64, accessible: bool) {
        match self.mode {
            KernelMode::Reference => {
                for a in addr..range_end(addr, len) {
                    let p = self.ref_page_mut(a / PAGE_SIZE);
                    let off = (a % PAGE_SIZE) as usize;
                    if accessible {
                        p.abits[off / 8] |= 1 << (off % 8);
                    } else {
                        p.abits[off / 8] &= !(1 << (off % 8));
                    }
                }
            }
            KernelMode::Word => self.set_accessible_word(addr, len, accessible),
        }
    }

    fn set_accessible_word(&mut self, addr: Addr, len: u64, accessible: bool) {
        for (pno, off, n) in segments(addr, len) {
            let slot = self.slot_of(pno);
            let tag = self.tag_of(slot);
            if n == PAGE {
                match (tag, accessible) {
                    (Some(Tag::NoAccess), true) => {
                        self.slots[slot as usize] = PageRepr::Tag(Tag::Undefined)
                    }
                    (Some(_), true) => {} // Undefined/Defined: already accessible
                    (Some(Tag::Defined), false) => {
                        // A-bits drop but V-bits stay all-valid — no tag
                        // represents that state.
                        self.mat(slot).abits.fill(0x00);
                    }
                    (Some(_), false) => self.slots[slot as usize] = PageRepr::Tag(Tag::NoAccess),
                    (None, on) => {
                        self.mat(slot).abits.fill(if on { 0xFF } else { 0x00 });
                    }
                }
            } else {
                match tag {
                    Some(t) if t.accessible() == accessible => {} // already uniform
                    _ => set_bit_range(&mut self.mat(slot).abits, off, off + n, accessible),
                }
            }
        }
    }

    /// Whether the byte at `addr` is accessible.
    pub fn is_accessible(&self, addr: Addr) -> bool {
        match self.mode {
            KernelMode::Reference => self.ref_is_accessible(addr),
            KernelMode::Word => match self.find(addr / PAGE_SIZE) {
                None => false,
                Some(s) => match &self.slots[s as usize] {
                    PageRepr::Tag(t) => t.accessible(),
                    PageRepr::Mat(p) => {
                        let off = (addr % PAGE_SIZE) as usize;
                        p.abits[off / 8] & (1 << (off % 8)) != 0
                    }
                },
            },
        }
    }

    /// First inaccessible byte in `[addr, addr+len)`, if any.
    pub fn first_inaccessible(&self, addr: Addr, len: u64) -> Option<Addr> {
        match self.mode {
            KernelMode::Reference => {
                (addr..range_end(addr, len)).find(|&a| !self.ref_is_accessible(a))
            }
            KernelMode::Word => {
                for (pno, off, n) in segments(addr, len) {
                    let base = pno * PAGE_SIZE;
                    match self.find(pno).map(|s| &self.slots[s as usize]) {
                        None | Some(PageRepr::Tag(Tag::NoAccess)) => {
                            return Some(base + off as u64)
                        }
                        Some(PageRepr::Tag(_)) => {}
                        Some(PageRepr::Mat(p)) => {
                            if let Some(i) = find_bit(&p.abits, off, off + n, false) {
                                return Some(base + i as u64);
                            }
                        }
                    }
                }
                None
            }
        }
    }

    /// First *accessible* byte in `[addr, addr+len)`, if any — the dual of
    /// [`ShadowBits::first_inaccessible`], used to skip inaccessible runs
    /// without a per-byte loop.
    pub fn first_accessible(&self, addr: Addr, len: u64) -> Option<Addr> {
        match self.mode {
            KernelMode::Reference => {
                (addr..range_end(addr, len)).find(|&a| self.ref_is_accessible(a))
            }
            KernelMode::Word => {
                for (pno, off, n) in segments(addr, len) {
                    let base = pno * PAGE_SIZE;
                    match self.find(pno).map(|s| &self.slots[s as usize]) {
                        None | Some(PageRepr::Tag(Tag::NoAccess)) => {}
                        Some(PageRepr::Tag(_)) => return Some(base + off as u64),
                        Some(PageRepr::Mat(p)) => {
                            if let Some(i) = find_bit(&p.abits, off, off + n, true) {
                                return Some(base + i as u64);
                            }
                        }
                    }
                }
                None
            }
        }
    }

    /// Marks every bit of `[addr, addr+len)` valid or invalid.
    pub fn set_valid(&mut self, addr: Addr, len: u64, valid: bool) {
        match self.mode {
            KernelMode::Reference => {
                let fill = if valid { 0xFF } else { 0x00 };
                for a in addr..range_end(addr, len) {
                    let p = self.ref_page_mut(a / PAGE_SIZE);
                    p.vbits[(a % PAGE_SIZE) as usize] = fill;
                }
            }
            KernelMode::Word => self.set_valid_word(addr, len, valid),
        }
    }

    fn set_valid_word(&mut self, addr: Addr, len: u64, valid: bool) {
        for (pno, off, n) in segments(addr, len) {
            let slot = self.slot_of(pno);
            let tag = self.tag_of(slot);
            if n == PAGE {
                match (tag, valid) {
                    (Some(Tag::Undefined), true) => {
                        self.slots[slot as usize] = PageRepr::Tag(Tag::Defined)
                    }
                    (Some(Tag::Defined), true) => {}
                    (Some(Tag::NoAccess), true) => {
                        // A-bits stay clear but V-bits go valid — no tag.
                        self.mat(slot).vbits.fill(0xFF);
                    }
                    (Some(Tag::Defined), false) => {
                        self.slots[slot as usize] = PageRepr::Tag(Tag::Undefined)
                    }
                    (Some(_), false) => {} // NoAccess/Undefined: already invalid
                    (None, v) => {
                        self.mat(slot).vbits.fill(if v { 0xFF } else { 0x00 });
                    }
                }
            } else {
                match tag {
                    Some(t) if (t == Tag::Defined) == valid => {} // already uniform
                    _ => {
                        let fill = if valid { 0xFF } else { 0x00 };
                        self.mat(slot).vbits[off..off + n].fill(fill);
                    }
                }
            }
        }
    }

    /// The validity mask of the byte at `addr` (bit i set ⇔ bit i valid).
    pub fn vmask(&self, addr: Addr) -> u8 {
        match self.mode {
            KernelMode::Reference => self.ref_vmask(addr),
            KernelMode::Word => match self.find(addr / PAGE_SIZE) {
                None => 0,
                Some(s) => match &self.slots[s as usize] {
                    PageRepr::Tag(t) => t.vfill(),
                    PageRepr::Mat(p) => p.vbits[(addr % PAGE_SIZE) as usize],
                },
            },
        }
    }

    /// Sets the validity mask of the byte at `addr`.
    pub fn set_vmask(&mut self, addr: Addr, mask: u8) {
        match self.mode {
            KernelMode::Reference => {
                self.ref_page_mut(addr / PAGE_SIZE).vbits[(addr % PAGE_SIZE) as usize] = mask;
            }
            KernelMode::Word => {
                let slot = self.slot_of(addr / PAGE_SIZE);
                match self.tag_of(slot) {
                    Some(t) if t.vfill() == mask => {} // tag already encodes it
                    _ => self.mat(slot).vbits[(addr % PAGE_SIZE) as usize] = mask,
                }
            }
        }
    }

    /// First byte in `[addr, addr+len)` with any invalid bit, if any.
    pub fn first_invalid(&self, addr: Addr, len: u64) -> Option<Addr> {
        match self.mode {
            KernelMode::Reference => {
                (addr..range_end(addr, len)).find(|&a| self.ref_vmask(a) != 0xFF)
            }
            KernelMode::Word => {
                for (pno, off, n) in segments(addr, len) {
                    let base = pno * PAGE_SIZE;
                    match self.find(pno).map(|s| &self.slots[s as usize]) {
                        Some(PageRepr::Tag(Tag::Defined)) => {}
                        None | Some(PageRepr::Tag(_)) => return Some(base + off as u64),
                        Some(PageRepr::Mat(p)) => {
                            if let Some(i) = find_byte_not_ff(&p.vbits[off..off + n]) {
                                return Some(base + (off + i) as u64);
                            }
                        }
                    }
                }
                None
            }
        }
    }

    /// First byte in `[addr, addr+len)` whose mask is fully valid (`0xFF`),
    /// if any — used to skip invalid runs without a per-byte loop.
    pub fn first_fully_valid(&self, addr: Addr, len: u64) -> Option<Addr> {
        match self.mode {
            KernelMode::Reference => {
                (addr..range_end(addr, len)).find(|&a| self.ref_vmask(a) == 0xFF)
            }
            KernelMode::Word => {
                for (pno, off, n) in segments(addr, len) {
                    let base = pno * PAGE_SIZE;
                    match self.find(pno).map(|s| &self.slots[s as usize]) {
                        Some(PageRepr::Tag(Tag::Defined)) => return Some(base + off as u64),
                        None | Some(PageRepr::Tag(_)) => {}
                        Some(PageRepr::Mat(p)) => {
                            if let Some(i) = find_byte_ff(&p.vbits[off..off + n]) {
                                return Some(base + (off + i) as u64);
                            }
                        }
                    }
                }
                None
            }
        }
    }

    /// Copies validity masks for `len` bytes from `src` to `dst`
    /// (realloc's content copy must carry validity along). Overlapping
    /// ranges behave like `memmove` — the destination receives the
    /// *original* source masks.
    pub fn copy_valid(&mut self, src: Addr, dst: Addr, len: u64) {
        // Clamp so neither range wraps past the top of the address space.
        let len = len.min(u64::MAX - src).min(u64::MAX - dst);
        match self.mode {
            KernelMode::Reference => {
                // Collect first: src and dst may share pages.
                let masks: Vec<u8> = (0..len).map(|i| self.ref_vmask(src + i)).collect();
                for (i, m) in masks.into_iter().enumerate() {
                    let a = dst + i as u64;
                    self.ref_page_mut(a / PAGE_SIZE).vbits[(a % PAGE_SIZE) as usize] = m;
                }
            }
            KernelMode::Word => self.copy_valid_word(src, dst, len),
        }
    }

    fn copy_valid_word(&mut self, src: Addr, dst: Addr, len: u64) {
        if len == 0 {
            return;
        }
        // Direction-aware: only a backward walk preserves memmove semantics
        // when the destination overlaps the source from above.
        let backward = dst > src && dst - src < len;
        let mut tmp = [0u8; PAGE];
        if backward {
            let mut i = len;
            while i > 0 {
                let s_room = (src + i - 1) % PAGE_SIZE + 1;
                let d_room = (dst + i - 1) % PAGE_SIZE + 1;
                let n = s_room.min(d_room).min(i);
                i -= n;
                self.copy_valid_chunk(src + i, dst + i, n as usize, &mut tmp);
            }
        } else {
            let mut i = 0;
            while i < len {
                let s_room = PAGE_SIZE - (src + i) % PAGE_SIZE;
                let d_room = PAGE_SIZE - (dst + i) % PAGE_SIZE;
                let n = s_room.min(d_room).min(len - i);
                self.copy_valid_chunk(src + i, dst + i, n as usize, &mut tmp);
                i += n;
            }
        }
    }

    /// Copies `n` vmask bytes; the chunk spans one src page and one dst
    /// page. Same-page chunks use `copy_within` (memmove); cross-page
    /// chunks stage through a stack buffer (pages of one `Vec` cannot be
    /// borrowed mutably and immutably at once) — never a heap allocation.
    fn copy_valid_chunk(&mut self, s: Addr, d: Addr, n: usize, tmp: &mut [u8; PAGE]) {
        let (spno, dpno) = (s / PAGE_SIZE, d / PAGE_SIZE);
        let soff = (s % PAGE_SIZE) as usize;
        let doff = (d % PAGE_SIZE) as usize;
        let uniform: Option<u8> = match self.find(spno).map(|x| &self.slots[x as usize]) {
            None => Some(0x00),
            Some(PageRepr::Tag(t)) => Some(t.vfill()),
            Some(PageRepr::Mat(_)) => None,
        };
        match uniform {
            // A distinguished source is a range-set on the destination,
            // which keeps full destination pages distinguished too.
            Some(fill) => self.set_valid_word(d, n as u64, fill == 0xFF),
            None if spno == dpno => {
                let slot = self.slot_of(spno);
                self.mat(slot).vbits.copy_within(soff..soff + n, doff);
            }
            None => {
                if let Some(PageRepr::Mat(p)) = self.find(spno).map(|x| &self.slots[x as usize]) {
                    tmp[..n].copy_from_slice(&p.vbits[soff..soff + n]);
                }
                let dslot = self.slot_of(dpno);
                self.mat(dslot).vbits[doff..doff + n].copy_from_slice(&tmp[..n]);
            }
        }
    }

    /// Number of shadow pages *tracked* — every page ever touched by a
    /// shadow update, distinguished or materialized. This is the same count
    /// the byte-at-a-time implementation reports (it materialized a page on
    /// any touch), so the memory-cost proxy keeps its meaning across kernel
    /// modes.
    pub fn tracked_pages(&self) -> usize {
        self.slots.len()
    }

    /// Number of pages actually *materialized* (≤ [`tracked_pages`]) — the
    /// real shadow-memory footprint after distinguished-page compression.
    ///
    /// [`tracked_pages`]: ShadowBits::tracked_pages
    pub fn materialized_pages(&self) -> usize {
        self.slots
            .iter()
            .filter(|r| matches!(r, PageRepr::Mat(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inaccessible_and_invalid() {
        let s = ShadowBits::new();
        assert!(!s.is_accessible(0x1000));
        assert_eq!(s.vmask(0x1000), 0);
        assert_eq!(s.first_inaccessible(0x1000, 4), Some(0x1000));
        assert_eq!(s.first_invalid(0x1000, 4), Some(0x1000));
    }

    #[test]
    fn accessibility_round_trip() {
        let mut s = ShadowBits::new();
        s.set_accessible(100, 10, true);
        assert!(s.is_accessible(100));
        assert!(s.is_accessible(109));
        assert!(!s.is_accessible(99));
        assert!(!s.is_accessible(110));
        assert_eq!(s.first_inaccessible(100, 10), None);
        assert_eq!(s.first_inaccessible(100, 11), Some(110));
        s.set_accessible(105, 1, false);
        assert_eq!(s.first_inaccessible(100, 10), Some(105));
    }

    #[test]
    fn validity_round_trip() {
        let mut s = ShadowBits::new();
        s.set_valid(200, 8, true);
        assert_eq!(s.first_invalid(200, 8), None);
        s.set_vmask(203, 0b0111_1111);
        assert_eq!(s.first_invalid(200, 8), Some(203), "bit precision");
        s.set_valid(203, 1, true);
        assert_eq!(s.first_invalid(200, 8), None);
    }

    #[test]
    fn crosses_page_boundaries() {
        let mut s = ShadowBits::new();
        let a = PAGE_SIZE - 4;
        s.set_accessible(a, 8, true);
        s.set_valid(a, 8, true);
        assert!(s.is_accessible(PAGE_SIZE + 3));
        assert_eq!(s.first_invalid(a, 8), None);
        assert!(s.tracked_pages() >= 2);
    }

    #[test]
    fn copy_valid_carries_masks() {
        let mut s = ShadowBits::new();
        s.set_valid(100, 4, true);
        s.set_vmask(102, 0x0F);
        s.copy_valid(100, 500, 4);
        assert_eq!(s.vmask(500), 0xFF);
        assert_eq!(s.vmask(502), 0x0F);
        assert_eq!(s.vmask(504), 0x00);
    }

    #[test]
    fn copy_valid_overlapping() {
        let mut s = ShadowBits::new();
        s.set_valid(100, 4, true);
        s.copy_valid(100, 102, 4);
        assert_eq!(s.vmask(102), 0xFF);
        assert_eq!(s.vmask(105), 0xFF);
    }

    #[test]
    fn copy_valid_overlapping_backward_is_memmove() {
        for mode in [KernelMode::Word, KernelMode::Reference] {
            let mut s = ShadowBits::with_mode(mode);
            // Distinct per-byte masks so ordering mistakes are visible.
            for i in 0..16u64 {
                s.set_vmask(1000 + i, 0x10 + i as u8);
            }
            s.copy_valid(1000, 1004, 16); // dst overlaps src from above
            for i in 0..16u64 {
                assert_eq!(s.vmask(1004 + i), 0x10 + i as u8, "{mode:?} byte {i}");
            }
        }
    }

    #[test]
    fn copy_valid_across_page_boundary() {
        for mode in [KernelMode::Word, KernelMode::Reference] {
            let mut s = ShadowBits::with_mode(mode);
            let src = PAGE_SIZE - 100;
            let dst = 3 * PAGE_SIZE - 17;
            s.set_valid(src, 200, true);
            s.set_vmask(src + 150, 0x3C);
            s.copy_valid(src, dst, 200);
            assert_eq!(s.first_invalid(dst, 150), None, "{mode:?}");
            assert_eq!(s.vmask(dst + 150), 0x3C, "{mode:?}");
            assert_eq!(s.first_invalid(dst, 200), Some(dst + 150), "{mode:?}");
        }
    }

    #[test]
    fn distinguished_pages_avoid_materialization() {
        let mut s = ShadowBits::new();
        // Three full pages of a big calloc: accessible + valid.
        s.set_accessible(0, 3 * PAGE_SIZE, true);
        s.set_valid(0, 3 * PAGE_SIZE, true);
        assert_eq!(s.tracked_pages(), 3);
        assert_eq!(s.materialized_pages(), 0, "tags only");
        assert!(s.is_accessible(2 * PAGE_SIZE + 7));
        assert_eq!(s.vmask(PAGE_SIZE), 0xFF);
        assert_eq!(s.first_invalid(0, 3 * PAGE_SIZE), None);
        assert_eq!(s.first_inaccessible(0, 3 * PAGE_SIZE), None);
        // A partial write breaks one page's uniformity: copy-on-write.
        s.set_vmask(PAGE_SIZE + 5, 0x0F);
        assert_eq!(s.materialized_pages(), 1);
        assert_eq!(s.vmask(PAGE_SIZE + 5), 0x0F);
        assert_eq!(s.vmask(PAGE_SIZE + 6), 0xFF, "rest of the page kept");
        // Freeing the whole span: full pages return to (or stay) tags.
        s.set_accessible(0, 3 * PAGE_SIZE, false);
        s.set_valid(0, 3 * PAGE_SIZE, false);
        assert_eq!(s.first_accessible(0, 3 * PAGE_SIZE), None);
        assert_eq!(s.tracked_pages(), 3);
    }

    #[test]
    fn fresh_malloc_page_stays_distinguished() {
        let mut s = ShadowBits::new();
        // malloc: accessible + invalid — Memcheck's UNDEFINED tag.
        s.set_accessible(0, PAGE_SIZE, true);
        s.set_valid(0, PAGE_SIZE, false);
        assert_eq!(s.materialized_pages(), 0);
        assert!(s.is_accessible(100));
        assert_eq!(s.vmask(100), 0x00);
        // Full initialization: Undefined → Defined, still a tag.
        s.set_valid(0, PAGE_SIZE, true);
        assert_eq!(s.materialized_pages(), 0);
        assert_eq!(s.first_invalid(0, PAGE_SIZE), None);
    }

    #[test]
    fn first_accessible_and_first_fully_valid_duals() {
        let mut s = ShadowBits::new();
        s.set_accessible(100, 10, true);
        s.set_valid(104, 3, true);
        assert_eq!(s.first_accessible(0, 200), Some(100));
        assert_eq!(s.first_accessible(110, 50), None);
        assert_eq!(s.first_fully_valid(100, 10), Some(104));
        assert_eq!(s.first_fully_valid(107, 10), None);
        // Word-scan path: a long valid run far into a page.
        s.set_valid(1000, 300, true);
        assert_eq!(s.first_fully_valid(900, 500), Some(1000));
        assert_eq!(s.first_accessible(900, 500), None, "valid but inaccessible");
    }

    #[test]
    fn ranges_near_address_space_top_do_not_overflow() {
        for mode in [KernelMode::Word, KernelMode::Reference] {
            let mut s = ShadowBits::with_mode(mode);
            let a = u64::MAX - 10;
            s.set_accessible(a, 100, true); // end saturates at u64::MAX
            s.set_valid(a, 100, true);
            assert!(s.is_accessible(u64::MAX - 1), "{mode:?}");
            assert_eq!(s.vmask(u64::MAX - 1), 0xFF, "{mode:?}");
            assert_eq!(s.first_inaccessible(a, u64::MAX), None, "{mode:?}");
            assert_eq!(s.first_invalid(a, 100), None, "{mode:?}");
            assert_eq!(s.first_accessible(a, u64::MAX), Some(a), "{mode:?}");
            s.copy_valid(a, u64::MAX - 200, u64::MAX); // clamped, no wrap
            assert_eq!(s.vmask(u64::MAX - 200), 0xFF, "{mode:?}");
            s.set_accessible(a, u64::MAX, false);
            assert_eq!(s.first_accessible(a, u64::MAX), None, "{mode:?}");
        }
    }

    #[test]
    fn zero_length_ops_touch_nothing() {
        let mut s = ShadowBits::new();
        s.set_accessible(0x5000, 0, true);
        s.set_valid(0x5000, 0, true);
        s.copy_valid(0x5000, 0x6000, 0);
        assert_eq!(s.tracked_pages(), 0);
        assert_eq!(s.first_inaccessible(0x5000, 0), None);
        assert_eq!(s.first_invalid(0x5000, 0), None);
    }

    #[test]
    fn word_scans_find_bits_at_every_alignment() {
        // Exercise head/word/remainder/tail paths of the scanners.
        for hole in [0u64, 1, 7, 8, 63, 64, 100, 511, 512, 1000, 4095] {
            let mut s = ShadowBits::new();
            s.set_accessible(0, PAGE_SIZE, true);
            s.set_valid(0, PAGE_SIZE, true);
            s.set_accessible(hole, 1, false);
            s.set_vmask(hole, 0xFE);
            assert_eq!(s.first_inaccessible(0, PAGE_SIZE), Some(hole), "{hole}");
            assert_eq!(s.first_invalid(0, PAGE_SIZE), Some(hole), "{hole}");
            assert_eq!(
                s.first_accessible(hole, PAGE_SIZE - hole), // hole is clear
                if hole + 1 < PAGE_SIZE {
                    Some(hole + 1)
                } else {
                    None
                },
                "{hole}"
            );
        }
    }

    #[test]
    fn reference_mode_matches_word_mode_smoke() {
        let mut w = ShadowBits::with_mode(KernelMode::Word);
        let mut r = ShadowBits::with_mode(KernelMode::Reference);
        for s in [&mut w, &mut r] {
            s.set_accessible(4000, 300, true); // crosses a page
            s.set_valid(4000, 300, false);
            s.set_valid(4050, 100, true);
            s.set_vmask(4055, 0x0F);
            s.copy_valid(4000, 4200, 120);
            s.set_accessible(4100, 20, false);
        }
        for a in 3990..4400u64 {
            assert_eq!(w.is_accessible(a), r.is_accessible(a), "a-bit @{a}");
            assert_eq!(w.vmask(a), r.vmask(a), "vmask @{a}");
        }
        assert_eq!(w.tracked_pages(), r.tracked_pages());
        assert!(w.materialized_pages() <= r.materialized_pages());
        assert_eq!(
            w.first_inaccessible(3990, 400),
            r.first_inaccessible(3990, 400)
        );
        assert_eq!(w.first_invalid(3990, 400), r.first_invalid(3990, 400));
    }
}
