//! Shadow bit planes: A-bits (accessibility, per byte) and V-bits
//! (validity, per bit).

use ht_memsim::FastMap;
use ht_memsim::{Addr, PAGE_SIZE};

const PAGE: usize = PAGE_SIZE as usize;

struct ShadowPage {
    /// One validity mask byte per data byte (bit i ⇔ bit i of that byte).
    vbits: Box<[u8]>,
    /// One accessibility bit per data byte.
    abits: Box<[u8]>,
}

impl ShadowPage {
    fn new() -> Self {
        Self {
            vbits: vec![0u8; PAGE].into_boxed_slice(),
            abits: vec![0u8; PAGE / 8].into_boxed_slice(),
        }
    }
}

/// The shadow planes for the whole address space.
///
/// Untracked memory is inaccessible and invalid — the analyzer marks heap
/// regions explicitly on every allocation event.
#[derive(Default)]
pub struct ShadowBits {
    pages: FastMap<u64, ShadowPage>,
}

impl std::fmt::Debug for ShadowBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowBits")
            .field("tracked_pages", &self.pages.len())
            .finish()
    }
}

impl ShadowBits {
    /// Empty shadow (everything inaccessible/invalid).
    pub fn new() -> Self {
        Self::default()
    }

    fn page_mut(&mut self, pno: u64) -> &mut ShadowPage {
        self.pages.entry(pno).or_insert_with(ShadowPage::new)
    }

    /// Marks `[addr, addr+len)` accessible or inaccessible.
    pub fn set_accessible(&mut self, addr: Addr, len: u64, accessible: bool) {
        for a in addr..addr + len {
            let p = self.page_mut(a / PAGE_SIZE);
            let off = (a % PAGE_SIZE) as usize;
            if accessible {
                p.abits[off / 8] |= 1 << (off % 8);
            } else {
                p.abits[off / 8] &= !(1 << (off % 8));
            }
        }
    }

    /// Whether the byte at `addr` is accessible.
    pub fn is_accessible(&self, addr: Addr) -> bool {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(p) => {
                let off = (addr % PAGE_SIZE) as usize;
                p.abits[off / 8] & (1 << (off % 8)) != 0
            }
            None => false,
        }
    }

    /// First inaccessible byte in `[addr, addr+len)`, if any.
    pub fn first_inaccessible(&self, addr: Addr, len: u64) -> Option<Addr> {
        (addr..addr + len).find(|&a| !self.is_accessible(a))
    }

    /// Marks every bit of `[addr, addr+len)` valid or invalid.
    pub fn set_valid(&mut self, addr: Addr, len: u64, valid: bool) {
        let fill = if valid { 0xFF } else { 0x00 };
        for a in addr..addr + len {
            let p = self.page_mut(a / PAGE_SIZE);
            p.vbits[(a % PAGE_SIZE) as usize] = fill;
        }
    }

    /// The validity mask of the byte at `addr` (bit i set ⇔ bit i valid).
    pub fn vmask(&self, addr: Addr) -> u8 {
        match self.pages.get(&(addr / PAGE_SIZE)) {
            Some(p) => p.vbits[(addr % PAGE_SIZE) as usize],
            None => 0,
        }
    }

    /// Sets the validity mask of the byte at `addr`.
    pub fn set_vmask(&mut self, addr: Addr, mask: u8) {
        self.page_mut(addr / PAGE_SIZE).vbits[(addr % PAGE_SIZE) as usize] = mask;
    }

    /// First byte in `[addr, addr+len)` with any invalid bit, if any.
    pub fn first_invalid(&self, addr: Addr, len: u64) -> Option<Addr> {
        (addr..addr + len).find(|&a| self.vmask(a) != 0xFF)
    }

    /// Copies validity masks for `len` bytes from `src` to `dst`
    /// (realloc's content copy must carry validity along).
    pub fn copy_valid(&mut self, src: Addr, dst: Addr, len: u64) {
        // Collect first: src and dst may share pages.
        let masks: Vec<u8> = (0..len).map(|i| self.vmask(src + i)).collect();
        for (i, m) in masks.into_iter().enumerate() {
            self.set_vmask(dst + i as u64, m);
        }
    }

    /// Number of shadow pages materialized (memory-cost proxy for the
    /// paper's observation that shadow memory is heavyweight).
    pub fn tracked_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inaccessible_and_invalid() {
        let s = ShadowBits::new();
        assert!(!s.is_accessible(0x1000));
        assert_eq!(s.vmask(0x1000), 0);
        assert_eq!(s.first_inaccessible(0x1000, 4), Some(0x1000));
        assert_eq!(s.first_invalid(0x1000, 4), Some(0x1000));
    }

    #[test]
    fn accessibility_round_trip() {
        let mut s = ShadowBits::new();
        s.set_accessible(100, 10, true);
        assert!(s.is_accessible(100));
        assert!(s.is_accessible(109));
        assert!(!s.is_accessible(99));
        assert!(!s.is_accessible(110));
        assert_eq!(s.first_inaccessible(100, 10), None);
        assert_eq!(s.first_inaccessible(100, 11), Some(110));
        s.set_accessible(105, 1, false);
        assert_eq!(s.first_inaccessible(100, 10), Some(105));
    }

    #[test]
    fn validity_round_trip() {
        let mut s = ShadowBits::new();
        s.set_valid(200, 8, true);
        assert_eq!(s.first_invalid(200, 8), None);
        s.set_vmask(203, 0b0111_1111);
        assert_eq!(s.first_invalid(200, 8), Some(203), "bit precision");
        s.set_valid(203, 1, true);
        assert_eq!(s.first_invalid(200, 8), None);
    }

    #[test]
    fn crosses_page_boundaries() {
        let mut s = ShadowBits::new();
        let a = PAGE_SIZE - 4;
        s.set_accessible(a, 8, true);
        s.set_valid(a, 8, true);
        assert!(s.is_accessible(PAGE_SIZE + 3));
        assert_eq!(s.first_invalid(a, 8), None);
        assert!(s.tracked_pages() >= 2);
    }

    #[test]
    fn copy_valid_carries_masks() {
        let mut s = ShadowBits::new();
        s.set_valid(100, 4, true);
        s.set_vmask(102, 0x0F);
        s.copy_valid(100, 500, 4);
        assert_eq!(s.vmask(500), 0xFF);
        assert_eq!(s.vmask(502), 0x0F);
        assert_eq!(s.vmask(504), 0x00);
    }

    #[test]
    fn copy_valid_overlapping() {
        let mut s = ShadowBits::new();
        s.set_valid(100, 4, true);
        s.copy_valid(100, 102, 4);
        assert_eq!(s.vmask(102), 0xFF);
        assert_eq!(s.vmask(105), 0xFF);
    }
}
