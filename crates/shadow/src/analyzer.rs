//! The shadow-memory analyzer backend: detection, warning-resume, patch
//! generation.

use crate::bits::{KernelMode, ShadowBits};
use crate::heap::{BufId, BufState, HeapMap, Region};
use crate::warning::{Warning, WarningKind};
use ht_memsim::{
    Addr, AddressSpace, AllocStats, BaseAllocator, FastMap, FreeListAllocator, SpaceStats,
};
use ht_patch::{AllocFn, Patch, VulnFlags};
use ht_simprog::{AccessOutcome, AllocRequest, HeapBackend, ReadResult, Sink, StopCause};
use std::collections::{HashMap, HashSet, VecDeque};

/// CCID-subspace partitioning (paper §IX).
///
/// When a program's memory profile would drain the quarantine quota, the
/// attack is replayed in `of` executions; execution `index` defers the
/// deallocation only of buffers whose allocation-time CCID falls in its
/// subspace (`ccid % of == index`), so each replay consumes roughly `1/of`
/// of the memory. The union of the per-replay patches equals the
/// single-replay result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcidPartition {
    /// This replay's subspace index (`< of`).
    pub index: u64,
    /// Number of subspaces.
    pub of: u64,
}

impl CcidPartition {
    /// Whether a CCID belongs to this replay's subspace.
    pub fn covers(&self, ccid: u64) -> bool {
        self.of <= 1 || ccid % self.of == self.index
    }
}

/// Analyzer tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowConfig {
    /// Red-zone width on each side of every buffer (paper: 16 bytes).
    pub redzone: u64,
    /// Byte quota of the freed-blocks FIFO (paper default: 2 GB).
    pub quarantine_quota: u64,
    /// Report each `(kind, buffer)` pair at most once (the paper
    /// post-processes chained warnings with a script; deduplication here is
    /// the equivalent).
    pub dedup: bool,
    /// Optional CCID-subspace partition (paper §IX): only buffers in this
    /// replay's subspace are quarantined; the rest release immediately.
    pub partition: Option<CcidPartition>,
    /// Run the byte-at-a-time reference shadow kernels
    /// ([`KernelMode::Reference`]) and disable the [`HeapMap`] lookup
    /// cache — the benchmark baseline and differential-test oracle.
    pub reference_kernels: bool,
}

impl Default for ShadowConfig {
    fn default() -> Self {
        Self {
            redzone: 16,
            quarantine_quota: 2 * 1024 * 1024 * 1024,
            dedup: true,
            partition: None,
            reference_kernels: false,
        }
    }
}

/// The offline analyzer as a [`HeapBackend`].
///
/// Replay the attack input through an
/// [`Interpreter`](ht_simprog::Interpreter) over this backend, then collect
/// [`ShadowBackend::warnings`] or ready-made patches via
/// [`ShadowBackend::generate_patches`].
///
/// Detection follows paper Section V:
///
/// * overflow — the contiguous access crosses into a red zone (A-bit clear),
/// * use-after-free — the access lands in a quarantined freed block,
/// * uninitialized read — a value with clear V-bits reaches a checked sink
///   ([`Sink::checks_vbits`]); the V-bits are then set to valid so one root
///   cause produces one warning,
/// * execution resumes after every warning, so one replay can expose
///   multiple vulnerabilities (Heartbleed: `UR` + `OF`).
#[derive(Debug)]
pub struct ShadowBackend {
    space: AddressSpace,
    heap: FreeListAllocator,
    bits: ShadowBits,
    map: HeapMap,
    quarantine: VecDeque<BufId>,
    quarantine_bytes: u64,
    warnings: Vec<Warning>,
    seen: HashSet<(WarningKind, u64)>,
    /// Origin tracking through copies (paper §V): for an *invalid* byte that
    /// was `memcpy`'d out of its allocation, the buffer whose
    /// uninitialized memory it originally was.
    copied_origins: FastMap<Addr, BufId>,
    cfg: ShadowConfig,
}

impl Default for ShadowBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowBackend {
    /// An analyzer with the paper's default configuration.
    pub fn new() -> Self {
        Self::with_config(ShadowConfig::default())
    }

    /// An analyzer with a custom configuration.
    pub fn with_config(cfg: ShadowConfig) -> Self {
        let mode = if cfg.reference_kernels {
            KernelMode::Reference
        } else {
            KernelMode::Word
        };
        Self {
            space: AddressSpace::new(),
            heap: FreeListAllocator::new(),
            bits: ShadowBits::with_mode(mode),
            map: HeapMap::with_cache(!cfg.reference_kernels),
            quarantine: VecDeque::new(),
            quarantine_bytes: 0,
            warnings: Vec::new(),
            seen: HashSet::new(),
            copied_origins: FastMap::default(),
            cfg,
        }
    }

    /// All warnings recorded so far, in detection order.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// Number of warnings of a given kind.
    pub fn count(&self, kind: WarningKind) -> usize {
        self.warnings.iter().filter(|w| w.kind == kind).count()
    }

    /// Folds the recorded warnings into patches: one patch per
    /// `(FUN, CCID)` with the union of the vulnerability bits observed
    /// (paper Section V's post-processing script).
    pub fn generate_patches(&self, origin: &str) -> Vec<Patch> {
        let mut merged: HashMap<(AllocFn, u64), VulnFlags> = HashMap::new();
        for w in &self.warnings {
            if let (Some(bits), Some(key)) = (w.kind.to_vuln_flags(), w.patch_key()) {
                *merged.entry(key).or_insert(VulnFlags::NONE) |= bits;
            }
        }
        let mut patches: Vec<Patch> = merged
            .into_iter()
            .map(|((fun, ccid), vuln)| Patch::new(fun, ccid, vuln).with_origin(origin))
            .collect();
        patches.sort_by_key(|p| (p.alloc_fn, p.ccid));
        patches
    }

    /// Bytes currently held in the freed-blocks quarantine.
    pub fn quarantine_bytes(&self) -> u64 {
        self.quarantine_bytes
    }

    /// Number of buffers currently quarantined.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.len()
    }

    fn warn(&mut self, kind: WarningKind, addr: Addr, write: bool, origin: Option<BufId>) {
        let dedup_key = (kind, origin.map(|b| b.0).unwrap_or(u64::MAX - addr % 4096));
        if self.cfg.dedup && !self.seen.insert(dedup_key) {
            return;
        }
        let (fun, ccid, buf_size) = match origin.and_then(|id| self.map.record(id)) {
            Some(r) => (Some(r.fun), Some(r.ccid), Some(r.size)),
            None => (None, None, None),
        };
        self.warnings.push(Warning {
            kind,
            addr,
            write,
            fun,
            ccid,
            buf_size,
        });
    }

    /// Scans `[addr, addr+len)` for accessibility violations, classifying
    /// and recording each (deduplicated), then resumes.
    fn check_accessible(&mut self, addr: Addr, len: u64, write: bool) {
        let mut a = addr;
        let end = addr + len;
        while a < end {
            match self.bits.first_inaccessible(a, end - a) {
                None => break,
                Some(bad) => {
                    let (kind, origin) = match self.map.lookup(bad) {
                        Some((rec, _)) if rec.state == BufState::Freed => {
                            (WarningKind::UseAfterFree, Some(rec.id))
                        }
                        Some((rec, Region::LeftRedZone | Region::RightRedZone)) => {
                            (WarningKind::Overflow, Some(rec.id))
                        }
                        Some((rec, Region::User)) => {
                            // Live user bytes marked inaccessible cannot
                            // happen; treat defensively as overflow.
                            (WarningKind::Overflow, Some(rec.id))
                        }
                        None => (WarningKind::Wild, None),
                    };
                    self.warn(kind, bad, write, origin);
                    // Skip the rest of this contiguous inaccessible run.
                    a = self.bits.first_accessible(bad, end - bad).unwrap_or(end);
                }
            }
        }
    }

    fn evict_until_within_quota(&mut self) {
        while self.quarantine_bytes > self.cfg.quarantine_quota {
            let Some(id) = self.quarantine.pop_front() else {
                break;
            };
            if let Some(rec) = self.map.remove(id) {
                self.quarantine_bytes -= rec.size;
                // Memory really goes back to the inner allocator now.
                let _ = self.heap.free(&mut self.space, rec.inner_ptr);
            }
        }
    }

    fn fresh_alloc(
        &mut self,
        fun: AllocFn,
        size: u64,
        align: u64,
        ccid: ht_encoding::Ccid,
    ) -> Result<Addr, StopCause> {
        let rz = self.cfg.redzone;
        let (inner_ptr, user) = if fun == AllocFn::Memalign {
            let inner = self
                .heap
                .malloc(&mut self.space, size + rz * 2 + align)
                .map_err(|e| StopCause::HeapMisuse(e.to_string()))?;
            let user = ht_memsim::align_up(inner + rz, align);
            (inner, user)
        } else {
            let inner = self
                .heap
                .malloc(&mut self.space, size + rz * 2)
                .map_err(|e| StopCause::HeapMisuse(e.to_string()))?;
            (inner, inner + rz)
        };
        // Shadow state: red zones inaccessible, user accessible; user bytes
        // invalid unless calloc zero-fills them.
        self.bits.set_accessible(user - rz, rz, false);
        self.bits.set_accessible(user, size, true);
        self.bits.set_accessible(user + size, rz, false);
        if fun == AllocFn::Calloc {
            self.space
                .fill(user, size, 0)
                .map_err(|e| StopCause::HeapMisuse(e.to_string()))?;
            self.bits.set_valid(user, size, true);
        } else {
            self.bits.set_valid(user, size, false);
        }
        self.map.insert(user, size, inner_ptr, fun, ccid, rz);
        Ok(user)
    }

    /// Propagates per-byte uninitialized-data origins across a copy: an
    /// invalid byte keeps pointing at the buffer whose fresh memory it came
    /// from; a valid byte clears any stale origin at the destination.
    ///
    /// Runs of fully valid bytes (the common case) are located with the
    /// word scanners and handled without touching the shadow planes again;
    /// per-byte work is confined to the invalid runs, in the same forward
    /// order as a byte-at-a-time walk (observable state is identical).
    fn propagate_origins(&mut self, src: Addr, dst: Addr, len: u64) {
        let end = src.saturating_add(len);
        let mut a = src;
        while a < end {
            let bad = self.bits.first_invalid(a, end - a).unwrap_or(end);
            // Valid run [a, bad): clear any stale destination origins.
            if !self.copied_origins.is_empty() {
                for i in a..bad {
                    self.copied_origins.remove(&(dst + (i - src)));
                }
            }
            if bad >= end {
                break;
            }
            // Invalid run [bad, stop): per-byte origin propagation (rare).
            let stop = self.bits.first_fully_valid(bad, end - bad).unwrap_or(end);
            for i in bad..stop {
                let origin = self
                    .copied_origins
                    .get(&i)
                    .copied()
                    .or_else(|| self.map.lookup(i).map(|(rec, _)| rec.id));
                if let Some(o) = origin {
                    self.copied_origins.insert(dst + (i - src), o);
                }
            }
            a = stop;
        }
    }

    fn quarantine_buffer(&mut self, id: BufId) {
        let rec = *self.map.record(id).expect("buffer exists");
        // Entire footprint becomes inaccessible; memory is retained.
        self.bits.set_accessible(
            rec.footprint_start(),
            rec.footprint_end() - rec.footprint_start(),
            false,
        );
        self.map.mark_freed(id);
        // §IX: under CCID-subspace partitioning, only this replay's
        // subspace is deferred; foreign buffers release immediately (their
        // use-after-free detection belongs to another replay).
        let covered = self.cfg.partition.is_none_or(|p| p.covers(rec.ccid.0));
        if covered {
            self.quarantine.push_back(id);
            self.quarantine_bytes += rec.size;
            self.evict_until_within_quota();
        } else {
            self.map.remove(id);
            let _ = self.heap.free(&mut self.space, rec.inner_ptr);
        }
    }
}

impl HeapBackend for ShadowBackend {
    fn alloc(&mut self, req: &AllocRequest) -> Result<Addr, StopCause> {
        match (req.fun, req.old_ptr) {
            (AllocFn::Realloc, Some(old)) => {
                let old_rec = self.map.by_user_ptr(old).copied();
                match old_rec {
                    Some(rec) if rec.state == BufState::Live => {
                        let new_user =
                            self.fresh_alloc(AllocFn::Realloc, req.size, req.align, req.ccid)?;
                        let keep = rec.size.min(req.size);
                        if keep > 0 {
                            self.propagate_origins(old, new_user, keep);
                            self.space
                                .copy_raw(old, new_user, keep)
                                .map_err(|e| StopCause::HeapMisuse(e.to_string()))?;
                            self.bits.copy_valid(old, new_user, keep);
                        }
                        self.quarantine_buffer(rec.id);
                        Ok(new_user)
                    }
                    _ => {
                        // realloc of an unknown/freed pointer: warn, then
                        // behave like malloc so the replay continues.
                        self.warn(WarningKind::InvalidFree, old, false, None);
                        self.fresh_alloc(AllocFn::Realloc, req.size, req.align, req.ccid)
                    }
                }
            }
            _ => self.fresh_alloc(req.fun, req.size, req.align, req.ccid),
        }
    }

    fn free(&mut self, ptr: Addr) -> AccessOutcome {
        match self.map.by_user_ptr(ptr).map(|r| (r.id, r.state)) {
            Some((id, BufState::Live)) => {
                self.quarantine_buffer(id);
                AccessOutcome::Ok
            }
            _ => {
                // Double free (quarantined ptr no longer resolves as a live
                // user base) or foreign pointer: warn and resume.
                let origin = self.map.lookup(ptr).map(|(r, _)| r.id);
                self.warn(WarningKind::InvalidFree, ptr, false, origin);
                AccessOutcome::Ok
            }
        }
    }

    fn write(&mut self, addr: Addr, len: u64, byte: u8) -> AccessOutcome {
        self.check_accessible(addr, len, true);
        // Resume: the store proceeds into retained memory (red zones and
        // quarantined blocks are still mapped — only truly wild stores
        // crash, as they would under Valgrind).
        if let Err(f) = self.space.fill_raw(addr, len, byte) {
            self.warn(WarningKind::Wild, f.addr, true, None);
            return AccessOutcome::Stop(StopCause::Segfault {
                addr: f.addr,
                write: true,
            });
        }
        self.bits.set_valid(addr, len, true);
        if !self.copied_origins.is_empty() {
            for a in addr..addr.saturating_add(len) {
                self.copied_origins.remove(&a);
            }
        }
        AccessOutcome::Ok
    }

    fn copy(&mut self, src: Addr, dst: Addr, len: u64) -> AccessOutcome {
        // A memcpy is an access to both ranges (red zones / freed memory
        // still trip A-bit checks) but never a *use* of the value: no V-bit
        // check, validity and origins just flow along (paper Fig. 4).
        self.check_accessible(src, len, false);
        self.check_accessible(dst, len, true);
        let mut buf = vec![0u8; len as usize];
        if let Err(f) = self.space.read_raw(src, &mut buf) {
            self.warn(WarningKind::Wild, f.addr, false, None);
            return AccessOutcome::Stop(StopCause::Segfault {
                addr: f.addr,
                write: false,
            });
        }
        self.propagate_origins(src, dst, len);
        if let Err(f) = self.space.write_raw(dst, &buf) {
            self.warn(WarningKind::Wild, f.addr, true, None);
            return AccessOutcome::Stop(StopCause::Segfault {
                addr: f.addr,
                write: true,
            });
        }
        self.bits.copy_valid(src, dst, len);
        AccessOutcome::Ok
    }

    fn read(&mut self, addr: Addr, len: u64, sink: Sink) -> ReadResult {
        self.check_accessible(addr, len, false);
        let mut data = vec![0u8; len as usize];
        if let Err(f) = self.space.read_raw(addr, &mut data) {
            data.truncate(f.completed as usize);
            self.warn(WarningKind::Wild, f.addr, false, None);
            return ReadResult {
                data,
                outcome: AccessOutcome::Stop(StopCause::Segfault {
                    addr: f.addr,
                    write: false,
                }),
            };
        }
        if sink.checks_vbits() {
            // Bit-precision uninitialized-read detection, restricted to live
            // user bytes (red-zone bytes already reported as overflow).
            let mut a = addr;
            let end = addr + len;
            while a < end {
                match self.bits.first_invalid(a, end - a) {
                    None => break,
                    Some(bad) => {
                        // Origin tracking (paper §V): a copied invalid byte
                        // is traced back to the buffer whose fresh memory it
                        // originally was, not the buffer it sits in now.
                        let origin = self.copied_origins.get(&bad).copied().or_else(|| match self
                            .map
                            .lookup(bad)
                        {
                            Some((rec, Region::User)) if rec.state == BufState::Live => {
                                Some(rec.id)
                            }
                            _ => None,
                        });
                        if let Some(id) = origin {
                            self.warn(WarningKind::UninitRead, bad, false, Some(id));
                        }
                        let skip = self.bits.first_fully_valid(bad, end - bad).unwrap_or(end);
                        // Once checked, mark valid to avoid chained warnings
                        // (paper Section V).
                        self.bits.set_valid(bad, skip - bad, true);
                        a = skip;
                    }
                }
            }
        }
        ReadResult {
            data,
            outcome: AccessOutcome::Ok,
        }
    }

    fn mem_stats(&self) -> Option<(SpaceStats, AllocStats)> {
        Some((self.space.stats(), self.heap.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_callgraph::{FuncId, Strategy};
    use ht_encoding::{Ccid, InstrumentationPlan, Scheme};
    use ht_simprog::{Expr, Interpreter, ProgramBuilder};

    fn req(fun: AllocFn, size: u64, ccid: u64) -> AllocRequest {
        AllocRequest {
            fun,
            size,
            align: 16,
            ccid: Ccid(ccid),
            target: FuncId(0),
            old_ptr: None,
        }
    }

    #[test]
    fn clean_program_produces_no_warnings() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 64, 1)).unwrap();
        assert!(s.write(p, 64, 0xAA).is_ok());
        let r = s.read(p, 64, Sink::Branch);
        assert!(r.outcome.is_ok());
        assert!(s.free(p).is_ok());
        assert!(s.warnings().is_empty(), "{:?}", s.warnings());
    }

    #[test]
    fn overflow_write_detected_with_origin() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 32, 0xCAFE)).unwrap();
        // 8 bytes past the end — lands in the right red zone.
        s.write(p, 40, 0x41);
        assert_eq!(s.count(WarningKind::Overflow), 1);
        let w = &s.warnings()[0];
        assert_eq!(w.kind, WarningKind::Overflow);
        assert!(w.write);
        assert_eq!(w.addr, p + 32);
        assert_eq!(w.fun, Some(AllocFn::Malloc));
        assert_eq!(w.ccid, Some(Ccid(0xCAFE)));
        assert_eq!(w.buf_size, Some(32));
    }

    #[test]
    fn overread_detected_as_overflow() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 32, 7)).unwrap();
        s.write(p, 32, 1);
        let r = s.read(p, 48, Sink::Leak);
        assert!(r.outcome.is_ok(), "analyzer resumes");
        assert_eq!(r.data.len(), 48, "data still returned (leak modeled)");
        assert_eq!(s.count(WarningKind::Overflow), 1);
        assert!(!s.warnings()[0].write);
    }

    #[test]
    fn underflow_detected_via_left_red_zone() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 32, 7)).unwrap();
        s.write(p - 4, 4, 0x41);
        assert_eq!(s.count(WarningKind::Overflow), 1);
    }

    #[test]
    fn use_after_free_detected_on_read_and_write() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 64, 0x11)).unwrap();
        s.write(p, 64, 5);
        s.free(p);
        let r = s.read(p, 8, Sink::Addr);
        assert!(r.outcome.is_ok());
        assert_eq!(s.count(WarningKind::UseAfterFree), 1);
        s.write(p, 8, 9);
        assert_eq!(
            s.count(WarningKind::UseAfterFree),
            1,
            "one warning per (kind, buffer): the write dedupes"
        );
        let w = &s.warnings()[0];
        assert_eq!(w.ccid, Some(Ccid(0x11)));
    }

    #[test]
    fn quarantine_defers_reuse() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 64, 1)).unwrap();
        s.free(p);
        // Same-size alloc must NOT reuse the quarantined block.
        let q = s.alloc(&req(AllocFn::Malloc, 64, 2)).unwrap();
        assert_ne!(p, q);
        assert_eq!(s.quarantine_len(), 1);
        assert_eq!(s.quarantine_bytes(), 64);
    }

    #[test]
    fn quarantine_quota_evicts_fifo() {
        let mut s = ShadowBackend::with_config(ShadowConfig {
            quarantine_quota: 100,
            ..ShadowConfig::default()
        });
        let a = s.alloc(&req(AllocFn::Malloc, 60, 1)).unwrap();
        let b = s.alloc(&req(AllocFn::Malloc, 60, 2)).unwrap();
        s.free(a);
        assert_eq!(s.quarantine_len(), 1);
        s.free(b); // 120 > 100: evicts a.
        assert_eq!(s.quarantine_len(), 1);
        assert_eq!(s.quarantine_bytes(), 60);
        // a's memory is back with the inner allocator; touching it is now a
        // wild access (or a fresh block), not UAF.
        s.write(a, 4, 1);
        assert_eq!(s.count(WarningKind::UseAfterFree), 0);
    }

    #[test]
    fn uninit_read_checked_sinks_only() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 32, 0x77)).unwrap();
        // Discard sink: copying uninitialized data is fine (paper Fig. 4 —
        // padding copies must not warn).
        let r = s.read(p, 32, Sink::Discard);
        assert!(r.outcome.is_ok());
        assert_eq!(s.count(WarningKind::UninitRead), 0);
        // Branch sink: warning, attributed to the buffer.
        s.read(p, 32, Sink::Branch);
        assert_eq!(s.count(WarningKind::UninitRead), 1);
        assert_eq!(s.warnings()[0].ccid, Some(Ccid(0x77)));
    }

    #[test]
    fn vbits_revalidated_after_check() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 32, 1)).unwrap();
        s.read(p, 32, Sink::Branch);
        s.read(p, 32, Sink::Branch);
        assert_eq!(
            s.count(WarningKind::UninitRead),
            1,
            "second check sees valid bits"
        );
    }

    #[test]
    fn calloc_memory_is_valid() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Calloc, 32, 1)).unwrap();
        let r = s.read(p, 32, Sink::Syscall);
        assert!(r.outcome.is_ok());
        assert_eq!(r.data, vec![0u8; 32]);
        assert_eq!(s.count(WarningKind::UninitRead), 0);
    }

    #[test]
    fn partial_init_detected_bit_precisely() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 32, 1)).unwrap();
        s.write(p, 16, 0xAB); // initialize first half
        s.read(p, 16, Sink::Branch);
        assert_eq!(s.count(WarningKind::UninitRead), 0);
        s.read(p, 32, Sink::Branch);
        assert_eq!(s.count(WarningKind::UninitRead), 1);
        assert_eq!(s.warnings()[0].addr, p + 16, "first uninit byte");
    }

    #[test]
    fn realloc_copies_validity_and_quarantines_old() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 16, 1)).unwrap();
        s.write(p, 16, 0x33);
        let mut r = req(AllocFn::Realloc, 64, 2);
        r.old_ptr = Some(p);
        let q = s.alloc(&r).unwrap();
        assert_ne!(p, q);
        // Copied prefix valid, grown region invalid.
        let rd = s.read(q, 16, Sink::Branch);
        assert_eq!(rd.data, vec![0x33; 16]);
        assert_eq!(s.count(WarningKind::UninitRead), 0);
        s.read(q, 64, Sink::Branch);
        assert_eq!(s.count(WarningKind::UninitRead), 1);
        // Old block quarantined: UAF on it is detected.
        s.write(p, 4, 1);
        assert_eq!(s.count(WarningKind::UseAfterFree), 1);
    }

    #[test]
    fn double_free_warns_and_resumes() {
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 16, 1)).unwrap();
        assert!(s.free(p).is_ok());
        assert!(s.free(p).is_ok(), "analyzer resumes");
        assert_eq!(s.count(WarningKind::InvalidFree), 1);
    }

    #[test]
    fn memalign_respects_alignment_and_red_zones() {
        let mut s = ShadowBackend::new();
        let mut r = req(AllocFn::Memalign, 100, 1);
        r.align = 256;
        let p = s.alloc(&r).unwrap();
        assert_eq!(p % 256, 0);
        s.write(p, 104, 1); // 4 bytes over
        assert_eq!(s.count(WarningKind::Overflow), 1);
        s.write(p - 2, 2, 1); // underflow
        assert_eq!(s.count(WarningKind::Overflow), 1, "deduped same buffer");
    }

    #[test]
    fn dedup_can_be_disabled() {
        let mut s = ShadowBackend::with_config(ShadowConfig {
            dedup: false,
            ..ShadowConfig::default()
        });
        let p = s.alloc(&req(AllocFn::Malloc, 16, 1)).unwrap();
        s.write(p, 20, 1);
        s.write(p, 20, 1);
        assert_eq!(s.count(WarningKind::Overflow), 2);
    }

    #[test]
    fn multi_vulnerability_single_replay() {
        // Heartbleed shape: uninitialized read AND overread of one buffer in
        // one run — both must be captured (warning-resume).
        let mut s = ShadowBackend::new();
        let p = s.alloc(&req(AllocFn::Malloc, 64, 0x4842)).unwrap();
        s.write(p, 16, 0x55); // only partially initialized
        let r = s.read(p, 96, Sink::Leak); // past the end
        assert!(r.outcome.is_ok());
        assert_eq!(s.count(WarningKind::Overflow), 1);
        assert_eq!(s.count(WarningKind::UninitRead), 1);
        let patches = s.generate_patches("heartbleed-model");
        assert_eq!(patches.len(), 1);
        assert!(patches[0].vuln.contains(VulnFlags::OVERFLOW));
        assert!(patches[0].vuln.contains(VulnFlags::UNINIT_READ));
        assert_eq!(patches[0].origin, "heartbleed-model");
    }

    #[test]
    fn patches_grouped_by_context() {
        let mut s = ShadowBackend::new();
        let p1 = s.alloc(&req(AllocFn::Malloc, 16, 100)).unwrap();
        let p2 = s.alloc(&req(AllocFn::Malloc, 16, 200)).unwrap();
        let p3 = s.alloc(&req(AllocFn::Calloc, 16, 100)).unwrap();
        s.write(p1, 20, 1);
        s.write(p2, 20, 1);
        s.write(p3, 20, 1);
        let patches = s.generate_patches("t");
        assert_eq!(patches.len(), 3, "calloc@100 distinct from malloc@100");
    }

    #[test]
    fn copy_propagates_validity_without_warning() {
        // Paper Fig. 4: copying uninitialized (padding) bytes is legal.
        let mut s = ShadowBackend::new();
        let src = s.alloc(&req(AllocFn::Malloc, 32, 1)).unwrap();
        let dst = s.alloc(&req(AllocFn::Malloc, 32, 2)).unwrap();
        s.write(src, 16, 0xAA); // half initialized
        assert!(s.copy(src, dst, 32).is_ok());
        assert!(s.warnings().is_empty(), "{:?}", s.warnings());
        // Valid half stays valid at the destination...
        s.read(dst, 16, Sink::Branch);
        assert_eq!(s.count(WarningKind::UninitRead), 0);
        // ...and the copied-invalid half still trips on use.
        s.read(dst + 16, 16, Sink::Branch);
        assert_eq!(s.count(WarningKind::UninitRead), 1);
    }

    #[test]
    fn origin_tracking_blames_the_source_buffer() {
        // alloc A (uninit, CCID 0xA11) → memcpy into B (CCID 0xB22) → leak
        // B: the warning and the patch must point at A's context.
        let mut s = ShadowBackend::new();
        let a = s.alloc(&req(AllocFn::Malloc, 64, 0xA11)).unwrap();
        let b = s.alloc(&req(AllocFn::Calloc, 64, 0xB22)).unwrap();
        assert!(s.copy(a, b, 64).is_ok());
        let r = s.read(b, 64, Sink::Leak);
        assert!(r.outcome.is_ok());
        assert_eq!(s.count(WarningKind::UninitRead), 1);
        let w = &s.warnings()[0];
        assert_eq!(w.ccid, Some(Ccid(0xA11)), "blames the origin, not B");
        let patches = s.generate_patches("copy-origin");
        assert_eq!(patches.len(), 1);
        assert_eq!(patches[0].ccid, 0xA11);
        assert_eq!(patches[0].vuln, VulnFlags::UNINIT_READ);
    }

    #[test]
    fn origin_tracking_chains_through_two_copies() {
        let mut s = ShadowBackend::new();
        let a = s.alloc(&req(AllocFn::Malloc, 16, 0xA)).unwrap();
        let b = s.alloc(&req(AllocFn::Calloc, 16, 0xB)).unwrap();
        let c = s.alloc(&req(AllocFn::Calloc, 16, 0xC)).unwrap();
        s.copy(a, b, 16);
        s.copy(b, c, 16);
        s.read(c, 16, Sink::Syscall);
        assert_eq!(s.warnings()[0].ccid, Some(Ccid(0xA)), "two-hop origin");
    }

    #[test]
    fn overwriting_clears_copied_origins() {
        let mut s = ShadowBackend::new();
        let a = s.alloc(&req(AllocFn::Malloc, 16, 0xA)).unwrap();
        let b = s.alloc(&req(AllocFn::Calloc, 16, 0xB)).unwrap();
        s.copy(a, b, 16);
        s.write(b, 16, 0x33); // program initializes B properly after all
        s.read(b, 16, Sink::Branch);
        assert_eq!(s.count(WarningKind::UninitRead), 0);
    }

    #[test]
    fn copy_into_red_zone_is_an_overflow() {
        let mut s = ShadowBackend::new();
        let a = s.alloc(&req(AllocFn::Malloc, 32, 1)).unwrap();
        let b = s.alloc(&req(AllocFn::Malloc, 32, 2)).unwrap();
        s.write(a, 32, 1);
        // memcpy writes 8 bytes past b's end.
        assert!(s.copy(a, b + 8, 32).is_ok(), "analyzer resumes");
        assert_eq!(s.count(WarningKind::Overflow), 1);
    }

    #[test]
    fn partition_covers_subspaces_exhaustively() {
        let p0 = CcidPartition { index: 0, of: 4 };
        let p3 = CcidPartition { index: 3, of: 4 };
        for ccid in 0..100u64 {
            let covering = (0..4)
                .filter(|&i| CcidPartition { index: i, of: 4 }.covers(ccid))
                .count();
            assert_eq!(covering, 1, "exactly one replay owns CCID {ccid}");
        }
        assert!(p0.covers(8));
        assert!(p3.covers(7));
        // Degenerate single-partition covers everything.
        assert!(CcidPartition { index: 0, of: 1 }.covers(42));
    }

    #[test]
    fn partitioned_replay_halves_quarantine_pressure() {
        // 10 buffers across CCIDs 0..10; partition 0-of-2 defers only even
        // CCIDs.
        let mut s = ShadowBackend::with_config(ShadowConfig {
            partition: Some(CcidPartition { index: 0, of: 2 }),
            ..ShadowConfig::default()
        });
        for ccid in 0..10u64 {
            let p = s.alloc(&req(AllocFn::Malloc, 64, ccid)).unwrap();
            s.free(p);
        }
        assert_eq!(s.quarantine_len(), 5, "only the even subspace deferred");
        assert_eq!(s.quarantine_bytes(), 5 * 64);
    }

    #[test]
    fn partitioned_replays_union_to_full_detection() {
        // A UAF exploit on CCID 7 is only *detected* by the replay owning
        // 7 % 2 == 1; the union over replays finds it.
        let run = |partition| {
            let mut s = ShadowBackend::with_config(ShadowConfig {
                partition,
                ..ShadowConfig::default()
            });
            let p = s.alloc(&req(AllocFn::Malloc, 64, 7)).unwrap();
            s.free(p);
            s.read(p, 8, Sink::Addr);
            s.generate_patches("uaf")
        };
        let full = run(None);
        assert_eq!(full.len(), 1);
        let replay0 = run(Some(CcidPartition { index: 0, of: 2 }));
        let replay1 = run(Some(CcidPartition { index: 1, of: 2 }));
        assert!(replay0.is_empty(), "wrong subspace misses the UAF");
        assert_eq!(replay1, full, "owning subspace reproduces the patch");
    }

    #[test]
    fn end_to_end_replay_via_interpreter() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let parse = pb.func("parse");
        let buf = pb.slot();
        pb.define(main, |b| b.call(parse));
        pb.define(parse, |b| {
            b.alloc(buf, AllocFn::Malloc, Expr::Input(0));
            b.write(buf, 0u64, Expr::Input(1), 0x41);
            b.free(buf);
        });
        let prog = pb.build();
        let plan = InstrumentationPlan::build(prog.graph(), Strategy::Slim, Scheme::Positional);

        // Benign input: in-bounds write → no patches.
        let mut i1 = Interpreter::new(&prog, &plan, ShadowBackend::new());
        i1.run(&[64, 64]);
        assert!(i1.backend().generate_patches("x").is_empty());

        // Attack input: overflow → one patch whose CCID decodes back to the
        // allocation context main→parse→malloc.
        let mut i2 = Interpreter::new(&prog, &plan, ShadowBackend::new());
        i2.run(&[64, 80]);
        let patches = i2.backend().generate_patches("bugbench-bc");
        assert_eq!(patches.len(), 1);
        assert_eq!(patches[0].alloc_fn, AllocFn::Malloc);
        assert_eq!(patches[0].vuln, VulnFlags::OVERFLOW);
        let malloc = prog.graph().func_by_name("malloc").unwrap();
        let path = ht_encoding::decode(
            prog.graph(),
            &plan,
            ht_encoding::Ccid(patches[0].ccid),
            malloc,
        )
        .expect("positional CCIDs decode");
        assert_eq!(path.len(), 2, "main→parse→malloc");
    }
}
