//! The offline attack analyzer: shadow memory, detection, patch generation
//! (paper Section V).
//!
//! HeapTherapy+ replays an attack input under a heavyweight shadow-memory
//! analyzer (the paper builds on Valgrind; this crate implements the same
//! machinery from scratch over the `ht-memsim` substrate):
//!
//! * an **Accessibility bit (A-bit) per byte** — red zones around every heap
//!   buffer and all freed memory are marked inaccessible; any touch is a
//!   detected violation,
//! * a **Validity bit (V-bit) per bit** — fresh heap memory is invalid;
//!   values are checked only where their use matters (control flow,
//!   addresses, system calls), which avoids the struct-padding false
//!   positives of naive checkers (paper Fig. 4),
//! * a **FIFO quarantine** of freed blocks (2 GB quota by default) so
//!   use-after-free accesses hit inaccessible memory instead of recycled
//!   buffers,
//! * **origin tracking**: every warning is attributed to the heap buffer it
//!   involves, whose allocation-time `(FUN, CCID)` becomes the patch key,
//! * **warning-resume**: execution continues after each warning (checked
//!   V-bits are revalidated to suppress chained reports), so one replay can
//!   expose several vulnerabilities — Heartbleed yields both `UR` and `OF`.
//!
//! The end product of a replay is a set of [`ht_patch::Patch`]es via
//! [`ShadowBackend::generate_patches`].
//!
//! # Example
//!
//! ```
//! use ht_callgraph::Strategy;
//! use ht_encoding::{InstrumentationPlan, Scheme};
//! use ht_patch::{AllocFn, VulnFlags};
//! use ht_shadow::ShadowBackend;
//! use ht_simprog::{Expr, Interpreter, ProgramBuilder, Sink};
//!
//! // A program that overflows its buffer by Input(1) bytes.
//! let mut pb = ProgramBuilder::new();
//! let main = pb.entry();
//! let buf = pb.slot();
//! pb.define(main, |b| {
//!     b.alloc(buf, AllocFn::Malloc, Expr::Input(0));
//!     b.write(buf, Expr::Const(0), Expr::Input(0).add(Expr::Input(1)), 0x41);
//! });
//! let prog = pb.build();
//! let plan = InstrumentationPlan::build(prog.graph(), Strategy::Incremental, Scheme::Pcc);
//!
//! let mut interp = Interpreter::new(&prog, &plan, ShadowBackend::new());
//! interp.run(&[64, 8]); // attack input: 8 bytes past the end
//! let patches = interp.backend().generate_patches("demo");
//! assert_eq!(patches.len(), 1);
//! assert!(patches[0].vuln.contains(VulnFlags::OVERFLOW));
//! ```

#![forbid(unsafe_code)]

pub mod analyzer;
pub mod bits;
pub mod heap;
pub mod warning;

pub use analyzer::{CcidPartition, ShadowBackend, ShadowConfig};
pub use bits::{KernelMode, ShadowBits};
pub use heap::{BufId, BufRecord, BufState, HeapMap, Region};
pub use warning::{Warning, WarningKind};
