//! Call graphs and targeted instrumentation-site selection for HeapTherapy+.
//!
//! This crate implements the static-analysis half of *targeted calling-context
//! encoding* (HeapTherapy+, DSN 2019, Section IV): given a program call graph
//! and a set of **target functions** (for heap patching: the allocation APIs
//! `malloc`, `calloc`, `realloc`, `memalign`, ...), decide which call sites
//! must be instrumented so that distinct calling contexts of the targets
//! receive distinct encodings.
//!
//! Four strategies are provided, strictly non-increasing in instrumentation
//! size:
//!
//! * [`Strategy::Fcs`] — Full-Call-Site: every call site (the baseline used by
//!   PCC/PCCE/DeltaPath).
//! * [`Strategy::Tcs`] — Targeted-Call-Site: only call sites that can reach a
//!   target function (Section IV-A).
//! * [`Strategy::Slim`] — additionally skip call sites in *non-branching*
//!   nodes (Section IV-B).
//! * [`Strategy::Incremental`] — additionally skip *false* branching nodes by
//!   keying contexts with `(target_fun, CCID)` pairs (Section IV-C,
//!   Algorithm 1).
//!
//! # Example
//!
//! ```
//! use ht_callgraph::{CallGraphBuilder, Strategy};
//!
//! let mut b = CallGraphBuilder::new();
//! let main = b.func("main");
//! let work = b.func("work");
//! let malloc = b.target("malloc");
//! let e1 = b.call(main, work);
//! let e2 = b.call(work, malloc);
//! let g = b.build();
//!
//! let sites = Strategy::Tcs.select(&g);
//! assert!(sites.contains(e1) && sites.contains(e2));
//! ```

#![forbid(unsafe_code)]

pub mod dot;
pub mod graph;
pub mod reach;
pub mod strategy;

pub use graph::{CallGraph, CallGraphBuilder, EdgeId, EdgeInfo, FuncId, FuncInfo};
pub use reach::Reachability;
pub use strategy::{enumerate_contexts, EdgeSet, Strategy};
