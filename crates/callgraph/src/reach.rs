//! Reachability analysis over call graphs.
//!
//! The Targeted-Call-Site optimization (paper Section IV-A) needs to know, for
//! every call site `(m, n)`, whether it *can reach* a target function: either
//! `n` is itself a target, or some chain of calls starting in `n` invokes a
//! target. [`Reachability`] precomputes this with one backward breadth-first
//! search per query set, handling cycles (recursion) naturally.

use crate::graph::{CallGraph, EdgeId, FuncId};
use std::collections::VecDeque;

/// Precomputed answer to "which nodes/edges can reach a given function set?".
///
/// Construct with [`Reachability::to_targets`] (reaching the graph's own
/// target set) or [`Reachability::to_set`] (an arbitrary set, used per-target
/// by the Incremental strategy).
#[derive(Debug, Clone)]
pub struct Reachability {
    /// `node_reaches[f]` — `f` is in the set, or can call into it.
    node_reaches: Vec<bool>,
}

impl Reachability {
    /// Reachability to the graph's declared target functions.
    pub fn to_targets(graph: &CallGraph) -> Self {
        Self::to_set(graph, graph.targets())
    }

    /// Reachability to an arbitrary set of functions.
    ///
    /// A function "reaches" the set if it is a member, or if one of its call
    /// sites calls a function that reaches the set. Back edges (recursion) are
    /// handled by the visited set of the backward BFS.
    pub fn to_set(graph: &CallGraph, set: &[FuncId]) -> Self {
        let mut node_reaches = vec![false; graph.func_count()];
        let mut queue = VecDeque::new();
        for &t in set {
            if !node_reaches[t.index()] {
                node_reaches[t.index()] = true;
                queue.push_back(t);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &e in &graph.func(n).in_edges {
                let m = graph.edge(e).caller;
                if !node_reaches[m.index()] {
                    node_reaches[m.index()] = true;
                    queue.push_back(m);
                }
            }
        }
        Self { node_reaches }
    }

    /// Whether function `f` is in the set or can transitively call into it.
    pub fn node_reaches(&self, f: FuncId) -> bool {
        self.node_reaches[f.index()]
    }

    /// Whether call site `e` can reach the set: true iff the callee reaches.
    pub fn edge_reaches(&self, graph: &CallGraph, e: EdgeId) -> bool {
        self.node_reaches(graph.edge(e).callee)
    }

    /// Out-edges of `f` that reach the set.
    pub fn reaching_out_edges(&self, graph: &CallGraph, f: FuncId) -> Vec<EdgeId> {
        graph
            .func(f)
            .out_edges
            .iter()
            .copied()
            .filter(|&e| self.edge_reaches(graph, e))
            .collect()
    }

    /// Number of functions that reach the set.
    pub fn reaching_node_count(&self) -> usize {
        self.node_reaches.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraphBuilder;

    /// main -> a -> malloc; main -> b (dead end).
    fn diamond() -> (CallGraph, [FuncId; 4], [EdgeId; 3]) {
        let mut bld = CallGraphBuilder::new();
        let main = bld.func("main");
        let a = bld.func("a");
        let b = bld.func("b");
        let malloc = bld.target("malloc");
        let e_ma = bld.call(main, a);
        let e_mb = bld.call(main, b);
        let e_am = bld.call(a, malloc);
        (bld.build(), [main, a, b, malloc], [e_ma, e_mb, e_am])
    }

    #[test]
    fn basic_reachability() {
        let (g, [main, a, b, malloc], [e_ma, e_mb, e_am]) = diamond();
        let r = Reachability::to_targets(&g);
        assert!(r.node_reaches(main));
        assert!(r.node_reaches(a));
        assert!(!r.node_reaches(b));
        assert!(r.node_reaches(malloc));
        assert!(r.edge_reaches(&g, e_ma));
        assert!(!r.edge_reaches(&g, e_mb));
        assert!(r.edge_reaches(&g, e_am));
        assert_eq!(r.reaching_node_count(), 3);
    }

    #[test]
    fn reaching_out_edges_filters() {
        let (g, [main, ..], [e_ma, _e_mb, _]) = diamond();
        let r = Reachability::to_targets(&g);
        assert_eq!(r.reaching_out_edges(&g, main), vec![e_ma]);
    }

    #[test]
    fn empty_target_set_reaches_nothing() {
        let (g, funcs, _) = diamond();
        let r = Reachability::to_set(&g, &[]);
        for f in funcs {
            assert!(!r.node_reaches(f));
        }
    }

    #[test]
    fn recursion_terminates_and_reaches() {
        // f <-> g mutual recursion, g -> malloc.
        let mut bld = CallGraphBuilder::new();
        let f = bld.func("f");
        let g_ = bld.func("g");
        let m = bld.target("malloc");
        bld.call(f, g_);
        bld.call(g_, f);
        bld.call(g_, m);
        let g = bld.build();
        let r = Reachability::to_targets(&g);
        assert!(r.node_reaches(f));
        assert!(r.node_reaches(g_));
    }

    #[test]
    fn self_loop_on_target() {
        let mut bld = CallGraphBuilder::new();
        let m = bld.target("malloc");
        let e = bld.call(m, m);
        let g = bld.build();
        let r = Reachability::to_targets(&g);
        assert!(r.node_reaches(m));
        assert!(r.edge_reaches(&g, e));
    }

    #[test]
    fn per_target_sets_differ() {
        // main -> t1, main -> x -> t2.
        let mut bld = CallGraphBuilder::new();
        let main = bld.func("main");
        let x = bld.func("x");
        let t1 = bld.target("t1");
        let t2 = bld.target("t2");
        bld.call(main, t1);
        bld.call(main, x);
        bld.call(x, t2);
        let g = bld.build();

        let r1 = Reachability::to_set(&g, &[t1]);
        assert!(r1.node_reaches(main));
        assert!(!r1.node_reaches(x));

        let r2 = Reachability::to_set(&g, &[t2]);
        assert!(r2.node_reaches(main));
        assert!(r2.node_reaches(x));
        assert!(!r2.node_reaches(t1));
    }
}
