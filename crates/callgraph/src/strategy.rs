//! Instrumentation-site selection strategies (paper Section IV, Algorithm 1).
//!
//! Each [`Strategy`] maps a [`CallGraph`] to the [`EdgeSet`] of call sites
//! that must carry encoding instrumentation. The guarantee that matters for
//! HeapTherapy+ is *distinguishability*: two different calling contexts that
//! end at the same target function must execute different sequences of
//! instrumented call sites (so that an injective encoding scheme assigns them
//! different CCIDs). See the property tests at the bottom of this module.

use crate::graph::{CallGraph, EdgeId, FuncId};
use crate::reach::Reachability;
use ht_jsonio::{obj, FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A set of call-site edges, represented as a dense bitset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSet {
    bits: Vec<bool>,
}

impl EdgeSet {
    /// An empty set sized for `graph`.
    pub fn empty(graph: &CallGraph) -> Self {
        Self {
            bits: vec![false; graph.edge_count()],
        }
    }

    /// The full set: every edge of `graph`.
    pub fn full(graph: &CallGraph) -> Self {
        Self {
            bits: vec![true; graph.edge_count()],
        }
    }

    /// Inserts an edge. Returns whether it was newly inserted.
    pub fn insert(&mut self, e: EdgeId) -> bool {
        let was = self.bits[e.index()];
        self.bits[e.index()] = true;
        !was
    }

    /// Whether the set contains `e`.
    pub fn contains(&self, e: EdgeId) -> bool {
        self.bits[e.index()]
    }

    /// Number of edges in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        !self.bits.iter().any(|&b| b)
    }

    /// Iterates over member edges in id order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &EdgeSet) -> bool {
        self.bits.iter().zip(&other.bits).all(|(&a, &b)| !a || b)
    }
}

impl ToJson for EdgeSet {
    fn to_json(&self) -> Json {
        obj([
            ("universe", Json::U64(self.bits.len() as u64)),
            (
                "members",
                Json::Arr(self.iter().map(|e| Json::U64(e.0 as u64)).collect()),
            ),
        ])
    }
}

impl FromJson for EdgeSet {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let universe = v.req_u64("universe")? as usize;
        let mut bits = vec![false; universe];
        for m in v.req_arr("members")? {
            let i = m
                .as_u64()
                .filter(|&i| i < universe as u64)
                .ok_or_else(|| JsonError::shape("edge-set member out of range"))?;
            bits[i as usize] = true;
        }
        Ok(EdgeSet { bits })
    }
}

impl fmt::Display for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

/// An instrumentation-site selection strategy.
///
/// Ordered from most to least instrumentation:
/// `Fcs ⊇ Tcs ⊇ Slim ⊇ Incremental` (verified by property test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// Full-Call-Site: instrument every call site. This is what PCC, PCCE and
    /// DeltaPath do out of the box.
    Fcs,
    /// Targeted-Call-Site (Section IV-A): instrument only call sites that can
    /// reach a target function.
    Tcs,
    /// Slim (Section IV-B): among TCS sites, instrument only call sites in
    /// *branching* nodes — nodes with two or more outgoing edges that reach a
    /// target. Call sites in non-branching nodes cannot affect
    /// distinguishability.
    ///
    /// Distinguishability of Slim (and Incremental) relies on the program
    /// having a single entry point per thread: two distinct contexts then
    /// share a first divergence node, which is by construction branching. This
    /// holds for real programs (`main` / a thread start routine).
    Slim,
    /// Incremental (Section IV-C, Algorithm 1): key contexts by
    /// `(target_fun, CCID)` so only *true* branching nodes — nodes with two or
    /// more outgoing edges reaching the *same* target — need instrumentation.
    Incremental,
}

impl Strategy {
    /// All strategies, from most to least instrumentation.
    pub const ALL: [Strategy; 4] = [
        Strategy::Fcs,
        Strategy::Tcs,
        Strategy::Slim,
        Strategy::Incremental,
    ];

    /// A short lowercase name (`"fcs"`, `"tcs"`, `"slim"`, `"incremental"`).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Fcs => "fcs",
            Strategy::Tcs => "tcs",
            Strategy::Slim => "slim",
            Strategy::Incremental => "incremental",
        }
    }

    /// Whether this strategy distinguishes contexts per target function (so
    /// the runtime key is `(target_fun, CCID)` rather than `CCID` alone).
    pub fn keys_by_target(self) -> bool {
        matches!(self, Strategy::Incremental)
    }

    /// Computes the set of call sites to instrument for `graph`.
    ///
    /// Targets are taken from [`CallGraph::targets`]. With an empty target
    /// set, every strategy except [`Strategy::Fcs`] selects nothing.
    pub fn select(self, graph: &CallGraph) -> EdgeSet {
        match self {
            Strategy::Fcs => EdgeSet::full(graph),
            Strategy::Tcs => tcs(graph),
            Strategy::Slim => slim(graph),
            Strategy::Incremental => incremental(graph),
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ToJson for Strategy {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for Strategy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v
            .as_str()
            .ok_or_else(|| JsonError::shape("strategy must be a string"))?;
        Strategy::ALL
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| JsonError::shape(format!("unknown strategy `{name}`")))
    }
}

/// Targeted-Call-Site: edges whose callee is a target or can reach one.
fn tcs(graph: &CallGraph) -> EdgeSet {
    let reach = Reachability::to_targets(graph);
    let mut set = EdgeSet::empty(graph);
    for e in graph.edge_ids() {
        if reach.edge_reaches(graph, e) {
            set.insert(e);
        }
    }
    set
}

/// Slim: TCS edges whose caller has ≥ 2 target-reaching out-edges.
fn slim(graph: &CallGraph) -> EdgeSet {
    let reach = Reachability::to_targets(graph);
    let mut set = EdgeSet::empty(graph);
    for f in graph.func_ids() {
        let reaching = reach.reaching_out_edges(graph, f);
        if reaching.len() >= 2 {
            for e in reaching {
                set.insert(e);
            }
        }
    }
    set
}

/// Incremental (Algorithm 1): for each target `t`, instrument the outgoing
/// edges of every *true branching node relative to `t`* — a node with two or
/// more outgoing edges that reach `t`. The union over all targets is the
/// instrumentation set; nodes whose multiple out-edges each reach *different*
/// targets (false branching nodes) contribute nothing.
fn incremental(graph: &CallGraph) -> EdgeSet {
    let mut set = EdgeSet::empty(graph);
    for &t in graph.targets() {
        let reach = Reachability::to_set(graph, &[t]);
        for f in graph.func_ids() {
            let reaching: Vec<EdgeId> = reach.reaching_out_edges(graph, f);
            if reaching.len() >= 2 {
                for e in reaching {
                    set.insert(e);
                }
            }
        }
    }
    set
}

/// Enumerates all acyclic calling contexts (edge paths) from any graph root to
/// any target function, capped at `max_paths` paths and `max_depth` edges.
///
/// Intended for analyses and tests — real programs are *executed*, not
/// enumerated. Recursive cycles are broken by refusing to revisit a function
/// already on the current path.
pub fn enumerate_contexts(
    graph: &CallGraph,
    max_depth: usize,
    max_paths: usize,
) -> Vec<(FuncId, Vec<EdgeId>)> {
    let mut out = Vec::new();
    let roots = graph.roots();
    let mut path: Vec<EdgeId> = Vec::new();
    let mut on_stack = vec![false; graph.func_count()];
    for root in roots {
        dfs(
            graph,
            root,
            &mut path,
            &mut on_stack,
            max_depth,
            max_paths,
            &mut out,
        );
    }
    out
}

fn dfs(
    graph: &CallGraph,
    f: FuncId,
    path: &mut Vec<EdgeId>,
    on_stack: &mut [bool],
    max_depth: usize,
    max_paths: usize,
    out: &mut Vec<(FuncId, Vec<EdgeId>)>,
) {
    if out.len() >= max_paths {
        return;
    }
    if graph.is_target(f) && !path.is_empty() {
        out.push((f, path.clone()));
        return; // targets are leaves of interest; allocation APIs call nothing
    }
    if path.len() >= max_depth {
        return;
    }
    on_stack[f.index()] = true;
    for &e in &graph.func(f).out_edges {
        let callee = graph.edge(e).callee;
        if on_stack[callee.index()] {
            continue;
        }
        path.push(e);
        dfs(graph, callee, path, on_stack, max_depth, max_paths, out);
        path.pop();
        if out.len() >= max_paths {
            break;
        }
    }
    on_stack[f.index()] = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraphBuilder;
    use std::collections::HashMap;

    /// The example graph of paper Figure 2.
    ///
    /// Edges: A→B, A→C, B→F, C→E, C→F, E→T1, F→T1, F→T2, D→H, H→I.
    /// Targets: T1, T2. D/H/I form a component that cannot reach any target.
    struct Fig2 {
        g: CallGraph,
        ab: EdgeId,
        ac: EdgeId,
        bf: EdgeId,
        ce: EdgeId,
        cf: EdgeId,
        et1: EdgeId,
        ft1: EdgeId,
        ft2: EdgeId,
        dh: EdgeId,
        hi: EdgeId,
    }

    fn figure2() -> Fig2 {
        let mut b = CallGraphBuilder::new();
        let a = b.func("A");
        let bb = b.func("B");
        let c = b.func("C");
        let d = b.func("D");
        let e = b.func("E");
        let f = b.func("F");
        let h = b.func("H");
        let i = b.func("I");
        let t1 = b.target("T1");
        let t2 = b.target("T2");
        let ab = b.call(a, bb);
        let ac = b.call(a, c);
        let bf = b.call(bb, f);
        let ce = b.call(c, e);
        let cf = b.call(c, f);
        let et1 = b.call(e, t1);
        let ft1 = b.call(f, t1);
        let ft2 = b.call(f, t2);
        let dh = b.call(d, h);
        let hi = b.call(h, i);
        Fig2 {
            g: b.build(),
            ab,
            ac,
            bf,
            ce,
            cf,
            et1,
            ft1,
            ft2,
            dh,
            hi,
        }
    }

    #[test]
    fn figure2_fcs_selects_everything() {
        let fig = figure2();
        let set = Strategy::Fcs.select(&fig.g);
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn figure2_tcs_prunes_dh_and_hi() {
        let fig = figure2();
        let set = Strategy::Tcs.select(&fig.g);
        assert_eq!(set.len(), 8);
        assert!(!set.contains(fig.dh));
        assert!(!set.contains(fig.hi));
        for e in [
            fig.ab, fig.ac, fig.bf, fig.ce, fig.cf, fig.et1, fig.ft1, fig.ft2,
        ] {
            assert!(set.contains(e), "TCS should keep {e}");
        }
    }

    #[test]
    fn figure2_slim_excludes_non_branching_b_and_e() {
        let fig = figure2();
        let set = Strategy::Slim.select(&fig.g);
        // B and E each have a single reaching out-edge: excluded.
        assert!(!set.contains(fig.bf));
        assert!(!set.contains(fig.et1));
        // A, C, F are branching: included.
        for e in [fig.ab, fig.ac, fig.ce, fig.cf, fig.ft1, fig.ft2] {
            assert!(set.contains(e), "Slim should keep {e}");
        }
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn figure2_incremental_keeps_only_true_branching_nodes() {
        // Paper: "only the call sites that correspond to AB, AC, CE, CF need
        // to be instrumented". F is a *false* branching node (its two
        // out-edges reach different targets) and is pruned.
        let fig = figure2();
        let set = Strategy::Incremental.select(&fig.g);
        assert_eq!(set.len(), 4);
        for e in [fig.ab, fig.ac, fig.ce, fig.cf] {
            assert!(set.contains(e), "Incremental should keep {e}");
        }
        assert!(!set.contains(fig.ft1));
        assert!(!set.contains(fig.ft2));
    }

    #[test]
    fn strategy_sets_are_nested_on_figure2() {
        let fig = figure2();
        let sets: Vec<EdgeSet> = Strategy::ALL.iter().map(|s| s.select(&fig.g)).collect();
        for w in sets.windows(2) {
            assert!(w[1].is_subset(&w[0]));
        }
    }

    #[test]
    fn empty_targets_only_fcs_instruments() {
        let mut b = CallGraphBuilder::new();
        let f = b.func("f");
        let g_ = b.func("g");
        b.call(f, g_);
        let g = b.build();
        assert_eq!(Strategy::Fcs.select(&g).len(), 1);
        assert_eq!(Strategy::Tcs.select(&g).len(), 0);
        assert_eq!(Strategy::Slim.select(&g).len(), 0);
        assert_eq!(Strategy::Incremental.select(&g).len(), 0);
    }

    #[test]
    fn recursion_is_handled() {
        // main -> f, f -> f (self recursion), f -> malloc, main -> g -> malloc.
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let f = b.func("f");
        let g_ = b.func("g");
        let m = b.target("malloc");
        let e_mf = b.call(main, f);
        let e_ff = b.call(f, f);
        let e_fm = b.call(f, m);
        let e_mg = b.call(main, g_);
        let e_gm = b.call(g_, m);
        let g = b.build();

        let tcs = Strategy::Tcs.select(&g);
        for e in [e_mf, e_ff, e_fm, e_mg, e_gm] {
            assert!(tcs.contains(e));
        }
        // f has two reaching out-edges (f->f and f->malloc): branching.
        let slim = Strategy::Slim.select(&g);
        assert!(slim.contains(e_ff) && slim.contains(e_fm));
        // Incremental also keeps them (both reach the same target malloc).
        let inc = Strategy::Incremental.select(&g);
        assert!(inc.contains(e_ff) && inc.contains(e_fm));
        assert!(inc.contains(e_mf) && inc.contains(e_mg));
    }

    #[test]
    fn enumerate_contexts_on_figure2() {
        let fig = figure2();
        let ctxs = enumerate_contexts(&fig.g, 16, 1024);
        // Contexts: A-B-F-T1, A-B-F-T2, A-C-E-T1, A-C-F-T1, A-C-F-T2.
        assert_eq!(ctxs.len(), 5);
        let to_t2: Vec<_> = ctxs
            .iter()
            .filter(|(t, _)| fig.g.func(*t).name == "T2")
            .collect();
        assert_eq!(to_t2.len(), 2);
    }

    #[test]
    fn edge_set_display_and_ops() {
        let fig = figure2();
        let mut s = EdgeSet::empty(&fig.g);
        assert!(s.is_empty());
        assert!(s.insert(fig.ab));
        assert!(!s.insert(fig.ab));
        assert_eq!(s.len(), 1);
        assert_eq!(s.to_string(), "{e0}");
        assert!(s.is_subset(&EdgeSet::full(&fig.g)));
    }

    /// Distinguishability: for every pair of distinct contexts (reaching the
    /// same target under Incremental; any targets under Slim/Tcs/Fcs), the
    /// subsequences of instrumented edges differ.
    fn assert_distinguishable(g: &CallGraph, strategy: Strategy) {
        let set = strategy.select(g);
        let ctxs = enumerate_contexts(g, 24, 4096);
        let mut seen: HashMap<(Option<FuncId>, Vec<EdgeId>), Vec<EdgeId>> = HashMap::new();
        for (target, path) in ctxs {
            let key_target = if strategy.keys_by_target() {
                Some(target)
            } else {
                None
            };
            let projected: Vec<EdgeId> =
                path.iter().copied().filter(|&e| set.contains(e)).collect();
            if let Some(prev) = seen.insert((key_target, projected.clone()), path.clone()) {
                panic!(
                    "strategy {strategy}: contexts {prev:?} and {path:?} \
                     project to the same instrumented sequence {projected:?}"
                );
            }
        }
    }

    #[test]
    fn figure2_all_strategies_distinguish() {
        let fig = figure2();
        for s in Strategy::ALL {
            assert_distinguishable(&fig.g, s);
        }
    }

    mod proptests {
        use super::{assert_distinguishable, CallGraph, CallGraphBuilder, FuncId, Strategy};
        use crate::reach::Reachability;
        use proptest::prelude::{any, proptest, Strategy as PropStrategy};
        use proptest::{prop_assert, prop_assert_eq};

        /// Builds a random layered DAG: `layers` layers of up to `width`
        /// functions; edges go from layer i to layer i+1 (plus some skips);
        /// the final layer holds 1-3 target functions.
        fn arb_dag() -> impl PropStrategy<Value = CallGraph> {
            (2usize..6, 1usize..4, any::<u64>()).prop_map(|(layers, width, seed)| {
                let mut rng = seed;
                let mut next = move || {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    rng >> 33
                };
                let mut b = CallGraphBuilder::new();
                // Single entry point: the distinguishability guarantees of
                // Slim/Incremental require it (see `Strategy` docs).
                let main = b.func("main");
                let mut layer_funcs: Vec<Vec<FuncId>> = Vec::new();
                for l in 0..layers {
                    let n = 1 + (next() as usize) % width;
                    let mut fs = Vec::new();
                    for i in 0..n {
                        fs.push(b.func(format!("L{l}_{i}")));
                    }
                    layer_funcs.push(fs);
                }
                let ntargets = 1 + (next() as usize) % 3;
                let mut targets = Vec::new();
                for i in 0..ntargets {
                    targets.push(b.target(format!("T{i}")));
                }
                layer_funcs.push(targets);
                let mut in_degree = vec![0usize; b.func_count()];
                // Connect each function to 1-3 functions in later layers.
                for l in 0..layer_funcs.len() - 1 {
                    for i in 0..layer_funcs[l].len() {
                        let f = layer_funcs[l][i];
                        let fanout = 1 + (next() as usize) % 3;
                        for _ in 0..fanout {
                            let tl = l + 1 + (next() as usize) % (layer_funcs.len() - l - 1);
                            let cands = &layer_funcs[tl];
                            let callee = cands[(next() as usize) % cands.len()];
                            b.call(f, callee);
                            in_degree[callee.index()] += 1;
                        }
                    }
                }
                // Single entry point: main calls every otherwise-uncalled
                // function, so no second root exists.
                for fs in &layer_funcs {
                    for &f in fs {
                        if in_degree[f.index()] == 0 {
                            b.call(main, f);
                        }
                    }
                }
                b.build()
            })
        }

        proptest! {
            #[test]
            fn nesting_holds(g in arb_dag()) {
                let fcs = Strategy::Fcs.select(&g);
                let tcs = Strategy::Tcs.select(&g);
                let slim = Strategy::Slim.select(&g);
                let inc = Strategy::Incremental.select(&g);
                prop_assert!(tcs.is_subset(&fcs));
                prop_assert!(slim.is_subset(&tcs));
                prop_assert!(inc.is_subset(&slim));
            }

            #[test]
            fn all_strategies_distinguish(g in arb_dag()) {
                for s in Strategy::ALL {
                    assert_distinguishable(&g, s);
                }
            }

            #[test]
            fn tcs_edges_all_reach(g in arb_dag()) {
                let tcs = Strategy::Tcs.select(&g);
                let r = Reachability::to_targets(&g);
                for e in g.edge_ids() {
                    prop_assert_eq!(tcs.contains(e), r.edge_reaches(&g, e));
                }
            }
        }
    }
}
