//! Call-graph representation.
//!
//! A [`CallGraph`] is a multigraph: nodes are functions, edges are *call
//! sites*. Two distinct call sites from `f` to `g` are two distinct edges —
//! calling-context encoding distinguishes them, so the graph must too.

use ht_jsonio::{obj, FromJson, Json, JsonError, ToJson};
use std::fmt;

/// Identifier of a function node in a [`CallGraph`].
///
/// `FuncId`s are dense indices assigned by [`CallGraphBuilder`] in insertion
/// order; use them with [`CallGraph::func`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Identifier of a call-site edge in a [`CallGraph`].
///
/// Dense indices in insertion order; use them with [`CallGraph::edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl FuncId {
    /// The index of this function, usable with [`CallGraph::func`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The index of this edge, usable with [`CallGraph::edge`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Per-function metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncInfo {
    /// Human-readable name (e.g. `"main"`, `"malloc"`).
    pub name: String,
    /// Whether this function is a *target* whose calling contexts are of
    /// interest (for heap patching: an allocation API).
    pub is_target: bool,
    /// Outgoing call sites, in call-site order within the function body.
    pub out_edges: Vec<EdgeId>,
    /// Incoming call sites.
    pub in_edges: Vec<EdgeId>,
}

/// Per-call-site metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeInfo {
    /// The calling function.
    pub caller: FuncId,
    /// The called function.
    pub callee: FuncId,
    /// Position of this call site among the caller's call sites (0-based).
    pub site_index: u32,
}

/// An immutable program call graph.
///
/// Build one with [`CallGraphBuilder`]. The graph may contain cycles
/// (recursion); all analyses in this crate handle back edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    funcs: Vec<FuncInfo>,
    edges: Vec<EdgeInfo>,
    targets: Vec<FuncId>,
}

impl CallGraph {
    /// Number of function nodes.
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Number of call-site edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Metadata for a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn func(&self, id: FuncId) -> &FuncInfo {
        &self.funcs[id.index()]
    }

    /// Metadata for a call site.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn edge(&self, id: EdgeId) -> &EdgeInfo {
        &self.edges[id.index()]
    }

    /// All function ids, in insertion order.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// All edge ids, in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// The target functions (allocation APIs), in insertion order.
    pub fn targets(&self) -> &[FuncId] {
        &self.targets
    }

    /// Whether `f` is a target function.
    pub fn is_target(&self, f: FuncId) -> bool {
        self.funcs[f.index()].is_target
    }

    /// Look up a function by name. `O(n)`; intended for tests and tooling.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Functions that are never called (graph roots, e.g. `main`).
    pub fn roots(&self) -> Vec<FuncId> {
        self.func_ids()
            .filter(|&f| self.func(f).in_edges.is_empty())
            .collect()
    }
}

impl ToJson for CallGraph {
    fn to_json(&self) -> Json {
        // Only names, target flags, and edge endpoints are stored; edge
        // adjacency, site indices, and the target list are derived on load.
        let funcs = self
            .funcs
            .iter()
            .map(|f| {
                obj([
                    ("name", Json::Str(f.name.clone())),
                    ("is_target", Json::Bool(f.is_target)),
                ])
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| {
                Json::Arr(vec![
                    Json::U64(e.caller.0 as u64),
                    Json::U64(e.callee.0 as u64),
                ])
            })
            .collect();
        obj([("funcs", Json::Arr(funcs)), ("edges", Json::Arr(edges))])
    }
}

impl FromJson for CallGraph {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let mut b = CallGraphBuilder::new();
        for f in v.req_arr("funcs")? {
            let name = f.req_str("name")?;
            if f.req_bool("is_target")? {
                b.target(name);
            } else {
                b.func(name);
            }
        }
        for e in v.req_arr("edges")? {
            let pair = e
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| JsonError::shape("edge must be a [caller, callee] pair"))?;
            let ends: Vec<u32> = pair
                .iter()
                .map(|n| {
                    n.as_u64()
                        .filter(|&i| i < b.func_count() as u64)
                        .map(|i| i as u32)
                        .ok_or_else(|| JsonError::shape("edge endpoint out of range"))
                })
                .collect::<Result<_, _>>()?;
            b.call(FuncId(ends[0]), FuncId(ends[1]));
        }
        Ok(b.build())
    }
}

/// Incremental builder for [`CallGraph`].
///
/// # Example
///
/// ```
/// use ht_callgraph::CallGraphBuilder;
///
/// let mut b = CallGraphBuilder::new();
/// let main = b.func("main");
/// let malloc = b.target("malloc");
/// b.call(main, malloc);
/// let g = b.build();
/// assert_eq!(g.func_count(), 2);
/// assert_eq!(g.targets(), &[malloc]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CallGraphBuilder {
    funcs: Vec<FuncInfo>,
    edges: Vec<EdgeInfo>,
    targets: Vec<FuncId>,
}

impl CallGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a non-target function and returns its id.
    pub fn func(&mut self, name: impl Into<String>) -> FuncId {
        self.add(name.into(), false)
    }

    /// Adds a *target* function (e.g. an allocation API) and returns its id.
    pub fn target(&mut self, name: impl Into<String>) -> FuncId {
        self.add(name.into(), true)
    }

    fn add(&mut self, name: String, is_target: bool) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(FuncInfo {
            name,
            is_target,
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        });
        if is_target {
            self.targets.push(id);
        }
        id
    }

    /// Adds a call site from `caller` to `callee` and returns its edge id.
    ///
    /// Multiple call sites between the same pair of functions are distinct
    /// edges.
    ///
    /// # Panics
    ///
    /// Panics if either function id was not created by this builder.
    pub fn call(&mut self, caller: FuncId, callee: FuncId) -> EdgeId {
        assert!(caller.index() < self.funcs.len(), "unknown caller {caller}");
        assert!(callee.index() < self.funcs.len(), "unknown callee {callee}");
        let id = EdgeId(self.edges.len() as u32);
        let site_index = self.funcs[caller.index()].out_edges.len() as u32;
        self.edges.push(EdgeInfo {
            caller,
            callee,
            site_index,
        });
        self.funcs[caller.index()].out_edges.push(id);
        self.funcs[callee.index()].in_edges.push(id);
        id
    }

    /// Number of functions added so far.
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Finalizes the graph.
    pub fn build(self) -> CallGraph {
        CallGraph {
            funcs: self.funcs,
            edges: self.edges,
            targets: self.targets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = CallGraphBuilder::new().build();
        assert_eq!(g.func_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.targets().is_empty());
        assert!(g.roots().is_empty());
    }

    #[test]
    fn single_call() {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let malloc = b.target("malloc");
        let e = b.call(main, malloc);
        let g = b.build();

        assert_eq!(g.edge(e).caller, main);
        assert_eq!(g.edge(e).callee, malloc);
        assert_eq!(g.edge(e).site_index, 0);
        assert!(g.is_target(malloc));
        assert!(!g.is_target(main));
        assert_eq!(g.roots(), vec![main]);
        assert_eq!(g.func(main).out_edges, vec![e]);
        assert_eq!(g.func(malloc).in_edges, vec![e]);
    }

    #[test]
    fn multi_edges_are_distinct_sites() {
        let mut b = CallGraphBuilder::new();
        let f = b.func("f");
        let m = b.target("malloc");
        let e0 = b.call(f, m);
        let e1 = b.call(f, m);
        let g = b.build();

        assert_ne!(e0, e1);
        assert_eq!(g.edge(e0).site_index, 0);
        assert_eq!(g.edge(e1).site_index, 1);
        assert_eq!(g.func(f).out_edges.len(), 2);
        assert_eq!(g.func(m).in_edges.len(), 2);
    }

    #[test]
    fn func_by_name_finds_first_match() {
        let mut b = CallGraphBuilder::new();
        let a = b.func("alpha");
        let _ = b.func("beta");
        let g = b.build();
        assert_eq!(g.func_by_name("alpha"), Some(a));
        assert_eq!(g.func_by_name("gamma"), None);
    }

    #[test]
    fn recursion_is_representable() {
        let mut b = CallGraphBuilder::new();
        let f = b.func("f");
        let e = b.call(f, f);
        let g = b.build();
        assert_eq!(g.edge(e).caller, g.edge(e).callee);
        // A self-recursive function is not a root: it has an incoming edge.
        assert!(g.roots().is_empty());
    }

    #[test]
    fn targets_in_insertion_order() {
        let mut b = CallGraphBuilder::new();
        let t1 = b.target("malloc");
        let _f = b.func("f");
        let t2 = b.target("calloc");
        let g = b.build();
        assert_eq!(g.targets(), &[t1, t2]);
    }

    #[test]
    #[should_panic(expected = "unknown callee")]
    fn call_with_foreign_id_panics() {
        let mut b1 = CallGraphBuilder::new();
        let f = b1.func("f");
        let mut b2 = CallGraphBuilder::new();
        let g = b2.func("g");
        let _ = g;
        // b1 has one function; FuncId(5) is out of range.
        b1.call(f, FuncId(5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(FuncId(3).to_string(), "f3");
        assert_eq!(EdgeId(7).to_string(), "e7");
    }

    #[test]
    fn json_round_trip() {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let m = b.target("malloc");
        b.call(main, m);
        b.call(main, m);
        let g = b.build();
        let json = g.to_json().to_compact();
        let back = CallGraph::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(g, back);
        assert!(
            CallGraph::from_json(&Json::parse("{\"funcs\":[],\"edges\":[[0,1]]}").unwrap())
                .is_err()
        );
    }
}
