//! Graphviz DOT export for call graphs and instrumentation sets.
//!
//! Useful for debugging instrumentation decisions: instrumented call sites
//! are drawn solid, pruned ones dashed; target functions are drawn as boxes.

use crate::graph::CallGraph;
use crate::strategy::EdgeSet;
use std::fmt::Write as _;

/// Renders `graph` as a DOT digraph.
///
/// When `instrumented` is provided, edges in the set are solid black and the
/// rest are dashed gray — mirroring the paper's Figure 2 presentation.
pub fn to_dot(graph: &CallGraph, instrumented: Option<&EdgeSet>) -> String {
    let mut s = String::new();
    s.push_str("digraph callgraph {\n");
    s.push_str("  rankdir=TB;\n");
    for f in graph.func_ids() {
        let info = graph.func(f);
        let shape = if info.is_target { "box" } else { "ellipse" };
        let _ = writeln!(s, "  {} [label=\"{}\", shape={}];", f, info.name, shape);
    }
    for e in graph.edge_ids() {
        let info = graph.edge(e);
        let style = match instrumented {
            Some(set) if !set.contains(e) => " [style=dashed, color=gray]",
            _ => "",
        };
        let _ = writeln!(s, "  {} -> {}{};", info.caller, info.callee, style);
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraphBuilder;
    use crate::strategy::Strategy;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let m = b.target("malloc");
        b.call(main, m);
        let g = b.build();
        let dot = to_dot(&g, None);
        assert!(dot.contains("digraph callgraph"));
        assert!(dot.contains("label=\"main\""));
        assert!(dot.contains("label=\"malloc\", shape=box"));
        assert!(dot.contains("f0 -> f1;"));
    }

    #[test]
    fn pruned_edges_are_dashed() {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let dead = b.func("dead");
        let m = b.target("malloc");
        b.call(main, m);
        b.call(main, dead);
        let g = b.build();
        let set = Strategy::Tcs.select(&g);
        let dot = to_dot(&g, Some(&set));
        assert!(dot.contains("f0 -> f2;"), "instrumented edge solid: {dot}");
        assert!(
            dot.contains("f0 -> f1 [style=dashed, color=gray];"),
            "pruned edge dashed: {dot}"
        );
    }
}
