//! A small, dependency-free JSON layer for HeapTherapy+ persistence.
//!
//! Patches, call graphs, and instrumentation plans must survive program
//! restarts (paper Section VI: patches embed CCIDs, so the plan that produced
//! them has to be reconstructible bit-for-bit). This crate provides the wire
//! format: a [`Json`] value type with a strict parser and compact/pretty
//! writers, plus the [`ToJson`]/[`FromJson`] conversion traits the domain
//! crates implement.
//!
//! Integers are kept as full-width `u64` (CCIDs use the whole range); floats
//! are intentionally unsupported — nothing persisted here is fractional.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Object member order is preserved (deterministic output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (full `u64` range).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] or a [`FromJson`] conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset of the error in the input (0 for shape errors).
    pub at: usize,
}

impl JsonError {
    /// A shape (not syntax) error.
    pub fn shape(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            at: 0,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.at == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "{} at byte {}", self.msg, self.at)
        }
    }
}

impl std::error::Error for JsonError {}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs `Self`, rejecting malformed shapes.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Parses a JSON document (must be a single value plus whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    write_escaped(out, &members[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    members[i].1.write(out, indent, depth + 1)
                })
            }
        }
    }

    /// The value as `u64`, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Convenience: a required `u64` member.
    pub fn req_u64(&self, key: &str) -> Result<u64, JsonError> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| JsonError::shape(format!("missing or non-integer member `{key}`")))
    }

    /// Convenience: a required string member.
    pub fn req_str(&self, key: &str) -> Result<&str, JsonError> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::shape(format!("missing or non-string member `{key}`")))
    }

    /// Convenience: a required bool member.
    pub fn req_bool(&self, key: &str) -> Result<bool, JsonError> {
        self.get(key)
            .and_then(Json::as_bool)
            .ok_or_else(|| JsonError::shape(format!("missing or non-bool member `{key}`")))
    }

    /// Convenience: a required array member.
    pub fn req_arr(&self, key: &str) -> Result<&[Json], JsonError> {
        self.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::shape(format!("missing or non-array member `{key}`")))
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos.max(1),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.err("floating-point numbers are not supported"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<u64>()
            .map(Json::U64)
            .map_err(|_| self.err("integer out of u64 range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Builds an object value from key/value pairs (insertion order preserved).
pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_value_kinds() {
        let doc =
            r#"{"a": [1, 2, 18446744073709551615], "b": "x\nyA", "c": true, "d": null, "e": {}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.req_arr("a").unwrap().len(), 3);
        assert_eq!(v.req_arr("a").unwrap()[2].as_u64(), Some(u64::MAX));
        assert_eq!(v.req_str("b").unwrap(), "x\nyA");
        assert!(v.req_bool("c").unwrap());
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Obj(vec![])));
        assert_eq!(v.get("zz"), None);
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = obj([
            ("name", Json::from("he\"llo\\")),
            ("n", Json::from(42u64)),
            ("list", Json::Arr(vec![Json::Bool(false), Json::Null])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn pretty_is_indented() {
        let v = Json::Arr(vec![Json::U64(1), Json::U64(2)]);
        assert_eq!(v.to_pretty(), "[\n  1,\n  2\n]");
        assert_eq!(v.to_compact(), "[1,2]");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{not json",
            "[1,",
            "\"unterminated",
            "1.5",
            "1e9",
            "[] []",
            "{\"a\":1,\"a\":2}",
            "-3",
            "",
            "nulL",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("héllo → wörld".into());
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn error_display_forms() {
        let e = Json::parse("[1,]").unwrap_err();
        assert!(e.to_string().contains("byte"), "{e}");
        assert_eq!(JsonError::shape("missing").to_string(), "missing");
    }
}
