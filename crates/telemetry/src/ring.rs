//! The bounded lock-free event ring.
//!
//! A fixed-capacity multi-producer queue in the style of a sequence-locked
//! ring (Vyukov's bounded MPMC, specialized to a single drainer): each
//! cache-line-padded slot carries a sequence word that tells producers and
//! the consumer whose turn it is. A producer claims a ticket with one CAS,
//! writes the three payload words, and publishes with a Release store of
//! the sequence; a full ring makes `push` count a drop and return — it
//! never blocks, never spins unboundedly, and never allocates, so it is
//! safe to call from inside a `#[global_allocator]`.
//!
//! The only non-standard twist: slot sequence words store the *offset* from
//! the slot's index (`seq - index`) so the whole ring is all-zeros at rest
//! and [`EventRing::new`] can be `const` — required for embedding in a
//! `static` allocator — without unsafe initialization tricks.

use crate::event::Event;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Ring capacity in events (power of two).
pub const RING_CAPACITY: usize = 1024;

/// One ring slot: a sequence word plus the three packed payload words, all
/// on a private cache line so neighbouring slots never false-share.
#[repr(align(64))]
struct Slot {
    /// Stores `seq - index` (see module docs); all-zero means "free for
    /// ticket `index`".
    seq: AtomicU64,
    w0: AtomicU64,
    w1: AtomicU64,
    w2: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // used once per array slot
const EMPTY_SLOT: Slot = Slot {
    seq: AtomicU64::new(0),
    w0: AtomicU64::new(0),
    w1: AtomicU64::new(0),
    w2: AtomicU64::new(0),
};

/// A cache-line-padded atomic word (head/tail each get their own line).
#[repr(align(64))]
struct PaddedWord(AtomicU64);

/// Bounded lock-free multi-producer event queue with a single drainer.
pub struct EventRing {
    slots: [Slot; RING_CAPACITY],
    /// Next enqueue ticket (= events ever accepted).
    tail: PaddedWord,
    /// Next drain ticket (mutated only under `drain_lock`).
    head: PaddedWord,
    /// Events lost to overflow.
    dropped: AtomicU64,
    /// Serializes drainers (draining is an observer operation, never on the
    /// allocation path, so a spin lock is fine).
    drain_lock: AtomicBool,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("delivered", &self.delivered())
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

impl Default for EventRing {
    fn default() -> Self {
        Self::new()
    }
}

impl EventRing {
    /// An empty ring. `const` so it can live inside a `static` allocator.
    pub const fn new() -> Self {
        Self {
            slots: [EMPTY_SLOT; RING_CAPACITY],
            tail: PaddedWord(AtomicU64::new(0)),
            head: PaddedWord(AtomicU64::new(0)),
            dropped: AtomicU64::new(0),
            drain_lock: AtomicBool::new(false),
        }
    }

    /// Capacity in events.
    pub const fn capacity(&self) -> usize {
        RING_CAPACITY
    }

    /// The stored->logical sequence translation for slot `i`.
    #[inline]
    fn seq_of(slot: &Slot, i: usize) -> u64 {
        slot.seq.load(Ordering::Acquire).wrapping_add(i as u64)
    }

    /// Enqueues `ev`. Returns `false` (and counts a drop) when the ring is
    /// full. Wait-free apart from CAS retries against other producers.
    #[inline]
    pub fn push(&self, ev: Event) -> bool {
        let [w0, w1, w2] = ev.pack();
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        loop {
            let i = (tail as usize) & (RING_CAPACITY - 1);
            let slot = &self.slots[i];
            let seq = Self::seq_of(slot, i);
            let dif = seq.wrapping_sub(tail) as i64;
            if dif == 0 {
                match self.tail.0.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.w0.store(w0, Ordering::Relaxed);
                        slot.w1.store(w1, Ordering::Relaxed);
                        slot.w2.store(w2, Ordering::Relaxed);
                        // Publish: logical seq becomes ticket+1.
                        slot.seq.store(
                            tail.wrapping_add(1).wrapping_sub(i as u64),
                            Ordering::Release,
                        );
                        return true;
                    }
                    Err(t) => tail = t,
                }
            } else if dif < 0 {
                // The consumer has not freed this slot yet: ring full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer claimed this ticket; chase the tail.
                tail = self.tail.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Drains every currently-published event, oldest first, into `f`.
    /// Events are delivered exactly once across all drains. Returns the
    /// number delivered by this call.
    pub fn drain(&self, mut f: impl FnMut(Event)) -> usize {
        // One drainer at a time; drains are rare observer calls.
        while self
            .drain_lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let mut head = self.head.0.load(Ordering::Relaxed);
        let mut n = 0;
        loop {
            let i = (head as usize) & (RING_CAPACITY - 1);
            let slot = &self.slots[i];
            let seq = Self::seq_of(slot, i);
            if seq != head.wrapping_add(1) {
                break; // next slot not published yet
            }
            let w = [
                slot.w0.load(Ordering::Relaxed),
                slot.w1.load(Ordering::Relaxed),
                slot.w2.load(Ordering::Relaxed),
            ];
            // Free the slot for the producer one lap ahead.
            slot.seq.store(
                head.wrapping_add(RING_CAPACITY as u64)
                    .wrapping_sub(i as u64),
                Ordering::Release,
            );
            head = head.wrapping_add(1);
            n += 1;
            if let Some(ev) = Event::unpack(head - 1, w) {
                f(ev);
            }
        }
        self.head.0.store(head, Ordering::Relaxed);
        self.drain_lock.store(false, Ordering::Release);
        n
    }

    /// Drains into a fresh `Vec` (observer convenience; allocates).
    pub fn drain_vec(&self) -> Vec<Event> {
        let mut out = Vec::new();
        self.drain(|ev| out.push(ev));
        out
    }

    /// Events ever accepted by the ring (delivered or still pending).
    pub fn delivered(&self) -> u64 {
        self.tail.0.load(Ordering::Relaxed)
    }

    /// Events lost to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use ht_patch::AllocFn;
    use std::sync::Arc;

    fn ev(size: u64) -> Event {
        Event::unattributed(EventKind::PatchHit, AllocFn::Malloc, size)
    }

    #[test]
    fn push_then_drain_in_order() {
        let r = EventRing::new();
        for i in 0..10 {
            assert!(r.push(ev(i)));
        }
        let got = r.drain_vec();
        assert_eq!(got.len(), 10);
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.size, i as u64);
            assert_eq!(e.seq, i as u64, "seq is the global ticket");
        }
        assert_eq!(r.delivered(), 10);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_exactly_and_never_double_delivers() {
        let r = EventRing::new();
        let total = RING_CAPACITY as u64 + 300;
        let mut accepted = 0;
        for i in 0..total {
            if r.push(ev(i)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, RING_CAPACITY as u64);
        assert_eq!(r.dropped(), 300, "dropped count is exact");
        let got = r.drain_vec();
        assert_eq!(got.len(), RING_CAPACITY);
        // The survivors are exactly the first CAPACITY events, once each.
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.size, i as u64);
        }
        assert!(r.drain_vec().is_empty(), "no double delivery");
        // After draining, the ring accepts again.
        assert!(r.push(ev(9999)));
        assert_eq!(r.drain_vec().len(), 1);
    }

    #[test]
    fn interleaved_push_drain_wraps_many_laps() {
        let r = EventRing::new();
        let mut next_expected = 0u64;
        for round in 0..10 {
            for i in 0..700u64 {
                assert!(r.push(ev(round * 700 + i)));
            }
            let got = r.drain_vec();
            assert_eq!(got.len(), 700);
            for e in got {
                assert_eq!(e.size, next_expected);
                next_expected += 1;
            }
        }
        assert_eq!(r.delivered(), 7000);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        let r = Arc::new(EventRing::new());
        let threads = 8;
        let per_thread = RING_CAPACITY / 8;
        let mut handles = Vec::new();
        for t in 0..threads {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    assert!(r.push(ev((t * per_thread + i) as u64)));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u64> = r.drain_vec().iter().map(|e| e.size).collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..(threads * per_thread) as u64).collect();
        assert_eq!(got, want, "every event delivered exactly once");
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn concurrent_producers_with_concurrent_drainer_conserve_events() {
        let r = Arc::new(EventRing::new());
        let stop = Arc::new(AtomicBool::new(false));
        let threads = 4;
        let per_thread = 20_000u64;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    r.push(ev(i));
                }
            }));
        }
        let drainer = {
            let r = Arc::clone(&r);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    seen += r.drain(|_| {}) as u64;
                }
                seen += r.drain(|_| {}) as u64;
                seen
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let seen = drainer.join().unwrap();
        // Conservation: accepted = seen; accepted + dropped = produced.
        assert_eq!(seen, r.delivered());
        assert_eq!(r.delivered() + r.dropped(), threads * per_thread);
    }
}
