//! Phase-scoped wall-clock spans for the offline pipeline.
//!
//! The offline side (instrument → analyze → encode → patch-gen) is batch
//! work; one `Timeline` per run records how long each phase took so the
//! `reproduce` tables can print per-phase wall-clock next to their rows.

use ht_jsonio::{obj, Json, ToJson};
use std::time::Instant;

/// One named phase and its duration in microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (e.g. `"analyze"`).
    pub name: String,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
}

impl ToJson for PhaseSpan {
    fn to_json(&self) -> Json {
        obj([
            ("phase", Json::Str(self.name.clone())),
            ("micros", Json::U64(self.micros)),
        ])
    }
}

/// An ordered collection of phase spans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    spans: Vec<PhaseSpan>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, recording its wall-clock under `name`. Phases nest by
    /// calling convention only — a span covers exactly the closure.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.push(name, t0.elapsed().as_micros() as u64);
        out
    }

    /// Appends a pre-measured span.
    pub fn push(&mut self, name: &str, micros: u64) {
        self.spans.push(PhaseSpan {
            name: name.to_string(),
            micros,
        });
    }

    /// The recorded spans, in execution order.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Sum of all span durations.
    pub fn total_micros(&self) -> u64 {
        self.spans.iter().map(|s| s.micros).sum()
    }

    /// The span named `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<&PhaseSpan> {
        self.spans.iter().find(|s| s.name == name)
    }
}

impl ToJson for Timeline {
    fn to_json(&self) -> Json {
        Json::Arr(self.spans.iter().map(ToJson::to_json).collect())
    }
}

impl std::fmt::Display for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.spans {
            writeln!(f, "{:<12} {:>10.3} ms", s.name, s.micros as f64 / 1000.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_ordered_spans() {
        let mut tl = Timeline::new();
        let x = tl.time("analyze", || 41 + 1);
        assert_eq!(x, 42);
        tl.time("encode", || {
            std::thread::sleep(std::time::Duration::from_millis(2))
        });
        assert_eq!(tl.spans().len(), 2);
        assert_eq!(tl.spans()[0].name, "analyze");
        assert!(tl.get("encode").unwrap().micros >= 2_000);
        assert!(tl.get("missing").is_none());
        assert!(tl.total_micros() >= tl.get("encode").unwrap().micros);
    }

    #[test]
    fn json_and_display() {
        let mut tl = Timeline::new();
        tl.push("patch-gen", 1500);
        let j = tl.to_json();
        let arr = j.as_arr().unwrap();
        assert_eq!(
            arr[0].get("phase").and_then(Json::as_str),
            Some("patch-gen")
        );
        assert_eq!(arr[0].get("micros").and_then(Json::as_u64), Some(1500));
        assert!(tl.to_string().contains("patch-gen"));
        assert!(tl.to_string().contains("1.500 ms"));
    }
}
