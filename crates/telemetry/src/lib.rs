//! Runtime attack telemetry for the online defense (paper Section VII,
//! "diagnosis report").
//!
//! HeapTherapy+ does not defend silently: when a targeted defense fires the
//! runtime records *which* patch fired, ties it back to `{FUN, CCID, T}`,
//! and renders a one-time attack report an operator can audit. This crate
//! is the machinery, shared by the simulated defense (`ht-defense`) and the
//! real hardened allocator (`ht-hardened-alloc`):
//!
//! - [`EventRing`] — a bounded lock-free multi-producer event queue with
//!   cache-line-padded, sequence-numbered slots. Producers never block and
//!   never allocate (a full ring counts a drop instead), so the ring is
//!   safe to feed from inside a `#[global_allocator]`.
//! - [`PatchStripes`] — per-patch hit/byte counters striped over 16 cache
//!   lines (the same striping as the allocator's own counters), keyed by
//!   the frozen patch table's slot index and merged by
//!   [`PatchStripes::merge`].
//! - [`AttackReport`] — the paper-style structured report, rendered exactly
//!   once per distinct `(FUN, CCID, T)`; dedup lives with the patch table
//!   (a lock-free once-bit in the patch meta word) so this crate only
//!   formats and serializes.
//! - [`Timeline`] — wall-clock phase spans for the offline pipeline
//!   (instrument / analyze / patch-gen), printed by the `reproduce` tables.
//!
//! Everything exports as JSON through `ht-jsonio`. Telemetry is strictly
//! observational: enabling it must not change any allocation decision, and
//! [`TelemetryConfig::disabled`] is a zero-cost opt-out — disabled paths
//! hold no telemetry state at all and touch no atomics.

#![forbid(unsafe_code)]

mod counters;
mod event;
mod report;
mod ring;
mod spans;

pub use counters::{PatchCounts, PatchStripes, TELEMETRY_STRIPES};
pub use event::{Event, EventKind, NO_SLOT};
pub use report::{defense_for, AttackReport};
pub use ring::{EventRing, RING_CAPACITY};
pub use spans::{PhaseSpan, Timeline};

use ht_jsonio::{obj, Json, ToJson};

/// Whether the observability layer is armed.
///
/// The default is [disabled](Self::disabled): recording telemetry costs a
/// few relaxed atomics per defended allocation, and the scaling benchmark
/// verifies the disabled mode stays within noise of a build that never
/// heard of telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryConfig {
    enabled: bool,
}

impl TelemetryConfig {
    /// Telemetry off: no ring, no counters, no atomics on the hot path.
    pub const fn disabled() -> Self {
        Self { enabled: false }
    }

    /// Telemetry on: events, per-patch counters, and one-time reports.
    pub const fn enabled() -> Self {
        Self { enabled: true }
    }

    /// Whether recording is armed.
    pub const fn is_enabled(self) -> bool {
        self.enabled
    }
}

/// One merged per-patch counter row, resolved back to the patch identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchCounterRow {
    /// Patch-table slot index the counters were keyed by.
    pub slot: usize,
    /// Allocation API of the patch.
    pub fun: ht_patch::AllocFn,
    /// Calling-context ID of the patch.
    pub ccid: u64,
    /// Vulnerability bits of the patch.
    pub vuln: ht_patch::VulnFlags,
    /// Allocations that hit this patch.
    pub hits: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

impl ToJson for PatchCounterRow {
    fn to_json(&self) -> Json {
        obj([
            ("slot", Json::U64(self.slot as u64)),
            ("fun", self.fun.to_json()),
            ("ccid", Json::U64(self.ccid)),
            ("vuln", self.vuln.to_json()),
            ("hits", Json::U64(self.hits)),
            ("bytes", Json::U64(self.bytes)),
        ])
    }
}

/// Everything the runtime observed, drained at a quiescent point.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Events delivered through the ring, in order.
    pub events: Vec<Event>,
    /// Events accepted by the ring over its lifetime (delivered + pending).
    pub delivered: u64,
    /// Events lost to ring overflow.
    pub dropped: u64,
    /// Per-patch hit/byte counters (patches with activity only).
    pub per_patch: Vec<PatchCounterRow>,
    /// One-time attack reports, in first-activation order.
    pub reports: Vec<AttackReport>,
}

impl TelemetrySnapshot {
    /// Whether nothing at all was observed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.reports.is_empty() && self.per_patch.is_empty()
    }
}

impl ToJson for TelemetrySnapshot {
    fn to_json(&self) -> Json {
        obj([
            (
                "events",
                Json::Arr(self.events.iter().map(ToJson::to_json).collect()),
            ),
            ("delivered", Json::U64(self.delivered)),
            ("dropped", Json::U64(self.dropped)),
            (
                "per_patch",
                Json::Arr(self.per_patch.iter().map(ToJson::to_json).collect()),
            ),
            (
                "reports",
                Json::Arr(self.reports.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_to_disabled() {
        assert!(!TelemetryConfig::default().is_enabled());
        assert!(!TelemetryConfig::disabled().is_enabled());
        assert!(TelemetryConfig::enabled().is_enabled());
    }

    #[test]
    fn snapshot_json_shape() {
        let snap = TelemetrySnapshot {
            events: vec![],
            delivered: 3,
            dropped: 1,
            per_patch: vec![PatchCounterRow {
                slot: 0,
                fun: ht_patch::AllocFn::Malloc,
                ccid: 0xBAD,
                vuln: ht_patch::VulnFlags::OVERFLOW,
                hits: 2,
                bytes: 128,
            }],
            reports: vec![],
        };
        let j = snap.to_json();
        assert_eq!(j.get("dropped").and_then(Json::as_u64), Some(1));
        let rows = j.get("per_patch").and_then(Json::as_arr).unwrap();
        assert_eq!(rows[0].get("hits").and_then(Json::as_u64), Some(2));
        assert!(!snap.is_empty());
        assert!(TelemetrySnapshot::default().is_empty());
    }
}
