//! The fixed-width telemetry event record.
//!
//! An event must fit a handful of `u64` words so the ring can publish it
//! with plain atomic stores — no allocation, no pointer chasing. Three
//! payload words carry everything:
//!
//! ```text
//! w0: kind (bits 0..8) | fun (8..16) | vuln bits (16..24) | slot+1 (32..64)
//! w1: ccid
//! w2: size in bytes
//! ```
//!
//! `slot` is the patch-table slot index of the patch involved (shifted by
//! one so an all-zero word means "no patch"); `vuln` is the single `T` bit
//! (or merged bits) relevant to the event.

use ht_jsonio::{obj, Json, ToJson};
use ht_patch::{AllocFn, VulnFlags};

/// Sentinel slot value for events not tied to a patch-table slot.
pub const NO_SLOT: u32 = u32::MAX;

/// What happened. Discriminants are the wire encoding (stable, u8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A patched allocation matched the table (defense about to apply).
    PatchHit = 1,
    /// A guard page was installed behind an overflow-patched buffer.
    GuardInstall = 2,
    /// An uninit-read-patched buffer was zero-filled.
    ZeroInit = 3,
    /// A UAF-patched free was deferred into the quarantine.
    QuarantineDefer = 4,
    /// A quarantined block was evicted back to the system (quota/capacity).
    QuarantineEvict = 5,
    /// An access was stopped at a guard page (overflow attack blocked).
    GuardTrip = 6,
    /// An access hit a quarantined block (use-after-free caught).
    UafCaught = 7,
    /// A defense was skipped because a fixed table was full (fail-open).
    FailOpen = 8,
    /// First activation of a `(FUN, CCID, T)` — an attack report was filed.
    AttackReported = 9,
}

impl EventKind {
    /// All kinds, for iteration in tests and decoding.
    pub const ALL: [EventKind; 9] = [
        EventKind::PatchHit,
        EventKind::GuardInstall,
        EventKind::ZeroInit,
        EventKind::QuarantineDefer,
        EventKind::QuarantineEvict,
        EventKind::GuardTrip,
        EventKind::UafCaught,
        EventKind::FailOpen,
        EventKind::AttackReported,
    ];

    /// Short display name (used in tables and JSON).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PatchHit => "patch-hit",
            EventKind::GuardInstall => "guard-install",
            EventKind::ZeroInit => "zero-init",
            EventKind::QuarantineDefer => "quarantine-defer",
            EventKind::QuarantineEvict => "quarantine-evict",
            EventKind::GuardTrip => "guard-trip",
            EventKind::UafCaught => "uaf-caught",
            EventKind::FailOpen => "fail-open",
            EventKind::AttackReported => "attack-reported",
        }
    }

    fn from_wire(v: u64) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| *k as u64 == v)
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One telemetry event, decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global delivery sequence number (the ring ticket).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Allocation API involved.
    pub fun: AllocFn,
    /// Vulnerability bits relevant to the event.
    pub vuln: VulnFlags,
    /// Patch-table slot index, or [`NO_SLOT`] when no patch is involved.
    pub slot: u32,
    /// Allocation-time calling-context ID (0 when unknown, e.g. a guard
    /// trip detected at access time).
    pub ccid: u64,
    /// Byte size involved (allocation size, zeroed bytes, ...).
    pub size: u64,
}

impl Event {
    /// An event not attributed to a specific patch slot.
    pub fn unattributed(kind: EventKind, fun: AllocFn, size: u64) -> Self {
        Self {
            seq: 0,
            kind,
            fun,
            vuln: VulnFlags::NONE,
            slot: NO_SLOT,
            ccid: 0,
            size,
        }
    }

    /// An event attributed to patch-table slot `slot`.
    pub fn patched(
        kind: EventKind,
        fun: AllocFn,
        vuln: VulnFlags,
        slot: u32,
        ccid: u64,
        size: u64,
    ) -> Self {
        Self {
            seq: 0,
            kind,
            fun,
            vuln,
            slot,
            ccid,
            size,
        }
    }

    /// Packs into the ring's three payload words.
    pub(crate) fn pack(&self) -> [u64; 3] {
        let slot_plus1 = if self.slot == NO_SLOT {
            0
        } else {
            u64::from(self.slot) + 1
        };
        let w0 = self.kind as u64
            | ((self.fun as u64) << 8)
            | (u64::from(self.vuln.bits()) << 16)
            | (slot_plus1 << 32);
        [w0, self.ccid, self.size]
    }

    /// Decodes the ring's payload words; `seq` is the delivery ticket.
    /// Returns `None` for a corrupt kind byte (cannot happen through the
    /// public API; defends the decoder anyway).
    pub(crate) fn unpack(seq: u64, w: [u64; 3]) -> Option<Event> {
        let kind = EventKind::from_wire(w[0] & 0xFF)?;
        let fun = *AllocFn::ALL.get(((w[0] >> 8) & 0xFF) as usize)?;
        let vuln = VulnFlags::from_bits_truncate(((w[0] >> 16) & 0xFF) as u8);
        let slot_plus1 = w[0] >> 32;
        let slot = if slot_plus1 == 0 {
            NO_SLOT
        } else {
            (slot_plus1 - 1) as u32
        };
        Some(Event {
            seq,
            kind,
            fun,
            vuln,
            slot,
            ccid: w[1],
            size: w[2],
        })
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        obj([
            ("seq", Json::U64(self.seq)),
            ("kind", Json::Str(self.kind.name().to_string())),
            ("fun", self.fun.to_json()),
            ("vuln", self.vuln.to_json()),
            (
                "slot",
                if self.slot == NO_SLOT {
                    Json::Null
                } else {
                    Json::U64(u64::from(self.slot))
                },
            ),
            ("ccid", Json::U64(self.ccid)),
            ("size", Json::U64(self.size)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips_every_kind_and_fun() {
        for kind in EventKind::ALL {
            for fun in AllocFn::ALL {
                let ev = Event {
                    seq: 7,
                    kind,
                    fun,
                    vuln: VulnFlags::USE_AFTER_FREE,
                    slot: 511,
                    ccid: 0xDEAD_BEEF_0BAD_F00D,
                    size: u64::MAX,
                };
                let back = Event::unpack(7, ev.pack()).unwrap();
                assert_eq!(back, ev);
            }
        }
    }

    #[test]
    fn unattributed_round_trips_no_slot() {
        let ev = Event::unattributed(EventKind::FailOpen, AllocFn::Malloc, 64);
        let back = Event::unpack(0, ev.pack()).unwrap();
        assert_eq!(back.slot, NO_SLOT);
        assert_eq!(back, ev);
        assert_eq!(ev.to_json().get("slot"), Some(&Json::Null));
    }

    #[test]
    fn corrupt_kind_rejected() {
        assert!(Event::unpack(0, [0, 0, 0]).is_none());
        assert!(Event::unpack(0, [0xFF, 0, 0]).is_none());
    }

    #[test]
    fn kind_names_are_distinct() {
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }
}
