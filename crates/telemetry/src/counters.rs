//! Per-patch hit/byte counters, striped over cache lines.
//!
//! The frozen patch table gives every patch a stable slot index; these
//! counters are dense arrays keyed by that index. To keep concurrent
//! increments contention-free the arrays are **striped**: 16 independent
//! copies (one per cache-line-padded lane), with each thread hashing to one
//! lane — the same pattern as the hardened allocator's `StripedCounter`,
//! extended from a scalar to a per-slot vector. Counts are exact;
//! [`PatchStripes::merge`] sums the lanes at a quiescent point.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of counter stripes (matches the allocator's counter striping).
pub const TELEMETRY_STRIPES: usize = 16;

#[allow(clippy::declare_interior_mutable_const)] // used once per array slot
const ZERO_WORD: AtomicU64 = AtomicU64::new(0);

/// One stripe: a private hits/bytes vector starting on its own cache line.
#[repr(align(64))]
struct Lane<const SLOTS: usize> {
    hits: [AtomicU64; SLOTS],
    bytes: [AtomicU64; SLOTS],
}

impl<const SLOTS: usize> Lane<SLOTS> {
    #[allow(clippy::declare_interior_mutable_const)] // used once per lane
    const NEW: Lane<SLOTS> = Lane {
        hits: [ZERO_WORD; SLOTS],
        bytes: [ZERO_WORD; SLOTS],
    };
}

thread_local! {
    /// Per-thread lane index, derived once from the thread id.
    static LANE: usize = {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(&std::thread::current().id(), &mut h);
        (std::hash::Hasher::finish(&h) as usize) % TELEMETRY_STRIPES
    };
}

/// Merged hit/byte counts of one patch slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchCounts {
    /// Allocations that hit the patch.
    pub hits: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
}

/// Striped per-patch-slot hit/byte counters, `const`-constructible so they
/// can embed in a `static` allocator.
pub struct PatchStripes<const SLOTS: usize> {
    lanes: [Lane<SLOTS>; TELEMETRY_STRIPES],
}

impl<const SLOTS: usize> std::fmt::Debug for PatchStripes<SLOTS> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatchStripes")
            .field("slots", &SLOTS)
            .finish_non_exhaustive()
    }
}

impl<const SLOTS: usize> Default for PatchStripes<SLOTS> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const SLOTS: usize> PatchStripes<SLOTS> {
    /// All-zero counters.
    pub const fn new() -> Self {
        Self {
            lanes: [Lane::NEW; TELEMETRY_STRIPES],
        }
    }

    /// Records one hit of `bytes` bytes against patch slot `slot`.
    /// Out-of-range slots are ignored (cannot happen through the public
    /// wiring; keeps the hot path panic-free).
    #[inline]
    pub fn record(&self, slot: usize, bytes: u64) {
        if slot >= SLOTS {
            return;
        }
        // `try_with` so recording keeps working during thread teardown.
        let lane = LANE.try_with(|&l| l).unwrap_or(0);
        let lane = &self.lanes[lane];
        lane.hits[slot].fetch_add(1, Ordering::Relaxed);
        lane.bytes[slot].fetch_add(bytes, Ordering::Relaxed);
    }

    /// Merged counts for one slot.
    pub fn counts(&self, slot: usize) -> PatchCounts {
        let mut c = PatchCounts::default();
        if slot >= SLOTS {
            return c;
        }
        for lane in &self.lanes {
            c.hits += lane.hits[slot].load(Ordering::Relaxed);
            c.bytes += lane.bytes[slot].load(Ordering::Relaxed);
        }
        c
    }

    /// Merges all lanes into one dense per-slot vector.
    pub fn merge(&self) -> Vec<PatchCounts> {
        let mut out = vec![PatchCounts::default(); SLOTS];
        for lane in &self.lanes {
            for (slot, c) in out.iter_mut().enumerate() {
                c.hits += lane.hits[slot].load(Ordering::Relaxed);
                c.bytes += lane.bytes[slot].load(Ordering::Relaxed);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_and_merge_single_thread() {
        let s: PatchStripes<8> = PatchStripes::new();
        s.record(0, 64);
        s.record(0, 32);
        s.record(7, 1);
        assert_eq!(s.counts(0), PatchCounts { hits: 2, bytes: 96 });
        let merged = s.merge();
        assert_eq!(merged[0], PatchCounts { hits: 2, bytes: 96 });
        assert_eq!(merged[7], PatchCounts { hits: 1, bytes: 1 });
        assert_eq!(merged[3], PatchCounts::default());
    }

    #[test]
    fn out_of_range_slot_is_ignored() {
        let s: PatchStripes<4> = PatchStripes::new();
        s.record(4, 100);
        s.record(usize::MAX, 100);
        assert!(s.merge().iter().all(|c| c.hits == 0));
        assert_eq!(s.counts(99), PatchCounts::default());
    }

    #[test]
    fn counts_are_exact_across_threads() {
        let s: Arc<PatchStripes<4>> = Arc::new(PatchStripes::new());
        let mut handles = Vec::new();
        for t in 0..8usize {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    s.record(t % 4, 8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let merged = s.merge();
        for (slot, c) in merged.iter().enumerate() {
            assert_eq!(c.hits, 20_000, "slot {slot}");
            assert_eq!(c.bytes, 160_000, "slot {slot}");
        }
    }
}
