//! The one-time structured attack report (paper Section VII).
//!
//! When a patched buffer's defense first fires for a given `(FUN, CCID, T)`
//! the runtime files exactly one of these. Deduplication is the patch
//! table's job (a lock-free once-bit per `T` in the patch meta word); this
//! module only carries and renders the result.

use ht_jsonio::{obj, Json, ToJson};
use ht_patch::{AllocFn, VulnFlags};

/// Human name of the defense the paper deploys for one vulnerability type.
pub fn defense_for(vuln: VulnFlags) -> &'static str {
    if vuln.contains(VulnFlags::OVERFLOW) {
        "guard page"
    } else if vuln.contains(VulnFlags::USE_AFTER_FREE) {
        "deferred free (quarantine)"
    } else if vuln.contains(VulnFlags::UNINIT_READ) {
        "zero initialization"
    } else {
        "none"
    }
}

/// One attack report: the first activation of a `(FUN, CCID, T)` patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackReport {
    /// Allocation API of the patch.
    pub fun: AllocFn,
    /// Calling-context ID of the patch.
    pub ccid: u64,
    /// The single vulnerability type `T` whose defense fired.
    pub vuln: VulnFlags,
    /// Patch-table slot index (stable identity within one table).
    pub slot: u32,
    /// Size of the allocation that first activated the defense.
    pub size: u64,
    /// The decoded calling context, allocation site first (empty when no
    /// encoding plan was available to decode the CCID).
    pub call_chain: Vec<String>,
}

impl AttackReport {
    /// The defense that was applied.
    pub fn defense(&self) -> &'static str {
        defense_for(self.vuln)
    }
}

impl std::fmt::Display for AttackReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== HeapTherapy+ attack report ===")?;
        writeln!(
            f,
            "patch   : {{{}, {:#x}, {}}}",
            self.fun, self.ccid, self.vuln
        )?;
        writeln!(f, "defense : {}", self.defense())?;
        writeln!(f, "size    : {} bytes", self.size)?;
        if self.call_chain.is_empty() {
            writeln!(f, "context : <undecoded> (CCID {:#x})", self.ccid)?;
        } else {
            writeln!(f, "context :")?;
            for (depth, frame) in self.call_chain.iter().enumerate() {
                writeln!(f, "  #{depth} {frame}")?;
            }
        }
        Ok(())
    }
}

impl ToJson for AttackReport {
    fn to_json(&self) -> Json {
        obj([
            ("fun", self.fun.to_json()),
            ("ccid", Json::U64(self.ccid)),
            ("vuln", self.vuln.to_json()),
            ("slot", Json::U64(u64::from(self.slot))),
            ("size", Json::U64(self.size)),
            ("defense", Json::Str(self.defense().to_string())),
            (
                "call_chain",
                Json::Arr(
                    self.call_chain
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AttackReport {
        AttackReport {
            fun: AllocFn::Malloc,
            ccid: 0xBAD,
            vuln: VulnFlags::OVERFLOW,
            slot: 3,
            size: 100,
            call_chain: vec!["proc_input".into(), "handle_req".into(), "main".into()],
        }
    }

    #[test]
    fn defense_names() {
        assert_eq!(defense_for(VulnFlags::OVERFLOW), "guard page");
        assert_eq!(
            defense_for(VulnFlags::USE_AFTER_FREE),
            "deferred free (quarantine)"
        );
        assert_eq!(defense_for(VulnFlags::UNINIT_READ), "zero initialization");
        assert_eq!(defense_for(VulnFlags::NONE), "none");
    }

    #[test]
    fn display_renders_paper_style() {
        let text = report().to_string();
        assert!(text.contains("{malloc, 0xbad, OF}"), "{text}");
        assert!(text.contains("guard page"));
        assert!(text.contains("#0 proc_input"));
        assert!(text.contains("#2 main"));
    }

    #[test]
    fn display_without_chain_marks_undecoded() {
        let mut r = report();
        r.call_chain.clear();
        assert!(r.to_string().contains("<undecoded>"));
    }

    #[test]
    fn json_shape() {
        let j = report().to_json();
        assert_eq!(j.get("ccid").and_then(Json::as_u64), Some(0xBAD));
        assert_eq!(j.get("defense").and_then(Json::as_str), Some("guard page"));
        assert_eq!(j.get("call_chain").and_then(Json::as_arr).unwrap().len(), 3);
    }
}
