//! A fast multiply-shift hasher for the simulator's hot maps.
//!
//! Page-number and block-address keys are single `u64`s hit on every
//! simulated memory access; SipHash (std's default) costs more than the
//! simulated work itself and would distort every overhead measurement.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-shift hasher specialized for integer keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct U64Hasher(u64);

impl Hasher for U64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for composite keys: FNV-style fold.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001B3);
        }
        self.0 = self.0.wrapping_mul(0x9E3779B97F4A7C15);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E3779B97F4A7C15);
        self.0 ^= self.0 >> 29;
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }
}

/// A `HashMap` keyed through [`U64Hasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<U64Hasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_like_a_map() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7919, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
        m.remove(&0);
        assert_eq!(m.len(), 999);
    }

    #[test]
    fn hasher_spreads_sequential_keys() {
        use std::hash::Hash;
        let mut outs = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = U64Hasher::default();
            i.hash(&mut h);
            outs.insert(h.finish() >> 52); // top 12 bits
        }
        assert!(outs.len() > 3000, "top bits vary: {}", outs.len());
    }
}
