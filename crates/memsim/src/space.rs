//! The sparse, permission-checked address space.

use crate::hash::FastMap;
use std::fmt;

/// Simulated page size: 4 KiB, matching the paper's guard-page math
/// (a guard page is 2¹²-byte aligned; 48 − 12 = 36 bits locate it).
pub const PAGE_SIZE: u64 = 4096;

/// A simulated virtual address.
pub type Addr = u64;

/// Page protection, the subset of `mprotect` flags the defenses need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Perm {
    /// Inaccessible (`PROT_NONE`) — guard pages, red zones, freed blocks.
    None,
    /// Read-only (`PROT_READ`) — e.g. the frozen patch table.
    Read,
    /// Read/write (`PROT_READ|PROT_WRITE`) — ordinary heap memory.
    ReadWrite,
}

impl Perm {
    fn allows_read(self) -> bool {
        !matches!(self, Perm::None)
    }
    fn allows_write(self) -> bool {
        matches!(self, Perm::ReadWrite)
    }
}

/// The reason an access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The page is not mapped at all (wild pointer).
    Unmapped,
    /// The page is mapped but not readable.
    ReadProtected,
    /// The page is mapped but not writable.
    WriteProtected,
}

/// A simulated memory fault — the SIGSEGV of this substrate.
///
/// Accesses perform partial work up to the faulting byte, exactly like a real
/// CPU: an overflowing `memcpy` corrupts everything before the guard page and
/// then traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// First faulting address.
    pub addr: Addr,
    /// Why the access faulted.
    pub kind: FaultKind,
    /// Bytes successfully transferred before the fault.
    pub completed: u64,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory fault at {:#x} ({:?}) after {} bytes",
            self.addr, self.kind, self.completed
        )
    }
}

impl std::error::Error for MemFault {}

#[derive(Debug, Clone)]
struct Page {
    perm: Perm,
    data: Box<[u8]>,
    dirty: bool,
}

/// Usage statistics for an [`AddressSpace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Currently mapped bytes (virtual size).
    pub mapped_bytes: u64,
    /// Currently dirtied bytes (the RSS proxy).
    pub rss_bytes: u64,
    /// High-water mark of `rss_bytes`.
    pub peak_rss_bytes: u64,
    /// Total `map` calls.
    pub maps: u64,
    /// Total `protect` calls.
    pub protects: u64,
}

/// A sparse, paged, permission-checked 64-bit address space.
///
/// Regions are handed out by a bump pointer starting high (like `mmap`
/// placements) so simulated heap addresses never collide with zero.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    pages: FastMap<u64, Page>,
    next_map: Addr,
    stats: SpaceStats,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Base of the simulated mapping area.
    pub const MAP_BASE: Addr = 0x7f00_0000_0000;

    /// An empty address space.
    pub fn new() -> Self {
        Self {
            pages: FastMap::default(),
            next_map: Self::MAP_BASE,
            stats: SpaceStats::default(),
        }
    }

    /// Maps `len` bytes (rounded up to whole pages) with permission `perm`
    /// and returns the page-aligned base address.
    ///
    /// Fresh pages are zero-filled, like anonymous `mmap`.
    pub fn map(&mut self, len: u64, perm: Perm) -> Addr {
        let len = crate::align_up(len.max(1), PAGE_SIZE);
        let base = self.next_map;
        self.next_map += len + PAGE_SIZE; // leave an unmapped gap between regions
        for pno in (base / PAGE_SIZE)..((base + len) / PAGE_SIZE) {
            self.pages.insert(
                pno,
                Page {
                    perm,
                    data: vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
                    dirty: false,
                },
            );
        }
        self.stats.mapped_bytes += len;
        self.stats.maps += 1;
        base
    }

    /// Unmaps `len` bytes starting at the page containing `addr`.
    ///
    /// Unmapping pages that are not mapped is a no-op (like `munmap`).
    pub fn unmap(&mut self, addr: Addr, len: u64) {
        let len = crate::align_up(len.max(1), PAGE_SIZE);
        for pno in (addr / PAGE_SIZE)..((addr + len) / PAGE_SIZE) {
            if let Some(p) = self.pages.remove(&pno) {
                self.stats.mapped_bytes -= PAGE_SIZE;
                if p.dirty {
                    self.stats.rss_bytes -= PAGE_SIZE;
                }
            }
        }
    }

    /// Changes the protection of the pages covering `[addr, addr+len)`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] with [`FaultKind::Unmapped`] if any page in the
    /// range is not mapped (like `mprotect` returning `ENOMEM`).
    pub fn protect(&mut self, addr: Addr, len: u64, perm: Perm) -> Result<(), MemFault> {
        let len = crate::align_up(len.max(1), PAGE_SIZE);
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for pno in first..=last {
            if !self.pages.contains_key(&pno) {
                return Err(MemFault {
                    addr: pno * PAGE_SIZE,
                    kind: FaultKind::Unmapped,
                    completed: 0,
                });
            }
        }
        for pno in first..=last {
            self.pages.get_mut(&pno).unwrap().perm = perm;
        }
        self.stats.protects += 1;
        Ok(())
    }

    /// The protection of the page containing `addr`, if mapped.
    pub fn perm_at(&self, addr: Addr) -> Option<Perm> {
        self.pages.get(&(addr / PAGE_SIZE)).map(|p| p.perm)
    }

    /// Permission-checked read into `buf`.
    ///
    /// # Errors
    ///
    /// Faults at the first unreadable byte; `completed` bytes were copied.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) -> Result<(), MemFault> {
        let mut done = 0u64;
        while (done as usize) < buf.len() {
            let a = addr + done;
            let pno = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let page = match self.pages.get(&pno) {
                Some(p) if p.perm.allows_read() => p,
                Some(_) => {
                    return Err(MemFault {
                        addr: a,
                        kind: FaultKind::ReadProtected,
                        completed: done,
                    })
                }
                None => {
                    return Err(MemFault {
                        addr: a,
                        kind: FaultKind::Unmapped,
                        completed: done,
                    })
                }
            };
            let n = (PAGE_SIZE as usize - off).min(buf.len() - done as usize);
            buf[done as usize..done as usize + n].copy_from_slice(&page.data[off..off + n]);
            done += n as u64;
        }
        Ok(())
    }

    /// Permission-checked write of `data`.
    ///
    /// # Errors
    ///
    /// Faults at the first unwritable byte; `completed` bytes were written
    /// (partial writes persist — a trapped overflow has already corrupted the
    /// bytes before the guard page, as on real hardware).
    pub fn write(&mut self, addr: Addr, data: &[u8]) -> Result<(), MemFault> {
        let mut done = 0u64;
        while (done as usize) < data.len() {
            let a = addr + done;
            let pno = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let page = match self.pages.get_mut(&pno) {
                Some(p) if p.perm.allows_write() => p,
                Some(_) => {
                    return Err(MemFault {
                        addr: a,
                        kind: FaultKind::WriteProtected,
                        completed: done,
                    })
                }
                None => {
                    return Err(MemFault {
                        addr: a,
                        kind: FaultKind::Unmapped,
                        completed: done,
                    })
                }
            };
            if !page.dirty {
                page.dirty = true;
                self.stats.rss_bytes += PAGE_SIZE;
                self.stats.peak_rss_bytes = self.stats.peak_rss_bytes.max(self.stats.rss_bytes);
            }
            let n = (PAGE_SIZE as usize - off).min(data.len() - done as usize);
            page.data[off..off + n].copy_from_slice(&data[done as usize..done as usize + n]);
            done += n as u64;
        }
        Ok(())
    }

    /// Permission-checked fill of `len` bytes with `byte`.
    ///
    /// # Errors
    ///
    /// Same semantics as [`AddressSpace::write`].
    pub fn fill(&mut self, addr: Addr, len: u64, byte: u8) -> Result<(), MemFault> {
        // Page-at-a-time through a stack chunk — no per-call allocation.
        let chunk = [byte; PAGE_SIZE as usize];
        let mut done = 0u64;
        while done < len {
            let n = (PAGE_SIZE - (addr + done) % PAGE_SIZE).min(len - done);
            self.write(addr + done, &chunk[..n as usize])
                .map_err(|mut f| {
                    f.completed += done;
                    f
                })?;
            done += n;
        }
        Ok(())
    }

    /// Privileged fill of `len` bytes with `byte`, ignoring permissions
    /// (kernel/analyzer view) — `memset` without materializing a buffer.
    ///
    /// # Errors
    ///
    /// Same semantics as [`AddressSpace::write_raw`]: faults only on
    /// unmapped pages, bytes before the fault persist.
    pub fn fill_raw(&mut self, addr: Addr, len: u64, byte: u8) -> Result<(), MemFault> {
        let mut done = 0u64;
        while done < len {
            let a = addr + done;
            let pno = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let n = (PAGE_SIZE - a % PAGE_SIZE).min(len - done) as usize;
            let was_dirty = {
                let page = self.pages.get_mut(&pno).ok_or(MemFault {
                    addr: a,
                    kind: FaultKind::Unmapped,
                    completed: done,
                })?;
                page.data[off..off + n].fill(byte);
                let was = page.dirty;
                page.dirty = true;
                was
            };
            if !was_dirty {
                self.stats.rss_bytes += PAGE_SIZE;
                self.stats.peak_rss_bytes = self.stats.peak_rss_bytes.max(self.stats.rss_bytes);
            }
            done += n as u64;
        }
        Ok(())
    }

    /// Reads a little-endian `u64`, permission-checked.
    ///
    /// # Errors
    ///
    /// Same semantics as [`AddressSpace::read`].
    pub fn read_u64(&self, addr: Addr) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`, permission-checked.
    ///
    /// # Errors
    ///
    /// Same semantics as [`AddressSpace::write`].
    pub fn write_u64(&mut self, addr: Addr, v: u64) -> Result<(), MemFault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Privileged read that ignores permissions (kernel/allocator view).
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages.
    pub fn read_raw(&self, addr: Addr, buf: &mut [u8]) -> Result<(), MemFault> {
        let mut done = 0u64;
        while (done as usize) < buf.len() {
            let a = addr + done;
            let pno = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let page = self.pages.get(&pno).ok_or(MemFault {
                addr: a,
                kind: FaultKind::Unmapped,
                completed: done,
            })?;
            let n = (PAGE_SIZE as usize - off).min(buf.len() - done as usize);
            buf[done as usize..done as usize + n].copy_from_slice(&page.data[off..off + n]);
            done += n as u64;
        }
        Ok(())
    }

    /// Privileged write that ignores permissions (kernel/allocator view).
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages.
    pub fn write_raw(&mut self, addr: Addr, data: &[u8]) -> Result<(), MemFault> {
        let mut done = 0u64;
        while (done as usize) < data.len() {
            let a = addr + done;
            let pno = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let (dirty, n) = {
                let page = self.pages.get_mut(&pno).ok_or(MemFault {
                    addr: a,
                    kind: FaultKind::Unmapped,
                    completed: done,
                })?;
                let n = (PAGE_SIZE as usize - off).min(data.len() - done as usize);
                page.data[off..off + n].copy_from_slice(&data[done as usize..done as usize + n]);
                let was_dirty = page.dirty;
                page.dirty = true;
                (was_dirty, n)
            };
            if !dirty {
                self.stats.rss_bytes += PAGE_SIZE;
                self.stats.peak_rss_bytes = self.stats.peak_rss_bytes.max(self.stats.rss_bytes);
            }
            done += n as u64;
        }
        Ok(())
    }

    /// Privileged `u64` read (ignores permissions).
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages.
    pub fn read_u64_raw(&self, addr: Addr) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.read_raw(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Privileged `u64` write (ignores permissions).
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages.
    pub fn write_u64_raw(&mut self, addr: Addr, v: u64) -> Result<(), MemFault> {
        self.write_raw(addr, &v.to_le_bytes())
    }

    /// First unmapped page in `[addr, addr+len)`, as the fault `read_raw`
    /// (src) or `write_raw` (dst) would report for that range.
    fn find_unmapped(&self, addr: Addr, len: u64) -> Option<MemFault> {
        let mut a = addr;
        let end = addr + len;
        while a < end {
            if !self.pages.contains_key(&(a / PAGE_SIZE)) {
                return Some(MemFault {
                    addr: a,
                    kind: FaultKind::Unmapped,
                    completed: a - addr,
                });
            }
            a += PAGE_SIZE - a % PAGE_SIZE;
        }
        None
    }

    /// Copies `len` bytes between (possibly overlapping) mapped ranges with
    /// `memmove` semantics, ignoring permissions — used by `realloc`
    /// internally. Chunked page-to-page (direction-aware for overlap), so it
    /// never materializes a `len`-byte buffer.
    ///
    /// # Errors
    ///
    /// Faults only on unmapped pages (src reported before dst, like the
    /// read-then-write it replaces); both ranges are validated up front, so
    /// a faulting copy transfers nothing.
    pub fn copy_raw(&mut self, src: Addr, dst: Addr, len: u64) -> Result<(), MemFault> {
        if let Some(f) = self
            .find_unmapped(src, len)
            .or_else(|| self.find_unmapped(dst, len))
        {
            return Err(f);
        }
        let backward = dst > src && dst - src < len;
        let mut tmp = [0u8; PAGE_SIZE as usize];
        let mut copy_chunk = |this: &mut Self, s: Addr, d: Addr, n: usize| {
            let (spno, dpno) = (s / PAGE_SIZE, d / PAGE_SIZE);
            let soff = (s % PAGE_SIZE) as usize;
            let doff = (d % PAGE_SIZE) as usize;
            if spno == dpno {
                let page = this.pages.get_mut(&spno).expect("validated");
                page.data.copy_within(soff..soff + n, doff);
            } else {
                let spage = this.pages.get(&spno).expect("validated");
                tmp[..n].copy_from_slice(&spage.data[soff..soff + n]);
                let dpage = this.pages.get_mut(&dpno).expect("validated");
                dpage.data[doff..doff + n].copy_from_slice(&tmp[..n]);
            }
            let dpage = this.pages.get_mut(&dpno).expect("validated");
            if !dpage.dirty {
                dpage.dirty = true;
                this.stats.rss_bytes += PAGE_SIZE;
                this.stats.peak_rss_bytes = this.stats.peak_rss_bytes.max(this.stats.rss_bytes);
            }
        };
        if backward {
            let mut i = len;
            while i > 0 {
                let s_room = (src + i - 1) % PAGE_SIZE + 1;
                let d_room = (dst + i - 1) % PAGE_SIZE + 1;
                let n = s_room.min(d_room).min(i);
                i -= n;
                copy_chunk(self, src + i, dst + i, n as usize);
            }
        } else {
            let mut i = 0;
            while i < len {
                let s_room = PAGE_SIZE - (src + i) % PAGE_SIZE;
                let d_room = PAGE_SIZE - (dst + i) % PAGE_SIZE;
                let n = s_room.min(d_room).min(len - i);
                copy_chunk(self, src + i, dst + i, n as usize);
                i += n;
            }
        }
        Ok(())
    }

    /// Current usage statistics.
    pub fn stats(&self) -> SpaceStats {
        self.stats
    }

    /// Dirtied bytes — the resident-set-size proxy.
    pub fn rss_bytes(&self) -> u64 {
        self.stats.rss_bytes
    }

    /// Mapped bytes (virtual size).
    pub fn mapped_bytes(&self) -> u64 {
        self.stats.mapped_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_page_aligned_zeroed_memory() {
        let mut s = AddressSpace::new();
        let a = s.map(100, Perm::ReadWrite);
        assert_eq!(a % PAGE_SIZE, 0);
        let mut buf = [1u8; 16];
        s.read(a, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(s.mapped_bytes(), PAGE_SIZE);
    }

    #[test]
    fn regions_do_not_touch() {
        let mut s = AddressSpace::new();
        let a = s.map(PAGE_SIZE, Perm::ReadWrite);
        let b = s.map(PAGE_SIZE, Perm::ReadWrite);
        assert!(b >= a + 2 * PAGE_SIZE, "guard gap between mappings");
        // The gap is unmapped.
        assert!(s.read_u64(a + PAGE_SIZE).is_err());
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut s = AddressSpace::new();
        let a = s.map(2 * PAGE_SIZE, Perm::ReadWrite);
        let data: Vec<u8> = (0..=255).collect();
        // Straddle the page boundary.
        s.write(a + PAGE_SIZE - 100, &data).unwrap();
        let mut back = vec![0u8; 256];
        s.read(a + PAGE_SIZE - 100, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unmapped_access_faults() {
        let s = AddressSpace::new();
        let mut b = [0u8; 1];
        let err = s.read(0xdead_0000, &mut b).unwrap_err();
        assert_eq!(err.kind, FaultKind::Unmapped);
        assert_eq!(err.completed, 0);
    }

    #[test]
    fn protect_none_blocks_reads_and_writes() {
        let mut s = AddressSpace::new();
        let a = s.map(PAGE_SIZE, Perm::ReadWrite);
        s.protect(a, PAGE_SIZE, Perm::None).unwrap();
        let mut b = [0u8; 1];
        assert_eq!(
            s.read(a, &mut b).unwrap_err().kind,
            FaultKind::ReadProtected
        );
        assert_eq!(
            s.write(a, &[1]).unwrap_err().kind,
            FaultKind::WriteProtected
        );
        // Raw access still works (allocator view).
        s.write_raw(a, &[7]).unwrap();
        s.read_raw(a, &mut b).unwrap();
        assert_eq!(b[0], 7);
    }

    #[test]
    fn read_only_blocks_writes_only() {
        let mut s = AddressSpace::new();
        let a = s.map(PAGE_SIZE, Perm::ReadWrite);
        s.write(a, &[42]).unwrap();
        s.protect(a, PAGE_SIZE, Perm::Read).unwrap();
        let mut b = [0u8; 1];
        s.read(a, &mut b).unwrap();
        assert_eq!(b[0], 42);
        assert_eq!(
            s.write(a, &[1]).unwrap_err().kind,
            FaultKind::WriteProtected
        );
    }

    #[test]
    fn partial_write_persists_up_to_fault() {
        // Two pages: RW then PROT_NONE (a guard). A 16-byte write starting 8
        // bytes before the guard writes 8 bytes and then traps — exactly the
        // paper's "overflow stopped at the guard page".
        let mut s = AddressSpace::new();
        let a = s.map(2 * PAGE_SIZE, Perm::ReadWrite);
        let guard = a + PAGE_SIZE;
        s.protect(guard, PAGE_SIZE, Perm::None).unwrap();
        let err = s.write(guard - 8, &[0xAA; 16]).unwrap_err();
        assert_eq!(err.kind, FaultKind::WriteProtected);
        assert_eq!(err.completed, 8);
        assert_eq!(err.addr, guard);
        let mut b = [0u8; 8];
        s.read(guard - 8, &mut b).unwrap();
        assert_eq!(b, [0xAA; 8]);
    }

    #[test]
    fn fill_and_u64_helpers() {
        let mut s = AddressSpace::new();
        let a = s.map(2 * PAGE_SIZE, Perm::ReadWrite);
        s.fill(a, PAGE_SIZE + 10, 0x5A).unwrap();
        let mut b = [0u8; 1];
        s.read(a + PAGE_SIZE + 9, &mut b).unwrap();
        assert_eq!(b[0], 0x5A);
        s.write_u64(a, 0xDEADBEEF).unwrap();
        assert_eq!(s.read_u64(a).unwrap(), 0xDEADBEEF);
    }

    #[test]
    fn fill_reports_total_completed_on_fault() {
        let mut s = AddressSpace::new();
        let a = s.map(2 * PAGE_SIZE, Perm::ReadWrite);
        s.protect(a + PAGE_SIZE, PAGE_SIZE, Perm::None).unwrap();
        let err = s.fill(a, 2 * PAGE_SIZE, 1).unwrap_err();
        assert_eq!(err.completed, PAGE_SIZE);
    }

    #[test]
    fn fill_raw_ignores_permissions_and_reports_fault() {
        let mut s = AddressSpace::new();
        let a = s.map(2 * PAGE_SIZE, Perm::ReadWrite);
        s.protect(a, PAGE_SIZE, Perm::None).unwrap();
        // Privileged: fills through PROT_NONE, straddling the boundary.
        s.fill_raw(a + PAGE_SIZE - 4, 8, 0x7E).unwrap();
        let mut b = [0u8; 8];
        s.read_raw(a + PAGE_SIZE - 4, &mut b).unwrap();
        assert_eq!(b, [0x7E; 8]);
        assert_eq!(s.rss_bytes(), 2 * PAGE_SIZE, "both pages dirtied");
        // Runs off the end of the mapping: faults with completed count.
        let err = s.fill_raw(a + PAGE_SIZE, 2 * PAGE_SIZE, 1).unwrap_err();
        assert_eq!(err.kind, FaultKind::Unmapped);
        assert_eq!(err.completed, PAGE_SIZE);
        assert_eq!(err.addr, a + 2 * PAGE_SIZE);
    }

    #[test]
    fn copy_raw_overlapping_is_memmove_both_directions() {
        let mut s = AddressSpace::new();
        let a = s.map(4 * PAGE_SIZE, Perm::ReadWrite);
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        // Forward-overlapping (dst above src), straddling a page boundary.
        let src = a + PAGE_SIZE - 80;
        s.write(src, &data).unwrap();
        s.copy_raw(src, src + 50, 200).unwrap();
        let mut back = vec![0u8; 200];
        s.read(src + 50, &mut back).unwrap();
        assert_eq!(back, data, "dst got the ORIGINAL src bytes");
        // Backward-overlapping (dst below src).
        let src2 = a + 3 * PAGE_SIZE - 60;
        s.write(src2, &data).unwrap();
        s.copy_raw(src2, src2 - 50, 200).unwrap();
        s.read(src2 - 50, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn copy_raw_faults_on_unmapped_pages() {
        let mut s = AddressSpace::new();
        let a = s.map(PAGE_SIZE, Perm::ReadWrite);
        let b = s.map(PAGE_SIZE, Perm::ReadWrite);
        // Source runs off its mapping: src fault reported, nothing copied.
        let err = s.copy_raw(a + PAGE_SIZE - 4, b, 8).unwrap_err();
        assert_eq!(err.kind, FaultKind::Unmapped);
        assert_eq!(err.addr, a + PAGE_SIZE);
        assert_eq!(err.completed, 4);
        // Destination runs off: dst fault reported.
        let err = s.copy_raw(a, b + PAGE_SIZE - 4, 8).unwrap_err();
        assert_eq!(err.addr, b + PAGE_SIZE);
        assert_eq!(err.completed, 4);
    }

    #[test]
    fn rss_counts_dirty_pages_only() {
        let mut s = AddressSpace::new();
        let a = s.map(4 * PAGE_SIZE, Perm::ReadWrite);
        assert_eq!(s.rss_bytes(), 0, "mapping alone is not resident");
        s.write(a, &[1]).unwrap();
        assert_eq!(s.rss_bytes(), PAGE_SIZE);
        s.write(a + 1, &[2]).unwrap();
        assert_eq!(s.rss_bytes(), PAGE_SIZE, "same page stays one page");
        s.write(a + 3 * PAGE_SIZE, &[3]).unwrap();
        assert_eq!(s.rss_bytes(), 2 * PAGE_SIZE);
        assert_eq!(s.stats().peak_rss_bytes, 2 * PAGE_SIZE);
    }

    #[test]
    fn unmap_releases_rss_and_mapping() {
        let mut s = AddressSpace::new();
        let a = s.map(2 * PAGE_SIZE, Perm::ReadWrite);
        s.write(a, &[1]).unwrap();
        s.unmap(a, 2 * PAGE_SIZE);
        assert_eq!(s.rss_bytes(), 0);
        assert_eq!(s.mapped_bytes(), 0);
        assert!(s.read_u64(a).is_err());
    }

    #[test]
    fn protect_unmapped_range_errors() {
        let mut s = AddressSpace::new();
        let err = s.protect(0x1000, PAGE_SIZE, Perm::None).unwrap_err();
        assert_eq!(err.kind, FaultKind::Unmapped);
    }

    #[test]
    fn perm_at_reports_current_permission() {
        let mut s = AddressSpace::new();
        let a = s.map(PAGE_SIZE, Perm::ReadWrite);
        assert_eq!(s.perm_at(a), Some(Perm::ReadWrite));
        s.protect(a, PAGE_SIZE, Perm::None).unwrap();
        assert_eq!(s.perm_at(a), Some(Perm::None));
        assert_eq!(s.perm_at(0x42), None);
    }

    #[test]
    fn fault_display_mentions_address() {
        let f = MemFault {
            addr: 0x1234,
            kind: FaultKind::Unmapped,
            completed: 3,
        };
        let s = f.to_string();
        assert!(s.contains("0x1234") && s.contains("3 bytes"), "{s}");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn write_read_round_trip(
                off in 0u64..8192,
                data in proptest::collection::vec(any::<u8>(), 1..512),
            ) {
                let mut s = AddressSpace::new();
                let a = s.map(4 * PAGE_SIZE, Perm::ReadWrite);
                s.write(a + off, &data).unwrap();
                let mut back = vec![0u8; data.len()];
                s.read(a + off, &mut back).unwrap();
                prop_assert_eq!(back, data);
            }

            #[test]
            fn rss_never_exceeds_mapped(
                writes in proptest::collection::vec((0u64..16384, any::<u8>()), 1..64),
            ) {
                let mut s = AddressSpace::new();
                let a = s.map(8 * PAGE_SIZE, Perm::ReadWrite);
                for (off, byte) in writes {
                    let off = off % (8 * PAGE_SIZE);
                    s.write(a + off, &[byte]).unwrap();
                    prop_assert!(s.rss_bytes() <= s.mapped_bytes());
                }
            }
        }
    }
}
