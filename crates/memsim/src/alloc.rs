//! Underlying heap allocators.
//!
//! HeapTherapy+'s online defense wraps the allocator it finds — it never
//! modifies it or depends on its internals. [`BaseAllocator`] is that
//! boundary: `malloc`-family entry points over an [`AddressSpace`], nothing
//! more. The defense layer (crate `ht-defense`) composes over any
//! implementation, which is exactly the paper's "no dependency on specific
//! heap allocators" property (tested against both allocators here).

use crate::hash::FastMap;
use crate::space::{Addr, AddressSpace, Perm};
use crate::{align_up, PAGE_SIZE};
use std::fmt;

/// Allocation failure or misuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Size zero or too large for the allocator.
    BadSize(u64),
    /// Alignment not a power of two.
    BadAlign(u64),
    /// `free`/`realloc` of a pointer this allocator does not own.
    InvalidPointer(Addr),
    /// Double free.
    DoubleFree(Addr),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::BadSize(s) => write!(f, "bad allocation size {s}"),
            AllocError::BadAlign(a) => write!(f, "bad alignment {a}"),
            AllocError::InvalidPointer(p) => write!(f, "invalid pointer {p:#x}"),
            AllocError::DoubleFree(p) => write!(f, "double free of {p:#x}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Counters an allocator maintains (feeds Table IV and Fig. 9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful `malloc` calls.
    pub mallocs: u64,
    /// Successful `memalign` calls.
    pub memaligns: u64,
    /// Successful `realloc` calls.
    pub reallocs: u64,
    /// Successful `free` calls.
    pub frees: u64,
    /// Bytes currently live (user sizes).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_live_bytes: u64,
}

impl AllocStats {
    fn on_alloc(&mut self, size: u64) {
        self.live_bytes += size;
        self.peak_live_bytes = self.peak_live_bytes.max(self.live_bytes);
    }
    fn on_free(&mut self, size: u64) {
        self.live_bytes -= size;
    }
}

/// The allocator boundary the online defense interposes on.
///
/// Implementations own blocks inside an [`AddressSpace`] passed to every
/// call (the space outlives the allocator's blocks).
pub trait BaseAllocator {
    /// Allocates `size` bytes, at least 8-byte aligned.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadSize`] for `size == 0`.
    fn malloc(&mut self, space: &mut AddressSpace, size: u64) -> Result<Addr, AllocError>;

    /// Allocates `size` bytes aligned to `align` (a power of two).
    ///
    /// # Errors
    ///
    /// [`AllocError::BadAlign`] if `align` is not a power of two;
    /// [`AllocError::BadSize`] for `size == 0`.
    fn memalign(
        &mut self,
        space: &mut AddressSpace,
        align: u64,
        size: u64,
    ) -> Result<Addr, AllocError>;

    /// Resizes the block at `ptr` to `new_size`, preserving the prefix.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidPointer`] if `ptr` is not a live block.
    fn realloc(
        &mut self,
        space: &mut AddressSpace,
        ptr: Addr,
        new_size: u64,
    ) -> Result<Addr, AllocError>;

    /// Releases the block at `ptr`.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidPointer`] / [`AllocError::DoubleFree`].
    fn free(&mut self, space: &mut AddressSpace, ptr: Addr) -> Result<(), AllocError>;

    /// The usable size of a live block, if `ptr` is one.
    fn usable_size(&self, ptr: Addr) -> Option<u64>;

    /// Allocation statistics.
    fn stats(&self) -> AllocStats;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    Live,
    Free,
}

#[derive(Debug, Clone, Copy)]
struct Block {
    /// Base of the underlying storage (what the free list recycles).
    base: Addr,
    /// Usable size handed to the caller.
    size: u64,
    /// Size class index, or `usize::MAX` for large mappings.
    class: usize,
    state: BlockState,
}

/// Segregated-fit free-list allocator with LIFO reuse.
///
/// Size classes are powers of two from 16 B to 1 MiB; larger requests get
/// dedicated mappings. Freed blocks go to the head of their class list and
/// come back out first — the behaviour that makes use-after-free promptly
/// exploitable on mainstream allocators, and therefore the right baseline for
/// demonstrating the deferred-free defense.
#[derive(Debug, Default)]
pub struct FreeListAllocator {
    /// Per-class LIFO free lists (block bases).
    free_lists: Vec<Vec<Addr>>,
    /// All blocks ever created, keyed by user pointer.
    blocks: FastMap<Addr, Block>,
    /// Current carve-out arena per class: (cursor, end).
    arenas: Vec<(Addr, Addr)>,
    stats: AllocStats,
}

/// Smallest size class.
const MIN_CLASS_SIZE: u64 = 16;
/// Largest size class (1 MiB); beyond this, dedicated mappings.
const MAX_CLASS_SIZE: u64 = 1 << 20;
/// Arena chunk mapped per class when a class runs dry.
const ARENA_CHUNK: u64 = 256 * 1024;

fn class_of(size: u64) -> Option<usize> {
    if size > MAX_CLASS_SIZE {
        return None;
    }
    let rounded = size.max(MIN_CLASS_SIZE).next_power_of_two();
    Some((rounded.trailing_zeros() - MIN_CLASS_SIZE.trailing_zeros()) as usize)
}

fn class_size(class: usize) -> u64 {
    MIN_CLASS_SIZE << class
}

const NUM_CLASSES: usize = 17; // 16 B .. 1 MiB

impl FreeListAllocator {
    /// A fresh allocator with empty arenas.
    pub fn new() -> Self {
        Self {
            free_lists: vec![Vec::new(); NUM_CLASSES],
            blocks: FastMap::default(),
            arenas: vec![(0, 0); NUM_CLASSES],
            stats: AllocStats::default(),
        }
    }

    fn carve(&mut self, space: &mut AddressSpace, class: usize) -> Addr {
        let csize = class_size(class);
        let (cursor, end) = self.arenas[class];
        if cursor + csize <= end {
            self.arenas[class] = (cursor + csize, end);
            return cursor;
        }
        let chunk = ARENA_CHUNK.max(csize);
        let base = space.map(chunk, Perm::ReadWrite);
        self.arenas[class] = (base + csize, base + chunk);
        base
    }

    fn alloc_in_class(&mut self, space: &mut AddressSpace, class: usize, size: u64) -> Addr {
        let base = if let Some(b) = self.free_lists[class].pop() {
            b
        } else {
            self.carve(space, class)
        };
        self.blocks.insert(
            base,
            Block {
                base,
                size,
                class,
                state: BlockState::Live,
            },
        );
        base
    }
}

impl BaseAllocator for FreeListAllocator {
    fn malloc(&mut self, space: &mut AddressSpace, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::BadSize(size));
        }
        let ptr = match class_of(size) {
            Some(class) => self.alloc_in_class(space, class, size),
            None => {
                let base = space.map(size, Perm::ReadWrite);
                self.blocks.insert(
                    base,
                    Block {
                        base,
                        size,
                        class: usize::MAX,
                        state: BlockState::Live,
                    },
                );
                base
            }
        };
        self.stats.mallocs += 1;
        self.stats.on_alloc(size);
        Ok(ptr)
    }

    fn memalign(
        &mut self,
        space: &mut AddressSpace,
        align: u64,
        size: u64,
    ) -> Result<Addr, AllocError> {
        if !align.is_power_of_two() {
            return Err(AllocError::BadAlign(align));
        }
        if size == 0 {
            return Err(AllocError::BadSize(size));
        }
        // Over-allocate so an aligned pointer fits inside the block; register
        // the aligned pointer as the block key.
        let padded = size + align;
        let (base, class) = match class_of(padded) {
            Some(class) => {
                let b = if let Some(b) = self.free_lists[class].pop() {
                    b
                } else {
                    self.carve(space, class)
                };
                (b, class)
            }
            None => (space.map(padded, Perm::ReadWrite), usize::MAX),
        };
        let user = align_up(base.max(1), align);
        debug_assert!(user + size <= base + padded);
        self.blocks.insert(
            user,
            Block {
                base,
                size,
                class,
                state: BlockState::Live,
            },
        );
        self.stats.memaligns += 1;
        self.stats.on_alloc(size);
        Ok(user)
    }

    fn realloc(
        &mut self,
        space: &mut AddressSpace,
        ptr: Addr,
        new_size: u64,
    ) -> Result<Addr, AllocError> {
        if new_size == 0 {
            return Err(AllocError::BadSize(new_size));
        }
        let old = match self.blocks.get(&ptr) {
            Some(b) if b.state == BlockState::Live => *b,
            Some(_) => return Err(AllocError::InvalidPointer(ptr)),
            None => return Err(AllocError::InvalidPointer(ptr)),
        };
        let new_ptr = self.malloc(space, new_size)?;
        self.stats.mallocs -= 1; // internal malloc is not a user malloc
        space
            .copy_raw(ptr, new_ptr, old.size.min(new_size))
            .expect("realloc copies between mapped blocks");
        self.free(space, ptr)?;
        self.stats.frees -= 1; // internal free is not a user free
        self.stats.reallocs += 1;
        Ok(new_ptr)
    }

    fn free(&mut self, space: &mut AddressSpace, ptr: Addr) -> Result<(), AllocError> {
        let block = match self.blocks.get_mut(&ptr) {
            Some(b) => b,
            None => return Err(AllocError::InvalidPointer(ptr)),
        };
        if block.state == BlockState::Free {
            return Err(AllocError::DoubleFree(ptr));
        }
        block.state = BlockState::Free;
        let b = *block;
        self.stats.frees += 1;
        self.stats.on_free(b.size);
        if b.class == usize::MAX {
            space.unmap(b.base, align_up(b.size.max(1), PAGE_SIZE));
            self.blocks.remove(&ptr);
        } else {
            self.free_lists[b.class].push(b.base);
        }
        Ok(())
    }

    fn usable_size(&self, ptr: Addr) -> Option<u64> {
        match self.blocks.get(&ptr) {
            Some(b) if b.state == BlockState::Live => Some(b.size),
            _ => None,
        }
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

/// Trivial bump allocator: `free` recycles nothing.
///
/// Exists to demonstrate the defense layer's allocator independence and as a
/// worst-case memory baseline.
#[derive(Debug, Default)]
pub struct BumpAllocator {
    cursor: Addr,
    end: Addr,
    blocks: FastMap<Addr, u64>,
    stats: AllocStats,
}

impl BumpAllocator {
    /// A fresh bump allocator.
    pub fn new() -> Self {
        Self::default()
    }

    fn bump(&mut self, space: &mut AddressSpace, align: u64, size: u64) -> Addr {
        let user = align_up(self.cursor.max(1), align);
        if user + size > self.end {
            let chunk = align_up(size + align, ARENA_CHUNK);
            self.cursor = space.map(chunk, Perm::ReadWrite);
            self.end = self.cursor + chunk;
            return self.bump(space, align, size);
        }
        self.cursor = user + size;
        user
    }
}

impl BaseAllocator for BumpAllocator {
    fn malloc(&mut self, space: &mut AddressSpace, size: u64) -> Result<Addr, AllocError> {
        if size == 0 {
            return Err(AllocError::BadSize(size));
        }
        let p = self.bump(space, 8, size);
        self.blocks.insert(p, size);
        self.stats.mallocs += 1;
        self.stats.on_alloc(size);
        Ok(p)
    }

    fn memalign(
        &mut self,
        space: &mut AddressSpace,
        align: u64,
        size: u64,
    ) -> Result<Addr, AllocError> {
        if !align.is_power_of_two() {
            return Err(AllocError::BadAlign(align));
        }
        if size == 0 {
            return Err(AllocError::BadSize(size));
        }
        let p = self.bump(space, align, size);
        self.blocks.insert(p, size);
        self.stats.memaligns += 1;
        self.stats.on_alloc(size);
        Ok(p)
    }

    fn realloc(
        &mut self,
        space: &mut AddressSpace,
        ptr: Addr,
        new_size: u64,
    ) -> Result<Addr, AllocError> {
        let old = *self
            .blocks
            .get(&ptr)
            .ok_or(AllocError::InvalidPointer(ptr))?;
        let p = self.malloc(space, new_size)?;
        self.stats.mallocs -= 1;
        space
            .copy_raw(ptr, p, old.min(new_size))
            .expect("realloc copies between mapped blocks");
        self.free(space, ptr)?;
        self.stats.frees -= 1;
        self.stats.reallocs += 1;
        Ok(p)
    }

    fn free(&mut self, _space: &mut AddressSpace, ptr: Addr) -> Result<(), AllocError> {
        match self.blocks.remove(&ptr) {
            Some(size) => {
                self.stats.frees += 1;
                self.stats.on_free(size);
                Ok(())
            }
            None => Err(AllocError::InvalidPointer(ptr)),
        }
    }

    fn usable_size(&self, ptr: Addr) -> Option<u64> {
        self.blocks.get(&ptr).copied()
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn each_allocator(test: impl Fn(&mut dyn BaseAllocator, &mut AddressSpace)) {
        let mut s1 = AddressSpace::new();
        let mut a1 = FreeListAllocator::new();
        test(&mut a1, &mut s1);
        let mut s2 = AddressSpace::new();
        let mut a2 = BumpAllocator::new();
        test(&mut a2, &mut s2);
    }

    #[test]
    fn malloc_returns_usable_memory() {
        each_allocator(|a, s| {
            let p = a.malloc(s, 100).unwrap();
            s.write(p, &[0xAB; 100]).unwrap();
            let mut b = [0u8; 100];
            s.read(p, &mut b).unwrap();
            assert_eq!(b, [0xAB; 100]);
            assert_eq!(a.usable_size(p), Some(100));
        });
    }

    #[test]
    fn zero_size_malloc_rejected() {
        each_allocator(|a, s| {
            assert_eq!(a.malloc(s, 0), Err(AllocError::BadSize(0)));
        });
    }

    #[test]
    fn memalign_respects_alignment() {
        each_allocator(|a, s| {
            for align in [16u64, 64, 4096] {
                let p = a.memalign(s, align, 100).unwrap();
                assert_eq!(p % align, 0, "align {align}");
                s.write(p, &[1; 100]).unwrap();
            }
            assert_eq!(a.memalign(s, 3, 8), Err(AllocError::BadAlign(3)));
        });
    }

    #[test]
    fn live_blocks_do_not_overlap() {
        each_allocator(|a, s| {
            let mut ranges: Vec<(Addr, Addr)> = Vec::new();
            for i in 1..50u64 {
                let size = i * 7 % 200 + 1;
                let p = a.malloc(s, size).unwrap();
                for &(lo, hi) in &ranges {
                    assert!(p + size <= lo || p >= hi, "overlap at {p:#x}");
                }
                ranges.push((p, p + size));
            }
        });
    }

    #[test]
    fn realloc_preserves_prefix() {
        each_allocator(|a, s| {
            let p = a.malloc(s, 32).unwrap();
            s.write(p, &[7u8; 32]).unwrap();
            let q = a.realloc(s, p, 128).unwrap();
            let mut b = [0u8; 32];
            s.read(q, &mut b).unwrap();
            assert_eq!(b, [7u8; 32]);
            // Shrink keeps the shorter prefix.
            let r = a.realloc(s, q, 8).unwrap();
            let mut b8 = [0u8; 8];
            s.read(r, &mut b8).unwrap();
            assert_eq!(b8, [7u8; 8]);
        });
    }

    #[test]
    fn double_free_detected_by_free_list() {
        let mut s = AddressSpace::new();
        let mut a = FreeListAllocator::new();
        let p = a.malloc(&mut s, 64).unwrap();
        a.free(&mut s, p).unwrap();
        assert_eq!(a.free(&mut s, p), Err(AllocError::DoubleFree(p)));
    }

    #[test]
    fn invalid_free_detected() {
        each_allocator(|a, s| {
            assert_eq!(a.free(s, 0xdead), Err(AllocError::InvalidPointer(0xdead)));
        });
    }

    #[test]
    fn free_list_reuse_is_lifo() {
        // The UAF-exploitability property: free then same-size malloc returns
        // the same block.
        let mut s = AddressSpace::new();
        let mut a = FreeListAllocator::new();
        let p = a.malloc(&mut s, 64).unwrap();
        a.free(&mut s, p).unwrap();
        let q = a.malloc(&mut s, 64).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn bump_allocator_never_reuses() {
        let mut s = AddressSpace::new();
        let mut a = BumpAllocator::new();
        let p = a.malloc(&mut s, 64).unwrap();
        a.free(&mut s, p).unwrap();
        let q = a.malloc(&mut s, 64).unwrap();
        assert_ne!(p, q);
    }

    #[test]
    fn large_allocations_get_dedicated_mappings() {
        let mut s = AddressSpace::new();
        let mut a = FreeListAllocator::new();
        let big = MAX_CLASS_SIZE + 1;
        let p = a.malloc(&mut s, big).unwrap();
        s.write(p, &[1]).unwrap();
        s.write(p + big - 1, &[1]).unwrap();
        let mapped_before = s.mapped_bytes();
        a.free(&mut s, p).unwrap();
        assert!(s.mapped_bytes() < mapped_before, "large block unmapped");
        // Freed large block faults on access.
        assert!(s.write(p, &[1]).is_err());
    }

    #[test]
    fn stats_track_live_and_peak() {
        let mut s = AddressSpace::new();
        let mut a = FreeListAllocator::new();
        let p1 = a.malloc(&mut s, 100).unwrap();
        let p2 = a.malloc(&mut s, 200).unwrap();
        assert_eq!(a.stats().live_bytes, 300);
        a.free(&mut s, p1).unwrap();
        assert_eq!(a.stats().live_bytes, 200);
        assert_eq!(a.stats().peak_live_bytes, 300);
        a.free(&mut s, p2).unwrap();
        assert_eq!(a.stats().mallocs, 2);
        assert_eq!(a.stats().frees, 2);
    }

    #[test]
    fn realloc_counts_once() {
        let mut s = AddressSpace::new();
        let mut a = FreeListAllocator::new();
        let p = a.malloc(&mut s, 10).unwrap();
        let _q = a.realloc(&mut s, p, 20).unwrap();
        let st = a.stats();
        assert_eq!(st.mallocs, 1);
        assert_eq!(st.reallocs, 1);
        assert_eq!(st.frees, 0);
        assert_eq!(st.live_bytes, 20);
    }

    #[test]
    fn class_rounding() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(16), Some(0));
        assert_eq!(class_of(17), Some(1));
        assert_eq!(class_of(MAX_CLASS_SIZE), Some(16));
        assert_eq!(class_of(MAX_CLASS_SIZE + 1), None);
        assert_eq!(class_size(0), 16);
        assert_eq!(class_size(16), MAX_CLASS_SIZE);
    }

    #[test]
    fn adjacent_blocks_allow_overflow_corruption() {
        // The undefended substrate must behave like real memory: an overflow
        // from one block can corrupt the next (same size class, contiguous
        // carve-out). This is what the defense's guard page prevents.
        let mut s = AddressSpace::new();
        let mut a = FreeListAllocator::new();
        let p1 = a.malloc(&mut s, 16).unwrap();
        let p2 = a.malloc(&mut s, 16).unwrap();
        assert_eq!(p2, p1 + 16, "contiguous carve-out");
        s.write(p2, b"SECRET-SECRET-!!").unwrap();
        // Overflow p1 by 16 bytes: lands in p2.
        s.write(p1, &[0x41; 32]).unwrap();
        let mut b = [0u8; 16];
        s.read(p2, &mut b).unwrap();
        assert_eq!(b, [0x41; 16], "neighbour corrupted");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Random malloc/free/realloc interleavings keep contents of live
            /// blocks intact and stats consistent.
            #[test]
            fn allocator_fuzz(ops in proptest::collection::vec((0u8..4, 1u64..500), 1..120)) {
                let mut s = AddressSpace::new();
                let mut a = FreeListAllocator::new();
                let mut live: Vec<(Addr, u64, u8)> = Vec::new();
                let mut tag = 0u8;
                for (op, size) in ops {
                    match op {
                        0 | 1 => {
                            let p = a.malloc(&mut s, size).unwrap();
                            tag = tag.wrapping_add(1);
                            s.fill(p, size, tag).unwrap();
                            live.push((p, size, tag));
                        }
                        2 if !live.is_empty() => {
                            let (p, _, _) = live.swap_remove(size as usize % live.len());
                            a.free(&mut s, p).unwrap();
                        }
                        3 if !live.is_empty() => {
                            let idx = size as usize % live.len();
                            let (p, old, t) = live[idx];
                            let q = a.realloc(&mut s, p, size).unwrap();
                            let keep = old.min(size);
                            let mut buf = vec![0u8; keep as usize];
                            s.read(q, &mut buf).unwrap();
                            prop_assert!(buf.iter().all(|&b| b == t));
                            s.fill(q, size, t).unwrap();
                            live[idx] = (q, size, t);
                        }
                        _ => {}
                    }
                    // Every live block still holds its fill pattern.
                    for &(p, sz, t) in &live {
                        let mut buf = vec![0u8; sz as usize];
                        s.read(p, &mut buf).unwrap();
                        prop_assert!(buf.iter().all(|&b| b == t), "block {p:#x} corrupted");
                    }
                    let expected: u64 = live.iter().map(|&(_, sz, _)| sz).sum();
                    prop_assert_eq!(a.stats().live_bytes, expected);
                }
            }
        }
    }
}
