//! Simulated virtual memory and underlying heap allocators for HeapTherapy+.
//!
//! The paper's online defenses need only two facilities from the OS and the
//! C library:
//!
//! 1. **Page-permission control** (`mmap`/`mprotect`) — for guard pages and
//!    inaccessible red zones. Provided by [`AddressSpace`]: a sparse, paged
//!    64-bit address space where every page carries a [`Perm`] and every
//!    access is permission-checked, producing a [`MemFault`] exactly where a
//!    real CPU would raise SIGSEGV.
//! 2. **An underlying allocator** that the defense layer wraps *without
//!    modifying* — HeapTherapy+ is explicitly allocator-agnostic. Two
//!    implementations of [`BaseAllocator`] are provided: a segregated
//!    free-list allocator ([`FreeListAllocator`], glibc-flavoured, LIFO reuse
//!    — which is what makes use-after-free exploitable) and a trivial
//!    [`BumpAllocator`].
//!
//! The RSS proxy ([`AddressSpace::rss_bytes`]) counts *dirtied* pages only,
//! mirroring the paper's observation that guard pages are virtual and do not
//! increase resident memory.
//!
//! # Example
//!
//! ```
//! use ht_memsim::{AddressSpace, BaseAllocator, FreeListAllocator, Perm, PAGE_SIZE};
//!
//! let mut space = AddressSpace::new();
//! let mut heap = FreeListAllocator::new();
//! let p = heap.malloc(&mut space, 100).unwrap();
//! space.write(p, b"hello").unwrap();
//!
//! // Protect a fresh page and observe the fault, like mprotect+SIGSEGV.
//! let g = space.map(PAGE_SIZE, Perm::ReadWrite);
//! space.protect(g, PAGE_SIZE, Perm::None).unwrap();
//! assert!(space.write(g, b"x").is_err());
//! ```

pub mod alloc;
pub mod hash;
pub mod space;

pub use alloc::{AllocError, AllocStats, BaseAllocator, BumpAllocator, FreeListAllocator};
pub use hash::FastMap;
pub use space::{Addr, AddressSpace, FaultKind, MemFault, Perm, SpaceStats, PAGE_SIZE};

/// Rounds `v` up to the next multiple of `align` (a power of two).
///
/// # Panics
///
/// Panics in debug builds if `align` is not a power of two.
#[inline]
pub fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(4097, 4096), 8192);
    }
}
