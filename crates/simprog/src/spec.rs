//! SPEC CPU2006 INT benchmark models.
//!
//! The paper evaluates on the 12 SPEC CPU2006 integer benchmarks. SPEC is
//! proprietary, so each benchmark is modeled as a synthetic program whose
//! *heap-relevant* characteristics are taken from the paper itself:
//!
//! * the per-API allocation counts of **Table IV** (scaled down — the models
//!   replay the same malloc/calloc/realloc mix at a configurable fraction of
//!   the original volume),
//! * a call-graph shape with the four ingredients that make the encoding
//!   strategies differ (Table III): *cold* compute subtrees that cannot reach
//!   an allocation API (pruned by TCS), long non-branching call chains in
//!   front of allocation sites (pruned by Slim), and *false-branching*
//!   dispatchers whose out-edges reach different allocation APIs (pruned by
//!   Incremental),
//! * per-iteration compute work (scratch-buffer writes) so that encoding and
//!   interposition costs are small *percentages* of a real baseline, as in
//!   Fig. 8.
//!
//! The iteration count is the program's input parameter 0, so one built
//! program serves every scale.

use crate::builder::ProgramBuilder;
use crate::program::{Expr, Program, Sink};
use ht_patch::AllocFn;

/// Static description of one modeled SPEC benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecBench {
    /// Benchmark name, e.g. `"400.perlbench"`.
    pub name: &'static str,
    /// Paper Table IV `malloc` count.
    pub mallocs: u64,
    /// Paper Table IV `calloc` count.
    pub callocs: u64,
    /// Paper Table IV `realloc` count.
    pub reallocs: u64,
    /// Distinct hot allocation contexts in the model.
    pub hot_contexts: usize,
    /// Length of the non-branching call chain in front of each allocation.
    pub chain_len: usize,
    /// Number of cold (allocation-free) compute functions.
    pub cold_funcs: usize,
    /// Number of false-branching dispatcher nodes.
    pub false_branches: usize,
    /// Allocation size in bytes.
    pub buf_size: u64,
    /// Scratch bytes written per iteration (compute-work proxy).
    pub compute_per_iter: u64,
    /// Buffers retained live for the whole run (resident-heap profile,
    /// Fig. 9). Allocated through the benchmark's dominant API.
    pub live_pool: u32,
}

/// A built benchmark model: the program plus how to run it at a given scale.
#[derive(Debug)]
pub struct SpecWorkload {
    /// The benchmark this was built from.
    pub bench: SpecBench,
    /// The modeled program (input 0 = iteration count).
    pub program: Program,
    /// Allocations performed per 64 iterations of the main loop.
    ///
    /// Allocation contexts are spread over three frequency tiers (every
    /// iteration / every 8th / every 64th) so that context frequencies are
    /// skewed as in real programs — the *median*-frequency context (Fig. 8's
    /// hypothesized-vulnerable one) is then a small fraction of total
    /// volume, as in the paper.
    pub allocs_per_64_iters: u64,
}

impl SpecWorkload {
    /// The input vector that replays approximately `fraction` of the paper's
    /// Table IV allocation volume.
    pub fn input_for_fraction(&self, fraction: f64) -> Vec<u64> {
        let total = (self.bench.mallocs + self.bench.callocs + self.bench.reallocs) as f64;
        let target = (total * fraction).ceil() as u64;
        vec![self.iterations_for_allocs(target)]
    }

    /// The input vector that performs approximately `allocs` allocations.
    pub fn input_for_allocs(&self, allocs: u64) -> Vec<u64> {
        vec![self.iterations_for_allocs(allocs)]
    }

    fn iterations_for_allocs(&self, allocs: u64) -> u64 {
        (allocs * 64 / self.allocs_per_64_iters.max(1)).max(1)
    }
}

/// The 12 SPEC CPU2006 INT benchmarks with the paper's Table IV counts.
///
/// Shape parameters (contexts, chains, cold functions) are chosen per
/// benchmark character: `perlbench`/`omnetpp`/`xalancbmk` are
/// allocation-intensive with many contexts; `bzip2`/`sjeng`/`mcf` barely
/// allocate and are dominated by cold compute.
pub fn spec_suite() -> Vec<SpecBench> {
    vec![
        SpecBench {
            name: "400.perlbench",
            mallocs: 346_405_116,
            callocs: 0,
            reallocs: 11_736_402,
            hot_contexts: 48,
            chain_len: 4,
            cold_funcs: 40,
            false_branches: 4,
            buf_size: 56,
            compute_per_iter: 2048,
            live_pool: 3000,
        },
        SpecBench {
            name: "401.bzip2",
            mallocs: 174,
            callocs: 0,
            reallocs: 0,
            hot_contexts: 2,
            chain_len: 1,
            cold_funcs: 90,
            false_branches: 0,
            buf_size: 4000,
            compute_per_iter: 65536,
            live_pool: 50,
        },
        SpecBench {
            name: "403.gcc",
            mallocs: 23_690_559,
            callocs: 4_723_237,
            reallocs: 44_688,
            hot_contexts: 64,
            chain_len: 5,
            cold_funcs: 64,
            false_branches: 8,
            buf_size: 112,
            compute_per_iter: 4096,
            live_pool: 2500,
        },
        SpecBench {
            name: "429.mcf",
            mallocs: 5,
            callocs: 3,
            reallocs: 0,
            hot_contexts: 2,
            chain_len: 1,
            cold_funcs: 30,
            false_branches: 1,
            buf_size: 8000,
            compute_per_iter: 65536,
            live_pool: 30,
        },
        SpecBench {
            name: "445.gobmk",
            mallocs: 606_463,
            callocs: 0,
            reallocs: 52_115,
            hot_contexts: 16,
            chain_len: 3,
            cold_funcs: 70,
            false_branches: 2,
            buf_size: 240,
            compute_per_iter: 16384,
            live_pool: 800,
        },
        SpecBench {
            name: "456.hmmer",
            mallocs: 1_983_014,
            callocs: 122_564,
            reallocs: 368_696,
            hot_contexts: 24,
            chain_len: 6,
            cold_funcs: 40,
            false_branches: 3,
            buf_size: 112,
            compute_per_iter: 8192,
            live_pool: 1500,
        },
        SpecBench {
            name: "458.sjeng",
            mallocs: 5,
            callocs: 0,
            reallocs: 0,
            hot_contexts: 1,
            chain_len: 1,
            cold_funcs: 80,
            false_branches: 0,
            buf_size: 65000,
            compute_per_iter: 65536,
            live_pool: 10,
        },
        SpecBench {
            name: "462.libquantum",
            mallocs: 1,
            callocs: 121,
            reallocs: 58,
            hot_contexts: 3,
            chain_len: 2,
            cold_funcs: 25,
            false_branches: 1,
            buf_size: 2000,
            compute_per_iter: 32768,
            live_pool: 200,
        },
        SpecBench {
            name: "464.h264ref",
            mallocs: 7_270,
            callocs: 170_518,
            reallocs: 0,
            hot_contexts: 12,
            chain_len: 3,
            cold_funcs: 60,
            false_branches: 2,
            buf_size: 500,
            compute_per_iter: 32768,
            live_pool: 1000,
        },
        SpecBench {
            name: "471.omnetpp",
            mallocs: 267_064_936,
            callocs: 0,
            reallocs: 0,
            hot_contexts: 40,
            chain_len: 4,
            cold_funcs: 35,
            false_branches: 3,
            buf_size: 40,
            compute_per_iter: 1024,
            live_pool: 4000,
        },
        SpecBench {
            name: "473.astar",
            mallocs: 4_799_959,
            callocs: 0,
            reallocs: 0,
            hot_contexts: 8,
            chain_len: 2,
            cold_funcs: 45,
            false_branches: 0,
            buf_size: 88,
            compute_per_iter: 4096,
            live_pool: 2500,
        },
        SpecBench {
            name: "483.xalancbmk",
            mallocs: 135_155_553,
            callocs: 0,
            reallocs: 0,
            hot_contexts: 56,
            chain_len: 5,
            cold_funcs: 50,
            false_branches: 5,
            buf_size: 56,
            compute_per_iter: 1536,
            live_pool: 4000,
        },
    ]
}

/// Looks up a benchmark by (suffix of its) name.
pub fn spec_bench(name: &str) -> Option<SpecBench> {
    spec_suite()
        .into_iter()
        .find(|b| b.name == name || b.name.ends_with(name))
}

/// Builds the modeled program for `bench`.
///
/// Layout (single entry `main`):
///
/// ```text
/// main ── repeat(Input(0)) ──┬── cold_root ── cold tree (no allocations)
///                            ├── hot_0 ── chain ── malloc/calloc/realloc site
///                            ├── …
///                            └── fb_j ──┬── chain ── malloc site
///                                       └── chain ── calloc site
/// ```
pub fn build_spec_workload(bench: SpecBench) -> SpecWorkload {
    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let scratch = pb.slot();

    // Cold compute tree: binary fan-out, bodies write to the scratch buffer.
    let cold_root = pb.func(format!("{}::cold_root", bench.name));
    let mut cold = vec![cold_root];
    for i in 1..bench.cold_funcs.max(1) {
        let f = pb.func(format!("{}::cold{}", bench.name, i));
        let parent = cold[(i - 1) / 2];
        pb.define(parent, |b| b.call(f));
        cold.push(f);
    }
    let chunk = (bench.compute_per_iter / bench.cold_funcs.max(1) as u64).max(16);
    for &f in &cold {
        pb.define(f, |b| {
            b.write(scratch, 0u64, chunk, 0x5A);
            b.read(scratch, 0u64, chunk.min(64), Sink::Discard);
        });
    }

    // Per-API split of hot contexts, proportional to Table IV.
    let total = (bench.mallocs + bench.callocs + bench.reallocs).max(1) as f64;
    let n = bench.hot_contexts.max(1);
    let n_realloc = ((bench.reallocs as f64 / total * n as f64).round() as usize)
        .min(n.saturating_sub(1))
        .max(usize::from(bench.reallocs > 0));
    let n_calloc = ((bench.callocs as f64 / total * n as f64).round() as usize)
        .min(n - n_realloc)
        .max(usize::from(bench.callocs > 0 && n > n_realloc));
    let n_malloc = n - n_realloc - n_calloc;

    // Contexts as (root, allocations-per-visit); tiered below.
    let mut contexts: Vec<(ht_callgraph::FuncId, u64)> = Vec::new();
    let mut ctx = 0usize;
    let make_chain = |pb: &mut ProgramBuilder, ctx: usize, fun: AllocFn| -> ht_callgraph::FuncId {
        let slot = pb.slot();
        let root = pb.func(format!("{}::hot{}_0", bench.name, ctx));
        let mut cur = root;
        for d in 1..bench.chain_len.max(1) {
            let next = pb.func(format!("{}::hot{}_{}", bench.name, ctx, d));
            pb.define(cur, |b| b.call(next));
            cur = next;
        }
        let size = bench.buf_size;
        pb.define(cur, move |b| {
            match fun {
                AllocFn::Realloc => {
                    b.alloc(slot, AllocFn::Malloc, size / 2);
                    b.realloc(slot, size);
                }
                f => b.alloc(slot, f, size),
            }
            b.write(slot, 0u64, size.min(256), 0x42);
            b.read(slot, 0u64, size.min(64), Sink::Branch);
            b.free(slot);
        });
        root
    };

    for _ in 0..n_malloc {
        contexts.push((make_chain(&mut pb, ctx, AllocFn::Malloc), 1));
        ctx += 1;
    }
    for _ in 0..n_calloc {
        contexts.push((make_chain(&mut pb, ctx, AllocFn::Calloc), 1));
        ctx += 1;
    }
    for _ in 0..n_realloc {
        // malloc + realloc per visit.
        contexts.push((make_chain(&mut pb, ctx, AllocFn::Realloc), 2));
        ctx += 1;
    }

    // False-branching dispatchers: two children reaching *different* APIs.
    // The second API must be one the benchmark actually uses (Table IV);
    // malloc-only benchmarks cannot have false-branching nodes, which is
    // why the paper's Slim and Incremental columns coincide for them.
    let second_api = if bench.callocs > 0 {
        Some(AllocFn::Calloc)
    } else if bench.reallocs > 0 {
        Some(AllocFn::Realloc)
    } else {
        None
    };
    if let Some(second) = second_api {
        for j in 0..bench.false_branches {
            let fb = pb.func(format!("{}::fb{}", bench.name, j));
            let a = make_chain(&mut pb, ctx, AllocFn::Malloc);
            ctx += 1;
            let b_ = make_chain(&mut pb, ctx, second);
            ctx += 1;
            pb.define(fb, |b| {
                b.call(a);
                b.call(b_);
            });
            let per_visit = if second == AllocFn::Realloc { 3 } else { 2 };
            contexts.push((fb, per_visit));
        }
    }

    // Frequency tiers: real programs allocate from a skewed context
    // distribution, so spread contexts round-robin over three rates — every
    // iteration, every 8th, every 64th. The median-frequency context then
    // accounts for a small share of total volume, as in the paper's Fig. 8
    // methodology.
    let mut tiers: [Vec<ht_callgraph::FuncId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut allocs_per_64 = 0u64;
    const TIER_VISITS_PER_64: [u64; 3] = [64, 8, 1];
    for (i, &(root, per_visit)) in contexts.iter().enumerate() {
        let t = i % 3;
        tiers[t].push(root);
        allocs_per_64 += TIER_VISITS_PER_64[t] * per_visit;
    }

    let (hot, mid, rare) = (tiers[0].clone(), tiers[1].clone(), tiers[2].clone());
    // Retained live heap (Fig. 9): `live_pool` buffers allocated up front
    // through the benchmark's dominant API and held (leaked into the pool
    // slot) for the whole run.
    let pool_fun = if bench.callocs > bench.mallocs {
        AllocFn::Calloc
    } else {
        AllocFn::Malloc
    };
    let pool_slot = pb.slot();
    pb.define(main, |b| {
        b.alloc(scratch, AllocFn::Malloc, bench.compute_per_iter.max(64));
        b.repeat(bench.live_pool as u64, |b| {
            b.alloc(pool_slot, pool_fun, bench.buf_size);
            b.write(pool_slot, 0u64, bench.buf_size, 0x33);
        });
        b.repeat(Expr::Input(0), |b| {
            b.call(cold_root);
            for &h in &hot {
                b.call(h);
            }
        });
        b.repeat(Expr::Input(0).div(Expr::Const(8)), |b| {
            for &m in &mid {
                b.call(m);
            }
        });
        b.repeat(Expr::Input(0).div(Expr::Const(64)), |b| {
            for &r in &rare {
                b.call(r);
            }
        });
        b.free(scratch);
    });

    SpecWorkload {
        bench,
        program: pb.build(),
        allocs_per_64_iters: allocs_per_64.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_plain;
    use ht_callgraph::Strategy;
    use ht_encoding::{InstrumentationPlan, Scheme};

    #[test]
    fn suite_has_twelve_benchmarks_with_paper_counts() {
        let suite = spec_suite();
        assert_eq!(suite.len(), 12);
        let perl = spec_bench("perlbench").unwrap();
        assert_eq!(perl.mallocs, 346_405_116);
        assert_eq!(perl.reallocs, 11_736_402);
        let bzip = spec_bench("401.bzip2").unwrap();
        assert_eq!(bzip.mallocs, 174);
        assert!(spec_bench("no-such").is_none());
    }

    #[test]
    fn workloads_build_and_run() {
        for bench in spec_suite() {
            let w = build_spec_workload(bench);
            let plan =
                InstrumentationPlan::build(w.program.graph(), Strategy::Incremental, Scheme::Pcc);
            let input = vec![2u64];
            let rep = run_plain(&w.program, &plan, &input);
            assert!(
                rep.outcome.is_completed(),
                "{}: {:?}",
                bench.name,
                rep.outcome
            );
            assert!(rep.allocs.total() > 0, "{}", bench.name);
        }
    }

    #[test]
    fn single_root_everywhere() {
        for bench in spec_suite() {
            let w = build_spec_workload(bench);
            assert_eq!(
                w.program.graph().roots(),
                vec![w.program.entry()],
                "{}",
                bench.name
            );
        }
    }

    #[test]
    fn api_mix_tracks_table_iv() {
        // gcc has every API; h264ref is calloc-heavy; omnetpp malloc-only.
        let gcc = build_spec_workload(spec_bench("403.gcc").unwrap());
        let plan = InstrumentationPlan::build(gcc.program.graph(), Strategy::Tcs, Scheme::Pcc);
        let rep = run_plain(&gcc.program, &plan, &[4]);
        assert!(rep.allocs.malloc > 0 && rep.allocs.calloc > 0 && rep.allocs.realloc > 0);

        let h264 = build_spec_workload(spec_bench("464.h264ref").unwrap());
        let plan = InstrumentationPlan::build(h264.program.graph(), Strategy::Tcs, Scheme::Pcc);
        let rep = run_plain(&h264.program, &plan, &[4]);
        assert!(rep.allocs.calloc > rep.allocs.malloc.saturating_sub(4));

        let omnet = build_spec_workload(spec_bench("471.omnetpp").unwrap());
        let plan = InstrumentationPlan::build(omnet.program.graph(), Strategy::Tcs, Scheme::Pcc);
        let rep = run_plain(&omnet.program, &plan, &[4]);
        assert_eq!(rep.allocs.realloc, 0);
    }

    #[test]
    fn strategy_site_counts_strictly_shrink_on_rich_models() {
        // gcc has cold funcs (TCS < FCS), chains (Slim < TCS) and false
        // branches (Incremental < Slim).
        let w = build_spec_workload(spec_bench("403.gcc").unwrap());
        let counts: Vec<usize> = Strategy::ALL
            .iter()
            .map(|&s| InstrumentationPlan::build(w.program.graph(), s, Scheme::Pcc).site_count())
            .collect();
        assert!(
            counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3],
            "{counts:?}"
        );
    }

    #[test]
    fn input_scaling_controls_alloc_volume() {
        let w = build_spec_workload(spec_bench("473.astar").unwrap());
        let plan = InstrumentationPlan::build(w.program.graph(), Strategy::Tcs, Scheme::Pcc);
        // The retained live pool is a fixed prologue; the loop volume above
        // it must scale with the input.
        let pool = w.bench.live_pool as u64 + 1; // + scratch
        let small = run_plain(&w.program, &plan, &w.input_for_allocs(1_000));
        let large = run_plain(&w.program, &plan, &w.input_for_allocs(10_000));
        let small_loop = small.allocs.total() - pool;
        let large_loop = large.allocs.total() - pool;
        assert!(
            large_loop >= 5 * small_loop.max(1),
            "{small_loop} -> {large_loop}"
        );
        // Fractional volume maps through Table IV totals.
        let frac = w.input_for_fraction(1e-5);
        assert!(frac[0] >= 1);
    }

    #[test]
    fn encoder_ops_ordering_across_strategies() {
        let w = build_spec_workload(spec_bench("456.hmmer").unwrap());
        let input = w.input_for_allocs(200);
        let mut prev = u64::MAX;
        for s in Strategy::ALL {
            let plan = InstrumentationPlan::build(w.program.graph(), s, Scheme::Pcc);
            let ops = run_plain(&w.program, &plan, &input).encoder_ops;
            assert!(ops <= prev, "{s}: {ops} > {prev}");
            prev = ops;
        }
    }
}
