//! Service-program models (paper §VIII-B2: Nginx, MySQL).
//!
//! The paper measures throughput overhead of the online defense on two
//! request-serving programs. The models here reproduce the *allocation
//! profile per request*: an accept/parse/handle/respond pipeline that
//! allocates request and response buffers, does per-request compute, and
//! frees everything. Input 0 is the number of requests, so a benchmark
//! harness measures requests/second directly.

use crate::builder::ProgramBuilder;
use crate::program::{Expr, Program, Sink};
use ht_patch::AllocFn;

/// Which service to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// Nginx-like: small per-request allocations, light compute.
    Nginx,
    /// MySQL-like: heavier per-request work relative to allocation, so the
    /// defense overhead drowns (the paper observed no measurable overhead).
    Mysql,
}

impl ServiceKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceKind::Nginx => "nginx",
            ServiceKind::Mysql => "mysql",
        }
    }
}

/// A built service model.
#[derive(Debug)]
pub struct ServiceWorkload {
    /// Which service this models.
    pub kind: ServiceKind,
    /// The program; input 0 = request count.
    pub program: Program,
}

impl ServiceWorkload {
    /// Input vector serving `requests` requests.
    pub fn input_for_requests(&self, requests: u64) -> Vec<u64> {
        vec![requests]
    }
}

/// Builds the request-loop model for `kind`.
pub fn build_service_workload(kind: ServiceKind) -> ServiceWorkload {
    let (conn_buf, hdr_buf, body_buf, resp_buf, work_bytes, pool_allocs) = match kind {
        // Nginx: pool of small buffers per request, modest compute.
        ServiceKind::Nginx => (1024u64, 256u64, 4000u64, 8000u64, 16_384u64, 6u32),
        // MySQL: bigger row/sort buffers, much more compute per request.
        ServiceKind::Mysql => (4000, 500, 16_000, 32_000, 262_144, 4),
    };

    let mut pb = ProgramBuilder::new();
    let main = pb.entry();
    let accept = pb.func(format!("{}::accept", kind.name()));
    let parse = pb.func(format!("{}::parse", kind.name()));
    let handle = pb.func(format!("{}::handle", kind.name()));
    let respond = pb.func(format!("{}::respond", kind.name()));

    let conn = pb.slot();
    let hdr = pb.slot();
    let body = pb.slot();
    let resp = pb.slot();
    let pool = pb.slots(pool_allocs);
    let scratch = pb.slot();

    pb.define(accept, move |b| {
        b.alloc(conn, AllocFn::Malloc, conn_buf);
        b.write(conn, 0u64, conn_buf.min(128), 0x10);
    });
    pb.define(parse, move |b| {
        b.alloc(hdr, AllocFn::Malloc, hdr_buf);
        b.write(hdr, 0u64, hdr_buf, 0x20);
        b.read(hdr, 0u64, 64u64, Sink::Branch);
        b.alloc(body, AllocFn::Calloc, body_buf);
        b.write(body, 0u64, body_buf.min(512), 0x30);
    });
    let pool_for_handle = pool.clone();
    pb.define(handle, move |b| {
        for (i, &p) in pool_for_handle.iter().enumerate() {
            b.alloc(p, AllocFn::Malloc, 64 + 32 * i as u64);
            b.write(p, 0u64, 64u64, 0x40);
        }
        // Per-request compute on the scratch area.
        b.write(scratch, 0u64, work_bytes, 0x55);
        b.read(scratch, 0u64, work_bytes.min(256), Sink::Branch);
        for &p in pool_for_handle.iter() {
            b.free(p);
        }
    });
    pb.define(respond, move |b| {
        b.alloc(resp, AllocFn::Malloc, resp_buf);
        b.write(resp, 0u64, resp_buf.min(1024), 0x60);
        b.read(resp, 0u64, 128u64, Sink::Syscall); // send()
        b.free(resp);
        b.free(body);
        b.free(hdr);
        b.free(conn);
    });
    pb.define(main, move |b| {
        b.alloc(scratch, AllocFn::Malloc, work_bytes.max(64));
        b.repeat(Expr::Input(0), |b| {
            b.call(accept);
            b.call(parse);
            b.call(handle);
            b.call(respond);
        });
        b.free(scratch);
    });

    ServiceWorkload {
        kind,
        program: pb.build(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_plain;
    use ht_callgraph::Strategy;
    use ht_encoding::{InstrumentationPlan, Scheme};

    #[test]
    fn services_run_and_balance_allocs() {
        for kind in [ServiceKind::Nginx, ServiceKind::Mysql] {
            let w = build_service_workload(kind);
            let plan =
                InstrumentationPlan::build(w.program.graph(), Strategy::Incremental, Scheme::Pcc);
            let rep = run_plain(&w.program, &plan, &w.input_for_requests(10));
            assert!(rep.outcome.is_completed(), "{:?}", rep.outcome);
            // Every allocation has a matching free (steady-state service).
            assert_eq!(rep.allocs.total(), rep.frees, "{}", kind.name());
            assert!(rep.allocs.total() >= 10 * 4, "{}", kind.name());
        }
    }

    #[test]
    fn request_count_scales_linearly() {
        let w = build_service_workload(ServiceKind::Nginx);
        let plan = InstrumentationPlan::build(w.program.graph(), Strategy::Tcs, Scheme::Pcc);
        let r10 = run_plain(&w.program, &plan, &[10]);
        let r100 = run_plain(&w.program, &plan, &[100]);
        let per10 = r10.allocs.total();
        let per100 = r100.allocs.total();
        assert_eq!(per100 - 1, (per10 - 1) * 10, "scratch alloc is constant");
    }

    #[test]
    fn mysql_is_compute_heavier_than_nginx() {
        let nginx = build_service_workload(ServiceKind::Nginx);
        let mysql = build_service_workload(ServiceKind::Mysql);
        let pn = InstrumentationPlan::build(nginx.program.graph(), Strategy::Tcs, Scheme::Pcc);
        let pm = InstrumentationPlan::build(mysql.program.graph(), Strategy::Tcs, Scheme::Pcc);
        let rn = run_plain(&nginx.program, &pn, &[20]);
        let rm = run_plain(&mysql.program, &pm, &[20]);
        let nginx_ratio = rn.bytes_written as f64 / rn.allocs.total() as f64;
        let mysql_ratio = rm.bytes_written as f64 / rm.allocs.total() as f64;
        assert!(
            mysql_ratio > 4.0 * nginx_ratio,
            "mysql {mysql_ratio:.0} vs nginx {nginx_ratio:.0} bytes/alloc"
        );
    }

    #[test]
    fn single_root() {
        for kind in [ServiceKind::Nginx, ServiceKind::Mysql] {
            let w = build_service_workload(kind);
            assert_eq!(w.program.graph().roots(), vec![w.program.entry()]);
        }
    }
}
