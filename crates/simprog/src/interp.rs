//! The interpreter: executes a modeled program over a heap backend while
//! driving the calling-context encoder.

use crate::backend::{AccessOutcome, AllocRequest, HeapBackend, StopCause};
use crate::program::{Program, Sink, Stmt};
use ht_encoding::{Encoder, InstrumentationPlan};
use ht_memsim::Addr;
use ht_patch::AllocFn;
use std::collections::HashMap;

/// Per-API allocation counters (feeds Table IV).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocCallCounts {
    /// `malloc` calls.
    pub malloc: u64,
    /// `calloc` calls.
    pub calloc: u64,
    /// `realloc` calls.
    pub realloc: u64,
    /// `memalign` calls.
    pub memalign: u64,
}

impl AllocCallCounts {
    fn bump(&mut self, fun: AllocFn) {
        match fun {
            AllocFn::Malloc => self.malloc += 1,
            AllocFn::Calloc => self.calloc += 1,
            AllocFn::Realloc => self.realloc += 1,
            AllocFn::Memalign => self.memalign += 1,
        }
    }

    /// Total allocation-family calls.
    pub fn total(&self) -> u64 {
        self.malloc + self.calloc + self.realloc + self.memalign
    }
}

/// How a modeled run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program ran to completion.
    Completed,
    /// The program was terminated (segfault, heap misuse, budget).
    Stopped(StopCause),
}

impl RunOutcome {
    /// Whether the run completed normally.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }

    /// Whether the run died on a memory fault (e.g. hit a guard page).
    pub fn is_segfault(&self) -> bool {
        matches!(self, RunOutcome::Stopped(StopCause::Segfault { .. }))
    }
}

/// Everything observable about one modeled run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Bytes the program sent to the attacker through [`Sink::Leak`].
    pub leaked: Vec<u8>,
    /// Per-API allocation counts.
    pub allocs: AllocCallCounts,
    /// `free` calls executed.
    pub frees: u64,
    /// Statements executed.
    pub steps: u64,
    /// Bytes written through buffer handles.
    pub bytes_written: u64,
    /// Bytes read through buffer handles.
    pub bytes_read: u64,
    /// Encoding instrumentation updates executed (the §VIII-B1 overhead
    /// proxy).
    pub encoder_ops: u64,
    /// Allocation-frequency histogram: `(FUN, CCID) → count`. Used to pick
    /// the median-frequency contexts that Fig. 8 hypothesizes as vulnerable.
    pub ccid_freq: HashMap<(AllocFn, u64), u64>,
}

impl RunReport {
    /// The `(FUN, CCID)` keys ranked by allocation frequency (ascending),
    /// ties broken by key for determinism.
    pub fn ccids_by_frequency(&self) -> Vec<((AllocFn, u64), u64)> {
        let mut v: Vec<_> = self.ccid_freq.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by_key(|&((f, c), n)| (n, f, c));
        v
    }

    /// The median-frequency allocation contexts, as Fig. 8 selects
    /// hypothesized-vulnerable CCIDs. Returns up to `n` keys centered on the
    /// median rank.
    pub fn median_frequency_ccids(&self, n: usize) -> Vec<(AllocFn, u64)> {
        let ranked = self.ccids_by_frequency();
        if ranked.is_empty() || n == 0 {
            return Vec::new();
        }
        let mid = ranked.len() / 2;
        let half = n / 2;
        let start = mid.saturating_sub(half).min(ranked.len().saturating_sub(n));
        ranked[start..(start + n).min(ranked.len())]
            .iter()
            .map(|&(k, _)| k)
            .collect()
    }
}

/// Execution limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum statements executed before the run is stopped.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_steps: 200_000_000,
            max_depth: 200,
        }
    }
}

/// Executes a [`Program`] against a [`HeapBackend`], driving an
/// [`Encoder`] so every allocation carries its CCID.
#[derive(Debug)]
pub struct Interpreter<'a, B: HeapBackend> {
    prog: &'a Program,
    plan: &'a InstrumentationPlan,
    backend: B,
    limits: Limits,
}

struct RunState<'a> {
    input: &'a [u64],
    slots: Vec<Option<Addr>>,
    report: RunReport,
    depth: usize,
}

impl<'a, B: HeapBackend> Interpreter<'a, B> {
    /// A new interpreter with default [`Limits`].
    pub fn new(prog: &'a Program, plan: &'a InstrumentationPlan, backend: B) -> Self {
        Self {
            prog,
            plan,
            backend,
            limits: Limits::default(),
        }
    }

    /// Overrides the execution limits (builder style).
    #[must_use]
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// The backend, e.g. to inspect analyzer findings after a run.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Consumes the interpreter, returning the backend.
    pub fn into_backend(self) -> B {
        self.backend
    }

    /// Runs the program on `input` and reports what happened.
    pub fn run(&mut self, input: &[u64]) -> RunReport {
        let mut encoder = Encoder::new(self.plan);
        let mut st = RunState {
            input,
            slots: vec![None; self.prog.slot_count() as usize],
            report: RunReport {
                outcome: RunOutcome::Completed,
                leaked: Vec::new(),
                allocs: AllocCallCounts::default(),
                frees: 0,
                steps: 0,
                bytes_written: 0,
                bytes_read: 0,
                encoder_ops: 0,
                ccid_freq: HashMap::new(),
            },
            depth: 0,
        };
        let entry = self.prog.entry();
        let result = self.exec_body(self.prog.body(entry), &mut st, &mut encoder);
        if let Err(cause) = result {
            st.report.outcome = RunOutcome::Stopped(cause);
        }
        st.report.encoder_ops = encoder.ops();
        st.report
    }

    fn exec_body(
        &mut self,
        stmts: &[Stmt],
        st: &mut RunState<'_>,
        enc: &mut Encoder<'a>,
    ) -> Result<(), StopCause> {
        for stmt in stmts {
            self.exec_stmt(stmt, st, enc)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        st: &mut RunState<'_>,
        enc: &mut Encoder<'a>,
    ) -> Result<(), StopCause> {
        st.report.steps += 1;
        if st.report.steps > self.limits.max_steps {
            return Err(StopCause::StepLimit);
        }
        match stmt {
            Stmt::Call(e) => {
                if st.depth >= self.limits.max_depth {
                    return Err(StopCause::DepthLimit);
                }
                let prog: &'a Program = self.prog;
                let callee = prog.graph().edge(*e).callee;
                enc.on_call(*e);
                st.depth += 1;
                let body: &'a [Stmt] = prog.body(callee);
                let r = self.exec_body(body, st, enc);
                st.depth -= 1;
                enc.on_return();
                r?;
            }
            Stmt::CallVirtual { edges, selector } => {
                if st.depth >= self.limits.max_depth {
                    return Err(StopCause::DepthLimit);
                }
                let prog: &'a Program = self.prog;
                let taken = edges[(selector.eval(st.input) as usize) % edges.len()];
                let callee = prog.graph().edge(taken).callee;
                enc.on_call(taken);
                st.depth += 1;
                let body: &'a [Stmt] = prog.body(callee);
                let r = self.exec_body(body, st, enc);
                st.depth -= 1;
                enc.on_return();
                r?;
            }
            Stmt::Alloc {
                edge,
                slot,
                fun,
                size,
                align,
            } => {
                let size = size.eval(st.input);
                let align = align.eval(st.input).max(1).next_power_of_two();
                let target = self.prog.graph().edge(*edge).callee;
                enc.on_call(*edge);
                let ccid = enc.current();
                let req = AllocRequest {
                    fun: *fun,
                    size,
                    align,
                    ccid,
                    target,
                    old_ptr: None,
                };
                let r = self.backend.alloc(&req);
                enc.on_return();
                let ptr = r?;
                st.slots[slot.index()] = Some(ptr);
                st.report.allocs.bump(*fun);
                *st.report.ccid_freq.entry((*fun, ccid.0)).or_insert(0) += 1;
            }
            Stmt::Realloc {
                edge,
                slot,
                new_size,
            } => {
                let size = new_size.eval(st.input);
                let old_ptr = st.slots[slot.index()];
                let target = self.prog.graph().edge(*edge).callee;
                enc.on_call(*edge);
                let ccid = enc.current();
                let req = AllocRequest {
                    fun: AllocFn::Realloc,
                    size,
                    align: 16,
                    ccid,
                    target,
                    old_ptr,
                };
                let r = self.backend.alloc(&req);
                enc.on_return();
                let ptr = r?;
                st.slots[slot.index()] = Some(ptr);
                st.report.allocs.bump(AllocFn::Realloc);
                *st.report
                    .ccid_freq
                    .entry((AllocFn::Realloc, ccid.0))
                    .or_insert(0) += 1;
            }
            Stmt::Free { slot } => {
                // free(NULL) is a no-op; the slot keeps its dangling value.
                if let Some(ptr) = st.slots[slot.index()] {
                    st.report.frees += 1;
                    match self.backend.free(ptr) {
                        AccessOutcome::Ok => {}
                        AccessOutcome::Stop(c) => return Err(c),
                    }
                }
            }
            Stmt::Clear { slot } => {
                st.slots[slot.index()] = None;
            }
            Stmt::Write {
                slot,
                offset,
                len,
                byte,
            } => {
                if let Some(ptr) = st.slots[slot.index()] {
                    let off = offset.eval(st.input);
                    let len = len.eval(st.input);
                    if len > 0 {
                        st.report.bytes_written += len;
                        match self.backend.write(ptr + off, len, *byte) {
                            AccessOutcome::Ok => {}
                            AccessOutcome::Stop(c) => return Err(c),
                        }
                    }
                }
            }
            Stmt::Copy {
                src,
                src_off,
                dst,
                dst_off,
                len,
            } => {
                if let (Some(s), Some(d)) = (st.slots[src.index()], st.slots[dst.index()]) {
                    let so = src_off.eval(st.input);
                    let do_ = dst_off.eval(st.input);
                    let len = len.eval(st.input);
                    if len > 0 {
                        st.report.bytes_read += len;
                        st.report.bytes_written += len;
                        match self.backend.copy(s + so, d + do_, len) {
                            AccessOutcome::Ok => {}
                            AccessOutcome::Stop(c) => return Err(c),
                        }
                    }
                }
            }
            Stmt::Read {
                slot,
                offset,
                len,
                sink,
            } => {
                if let Some(ptr) = st.slots[slot.index()] {
                    let off = offset.eval(st.input);
                    let len = len.eval(st.input);
                    if len > 0 {
                        st.report.bytes_read += len;
                        let r = self.backend.read(ptr + off, len, *sink);
                        if *sink == Sink::Leak {
                            st.report.leaked.extend_from_slice(&r.data);
                        }
                        match r.outcome {
                            AccessOutcome::Ok => {}
                            AccessOutcome::Stop(c) => return Err(c),
                        }
                    }
                }
            }
            Stmt::Repeat { times, body } => {
                let n = times.eval(st.input);
                for _ in 0..n {
                    self.exec_body(body, st, enc)?;
                }
            }
            Stmt::If { cond, then_, else_ } => {
                if cond.eval(st.input) != 0 {
                    self.exec_body(then_, st, enc)?;
                } else {
                    self.exec_body(else_, st, enc)?;
                }
            }
        }
        Ok(())
    }
}

/// Convenience: run `prog` with `plan` over a fresh [`PlainBackend`]
/// (undefended) and return the report.
///
/// [`PlainBackend`]: crate::PlainBackend
pub fn run_plain(prog: &Program, plan: &InstrumentationPlan, input: &[u64]) -> RunReport {
    Interpreter::new(prog, plan, crate::PlainBackend::new()).run(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Expr, PlainBackend, ProgramBuilder, Sink};
    use ht_callgraph::Strategy;
    use ht_encoding::Scheme;

    fn plan_for(prog: &Program) -> InstrumentationPlan {
        InstrumentationPlan::build(prog.graph(), Strategy::Tcs, Scheme::Pcc)
    }

    #[test]
    fn straight_line_program_runs() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 64u64);
            b.write(s, 0u64, 64u64, 0xAB);
            b.read(s, 0u64, 16u64, Sink::Leak);
            b.free(s);
        });
        let prog = pb.build();
        let plan = plan_for(&prog);
        let rep = run_plain(&prog, &plan, &[]);
        assert!(rep.outcome.is_completed());
        assert_eq!(rep.leaked, vec![0xAB; 16]);
        assert_eq!(rep.allocs.malloc, 1);
        assert_eq!(rep.frees, 1);
        assert_eq!(rep.bytes_written, 64);
        assert_eq!(rep.bytes_read, 16);
    }

    #[test]
    fn input_parameterizes_behaviour() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, Expr::Input(0));
            b.write(s, 0u64, Expr::Input(1), 0x11);
        });
        let prog = pb.build();
        let plan = plan_for(&prog);
        // Benign: write within bounds.
        let rep = run_plain(&prog, &plan, &[64, 64]);
        assert!(rep.outcome.is_completed());
        // Same program, attack input: the class block absorbs a small
        // overflow silently (undefended!), a huge one hits unmapped memory.
        let rep = run_plain(&prog, &plan, &[64, 10_000_000]);
        assert!(rep.outcome.is_segfault());
    }

    #[test]
    fn distinct_contexts_distinct_ccids() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let f = pb.func("f");
        let g_ = pb.func("g");
        let s = pb.slot();
        let helper = pb.func("helper");
        pb.define(main, |b| {
            b.call(f);
            b.call(g_);
        });
        pb.define(f, |b| b.call(helper));
        pb.define(g_, |b| b.call(helper));
        pb.define(helper, |b| {
            b.alloc(s, AllocFn::Malloc, 32u64);
            b.free(s);
        });
        let prog = pb.build();
        for strategy in Strategy::ALL {
            if strategy == Strategy::Fcs {
                continue; // FCS also distinguishes; skip to keep parity clear
            }
            let plan = InstrumentationPlan::build(prog.graph(), strategy, Scheme::Pcc);
            let rep = run_plain(&prog, &plan, &[]);
            assert_eq!(
                rep.ccid_freq.len(),
                2,
                "{strategy}: two contexts reach malloc"
            );
        }
    }

    #[test]
    fn repeated_context_counts_frequency() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.repeat(10u64, |b| {
                b.alloc(s, AllocFn::Malloc, 8u64);
                b.free(s);
            });
        });
        let prog = pb.build();
        let plan = plan_for(&prog);
        let rep = run_plain(&prog, &plan, &[]);
        assert_eq!(rep.allocs.malloc, 10);
        assert_eq!(rep.ccid_freq.len(), 1, "one context");
        assert_eq!(*rep.ccid_freq.values().next().unwrap(), 10);
    }

    #[test]
    fn median_frequency_selection() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        let (f1, f2, f3) = (pb.func("f1"), pb.func("f2"), pb.func("f3"));
        pb.define(main, |b| {
            b.call(f1);
            b.call(f2);
            b.call(f3);
        });
        for (f, n) in [(f1, 1u64), (f2, 5), (f3, 100)] {
            pb.define(f, |b| {
                b.repeat(n, |b| {
                    b.alloc(s, AllocFn::Malloc, 8u64);
                    b.free(s);
                });
            });
        }
        let prog = pb.build();
        let plan = plan_for(&prog);
        let rep = run_plain(&prog, &plan, &[]);
        let med = rep.median_frequency_ccids(1);
        assert_eq!(med.len(), 1);
        assert_eq!(rep.ccid_freq[&med[0]], 5, "median frequency is 5");
        assert_eq!(rep.median_frequency_ccids(0), Vec::new());
        assert_eq!(rep.median_frequency_ccids(3).len(), 3);
    }

    #[test]
    fn realloc_null_behaves_as_malloc() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.realloc(s, 128u64);
            b.write(s, 0u64, 128u64, 1);
        });
        let prog = pb.build();
        let plan = plan_for(&prog);
        let rep = run_plain(&prog, &plan, &[]);
        assert!(rep.outcome.is_completed());
        assert_eq!(rep.allocs.realloc, 1);
    }

    #[test]
    fn use_after_free_reads_dangling() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let victim = pb.slot();
        let attacker = pb.slot();
        pb.define(main, |b| {
            b.alloc(victim, AllocFn::Malloc, 64u64);
            b.write(victim, 0u64, 64u64, 0x01);
            b.free(victim);
            // Attacker grabs the recycled block and poisons it.
            b.alloc(attacker, AllocFn::Malloc, 64u64);
            b.write(attacker, 0u64, 64u64, 0x66);
            // Victim's dangling use now sees attacker bytes.
            b.read(victim, 0u64, 8u64, Sink::Leak);
        });
        let prog = pb.build();
        let plan = plan_for(&prog);
        let rep = run_plain(&prog, &plan, &[]);
        assert!(rep.outcome.is_completed());
        assert_eq!(rep.leaked, vec![0x66; 8], "hijack via prompt reuse");
    }

    #[test]
    fn step_limit_stops_runaway_loops() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.repeat(u64::MAX, |b| {
                b.alloc(s, AllocFn::Malloc, 8u64);
                b.free(s);
            });
        });
        let prog = pb.build();
        let plan = plan_for(&prog);
        let rep = Interpreter::new(&prog, &plan, PlainBackend::new())
            .with_limits(Limits {
                max_steps: 1000,
                max_depth: 8,
            })
            .run(&[]);
        assert_eq!(rep.outcome, RunOutcome::Stopped(StopCause::StepLimit));
    }

    #[test]
    fn depth_limit_stops_recursion() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let f = pb.func("f");
        pb.define(main, |b| b.call(f));
        pb.define(f, |b| b.call(f));
        let prog = pb.build();
        let plan = plan_for(&prog);
        let rep = Interpreter::new(&prog, &plan, PlainBackend::new())
            .with_limits(Limits {
                max_steps: 1_000_000,
                max_depth: 32,
            })
            .run(&[]);
        assert_eq!(rep.outcome, RunOutcome::Stopped(StopCause::DepthLimit));
    }

    #[test]
    fn if_else_branches_on_input() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 16u64);
            b.write(s, 0u64, 16u64, 9);
            b.if_else(
                Expr::Input(0),
                |b| b.read(s, 0u64, 1u64, Sink::Leak),
                |b| b.read(s, 0u64, 2u64, Sink::Leak),
            );
        });
        let prog = pb.build();
        let plan = plan_for(&prog);
        assert_eq!(run_plain(&prog, &plan, &[1]).leaked.len(), 1);
        assert_eq!(run_plain(&prog, &plan, &[0]).leaked.len(), 2);
    }

    #[test]
    fn clear_nulls_the_slot() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 16u64);
            b.free(s);
            b.clear(s);
            // All of these are now no-ops (NULL-guarded code).
            b.write(s, 0u64, 16u64, 1);
            b.read(s, 0u64, 16u64, Sink::Leak);
            b.free(s);
            // realloc(NULL, n) allocates fresh.
            b.realloc(s, 32u64);
            b.write(s, 0u64, 32u64, 2);
        });
        let prog = pb.build();
        let plan = plan_for(&prog);
        let rep = run_plain(&prog, &plan, &[]);
        assert!(rep.outcome.is_completed(), "{:?}", rep.outcome);
        assert!(rep.leaked.is_empty(), "read through NULL is a no-op");
        assert_eq!(rep.frees, 1, "free(NULL) is a no-op");
        assert_eq!(rep.allocs.realloc, 1);
    }

    #[test]
    fn virtual_calls_dispatch_by_selector_with_distinct_ccids() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let impl_a = pb.func("png_handler");
        let impl_b = pb.func("jpg_handler");
        let s = pb.slot();
        for f in [impl_a, impl_b] {
            pb.define(f, |b| {
                b.alloc(s, AllocFn::Malloc, 32u64);
                b.free(s);
            });
        }
        pb.define(main, |b| {
            b.call_virtual(&[impl_a, impl_b], Expr::Input(0));
        });
        let prog = pb.build();
        // Both candidate edges exist statically.
        assert_eq!(prog.graph().edge_count(), 4, "2 virtual edges + 2 mallocs");
        let plan = plan_for(&prog);
        let via_a = run_plain(&prog, &plan, &[0]);
        let via_b = run_plain(&prog, &plan, &[1]);
        assert_eq!(via_a.allocs.malloc, 1);
        assert_eq!(via_b.allocs.malloc, 1);
        assert_ne!(
            via_a.ccid_freq, via_b.ccid_freq,
            "the dynamic callee determines the allocation context"
        );
        // Selector wraps modulo the candidate count.
        let via_a_again = run_plain(&prog, &plan, &[2]);
        assert_eq!(
            via_a_again.ccid_freq, via_a.ccid_freq,
            "selector % len dispatch"
        );
    }

    #[test]
    fn copy_moves_bytes_between_buffers() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let a = pb.slot();
        let b_ = pb.slot();
        pb.define(main, |b| {
            b.alloc(a, AllocFn::Malloc, 32u64);
            b.alloc(b_, AllocFn::Calloc, 32u64);
            b.write(a, 0u64, 32u64, 0x7E);
            b.copy(a, 8u64, b_, 4u64, 16u64);
            b.read(b_, 0u64, 32u64, Sink::Leak);
        });
        let prog = pb.build();
        let plan = plan_for(&prog);
        let rep = run_plain(&prog, &plan, &[]);
        assert!(rep.outcome.is_completed());
        let mut expected = vec![0u8; 32];
        expected[4..20].fill(0x7E);
        assert_eq!(rep.leaked, expected);
        assert_eq!(rep.bytes_written, 32 + 16);
    }

    #[test]
    fn encoder_ops_depend_on_strategy() {
        // Build a program with dead call paths; TCS executes fewer
        // instrumentation ops than FCS.
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let dead = pb.func("dead");
        let live = pb.func("live");
        let s = pb.slot();
        pb.define(main, |b| {
            b.repeat(100u64, |b| {
                b.call(dead);
                b.call(live);
            });
        });
        pb.define(dead, |_| {});
        pb.define(live, |b| {
            b.alloc(s, AllocFn::Malloc, 8u64);
            b.free(s);
        });
        let prog = pb.build();
        let fcs = InstrumentationPlan::build(prog.graph(), Strategy::Fcs, Scheme::Pcc);
        let tcs = InstrumentationPlan::build(prog.graph(), Strategy::Tcs, Scheme::Pcc);
        let ops_fcs = run_plain(&prog, &fcs, &[]).encoder_ops;
        let ops_tcs = run_plain(&prog, &tcs, &[]).encoder_ops;
        assert!(ops_tcs < ops_fcs, "tcs {ops_tcs} < fcs {ops_fcs}");
        assert_eq!(ops_fcs, 300, "100×(dead + live + malloc)");
        assert_eq!(ops_tcs, 200, "100×(live + malloc)");
    }
}
