//! The modeled-program representation: expressions, statements, programs.

use ht_callgraph::{CallGraph, EdgeId, FuncId};
use ht_patch::AllocFn;
use std::collections::HashMap;
use std::fmt;

/// A buffer-handle slot.
///
/// Slots are program-global pointer variables; a dangling use-after-free is
/// modeled by reading through a slot whose buffer was freed (freeing does
/// *not* clear the slot, just like freeing does not clear a C pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u32);

impl SlotId {
    /// Index into the interpreter's slot table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An integer expression over the program input.
///
/// Inputs are the modeled equivalent of the paper's attack inputs: a vector
/// of integers that sizes, lengths and counts may reference. Arithmetic is
/// saturating so adversarial inputs cannot crash the *interpreter* (only the
/// modeled program).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(u64),
    /// Input parameter `i`; evaluates to 0 when the input is shorter.
    Input(usize),
    /// Saturating addition.
    Add(Box<Expr>, Box<Expr>),
    /// Saturating subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Saturating multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Integer division; division by zero yields 0.
    Div(Box<Expr>, Box<Expr>),
    /// Minimum.
    Min(Box<Expr>, Box<Expr>),
    /// Maximum.
    Max(Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // builder-style Expr constructors
impl Expr {
    /// Evaluates against `input`.
    pub fn eval(&self, input: &[u64]) -> u64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Input(i) => input.get(*i).copied().unwrap_or(0),
            Expr::Add(a, b) => a.eval(input).saturating_add(b.eval(input)),
            Expr::Sub(a, b) => a.eval(input).saturating_sub(b.eval(input)),
            Expr::Mul(a, b) => a.eval(input).saturating_mul(b.eval(input)),
            Expr::Div(a, b) => a.eval(input).checked_div(b.eval(input)).unwrap_or(0),
            Expr::Min(a, b) => a.eval(input).min(b.eval(input)),
            Expr::Max(a, b) => a.eval(input).max(b.eval(input)),
        }
    }

    /// `self + other` (builder convenience).
    #[must_use]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`, saturating.
    #[must_use]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(other))
    }

    /// `self * other`, saturating.
    #[must_use]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// `self / other` (0 when `other` evaluates to 0).
    #[must_use]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(other))
    }

    /// `min(self, other)`.
    #[must_use]
    pub fn min(self, other: Expr) -> Expr {
        Expr::Min(Box::new(self), Box::new(other))
    }

    /// `max(self, other)`.
    #[must_use]
    pub fn max(self, other: Expr) -> Expr {
        Expr::Max(Box::new(self), Box::new(other))
    }
}

impl From<u64> for Expr {
    fn from(v: u64) -> Self {
        Expr::Const(v)
    }
}

/// Where the result of a buffer read flows.
///
/// The offline analyzer only reports uninitialized reads whose value is
/// *used* — to decide control flow, as an address, or in a system call
/// (paper Section V avoids padding false positives this way). `Leak`
/// additionally appends the bytes to the run report, modeling data
/// exfiltration through a network send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sink {
    /// Value copied around but never used (no V-bit check).
    Discard,
    /// Value decides a conditional branch (V-bit checked).
    Branch,
    /// Value used as a memory address / function pointer (V-bit checked).
    Addr,
    /// Value passed to a system call (V-bit checked).
    Syscall,
    /// Value sent to the attacker — a send() syscall; bytes land in
    /// [`RunReport::leaked`](crate::RunReport). (V-bit checked.)
    Leak,
}

impl Sink {
    /// Whether the offline analyzer checks validity bits at this sink.
    pub fn checks_vbits(self) -> bool {
        !matches!(self, Sink::Discard)
    }
}

/// One statement of a function body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Call the function at the other end of this call-site edge.
    Call(EdgeId),
    /// An indirect (virtual) call: one call-graph edge per candidate
    /// callee, the input-derived selector picks which is taken at runtime.
    /// This is the construct DeltaPath extends PCCE for — each possible
    /// target of the site is its own instrumentable edge.
    CallVirtual {
        /// One edge per candidate callee, in declaration order.
        edges: Vec<EdgeId>,
        /// Selector expression; taken edge is `selector % edges.len()`.
        selector: Expr,
    },
    /// Allocate via `fun` into `slot`. `align` is only meaningful for
    /// [`AllocFn::Memalign`]. The edge points at the allocation-API node.
    Alloc {
        /// Call-site edge to the allocation-API node.
        edge: EdgeId,
        /// Destination slot for the returned pointer.
        slot: SlotId,
        /// Which allocation API.
        fun: AllocFn,
        /// Requested size in bytes.
        size: Expr,
        /// Alignment (power of two) for `memalign`.
        align: Expr,
    },
    /// `realloc(slot, new_size)`; `realloc(NULL, n)` behaves as `malloc(n)`.
    Realloc {
        /// Call-site edge to the `realloc` node.
        edge: EdgeId,
        /// Slot holding the pointer to resize (updated in place).
        slot: SlotId,
        /// New size in bytes.
        new_size: Expr,
    },
    /// `free(slot)`. The slot keeps its (now dangling) address.
    Free {
        /// Slot whose pointer is freed.
        slot: SlotId,
    },
    /// `slot = NULL` — defensive nulling; subsequent accesses through the
    /// slot are no-ops and a `realloc` behaves as `malloc`.
    Clear {
        /// Slot to null out.
        slot: SlotId,
    },
    /// Write `len` copies of `byte` at `slot + offset`.
    Write {
        /// Slot holding the base pointer.
        slot: SlotId,
        /// Byte offset from the base.
        offset: Expr,
        /// Length in bytes.
        len: Expr,
        /// Fill byte.
        byte: u8,
    },
    /// `memcpy(dst + dst_off, src + src_off, len)` — data moves between
    /// heap buffers *without* being used, so validity (and its origin)
    /// propagates silently; only a later checked use reports (paper Fig. 4's
    /// padding copies, and §V's origin tracking).
    Copy {
        /// Source slot.
        src: SlotId,
        /// Source byte offset.
        src_off: Expr,
        /// Destination slot.
        dst: SlotId,
        /// Destination byte offset.
        dst_off: Expr,
        /// Bytes to copy.
        len: Expr,
    },
    /// Read `len` bytes at `slot + offset` into `sink`.
    Read {
        /// Slot holding the base pointer.
        slot: SlotId,
        /// Byte offset from the base.
        offset: Expr,
        /// Length in bytes.
        len: Expr,
        /// Where the value flows.
        sink: Sink,
    },
    /// Execute the body `times` times.
    Repeat {
        /// Iteration count.
        times: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Execute `then_` if input-derived `cond` is non-zero, else `else_`.
    If {
        /// Condition expression (non-zero = true).
        cond: Expr,
        /// True branch.
        then_: Vec<Stmt>,
        /// False branch.
        else_: Vec<Stmt>,
    },
}

/// An immutable modeled program.
///
/// Construct with [`ProgramBuilder`](crate::ProgramBuilder). The program owns
/// its call graph; the allocation APIs are target nodes in that graph, so
/// [`ht_callgraph::Strategy`] and [`ht_encoding::InstrumentationPlan`] apply
/// directly.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) graph: CallGraph,
    pub(crate) bodies: Vec<Vec<Stmt>>,
    pub(crate) entry: FuncId,
    pub(crate) slot_count: u32,
    pub(crate) alloc_nodes: HashMap<FuncId, AllocFn>,
}

impl Program {
    /// The call graph (allocation APIs are its target nodes).
    pub fn graph(&self) -> &CallGraph {
        &self.graph
    }

    /// The entry function (`main`).
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// The body of a function (empty for allocation-API nodes).
    pub fn body(&self, f: FuncId) -> &[Stmt] {
        &self.bodies[f.index()]
    }

    /// Number of pointer slots the program uses.
    pub fn slot_count(&self) -> u32 {
        self.slot_count
    }

    /// If `f` is an allocation-API node, which API it is.
    pub fn alloc_fn_of(&self, f: FuncId) -> Option<AllocFn> {
        self.alloc_nodes.get(&f).copied()
    }

    /// Total statement count across all bodies (a program-size proxy).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Repeat { body, .. } => 1 + count(body),
                    Stmt::If { then_, else_, .. } => 1 + count(then_) + count(else_),
                    _ => 1,
                })
                .sum()
        }
        self.bodies.iter().map(|b| count(b)).sum()
    }

    /// Estimated uninstrumented program size in bytes (Table III
    /// denominator): statements and call sites modeled at typical x86-64
    /// instruction footprints.
    pub fn base_size_bytes(&self) -> usize {
        // ~24 bytes per statement, ~16 bytes of prologue/epilogue per
        // function, ~8 bytes per call site.
        self.stmt_count() * 24 + self.graph.func_count() * 16 + self.graph.edge_count() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval() {
        let input = [10u64, 3];
        assert_eq!(Expr::Const(5).eval(&input), 5);
        assert_eq!(Expr::Input(0).eval(&input), 10);
        assert_eq!(Expr::Input(9).eval(&input), 0, "missing input is 0");
        assert_eq!(Expr::Input(0).add(Expr::Input(1)).eval(&input), 13);
        assert_eq!(
            Expr::Input(1).sub(Expr::Input(0)).eval(&input),
            0,
            "saturates"
        );
        assert_eq!(Expr::Input(0).mul(Expr::Const(4)).eval(&input), 40);
        assert_eq!(Expr::Input(0).div(Expr::Input(1)).eval(&input), 3);
        assert_eq!(Expr::Input(0).div(Expr::Const(0)).eval(&input), 0);
        assert_eq!(Expr::Input(0).min(Expr::Input(1)).eval(&input), 3);
        assert_eq!(Expr::Input(0).max(Expr::Input(1)).eval(&input), 10);
        assert_eq!(Expr::from(7u64), Expr::Const(7));
    }

    #[test]
    fn expr_saturation_at_bounds() {
        assert_eq!(
            Expr::Const(u64::MAX).add(Expr::Const(1)).eval(&[]),
            u64::MAX
        );
        assert_eq!(
            Expr::Const(u64::MAX).mul(Expr::Const(2)).eval(&[]),
            u64::MAX
        );
    }

    #[test]
    fn sink_vbit_checking() {
        assert!(!Sink::Discard.checks_vbits());
        for s in [Sink::Branch, Sink::Addr, Sink::Syscall, Sink::Leak] {
            assert!(s.checks_vbits());
        }
    }

    #[test]
    fn slot_display() {
        assert_eq!(SlotId(4).to_string(), "s4");
        assert_eq!(SlotId(4).index(), 4);
    }
}
