//! Modeled programs: the substrate HeapTherapy+ instruments, attacks, and
//! protects.
//!
//! The paper instruments C/C++ programs with an LLVM pass and runs them on
//! real hardware. This crate supplies the equivalent substrate as a *modeled
//! program*: a call graph whose functions have bodies written in a small
//! statement language ([`Stmt`]) — calls, heap allocations, frees, buffer
//! reads and writes, loops — parameterized by an *input* (the attack input of
//! the paper becomes a vector of integers that sizes and lengths may
//! reference).
//!
//! The [`Interpreter`] executes a program while
//!
//! * driving an [`ht_encoding::Encoder`] with every call/return event, so
//!   each allocation carries its calling-context ID, and
//! * routing every heap operation through a pluggable [`HeapBackend`] — the
//!   plain allocator (attack succeeds silently), the offline shadow-memory
//!   analyzer (crate `ht-shadow`), or the online defended allocator (crate
//!   `ht-defense`).
//!
//! Workload models for the evaluation live in [`spec`] (SPEC CPU2006-like
//! benchmarks, Table IV parameters) and [`service`] (Nginx/MySQL-like request
//! loops).
//!
//! # Example
//!
//! ```
//! use ht_patch::AllocFn;
//! use ht_simprog::{Expr, Interpreter, PlainBackend, ProgramBuilder, Sink};
//! use ht_callgraph::Strategy;
//! use ht_encoding::{InstrumentationPlan, Scheme};
//!
//! let mut pb = ProgramBuilder::new();
//! let main = pb.entry();
//! let buf = pb.slot();
//! pb.define(main, |b| {
//!     b.alloc(buf, AllocFn::Malloc, Expr::Const(64));
//!     b.write(buf, Expr::Const(0), Expr::Const(64), 0xAA);
//!     b.read(buf, Expr::Const(0), Expr::Const(8), Sink::Leak);
//!     b.free(buf);
//! });
//! let prog = pb.build();
//!
//! let plan = InstrumentationPlan::build(prog.graph(), Strategy::Tcs, Scheme::Pcc);
//! let report = Interpreter::new(&prog, &plan, PlainBackend::new()).run(&[]);
//! assert!(report.outcome.is_completed());
//! assert_eq!(report.leaked, vec![0xAA; 8]);
//! ```

#![forbid(unsafe_code)]

pub mod backend;
pub mod builder;
pub mod interp;
pub mod program;
pub mod service;
pub mod spec;

pub use backend::{AccessOutcome, AllocRequest, HeapBackend, PlainBackend, ReadResult, StopCause};
pub use builder::{BodyBuilder, ProgramBuilder};
pub use interp::{AllocCallCounts, Interpreter, Limits, RunOutcome, RunReport};
pub use program::{Expr, Program, Sink, SlotId, Stmt};
