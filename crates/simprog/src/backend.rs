//! The heap-backend boundary and the plain (undefended) backend.

use ht_callgraph::FuncId;
use ht_encoding::Ccid;
use ht_memsim::{Addr, AddressSpace, AllocStats, BaseAllocator, FreeListAllocator, SpaceStats};
use ht_patch::AllocFn;
use std::fmt;

/// Everything a backend needs to service one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocRequest {
    /// The allocation API invoked.
    pub fun: AllocFn,
    /// Requested size in bytes.
    pub size: u64,
    /// Requested alignment (only meaningful for `memalign`).
    pub align: u64,
    /// The allocation-time calling-context ID.
    pub ccid: Ccid,
    /// The call-graph node of the allocation API (the Incremental key's
    /// target function).
    pub target: FuncId,
    /// For `realloc`: the pointer being resized.
    pub old_ptr: Option<Addr>,
}

/// Why a modeled run terminated abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopCause {
    /// A memory access faulted (the program received SIGSEGV) — this is what
    /// a guard-page hit looks like from inside the program.
    Segfault {
        /// Faulting address.
        addr: Addr,
        /// Whether the faulting access was a write.
        write: bool,
    },
    /// An allocation-family call failed (heap exhaustion, double free, ...).
    HeapMisuse(String),
    /// The interpreter's step budget ran out.
    StepLimit,
    /// The interpreter's call-depth budget ran out.
    DepthLimit,
}

impl fmt::Display for StopCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopCause::Segfault { addr, write } => {
                let op = if *write { "write" } else { "read" };
                write!(f, "segfault on {op} at {addr:#x}")
            }
            StopCause::HeapMisuse(m) => write!(f, "heap misuse: {m}"),
            StopCause::StepLimit => f.write_str("step limit exceeded"),
            StopCause::DepthLimit => f.write_str("call depth limit exceeded"),
        }
    }
}

/// Result of a buffer access: proceed, or terminate the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access completed (possibly corrupting memory — that is the
    /// undefended substrate doing its job).
    Ok,
    /// The access terminated the program (e.g. guard-page SIGSEGV).
    Stop(StopCause),
}

impl AccessOutcome {
    /// Whether the access completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, AccessOutcome::Ok)
    }
}

/// Result of a read: bytes obtained so far plus the outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadResult {
    /// Bytes read before any fault.
    pub data: Vec<u8>,
    /// Whether the read completed.
    pub outcome: AccessOutcome,
}

/// The heap boundary between the interpreter and a memory system.
///
/// Three implementations exist across the workspace:
///
/// * [`PlainBackend`] (here) — the undefended substrate: attacks corrupt and
///   leak silently,
/// * `ht_shadow::ShadowBackend` — the offline analyzer: detects and records
///   violations, then *continues* (warning-resume, paper Section V),
/// * `ht_defense::DefendedBackend` — the online system: patched buffers get
///   guard pages / deferred free / zero-init.
pub trait HeapBackend {
    /// Services an allocation (including `realloc` when
    /// [`AllocRequest::old_ptr`] is set).
    ///
    /// # Errors
    ///
    /// A [`StopCause`] terminates the modeled run.
    fn alloc(&mut self, req: &AllocRequest) -> Result<Addr, StopCause>;

    /// Services `free(ptr)`.
    fn free(&mut self, ptr: Addr) -> AccessOutcome;

    /// Writes `len` copies of `byte` starting at `addr`.
    fn write(&mut self, addr: Addr, len: u64, byte: u8) -> AccessOutcome;

    /// Reads `len` bytes starting at `addr` (`sink` is the value's use).
    fn read(&mut self, addr: Addr, len: u64, sink: crate::Sink) -> ReadResult;

    /// Copies `len` bytes from `src` to `dst` (a `memcpy` — the value is
    /// moved, not *used*, so analyzers must not treat this as a checked
    /// read).
    fn copy(&mut self, src: Addr, dst: Addr, len: u64) -> AccessOutcome;

    /// Memory-system statistics, if this backend tracks them.
    fn mem_stats(&self) -> Option<(SpaceStats, AllocStats)> {
        None
    }
}

/// The undefended substrate: a [`BaseAllocator`] over an [`AddressSpace`]
/// with no interposition at all.
///
/// Overflows silently corrupt neighbours, freed blocks are promptly reused
/// (LIFO), and fresh blocks carry stale bytes — i.e., attacks *work*, which
/// is the baseline Table II verifies against.
#[derive(Debug)]
pub struct PlainBackend<A: BaseAllocator = FreeListAllocator> {
    space: AddressSpace,
    heap: A,
}

impl PlainBackend<FreeListAllocator> {
    /// A plain backend over the free-list allocator.
    pub fn new() -> Self {
        Self::with_allocator(FreeListAllocator::new())
    }
}

impl Default for PlainBackend<FreeListAllocator> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: BaseAllocator> PlainBackend<A> {
    /// A plain backend over a caller-chosen allocator.
    pub fn with_allocator(heap: A) -> Self {
        Self {
            space: AddressSpace::new(),
            heap,
        }
    }

    /// The underlying address space.
    pub fn space(&self) -> &AddressSpace {
        &self.space
    }

    /// The underlying allocator.
    pub fn allocator(&self) -> &A {
        &self.heap
    }
}

impl<A: BaseAllocator> HeapBackend for PlainBackend<A> {
    fn alloc(&mut self, req: &AllocRequest) -> Result<Addr, StopCause> {
        let r = match (req.fun, req.old_ptr) {
            (AllocFn::Realloc, Some(old)) => self.heap.realloc(&mut self.space, old, req.size),
            (AllocFn::Memalign, _) => self.heap.memalign(&mut self.space, req.align, req.size),
            _ => self.heap.malloc(&mut self.space, req.size),
        };
        let ptr = r.map_err(|e| StopCause::HeapMisuse(e.to_string()))?;
        if req.fun == AllocFn::Calloc {
            self.space
                .fill(ptr, req.size, 0)
                .map_err(|e| StopCause::HeapMisuse(e.to_string()))?;
        }
        Ok(ptr)
    }

    fn free(&mut self, ptr: Addr) -> AccessOutcome {
        match self.heap.free(&mut self.space, ptr) {
            Ok(()) => AccessOutcome::Ok,
            // Real programs crash (or corrupt the heap) on double/invalid
            // free; model it as an abort.
            Err(e) => AccessOutcome::Stop(StopCause::HeapMisuse(e.to_string())),
        }
    }

    fn write(&mut self, addr: Addr, len: u64, byte: u8) -> AccessOutcome {
        match self.space.fill(addr, len, byte) {
            Ok(()) => AccessOutcome::Ok,
            Err(f) => AccessOutcome::Stop(StopCause::Segfault {
                addr: f.addr,
                write: true,
            }),
        }
    }

    fn read(&mut self, addr: Addr, len: u64, _sink: crate::Sink) -> ReadResult {
        let mut data = vec![0u8; len as usize];
        match self.space.read(addr, &mut data) {
            Ok(()) => ReadResult {
                data,
                outcome: AccessOutcome::Ok,
            },
            Err(f) => {
                data.truncate(f.completed as usize);
                ReadResult {
                    data,
                    outcome: AccessOutcome::Stop(StopCause::Segfault {
                        addr: f.addr,
                        write: false,
                    }),
                }
            }
        }
    }

    fn copy(&mut self, src: Addr, dst: Addr, len: u64) -> AccessOutcome {
        let mut buf = vec![0u8; len as usize];
        if let Err(f) = self.space.read(src, &mut buf) {
            return AccessOutcome::Stop(StopCause::Segfault {
                addr: f.addr,
                write: false,
            });
        }
        match self.space.write(dst, &buf) {
            Ok(()) => AccessOutcome::Ok,
            Err(f) => AccessOutcome::Stop(StopCause::Segfault {
                addr: f.addr,
                write: true,
            }),
        }
    }

    fn mem_stats(&self) -> Option<(SpaceStats, AllocStats)> {
        Some((self.space.stats(), self.heap.stats()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sink;
    use ht_encoding::Ccid;

    fn req(fun: AllocFn, size: u64) -> AllocRequest {
        AllocRequest {
            fun,
            size,
            align: 16,
            ccid: Ccid(0),
            target: FuncId(0),
            old_ptr: None,
        }
    }

    #[test]
    fn malloc_write_read_cycle() {
        let mut b = PlainBackend::new();
        let p = b.alloc(&req(AllocFn::Malloc, 32)).unwrap();
        assert!(b.write(p, 32, 0x7F).is_ok());
        let r = b.read(p, 32, Sink::Discard);
        assert!(r.outcome.is_ok());
        assert_eq!(r.data, vec![0x7F; 32]);
        assert!(b.free(p).is_ok());
    }

    #[test]
    fn calloc_zeroes() {
        let mut b = PlainBackend::new();
        // Dirty a block, free it, calloc the same class: must be zero.
        let p = b.alloc(&req(AllocFn::Malloc, 64)).unwrap();
        b.write(p, 64, 0xFF);
        b.free(p);
        let q = b.alloc(&req(AllocFn::Calloc, 64)).unwrap();
        assert_eq!(q, p, "LIFO reuse");
        let r = b.read(q, 64, Sink::Discard);
        assert_eq!(r.data, vec![0u8; 64]);
    }

    #[test]
    fn malloc_exposes_stale_bytes() {
        // The uninitialized-read substrate property: malloc after free hands
        // back the previous contents.
        let mut b = PlainBackend::new();
        let p = b.alloc(&req(AllocFn::Malloc, 64)).unwrap();
        b.write(p, 64, 0xEE);
        b.free(p);
        let q = b.alloc(&req(AllocFn::Malloc, 64)).unwrap();
        let r = b.read(q, 64, Sink::Leak);
        assert_eq!(r.data, vec![0xEE; 64], "stale data leaks");
    }

    #[test]
    fn realloc_via_request() {
        let mut b = PlainBackend::new();
        let p = b.alloc(&req(AllocFn::Malloc, 16)).unwrap();
        b.write(p, 16, 0x11);
        let mut r = req(AllocFn::Realloc, 256);
        r.old_ptr = Some(p);
        let q = b.alloc(&r).unwrap();
        let got = b.read(q, 16, Sink::Discard);
        assert_eq!(got.data, vec![0x11; 16]);
    }

    #[test]
    fn double_free_stops_run() {
        let mut b = PlainBackend::new();
        let p = b.alloc(&req(AllocFn::Malloc, 16)).unwrap();
        assert!(b.free(p).is_ok());
        match b.free(p) {
            AccessOutcome::Stop(StopCause::HeapMisuse(m)) => {
                assert!(m.contains("double free"), "{m}");
            }
            other => panic!("expected stop, got {other:?}"),
        }
    }

    #[test]
    fn wild_access_segfaults() {
        let mut b = PlainBackend::new();
        match b.write(0x10, 1, 0) {
            AccessOutcome::Stop(StopCause::Segfault { write: true, .. }) => {}
            other => panic!("expected segfault, got {other:?}"),
        }
        let r = b.read(0x10, 4, Sink::Discard);
        assert!(!r.outcome.is_ok());
        assert!(r.data.is_empty());
    }

    #[test]
    fn stop_cause_display() {
        let s = StopCause::Segfault {
            addr: 0xabc,
            write: true,
        };
        assert!(s.to_string().contains("0xabc"));
        assert!(StopCause::StepLimit.to_string().contains("step"));
        assert!(StopCause::DepthLimit.to_string().contains("depth"));
        assert!(StopCause::HeapMisuse("x".into()).to_string().contains("x"));
    }

    #[test]
    fn mem_stats_available() {
        let mut b = PlainBackend::new();
        let p = b.alloc(&req(AllocFn::Malloc, 100)).unwrap();
        b.write(p, 100, 1);
        let (space, heap) = b.mem_stats().unwrap();
        assert!(space.rss_bytes > 0);
        assert_eq!(heap.live_bytes, 100);
    }
}
