//! Ergonomic construction of modeled programs.

use crate::program::{Expr, Program, Sink, SlotId, Stmt};
use ht_callgraph::{CallGraphBuilder, FuncId};
use ht_patch::AllocFn;
use std::collections::HashMap;

/// Builder for [`Program`].
///
/// Functions are declared with [`ProgramBuilder::func`] (or
/// [`ProgramBuilder::entry`] for `main`), pointer slots with
/// [`ProgramBuilder::slot`], and bodies with [`ProgramBuilder::define`],
/// whose closure receives a [`BodyBuilder`]:
///
/// ```
/// use ht_patch::AllocFn;
/// use ht_simprog::{Expr, ProgramBuilder, Sink};
///
/// let mut pb = ProgramBuilder::new();
/// let main = pb.entry();
/// let helper = pb.func("helper");
/// let buf = pb.slot();
/// pb.define(main, |b| {
///     b.call(helper);
/// });
/// pb.define(helper, |b| {
///     b.alloc(buf, AllocFn::Malloc, Expr::Input(0));
///     b.write(buf, Expr::Const(0), Expr::Input(0), 0x41);
///     b.free(buf);
/// });
/// let prog = pb.build();
/// assert_eq!(prog.graph().func_count(), 3); // main, helper, malloc
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    cg: CallGraphBuilder,
    bodies: HashMap<FuncId, Vec<Stmt>>,
    entry: Option<FuncId>,
    slot_count: u32,
    alloc_nodes: HashMap<AllocFn, FuncId>,
}

impl ProgramBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the entry function `main` and records it as the entry point.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn entry(&mut self) -> FuncId {
        assert!(self.entry.is_none(), "entry already declared");
        let f = self.cg.func("main");
        self.entry = Some(f);
        f
    }

    /// Declares an ordinary function.
    pub fn func(&mut self, name: impl Into<String>) -> FuncId {
        self.cg.func(name)
    }

    /// Allocates a fresh pointer slot.
    pub fn slot(&mut self) -> SlotId {
        let s = SlotId(self.slot_count);
        self.slot_count += 1;
        s
    }

    /// Allocates `n` fresh pointer slots.
    pub fn slots(&mut self, n: u32) -> Vec<SlotId> {
        (0..n).map(|_| self.slot()).collect()
    }

    /// The call-graph node for an allocation API, created on first use (so
    /// unused APIs never appear as spurious roots).
    pub fn alloc_node(&mut self, fun: AllocFn) -> FuncId {
        if let Some(&f) = self.alloc_nodes.get(&fun) {
            return f;
        }
        let f = self.cg.target(fun.name());
        self.alloc_nodes.insert(fun, f);
        f
    }

    /// Defines (or extends) the body of `f`.
    pub fn define(&mut self, f: FuncId, build: impl FnOnce(&mut BodyBuilder<'_>)) {
        let mut bb = BodyBuilder {
            pb: self,
            f,
            stmts: Vec::new(),
        };
        build(&mut bb);
        let stmts = bb.stmts;
        self.bodies.entry(f).or_default().extend(stmts);
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if no entry was declared.
    pub fn build(self) -> Program {
        let entry = self.entry.expect("ProgramBuilder::entry was never called");
        let graph = self.cg.build();
        let mut bodies = vec![Vec::new(); graph.func_count()];
        for (f, stmts) in self.bodies {
            bodies[f.index()] = stmts;
        }
        let alloc_nodes = self
            .alloc_nodes
            .into_iter()
            .map(|(fun, f)| (f, fun))
            .collect();
        Program {
            graph,
            bodies,
            entry,
            slot_count: self.slot_count,
            alloc_nodes,
        }
    }
}

/// Statement-level builder for one function body.
///
/// Created by [`ProgramBuilder::define`]. Call-site edges are registered in
/// the call graph as statements are appended, so the instrumentation analyses
/// see exactly the call sites the interpreter will execute.
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    f: FuncId,
    stmts: Vec<Stmt>,
}

impl BodyBuilder<'_> {
    /// Appends a call to `callee`.
    pub fn call(&mut self, callee: FuncId) {
        let e = self.pb.cg.call(self.f, callee);
        self.stmts.push(Stmt::Call(e));
    }

    /// Appends an indirect (virtual) call: the runtime selector picks one
    /// of `candidates`. Each candidate becomes a distinct call-graph edge.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn call_virtual(&mut self, candidates: &[FuncId], selector: impl Into<Expr>) {
        assert!(!candidates.is_empty(), "virtual call needs candidates");
        let edges = candidates
            .iter()
            .map(|&callee| self.pb.cg.call(self.f, callee))
            .collect();
        self.stmts.push(Stmt::CallVirtual {
            edges,
            selector: selector.into(),
        });
    }

    /// Appends an allocation through `fun` into `slot`.
    ///
    /// For [`AllocFn::Memalign`] use [`BodyBuilder::memalign`] to control the
    /// alignment (this method uses 16).
    pub fn alloc(&mut self, slot: SlotId, fun: AllocFn, size: impl Into<Expr>) {
        let node = self.pb.alloc_node(fun);
        let e = self.pb.cg.call(self.f, node);
        self.stmts.push(Stmt::Alloc {
            edge: e,
            slot,
            fun,
            size: size.into(),
            align: Expr::Const(16),
        });
    }

    /// Appends a `memalign(align, size)` into `slot`.
    pub fn memalign(&mut self, slot: SlotId, align: impl Into<Expr>, size: impl Into<Expr>) {
        let node = self.pb.alloc_node(AllocFn::Memalign);
        let e = self.pb.cg.call(self.f, node);
        self.stmts.push(Stmt::Alloc {
            edge: e,
            slot,
            fun: AllocFn::Memalign,
            size: size.into(),
            align: align.into(),
        });
    }

    /// Appends a `realloc(slot, new_size)` updating `slot` in place.
    pub fn realloc(&mut self, slot: SlotId, new_size: impl Into<Expr>) {
        let node = self.pb.alloc_node(AllocFn::Realloc);
        let e = self.pb.cg.call(self.f, node);
        self.stmts.push(Stmt::Realloc {
            edge: e,
            slot,
            new_size: new_size.into(),
        });
    }

    /// Appends a `free(slot)` (the slot keeps its dangling address).
    pub fn free(&mut self, slot: SlotId) {
        self.stmts.push(Stmt::Free { slot });
    }

    /// Appends `slot = NULL` (defensive nulling).
    pub fn clear(&mut self, slot: SlotId) {
        self.stmts.push(Stmt::Clear { slot });
    }

    /// Appends a write of `len` copies of `byte` at `slot + offset`.
    pub fn write(&mut self, slot: SlotId, offset: impl Into<Expr>, len: impl Into<Expr>, byte: u8) {
        self.stmts.push(Stmt::Write {
            slot,
            offset: offset.into(),
            len: len.into(),
            byte,
        });
    }

    /// Appends `memcpy(dst+dst_off, src+src_off, len)`.
    pub fn copy(
        &mut self,
        src: SlotId,
        src_off: impl Into<Expr>,
        dst: SlotId,
        dst_off: impl Into<Expr>,
        len: impl Into<Expr>,
    ) {
        self.stmts.push(Stmt::Copy {
            src,
            src_off: src_off.into(),
            dst,
            dst_off: dst_off.into(),
            len: len.into(),
        });
    }

    /// Appends a read of `len` bytes at `slot + offset` flowing to `sink`.
    pub fn read(
        &mut self,
        slot: SlotId,
        offset: impl Into<Expr>,
        len: impl Into<Expr>,
        sink: Sink,
    ) {
        self.stmts.push(Stmt::Read {
            slot,
            offset: offset.into(),
            len: len.into(),
            sink,
        });
    }

    /// Appends a loop running `times` iterations of the nested body.
    pub fn repeat(&mut self, times: impl Into<Expr>, build: impl FnOnce(&mut BodyBuilder<'_>)) {
        let mut child = BodyBuilder {
            pb: self.pb,
            f: self.f,
            stmts: Vec::new(),
        };
        build(&mut child);
        let body = child.stmts;
        self.stmts.push(Stmt::Repeat {
            times: times.into(),
            body,
        });
    }

    /// Appends a conditional on `cond != 0`.
    pub fn if_else(
        &mut self,
        cond: impl Into<Expr>,
        build_then: impl FnOnce(&mut BodyBuilder<'_>),
        build_else: impl FnOnce(&mut BodyBuilder<'_>),
    ) {
        let mut t = BodyBuilder {
            pb: self.pb,
            f: self.f,
            stmts: Vec::new(),
        };
        build_then(&mut t);
        let then_ = t.stmts;
        let mut e = BodyBuilder {
            pb: self.pb,
            f: self.f,
            stmts: Vec::new(),
        };
        build_else(&mut e);
        let else_ = e.stmts;
        self.stmts.push(Stmt::If {
            cond: cond.into(),
            then_,
            else_,
        });
    }

    /// Appends a conditional with no else branch.
    pub fn when(&mut self, cond: impl Into<Expr>, build_then: impl FnOnce(&mut BodyBuilder<'_>)) {
        self.if_else(cond, build_then, |_| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_graph_and_bodies_together() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let worker = pb.func("worker");
        let s = pb.slot();
        pb.define(main, |b| {
            b.call(worker);
            b.call(worker);
        });
        pb.define(worker, |b| {
            b.alloc(s, AllocFn::Malloc, 64u64);
            b.free(s);
        });
        let p = pb.build();
        // main, worker, malloc
        assert_eq!(p.graph().func_count(), 3);
        // 2 call sites main->worker, 1 worker->malloc
        assert_eq!(p.graph().edge_count(), 3);
        assert_eq!(p.body(main).len(), 2);
        assert_eq!(p.body(worker).len(), 2);
        let malloc = p.graph().func_by_name("malloc").unwrap();
        assert!(p.graph().is_target(malloc));
        assert_eq!(p.alloc_fn_of(malloc), Some(AllocFn::Malloc));
        assert_eq!(p.slot_count(), 1);
    }

    #[test]
    fn alloc_apis_created_lazily_and_once() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 8u64);
            b.alloc(s, AllocFn::Malloc, 8u64);
            b.memalign(s, 64u64, 8u64);
        });
        let p = pb.build();
        // main, malloc, memalign — calloc/realloc never materialize.
        assert_eq!(p.graph().func_count(), 3);
        assert!(p.graph().func_by_name("calloc").is_none());
        // Single root: main.
        assert_eq!(p.graph().roots(), vec![p.entry()]);
    }

    #[test]
    fn nested_repeat_and_if() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.repeat(3u64, |b| {
                b.when(Expr::Input(0), |b| {
                    b.alloc(s, AllocFn::Calloc, 16u64);
                    b.free(s);
                });
            });
        });
        let p = pb.build();
        assert_eq!(p.stmt_count(), 4, "repeat + if + alloc + free");
        assert!(p.base_size_bytes() > 0);
    }

    #[test]
    fn define_extends_existing_body() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| b.alloc(s, AllocFn::Malloc, 8u64));
        pb.define(main, |b| b.free(s));
        let p = pb.build();
        assert_eq!(p.body(main).len(), 2);
    }

    #[test]
    #[should_panic(expected = "entry already declared")]
    fn double_entry_panics() {
        let mut pb = ProgramBuilder::new();
        pb.entry();
        pb.entry();
    }

    #[test]
    #[should_panic(expected = "never called")]
    fn build_without_entry_panics() {
        ProgramBuilder::new().build();
    }
}
