//! Heap patches as configuration (paper Sections V–VI).
//!
//! A HeapTherapy+ patch is a tuple `{FUN, CCID, T}`:
//!
//! * `FUN` — the [`AllocFn`] used to request the vulnerable buffer,
//! * `CCID` — the allocation-time calling-context ID,
//! * `T` — a three-bit [`VulnFlags`] value naming the vulnerability type(s):
//!   overflow, use-after-free, uninitialized read.
//!
//! Patches are *code-less*: installing one never alters the program. They
//! live in a configuration file ([`config`]) that the online defense loads at
//! startup into a [`PatchTable`] — a frozen hash table probed in O(1) on
//! every allocation.
//!
//! # Example
//!
//! ```
//! use ht_patch::{AllocFn, Patch, PatchTable, VulnFlags};
//!
//! let patch = Patch::new(AllocFn::Malloc, 0x1234, VulnFlags::OVERFLOW);
//! let table = PatchTable::from_patches([patch]);
//! assert_eq!(
//!     table.lookup(AllocFn::Malloc, 0x1234),
//!     Some(VulnFlags::OVERFLOW)
//! );
//! assert_eq!(table.lookup(AllocFn::Malloc, 0x9999), None);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod table;
pub mod vuln;

pub use config::{from_config_json, from_config_text, to_config_json, to_config_text, ConfigError};
pub use table::PatchTable;
pub use vuln::{AllocFn, VulnFlags};

use ht_jsonio::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// One heap patch: `{FUN, CCID, T}` plus optional provenance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Patch {
    /// The allocation API through which the vulnerable buffer is requested.
    pub alloc_fn: AllocFn,
    /// The allocation-time calling-context ID of the vulnerable buffer.
    pub ccid: u64,
    /// Vulnerability type bits: which defenses to apply.
    pub vuln: VulnFlags,
    /// Free-form provenance (e.g. the CVE id the attack input exploited).
    /// Omitted from the JSON form when empty.
    pub origin: String,
}

impl Patch {
    /// A patch without provenance.
    pub fn new(alloc_fn: AllocFn, ccid: u64, vuln: VulnFlags) -> Self {
        Self {
            alloc_fn,
            ccid,
            vuln,
            origin: String::new(),
        }
    }

    /// Attaches provenance (builder style).
    #[must_use]
    pub fn with_origin(mut self, origin: impl Into<String>) -> Self {
        self.origin = origin.into();
        self
    }

    /// The hash-table key of this patch.
    pub fn key(&self) -> (AllocFn, u64) {
        (self.alloc_fn, self.ccid)
    }
}

impl ToJson for Patch {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("alloc_fn".to_string(), self.alloc_fn.to_json()),
            ("ccid".to_string(), Json::U64(self.ccid)),
            ("vuln".to_string(), self.vuln.to_json()),
        ];
        if !self.origin.is_empty() {
            members.push(("origin".to_string(), Json::Str(self.origin.clone())));
        }
        Json::Obj(members)
    }
}

impl FromJson for Patch {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let alloc_fn = AllocFn::from_json(
            v.get("alloc_fn")
                .ok_or_else(|| JsonError::shape("patch missing `alloc_fn`"))?,
        )?;
        let ccid = v.req_u64("ccid")?;
        let vuln = VulnFlags::from_json(
            v.get("vuln")
                .ok_or_else(|| JsonError::shape("patch missing `vuln`"))?,
        )?;
        let origin = match v.get("origin") {
            None => String::new(),
            Some(o) => o
                .as_str()
                .ok_or_else(|| JsonError::shape("patch `origin` must be a string"))?
                .to_string(),
        };
        Ok(Patch {
            alloc_fn,
            ccid,
            vuln,
            origin,
        })
    }
}

impl fmt::Display for Patch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {:#x}, {}}}", self.alloc_fn, self.ccid, self.vuln)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_display_matches_paper_form() {
        let p = Patch::new(
            AllocFn::Malloc,
            0xab,
            VulnFlags::OVERFLOW | VulnFlags::UNINIT_READ,
        );
        assert_eq!(p.to_string(), "{malloc, 0xab, OF|UR}");
    }

    #[test]
    fn key_combines_fun_and_ccid() {
        let p = Patch::new(AllocFn::Memalign, 7, VulnFlags::USE_AFTER_FREE);
        assert_eq!(p.key(), (AllocFn::Memalign, 7));
    }

    #[test]
    fn origin_builder() {
        let p = Patch::new(AllocFn::Malloc, 1, VulnFlags::OVERFLOW).with_origin("CVE-2014-0160");
        assert_eq!(p.origin, "CVE-2014-0160");
    }
}
