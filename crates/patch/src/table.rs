//! The frozen online patch table.

use crate::{AllocFn, Patch, VulnFlags};

/// The hash table the online defense probes on every allocation.
///
/// Built once at program initialization from the configuration file and then
/// frozen (the paper `mprotect`s its pages read-only; here immutability is
/// enforced by the type: there is no mutating method). The backing store is
/// a flat open-addressing probe array sized to ≤ 50% load — the hot lookup
/// is a hash, a mask, and a short linear scan over one cache line in the
/// common case, with no `HashMap` bucket indirection and no SipHash.
///
/// Duplicate keys merge their vulnerability bits — an input exploiting
/// multiple vulnerabilities of one buffer yields one entry with several bits
/// set (paper Section V, "How to handle multiple vulnerabilities").
///
/// [`PatchTable::iter`] yields entries sorted by `(FUN, CCID)`, so every
/// report or configuration file derived from a table is byte-identical
/// across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatchTable {
    /// Probe array; `None` = empty slot. Power-of-two length.
    slots: Vec<Option<((AllocFn, u64), VulnFlags)>>,
    /// The merged entries, sorted by `(FUN, CCID)`.
    entries: Vec<(AllocFn, u64, VulnFlags)>,
}

#[inline]
fn key_hash(fun: AllocFn, ccid: u64) -> usize {
    (ccid ^ ((fun as u64) << 56)).wrapping_mul(0x9E3779B97F4A7C15) as usize
}

impl PatchTable {
    /// An empty table (no buffer is considered vulnerable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from patches, merging duplicates.
    pub fn from_patches<I: IntoIterator<Item = Patch>>(patches: I) -> Self {
        let mut entries: Vec<(AllocFn, u64, VulnFlags)> = patches
            .into_iter()
            .map(|p| (p.alloc_fn, p.ccid, p.vuln))
            .collect();
        entries.sort_by_key(|&(f, c, _)| (f, c));
        entries.dedup_by(|later, earlier| {
            if (earlier.0, earlier.1) == (later.0, later.1) {
                earlier.2 |= later.2;
                true
            } else {
                false
            }
        });
        let mut table = Self {
            slots: Vec::new(),
            entries,
        };
        table.rebuild_slots();
        table
    }

    /// Rebuilds the probe array from `self.entries` at ≤ 50% load.
    fn rebuild_slots(&mut self) {
        let cap = (self.entries.len() * 2).next_power_of_two().max(8);
        self.slots.clear();
        self.slots.resize(cap, None);
        let mask = cap - 1;
        for &(fun, ccid, vuln) in &self.entries {
            let mut s = key_hash(fun, ccid) & mask;
            while self.slots[s].is_some() {
                s = (s + 1) & mask;
            }
            self.slots[s] = Some(((fun, ccid), vuln));
        }
    }

    /// O(1) probe: is a buffer allocated via `fun` under context `ccid`
    /// vulnerable, and to what?
    #[inline]
    pub fn lookup(&self, fun: AllocFn, ccid: u64) -> Option<VulnFlags> {
        if self.entries.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut s = key_hash(fun, ccid) & mask;
        while let Some((key, vuln)) = self.slots[s] {
            if key == (fun, ccid) {
                return Some(vuln);
            }
            s = (s + 1) & mask;
        }
        None
    }

    /// The slot index of `(fun, ccid)`: its position in the sorted entry
    /// list. A dense, stable per-patch key — telemetry counters and
    /// once-bit report masks are keyed by it.
    pub fn slot_index(&self, fun: AllocFn, ccid: u64) -> Option<usize> {
        self.entries
            .binary_search_by_key(&(fun, ccid), |&(f, c, _)| (f, c))
            .ok()
    }

    /// The entry at [slot index](Self::slot_index) `i`.
    pub fn entry(&self, i: usize) -> Option<(AllocFn, u64, VulnFlags)> {
        self.entries.get(i).copied()
    }

    /// Number of distinct `(FUN, CCID)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no patches.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in ascending `(FUN, CCID)` order — a
    /// deterministic order, so derived output is stable across runs.
    pub fn iter(&self) -> impl Iterator<Item = (AllocFn, u64, VulnFlags)> + '_ {
        self.entries.iter().copied()
    }
}

impl FromIterator<Patch> for PatchTable {
    fn from_iter<I: IntoIterator<Item = Patch>>(iter: I) -> Self {
        Self::from_patches(iter)
    }
}

impl Extend<Patch> for PatchTable {
    fn extend<I: IntoIterator<Item = Patch>>(&mut self, iter: I) {
        // Rebuild-on-extend: extension happens at configuration-load time,
        // never on the allocation path, so simplicity wins over speed.
        let merged = Self::from_patches(
            self.entries
                .iter()
                .map(|&(f, c, v)| Patch::new(f, c, v))
                .chain(iter),
        );
        *self = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_hits_and_misses() {
        let t = PatchTable::from_patches([
            Patch::new(AllocFn::Malloc, 1, VulnFlags::OVERFLOW),
            Patch::new(AllocFn::Calloc, 2, VulnFlags::UNINIT_READ),
        ]);
        assert_eq!(t.lookup(AllocFn::Malloc, 1), Some(VulnFlags::OVERFLOW));
        assert_eq!(t.lookup(AllocFn::Calloc, 2), Some(VulnFlags::UNINIT_READ));
        assert_eq!(t.lookup(AllocFn::Malloc, 2), None, "key includes FUN");
        assert_eq!(t.lookup(AllocFn::Calloc, 1), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicates_merge_bits() {
        let t = PatchTable::from_patches([
            Patch::new(AllocFn::Malloc, 9, VulnFlags::OVERFLOW),
            Patch::new(AllocFn::Malloc, 9, VulnFlags::UNINIT_READ),
        ]);
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.lookup(AllocFn::Malloc, 9),
            Some(VulnFlags::OVERFLOW | VulnFlags::UNINIT_READ)
        );
    }

    #[test]
    fn empty_table() {
        let t = PatchTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(AllocFn::Malloc, 0), None);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: PatchTable = [Patch::new(AllocFn::Malloc, 1, VulnFlags::OVERFLOW)]
            .into_iter()
            .collect();
        t.extend([Patch::new(AllocFn::Malloc, 1, VulnFlags::USE_AFTER_FREE)]);
        assert_eq!(
            t.lookup(AllocFn::Malloc, 1),
            Some(VulnFlags::OVERFLOW | VulnFlags::USE_AFTER_FREE)
        );
        t.extend([Patch::new(AllocFn::Realloc, 7, VulnFlags::OVERFLOW)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(AllocFn::Realloc, 7), Some(VulnFlags::OVERFLOW));
    }

    #[test]
    fn iter_yields_all_entries_sorted() {
        let t = PatchTable::from_patches([
            Patch::new(AllocFn::Realloc, 2, VulnFlags::ALL),
            Patch::new(AllocFn::Malloc, 5, VulnFlags::USE_AFTER_FREE),
            Patch::new(AllocFn::Malloc, 1, VulnFlags::OVERFLOW),
        ]);
        let got: Vec<_> = t.iter().collect();
        assert_eq!(
            got,
            vec![
                (AllocFn::Malloc, 1, VulnFlags::OVERFLOW),
                (AllocFn::Malloc, 5, VulnFlags::USE_AFTER_FREE),
                (AllocFn::Realloc, 2, VulnFlags::ALL),
            ],
            "iteration order is sorted (FUN, CCID), not hash order"
        );
    }

    #[test]
    fn slot_index_is_the_sorted_position() {
        let t = PatchTable::from_patches([
            Patch::new(AllocFn::Realloc, 2, VulnFlags::ALL),
            Patch::new(AllocFn::Malloc, 5, VulnFlags::USE_AFTER_FREE),
            Patch::new(AllocFn::Malloc, 1, VulnFlags::OVERFLOW),
        ]);
        assert_eq!(t.slot_index(AllocFn::Malloc, 1), Some(0));
        assert_eq!(t.slot_index(AllocFn::Malloc, 5), Some(1));
        assert_eq!(t.slot_index(AllocFn::Realloc, 2), Some(2));
        assert_eq!(t.slot_index(AllocFn::Malloc, 2), None);
        assert_eq!(
            t.entry(2),
            Some((AllocFn::Realloc, 2, VulnFlags::ALL)),
            "entry() resolves the slot back to the patch"
        );
        assert_eq!(t.entry(3), None);
        // slot_index and lookup agree on every entry.
        for (i, (f, c, v)) in t.iter().enumerate() {
            assert_eq!(t.slot_index(f, c), Some(i));
            assert_eq!(t.lookup(f, c), Some(v));
        }
    }

    #[test]
    fn dense_tables_probe_correctly() {
        // Enough keys to force wraparound probes at 50% load.
        let patches: Vec<Patch> = (0..300)
            .map(|i| Patch::new(AllocFn::Malloc, i * 3 + 1, VulnFlags::OVERFLOW))
            .collect();
        let t = PatchTable::from_patches(patches);
        assert_eq!(t.len(), 300);
        for i in 0..300u64 {
            assert_eq!(
                t.lookup(AllocFn::Malloc, i * 3 + 1),
                Some(VulnFlags::OVERFLOW)
            );
            assert_eq!(t.lookup(AllocFn::Malloc, i * 3 + 2), None);
        }
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = PatchTable::from_patches([
            Patch::new(AllocFn::Malloc, 1, VulnFlags::OVERFLOW),
            Patch::new(AllocFn::Calloc, 2, VulnFlags::UNINIT_READ),
        ]);
        let b = PatchTable::from_patches([
            Patch::new(AllocFn::Calloc, 2, VulnFlags::UNINIT_READ),
            Patch::new(AllocFn::Malloc, 1, VulnFlags::OVERFLOW),
        ]);
        assert_eq!(a, b);
    }
}
