//! The frozen online patch table.

use crate::{AllocFn, Patch, VulnFlags};
use std::collections::HashMap;

/// The hash table the online defense probes on every allocation.
///
/// Built once at program initialization from the configuration file and then
/// frozen (the paper `mprotect`s its pages read-only; here immutability is
/// enforced by the type: there is no mutating method). Lookup is O(1) on the
/// `(FUN, CCID)` key.
///
/// Duplicate keys merge their vulnerability bits — an input exploiting
/// multiple vulnerabilities of one buffer yields one entry with several bits
/// set (paper Section V, "How to handle multiple vulnerabilities").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatchTable {
    entries: HashMap<(AllocFn, u64), VulnFlags>,
}

impl PatchTable {
    /// An empty table (no buffer is considered vulnerable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from patches, merging duplicates.
    pub fn from_patches<I: IntoIterator<Item = Patch>>(patches: I) -> Self {
        let mut entries: HashMap<(AllocFn, u64), VulnFlags> = HashMap::new();
        for p in patches {
            *entries.entry(p.key()).or_insert(VulnFlags::NONE) |= p.vuln;
        }
        Self { entries }
    }

    /// O(1) probe: is a buffer allocated via `fun` under context `ccid`
    /// vulnerable, and to what?
    #[inline]
    pub fn lookup(&self, fun: AllocFn, ccid: u64) -> Option<VulnFlags> {
        self.entries.get(&(fun, ccid)).copied()
    }

    /// Number of distinct `(FUN, CCID)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds no patches.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (AllocFn, u64, VulnFlags)> + '_ {
        self.entries.iter().map(|(&(f, c), &v)| (f, c, v))
    }
}

impl FromIterator<Patch> for PatchTable {
    fn from_iter<I: IntoIterator<Item = Patch>>(iter: I) -> Self {
        Self::from_patches(iter)
    }
}

impl Extend<Patch> for PatchTable {
    fn extend<I: IntoIterator<Item = Patch>>(&mut self, iter: I) {
        for p in iter {
            *self.entries.entry(p.key()).or_insert(VulnFlags::NONE) |= p.vuln;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_hits_and_misses() {
        let t = PatchTable::from_patches([
            Patch::new(AllocFn::Malloc, 1, VulnFlags::OVERFLOW),
            Patch::new(AllocFn::Calloc, 2, VulnFlags::UNINIT_READ),
        ]);
        assert_eq!(t.lookup(AllocFn::Malloc, 1), Some(VulnFlags::OVERFLOW));
        assert_eq!(t.lookup(AllocFn::Calloc, 2), Some(VulnFlags::UNINIT_READ));
        assert_eq!(t.lookup(AllocFn::Malloc, 2), None, "key includes FUN");
        assert_eq!(t.lookup(AllocFn::Calloc, 1), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicates_merge_bits() {
        let t = PatchTable::from_patches([
            Patch::new(AllocFn::Malloc, 9, VulnFlags::OVERFLOW),
            Patch::new(AllocFn::Malloc, 9, VulnFlags::UNINIT_READ),
        ]);
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.lookup(AllocFn::Malloc, 9),
            Some(VulnFlags::OVERFLOW | VulnFlags::UNINIT_READ)
        );
    }

    #[test]
    fn empty_table() {
        let t = PatchTable::new();
        assert!(t.is_empty());
        assert_eq!(t.lookup(AllocFn::Malloc, 0), None);
    }

    #[test]
    fn collect_and_extend() {
        let mut t: PatchTable = [Patch::new(AllocFn::Malloc, 1, VulnFlags::OVERFLOW)]
            .into_iter()
            .collect();
        t.extend([Patch::new(AllocFn::Malloc, 1, VulnFlags::USE_AFTER_FREE)]);
        assert_eq!(
            t.lookup(AllocFn::Malloc, 1),
            Some(VulnFlags::OVERFLOW | VulnFlags::USE_AFTER_FREE)
        );
    }

    #[test]
    fn iter_yields_all_entries() {
        let t = PatchTable::from_patches([
            Patch::new(AllocFn::Malloc, 1, VulnFlags::OVERFLOW),
            Patch::new(AllocFn::Realloc, 2, VulnFlags::ALL),
        ]);
        let mut got: Vec<_> = t.iter().collect();
        got.sort();
        assert_eq!(
            got,
            vec![
                (AllocFn::Malloc, 1, VulnFlags::OVERFLOW),
                (AllocFn::Realloc, 2, VulnFlags::ALL),
            ]
        );
    }
}
