//! Vulnerability-type flags and allocation-API names.

use ht_jsonio::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::ops::{BitOr, BitOrAssign};
use std::str::FromStr;

/// The allocation APIs the online defense interposes.
///
/// `calloc` is distinguished from `malloc` because the pair
/// `(FUN, CCID)` is the patch key under the Incremental encoding — different
/// interception functions are invoked per API (paper Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AllocFn {
    /// `malloc(size)`
    Malloc,
    /// `calloc(n, size)` — zero-initializing
    Calloc,
    /// `realloc(ptr, size)`
    Realloc,
    /// `memalign(align, size)` / `aligned_alloc`
    Memalign,
}

impl AllocFn {
    /// All allocation APIs.
    pub const ALL: [AllocFn; 4] = [
        AllocFn::Malloc,
        AllocFn::Calloc,
        AllocFn::Realloc,
        AllocFn::Memalign,
    ];

    /// The C-level symbol name.
    pub fn name(self) -> &'static str {
        match self {
            AllocFn::Malloc => "malloc",
            AllocFn::Calloc => "calloc",
            AllocFn::Realloc => "realloc",
            AllocFn::Memalign => "memalign",
        }
    }
}

impl fmt::Display for AllocFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing an [`AllocFn`] or [`VulnFlags`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVulnError(pub String);

impl fmt::Display for ParseVulnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized token `{}`", self.0)
    }
}

impl std::error::Error for ParseVulnError {}

impl FromStr for AllocFn {
    type Err = ParseVulnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "malloc" => Ok(AllocFn::Malloc),
            "calloc" => Ok(AllocFn::Calloc),
            "realloc" => Ok(AllocFn::Realloc),
            "memalign" | "aligned_alloc" | "posix_memalign" => Ok(AllocFn::Memalign),
            other => Err(ParseVulnError(other.to_string())),
        }
    }
}

impl ToJson for AllocFn {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for AllocFn {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .ok_or_else(|| JsonError::shape("AllocFn must be a string"))?
            .parse()
            .map_err(|e: ParseVulnError| JsonError::shape(e.to_string()))
    }
}

/// The paper's three-bit vulnerability-type field `T`.
///
/// A hand-rolled bitflag type (the `bitflags` crate is outside this
/// project's dependency allowance); the bit layout matches the metadata-word
/// type field of the online defense (crate `ht-defense`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VulnFlags(u8);

impl VulnFlags {
    /// No vulnerability.
    pub const NONE: VulnFlags = VulnFlags(0);
    /// Buffer overflow (overwrite or overread) — bit 0.
    pub const OVERFLOW: VulnFlags = VulnFlags(1 << 0);
    /// Use after free — bit 1.
    pub const USE_AFTER_FREE: VulnFlags = VulnFlags(1 << 1);
    /// Uninitialized read — bit 2.
    pub const UNINIT_READ: VulnFlags = VulnFlags(1 << 2);
    /// All three bits.
    pub const ALL: VulnFlags = VulnFlags(0b111);

    /// Constructs from raw bits, truncating to the low three.
    pub fn from_bits_truncate(bits: u8) -> Self {
        VulnFlags(bits & 0b111)
    }

    /// The raw bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether every bit of `other` is set in `self`.
    pub fn contains(self, other: VulnFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no bit is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union (builder style).
    #[must_use]
    pub fn union(self, other: VulnFlags) -> VulnFlags {
        VulnFlags(self.0 | other.0)
    }

    /// Number of distinct vulnerability types present.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

impl ToJson for VulnFlags {
    fn to_json(&self) -> Json {
        // Wire form is the bare bit pattern, matching the metadata word.
        Json::U64(self.0 as u64)
    }
}

impl FromJson for VulnFlags {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let bits = v
            .as_u64()
            .ok_or_else(|| JsonError::shape("VulnFlags must be an integer"))?;
        if bits > 0b111 {
            return Err(JsonError::shape(format!("VulnFlags `{bits}` out of range")));
        }
        Ok(VulnFlags(bits as u8))
    }
}

impl BitOr for VulnFlags {
    type Output = VulnFlags;
    fn bitor(self, rhs: VulnFlags) -> VulnFlags {
        self.union(rhs)
    }
}

impl BitOrAssign for VulnFlags {
    fn bitor_assign(&mut self, rhs: VulnFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for VulnFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("NONE");
        }
        let mut first = true;
        let mut put = |f: &mut fmt::Formatter<'_>, s: &str| -> fmt::Result {
            if !first {
                f.write_str("|")?;
            }
            first = false;
            f.write_str(s)
        };
        if self.contains(VulnFlags::OVERFLOW) {
            put(f, "OF")?;
        }
        if self.contains(VulnFlags::USE_AFTER_FREE) {
            put(f, "UAF")?;
        }
        if self.contains(VulnFlags::UNINIT_READ) {
            put(f, "UR")?;
        }
        Ok(())
    }
}

impl FromStr for VulnFlags {
    type Err = ParseVulnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "NONE" {
            return Ok(VulnFlags::NONE);
        }
        let mut flags = VulnFlags::NONE;
        for tok in s.split('|') {
            flags |= match tok {
                "OF" | "OVERFLOW" => VulnFlags::OVERFLOW,
                "UAF" | "USE_AFTER_FREE" => VulnFlags::USE_AFTER_FREE,
                "UR" | "UNINIT_READ" => VulnFlags::UNINIT_READ,
                other => return Err(ParseVulnError(other.to_string())),
            };
        }
        Ok(flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_union_and_contains() {
        let f = VulnFlags::OVERFLOW | VulnFlags::UNINIT_READ;
        assert!(f.contains(VulnFlags::OVERFLOW));
        assert!(f.contains(VulnFlags::UNINIT_READ));
        assert!(!f.contains(VulnFlags::USE_AFTER_FREE));
        assert_eq!(f.count(), 2);
        assert!(VulnFlags::ALL.contains(f));
    }

    #[test]
    fn flags_display_round_trip() {
        for bits in 0..8u8 {
            let f = VulnFlags::from_bits_truncate(bits);
            let s = f.to_string();
            let back: VulnFlags = s.parse().unwrap();
            assert_eq!(f, back, "{s}");
        }
    }

    #[test]
    fn flags_parse_long_names() {
        assert_eq!(
            "OVERFLOW|USE_AFTER_FREE".parse::<VulnFlags>().unwrap(),
            VulnFlags::OVERFLOW | VulnFlags::USE_AFTER_FREE
        );
        assert!("BOGUS".parse::<VulnFlags>().is_err());
    }

    #[test]
    fn from_bits_truncates_high_bits() {
        assert_eq!(VulnFlags::from_bits_truncate(0xFF), VulnFlags::ALL);
    }

    #[test]
    fn alloc_fn_names_round_trip() {
        for fun in AllocFn::ALL {
            let s = fun.to_string();
            assert_eq!(s.parse::<AllocFn>().unwrap(), fun);
        }
        assert_eq!(
            "aligned_alloc".parse::<AllocFn>().unwrap(),
            AllocFn::Memalign
        );
        assert!("mmap".parse::<AllocFn>().is_err());
    }

    #[test]
    fn json_wire_forms() {
        assert_eq!(AllocFn::Malloc.to_json().to_compact(), "\"malloc\"");
        assert_eq!(
            (VulnFlags::OVERFLOW | VulnFlags::UNINIT_READ)
                .to_json()
                .to_compact(),
            "5"
        );
        assert_eq!(
            AllocFn::from_json(&Json::parse("\"calloc\"").unwrap()).unwrap(),
            AllocFn::Calloc
        );
        assert_eq!(
            VulnFlags::from_json(&Json::parse("7").unwrap()).unwrap(),
            VulnFlags::ALL
        );
        assert!(VulnFlags::from_json(&Json::parse("8").unwrap()).is_err());
        assert!(AllocFn::from_json(&Json::parse("\"mmap\"").unwrap()).is_err());
    }

    #[test]
    fn or_assign() {
        let mut f = VulnFlags::NONE;
        f |= VulnFlags::USE_AFTER_FREE;
        assert_eq!(f, VulnFlags::USE_AFTER_FREE);
        assert!(VulnFlags::NONE.is_empty());
        assert_eq!(VulnFlags::NONE.to_string(), "NONE");
    }
}
