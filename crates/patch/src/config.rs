//! The patch configuration file.
//!
//! Two interchangeable formats:
//!
//! * a line-oriented text format, one patch per line —
//!   `malloc 0x1f3a OF|UR  # CVE-2014-0160` — matching the paper's Figure 5
//!   presentation, and
//! * JSON, for tooling.

use crate::{AllocFn, Patch, VulnFlags};
use ht_jsonio::{FromJson, Json, ToJson};
use std::fmt;

/// Error reading a configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A malformed text line (1-based line number, message).
    Line(usize, String),
    /// JSON syntax or shape error.
    Json(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Line(n, msg) => write!(f, "config line {n}: {msg}"),
            ConfigError::Json(msg) => write!(f, "config json: {msg}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Renders patches in the line-oriented text format.
pub fn to_config_text(patches: &[Patch]) -> String {
    let mut out = String::from("# HeapTherapy+ patch configuration\n# FUN CCID TYPE [# origin]\n");
    for p in patches {
        out.push_str(&format!("{} {:#x} {}", p.alloc_fn, p.ccid, p.vuln));
        if !p.origin.is_empty() {
            out.push_str(&format!("  # {}", p.origin));
        }
        out.push('\n');
    }
    out
}

/// Parses the line-oriented text format.
///
/// Blank lines and `#` comments are ignored; an inline `# origin` suffix is
/// kept as the patch's provenance.
///
/// # Errors
///
/// [`ConfigError::Line`] with the offending 1-based line number.
pub fn from_config_text(text: &str) -> Result<Vec<Patch>, ConfigError> {
    let mut patches = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let (body, comment) = match raw.find('#') {
            Some(pos) => (&raw[..pos], raw[pos + 1..].trim()),
            None => (raw, ""),
        };
        let body = body.trim();
        if body.is_empty() {
            continue;
        }
        let mut parts = body.split_whitespace();
        let fun = parts
            .next()
            .ok_or_else(|| ConfigError::Line(lineno, "missing FUN".into()))?;
        let ccid = parts
            .next()
            .ok_or_else(|| ConfigError::Line(lineno, "missing CCID".into()))?;
        let vuln = parts
            .next()
            .ok_or_else(|| ConfigError::Line(lineno, "missing TYPE".into()))?;
        if let Some(extra) = parts.next() {
            return Err(ConfigError::Line(lineno, format!("unexpected `{extra}`")));
        }
        let alloc_fn: AllocFn = fun
            .parse()
            .map_err(|e| ConfigError::Line(lineno, format!("{e}")))?;
        let ccid = parse_u64(ccid)
            .ok_or_else(|| ConfigError::Line(lineno, format!("CCID `{ccid}` is not an integer")))?;
        let vuln: VulnFlags = vuln
            .parse()
            .map_err(|e| ConfigError::Line(lineno, format!("{e}")))?;
        let mut p = Patch::new(alloc_fn, ccid, vuln);
        if !comment.is_empty() {
            p = p.with_origin(comment);
        }
        patches.push(p);
    }
    Ok(patches)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Renders patches as pretty JSON.
pub fn to_config_json(patches: &[Patch]) -> String {
    Json::Arr(patches.iter().map(Patch::to_json).collect()).to_pretty()
}

/// Parses the JSON format.
///
/// # Errors
///
/// [`ConfigError::Json`] on malformed input.
pub fn from_config_json(json: &str) -> Result<Vec<Patch>, ConfigError> {
    let doc = Json::parse(json).map_err(|e| ConfigError::Json(e.to_string()))?;
    let items = doc
        .as_arr()
        .ok_or_else(|| ConfigError::Json("expected a JSON array of patches".into()))?;
    items
        .iter()
        .map(|item| Patch::from_json(item).map_err(|e| ConfigError::Json(e.to_string())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Patch> {
        vec![
            Patch::new(
                AllocFn::Malloc,
                0x1f3a,
                VulnFlags::OVERFLOW | VulnFlags::UNINIT_READ,
            )
            .with_origin("CVE-2014-0160"),
            Patch::new(AllocFn::Memalign, 42, VulnFlags::USE_AFTER_FREE),
            Patch::new(AllocFn::Calloc, u64::MAX, VulnFlags::ALL),
        ]
    }

    #[test]
    fn text_round_trip() {
        let patches = sample();
        let text = to_config_text(&patches);
        let back = from_config_text(&text).unwrap();
        assert_eq!(patches, back);
    }

    #[test]
    fn json_round_trip() {
        let patches = sample();
        let back = from_config_json(&to_config_json(&patches)).unwrap();
        assert_eq!(patches, back);
    }

    #[test]
    fn text_accepts_decimal_and_hex_ccids() {
        let p = from_config_text("malloc 255 OF\ncalloc 0xff UR\n").unwrap();
        assert_eq!(p[0].ccid, 255);
        assert_eq!(p[1].ccid, 255);
    }

    #[test]
    fn text_skips_blanks_and_comments() {
        let p = from_config_text("\n# all comments\n\n  \nmalloc 1 OF\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn text_errors_carry_line_numbers() {
        let err = from_config_text("malloc 1 OF\nbogus 2 OF\n").unwrap_err();
        assert_eq!(
            err,
            ConfigError::Line(2, "unrecognized token `bogus`".into())
        );
        let err = from_config_text("malloc zzz OF").unwrap_err();
        assert!(matches!(err, ConfigError::Line(1, _)));
        let err = from_config_text("malloc 1 OF extra").unwrap_err();
        assert!(matches!(err, ConfigError::Line(1, _)));
        let err = from_config_text("malloc 1").unwrap_err();
        assert!(matches!(err, ConfigError::Line(1, _)));
    }

    #[test]
    fn json_error_reported() {
        assert!(matches!(
            from_config_json("{not json"),
            Err(ConfigError::Json(_))
        ));
    }

    #[test]
    fn multi_type_patch_parses() {
        let p = from_config_text("malloc 7 OF|UAF|UR").unwrap();
        assert_eq!(p[0].vuln, VulnFlags::ALL);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_patch() -> impl Strategy<Value = Patch> {
            (0usize..4, any::<u64>(), 1u8..8).prop_map(|(f, ccid, bits)| {
                Patch::new(AllocFn::ALL[f], ccid, VulnFlags::from_bits_truncate(bits))
            })
        }

        proptest! {
            #[test]
            fn any_patch_list_round_trips_text(patches in proptest::collection::vec(arb_patch(), 0..20)) {
                let text = to_config_text(&patches);
                prop_assert_eq!(from_config_text(&text).unwrap(), patches);
            }

            #[test]
            fn any_patch_list_round_trips_json(patches in proptest::collection::vec(arb_patch(), 0..20)) {
                let json = to_config_json(&patches);
                prop_assert_eq!(from_config_json(&json).unwrap(), patches);
            }
        }
    }
}
