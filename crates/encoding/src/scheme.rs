//! Encoding schemes and the CCID newtype.

use ht_jsonio::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// An encoded calling context — the paper's *Calling Context ID*.
///
/// A CCID only has meaning relative to the [`InstrumentationPlan`] that
/// produced it; comparing CCIDs across plans is meaningless.
///
/// [`InstrumentationPlan`]: crate::InstrumentationPlan
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ccid(pub u64);

impl ToJson for Ccid {
    fn to_json(&self) -> Json {
        Json::U64(self.0)
    }
}

impl FromJson for Ccid {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u64()
            .map(Ccid)
            .ok_or_else(|| JsonError::shape("CCID must be an integer"))
    }
}

impl fmt::Display for Ccid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Ccid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Ccid {
    fn from(v: u64) -> Self {
        Ccid(v)
    }
}

/// How `V` is updated at an instrumented call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Probabilistic Calling Context (Bond & McKinley): `V = 3·V + c`
    /// (wrapping), with `c` a pseudo-random per-site constant. Collisions are
    /// possible but astronomically unlikely for realistic context counts; a
    /// collision in HeapTherapy+ merely over-protects a buffer and never
    /// breaks correctness.
    Pcc,
    /// Precise positional encoding: `V = V·K + c` with per-caller digits
    /// `1 ≤ c < K`, where the radix `K` exceeds every caller's instrumented
    /// out-degree. Injective over instrumented-site sequences as long as the
    /// accumulated value stays below 2⁶⁴ (depth × log₂K bits); decodable on
    /// acyclic call graphs.
    Positional,
    /// PCCE/DeltaPath-style additive encoding: `V = V + c` with constants
    /// from a Ball–Larus numbering of the target-reaching sub-DAG, so CCIDs
    /// are *dense* — context `i` of `N` encodes exactly as `i ∈ [0, N)` —
    /// and decodable. Falls back to pseudo-random constants (PCC-grade
    /// probabilistic identity, not decodable) when the target-reaching
    /// subgraph is recursive, the restriction PCCE lifts with a push-down
    /// escape mechanism the paper does not rely on.
    Additive,
}

impl Scheme {
    /// All schemes.
    pub const ALL: [Scheme; 3] = [Scheme::Pcc, Scheme::Positional, Scheme::Additive];

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Pcc => "pcc",
            Scheme::Positional => "positional",
            Scheme::Additive => "additive",
        }
    }

    /// Applies the update rule for one instrumented call site.
    ///
    /// `radix` is only used by [`Scheme::Positional`].
    #[inline]
    pub fn update(self, v: u64, c: u64, radix: u64) -> u64 {
        match self {
            Scheme::Pcc => v.wrapping_mul(3).wrapping_add(c),
            Scheme::Positional => v.wrapping_mul(radix).wrapping_add(c),
            Scheme::Additive => v.wrapping_add(c),
        }
    }

    /// Whether encodings of this scheme can *ever* be decoded back into
    /// contexts (also check
    /// [`InstrumentationPlan::is_precise`](crate::InstrumentationPlan::is_precise):
    /// an additive plan over a recursive graph degrades to probabilistic).
    pub fn is_decodable(self) -> bool {
        matches!(self, Scheme::Positional | Scheme::Additive)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ToJson for Scheme {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for Scheme {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let name = v
            .as_str()
            .ok_or_else(|| JsonError::shape("scheme must be a string"))?;
        Scheme::ALL
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| JsonError::shape(format!("unknown scheme `{name}`")))
    }
}

/// SplitMix64 — the per-site constant generator for PCC.
///
/// Deterministic so that a plan rebuilt from the same graph yields the same
/// CCIDs (patches must stay valid across runs, paper Section VI).
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcc_update_matches_paper_formula() {
        assert_eq!(Scheme::Pcc.update(10, 7, 0), 37);
        // wrapping behaviour
        let big = u64::MAX;
        assert_eq!(
            Scheme::Pcc.update(big, 5, 0),
            big.wrapping_mul(3).wrapping_add(5)
        );
    }

    #[test]
    fn positional_update_is_base_k_append() {
        assert_eq!(Scheme::Positional.update(0, 2, 10), 2);
        assert_eq!(Scheme::Positional.update(2, 3, 10), 23);
        assert_eq!(Scheme::Positional.update(23, 1, 10), 231);
    }

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let a = splitmix64(1);
        let b = splitmix64(1);
        let c = splitmix64(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ccid_display_is_hex() {
        assert_eq!(Ccid(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Ccid(255)), "ff");
        assert_eq!(Ccid::from(7u64), Ccid(7));
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Pcc.name(), "pcc");
        assert_eq!(Scheme::Positional.to_string(), "positional");
        assert!(!Scheme::Pcc.is_decodable());
        assert!(Scheme::Positional.is_decodable());
    }
}
