//! Runtime encoders: the O(1) encoding state machine and a stack-walking
//! baseline for comparison.

use crate::plan::InstrumentationPlan;
use crate::scheme::{splitmix64, Ccid};
use ht_callgraph::EdgeId;

/// The runtime half of calling-context encoding.
///
/// Feed it every call and return event; [`Encoder::current`] is then always
/// the CCID of the live context. Only *instrumented* sites update `V`
/// (costing one multiply-add, counted in [`Encoder::ops`]); the rest are
/// free — this is exactly where targeted encoding saves time over FCS.
///
/// The encoder mirrors PCC's save/restore semantics: each function activation
/// conceptually saves `V` in a local at its prologue and the caller's `V` is
/// re-derived from that local after the call, so `V` always reflects the
/// *current* stack, not the deepest one reached.
#[derive(Debug, Clone)]
pub struct Encoder<'p> {
    plan: &'p InstrumentationPlan,
    v: u64,
    /// Saved `V` per active call (instrumented or not), restored on return.
    frames: Vec<u64>,
    ops: u64,
}

impl<'p> Encoder<'p> {
    /// A fresh encoder at the program entry context (`V = 0`).
    pub fn new(plan: &'p InstrumentationPlan) -> Self {
        Self {
            plan,
            v: 0,
            frames: Vec::with_capacity(64),
            ops: 0,
        }
    }

    /// Records traversal of call site `e`.
    #[inline]
    pub fn on_call(&mut self, e: EdgeId) {
        self.frames.push(self.v);
        if let Some(c) = self.plan.constant(e) {
            self.v = self.plan.scheme().update(self.v, c, self.plan.radix());
            self.ops += 1;
        }
    }

    /// Records a return from the most recent call.
    ///
    /// # Panics
    ///
    /// Panics if there is no active call (unbalanced return).
    #[inline]
    pub fn on_return(&mut self) {
        self.v = self
            .frames
            .pop()
            .expect("Encoder::on_return without matching on_call");
    }

    /// The CCID of the current calling context.
    #[inline]
    pub fn current(&self) -> Ccid {
        Ccid(self.v)
    }

    /// Number of instrumentation updates executed so far — the dynamic
    /// overhead proxy used by the encoding benchmarks.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Resets to the entry context, clearing counters.
    pub fn reset(&mut self) {
        self.v = 0;
        self.frames.clear();
        self.ops = 0;
    }

    /// The plan this encoder executes.
    pub fn plan(&self) -> &'p InstrumentationPlan {
        self.plan
    }
}

/// Stack walking baseline (what `gdb`/`backtrace()` would do).
///
/// Maintains the explicit call stack and, on demand, hashes the entire stack
/// to produce a context ID. Each [`StackWalker::walk`] costs `O(depth)` —
/// compare with the encoder's `O(1)` read. Used by the ablation benchmark
/// contrasting encoding with per-allocation stack walks.
#[derive(Debug, Clone, Default)]
pub struct StackWalker {
    stack: Vec<EdgeId>,
    /// Total stack frames visited by `walk` calls — the cost proxy.
    frames_walked: u64,
}

impl StackWalker {
    /// An empty stack at program entry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records traversal of call site `e`.
    #[inline]
    pub fn on_call(&mut self, e: EdgeId) {
        self.stack.push(e);
    }

    /// Records a return.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    #[inline]
    pub fn on_return(&mut self) {
        self.stack
            .pop()
            .expect("StackWalker::on_return on empty stack");
    }

    /// Walks the stack and hashes every frame into a context ID.
    pub fn walk(&mut self) -> Ccid {
        self.frames_walked += self.stack.len() as u64;
        let mut h = 0xcbf29ce484222325u64;
        for e in &self.stack {
            h = splitmix64(h ^ e.0 as u64);
        }
        Ccid(h)
    }

    /// Total frames visited across all `walk` calls.
    pub fn frames_walked(&self) -> u64 {
        self.frames_walked
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use ht_callgraph::{CallGraph, CallGraphBuilder, Strategy};

    fn graph() -> (CallGraph, [EdgeId; 4]) {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let f = b.func("f");
        let g_ = b.func("g");
        let m = b.target("malloc");
        let e_mf = b.call(main, f);
        let e_mg = b.call(main, g_);
        let e_fm = b.call(f, m);
        let e_gm = b.call(g_, m);
        (b.build(), [e_mf, e_mg, e_fm, e_gm])
    }

    #[test]
    fn distinct_contexts_get_distinct_ccids() {
        let (g, [e_mf, e_mg, e_fm, e_gm]) = graph();
        for scheme in Scheme::ALL {
            for strategy in Strategy::ALL {
                let plan = InstrumentationPlan::build(&g, strategy, scheme);
                let mut enc = Encoder::new(&plan);
                enc.on_call(e_mf);
                enc.on_call(e_fm);
                let via_f = enc.current();
                enc.on_return();
                enc.on_return();
                enc.on_call(e_mg);
                enc.on_call(e_gm);
                let via_g = enc.current();
                assert_ne!(via_f, via_g, "{strategy}/{scheme}");
            }
        }
    }

    #[test]
    fn return_restores_previous_ccid() {
        let (g, [e_mf, _, e_fm, _]) = graph();
        let plan = InstrumentationPlan::build(&g, Strategy::Fcs, Scheme::Pcc);
        let mut enc = Encoder::new(&plan);
        let entry = enc.current();
        enc.on_call(e_mf);
        let in_f = enc.current();
        enc.on_call(e_fm);
        enc.on_return();
        assert_eq!(enc.current(), in_f);
        enc.on_return();
        assert_eq!(enc.current(), entry);
        assert_eq!(enc.depth(), 0);
    }

    #[test]
    fn ops_counted_only_on_instrumented_sites() {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let dead = b.func("dead");
        let m = b.target("malloc");
        let e_dead = b.call(main, dead);
        let e_m = b.call(main, m);
        let g = b.build();
        let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Pcc);
        let mut enc = Encoder::new(&plan);
        enc.on_call(e_dead);
        assert_eq!(enc.ops(), 0);
        enc.on_return();
        enc.on_call(e_m);
        assert_eq!(enc.ops(), 1);
    }

    #[test]
    fn reset_restores_entry_state() {
        let (g, [e_mf, ..]) = graph();
        let plan = InstrumentationPlan::build(&g, Strategy::Fcs, Scheme::Pcc);
        let mut enc = Encoder::new(&plan);
        enc.on_call(e_mf);
        enc.reset();
        assert_eq!(enc.current(), Ccid(0));
        assert_eq!(enc.ops(), 0);
        assert_eq!(enc.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "without matching on_call")]
    fn unbalanced_return_panics() {
        let (g, _) = graph();
        let plan = InstrumentationPlan::build(&g, Strategy::Fcs, Scheme::Pcc);
        let mut enc = Encoder::new(&plan);
        enc.on_return();
    }

    #[test]
    fn stack_walker_costs_depth_per_walk() {
        let (_, [e_mf, _, e_fm, _]) = graph();
        let mut w = StackWalker::new();
        w.on_call(e_mf);
        w.on_call(e_fm);
        let id1 = w.walk();
        assert_eq!(w.frames_walked(), 2);
        let id2 = w.walk();
        assert_eq!(id1, id2);
        assert_eq!(w.frames_walked(), 4);
        w.on_return();
        let id3 = w.walk();
        assert_ne!(id1, id3);
        assert_eq!(w.depth(), 1);
    }

    #[test]
    fn stack_walker_distinguishes_orders() {
        let (_, [e_mf, e_mg, ..]) = graph();
        let mut w1 = StackWalker::new();
        w1.on_call(e_mf);
        w1.on_call(e_mg);
        let mut w2 = StackWalker::new();
        w2.on_call(e_mg);
        w2.on_call(e_mf);
        assert_ne!(w1.walk(), w2.walk());
    }

    #[test]
    fn encoder_matches_recursion_depths() {
        // Recursive f; each level of recursion yields a fresh CCID under FCS.
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let f = b.func("f");
        let m = b.target("malloc");
        let e_mf = b.call(main, f);
        let e_ff = b.call(f, f);
        let e_fm = b.call(f, m);
        let _ = e_fm;
        let g = b.build();
        let plan = InstrumentationPlan::build(&g, Strategy::Fcs, Scheme::Pcc);
        let mut enc = Encoder::new(&plan);
        enc.on_call(e_mf);
        let d1 = enc.current();
        enc.on_call(e_ff);
        let d2 = enc.current();
        enc.on_call(e_ff);
        let d3 = enc.current();
        assert_ne!(d1, d2);
        assert_ne!(d2, d3);
        enc.on_return();
        assert_eq!(enc.current(), d2);
    }
}
