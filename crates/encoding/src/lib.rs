//! Calling-context encoding for HeapTherapy+ (paper Section IV).
//!
//! A *calling context* is the sequence of active call sites on the stack. For
//! heap patching we need the context of every allocation continuously
//! available in O(1) — walking the stack at every `malloc` is far too slow
//! (the paper reports large overheads for allocation-intensive programs).
//! Calling-context *encoding* maintains one integer `V` that always equals an
//! encoding of the current context:
//!
//! * [`Scheme::Pcc`] — probabilistic calling context: at each instrumented
//!   call site `V = 3·V + c` with a per-site constant `c`. Compact,
//!   probabilistically unique, not decodable.
//! * [`Scheme::Positional`] — a precise positional scheme: `V = V·K + c`
//!   with per-caller digits `1 ≤ c < K`. Injective over instrumented-site
//!   sequences (no hash collisions) and decodable back to the full context on
//!   acyclic graphs — see [`analysis::decode`].
//! * [`Scheme::Additive`] — the PCCE/DeltaPath family: `V = V + c` with
//!   Ball–Larus constants over the target-reaching sub-DAG, so the `N`
//!   contexts of a program encode *densely* as `0..N` and decode exactly;
//!   recursive subgraphs degrade to PCC-grade probabilistic constants
//!   (check [`InstrumentationPlan::is_precise`]).
//!
//! Which call sites carry instrumentation is decided by an
//! [`ht_callgraph::Strategy`]; an [`InstrumentationPlan`] binds a strategy, a
//! scheme, and the per-site constants. The runtime [`Encoder`] then consumes
//! call/return events.
//!
//! # Example
//!
//! ```
//! use ht_callgraph::{CallGraphBuilder, Strategy};
//! use ht_encoding::{Encoder, InstrumentationPlan, Scheme};
//!
//! let mut b = CallGraphBuilder::new();
//! let main = b.func("main");
//! let worker = b.func("worker");
//! let malloc = b.target("malloc");
//! let e1 = b.call(main, worker);
//! let e2 = b.call(worker, malloc);
//! let e3 = b.call(main, malloc);
//! let g = b.build();
//!
//! let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Pcc);
//! let mut enc = Encoder::new(&plan);
//! enc.on_call(e1);
//! enc.on_call(e2);
//! let deep = enc.current();
//! enc.on_return();
//! enc.on_return();
//! enc.on_call(e3);
//! assert_ne!(deep, enc.current()); // different contexts, different CCIDs
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod encoder;
pub mod plan;
pub mod scheme;

pub use analysis::{
    collision_report, decode, encode_context, expected_pcc_collisions, CollisionReport,
};
pub use encoder::{Encoder, StackWalker};
pub use plan::InstrumentationPlan;
pub use scheme::{Ccid, Scheme};
