//! Instrumentation plans: strategy + scheme + per-site constants.

use crate::scheme::{splitmix64, Scheme};
use ht_callgraph::{CallGraph, EdgeId, EdgeSet, FuncId, Reachability, Strategy};
use ht_jsonio::{obj, FromJson, Json, JsonError, ToJson};

/// Estimated machine-code bytes added per instrumented call site.
///
/// PCC inserts a multiply-add on a thread-local plus the prologue load; ~10
/// bytes of x86-64 is the paper's ballpark. Used by the Table III
/// size-increase proxy.
pub const BYTES_PER_SITE: usize = 10;

/// A complete description of how a program is instrumented for
/// calling-context encoding.
///
/// Binds together the site-selection [`Strategy`], the update [`Scheme`], the
/// selected [`EdgeSet`], and the per-site constants. Construction is
/// deterministic: the same graph, strategy and scheme always produce the same
/// plan — a requirement for patches (which embed CCIDs) to remain valid
/// across program restarts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrumentationPlan {
    strategy: Strategy,
    scheme: Scheme,
    sites: EdgeSet,
    /// `constants[edge] = Some(c)` iff the edge is instrumented.
    constants: Vec<Option<u64>>,
    /// Radix for [`Scheme::Positional`]; 0 for PCC.
    radix: u64,
    /// Whether CCIDs under this plan uniquely identify contexts (and, for
    /// decodable schemes, decode). False for PCC and for Additive plans
    /// whose target-reaching subgraph is recursive.
    precise: bool,
    /// For precise Additive plans: the Ball–Larus context count per
    /// function (indexed by `FuncId`), 0 for functions that cannot reach a
    /// target. Empty otherwise.
    num_contexts: Vec<u64>,
}

impl InstrumentationPlan {
    /// Builds a plan for `graph` under `strategy` and `scheme`.
    ///
    /// For [`Scheme::Pcc`], each instrumented site gets a SplitMix64 constant
    /// derived from its edge id. For [`Scheme::Positional`], the instrumented
    /// out-edges of each caller get digits `1, 2, …` and the radix `K` is one
    /// more than the maximum instrumented out-degree (at least 2).
    pub fn build(graph: &CallGraph, strategy: Strategy, scheme: Scheme) -> Self {
        let sites = strategy.select(graph);
        let mut constants = vec![None; graph.edge_count()];
        let mut precise = scheme != Scheme::Pcc;
        let mut num_contexts = Vec::new();
        let radix = match scheme {
            Scheme::Pcc => {
                for e in sites.iter() {
                    constants[e.index()] = Some(splitmix64(e.0 as u64));
                }
                0
            }
            Scheme::Positional => {
                let mut max_digits = 1u64;
                for f in graph.func_ids() {
                    let mut digit = 1u64;
                    for &e in &graph.func(f).out_edges {
                        if sites.contains(e) {
                            constants[e.index()] = Some(digit);
                            digit += 1;
                        }
                    }
                    max_digits = max_digits.max(digit - 1);
                }
                max_digits + 1
            }
            Scheme::Additive => {
                match additive_numbering(graph, &sites) {
                    Some((consts, counts)) => {
                        constants = consts;
                        num_contexts = counts;
                    }
                    None => {
                        // Recursive (or overflowing) target-reaching
                        // subgraph: degrade to PCC-grade pseudo-random
                        // constants — probabilistic identity, no decoding.
                        for e in sites.iter() {
                            constants[e.index()] = Some(splitmix64(e.0 as u64));
                        }
                        precise = false;
                    }
                }
                0
            }
        };
        Self {
            strategy,
            scheme,
            sites,
            constants,
            radix,
            precise,
            num_contexts,
        }
    }

    /// A baseline plan with *no* instrumented sites — the "no encoding"
    /// configuration every overhead measurement normalizes against.
    ///
    /// The nominal strategy is reported as [`Strategy::Incremental`]; no
    /// site carries a constant, so the encoder never updates `V`.
    pub fn uninstrumented(graph: &CallGraph) -> Self {
        Self {
            strategy: Strategy::Incremental,
            scheme: Scheme::Pcc,
            sites: EdgeSet::empty(graph),
            constants: vec![None; graph.edge_count()],
            radix: 0,
            precise: false,
            num_contexts: Vec::new(),
        }
    }

    /// The site-selection strategy of this plan.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The update scheme of this plan.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The instrumented call sites.
    pub fn sites(&self) -> &EdgeSet {
        &self.sites
    }

    /// The positional radix `K` (0 under PCC).
    pub fn radix(&self) -> u64 {
        self.radix
    }

    /// Whether CCIDs under this plan identify contexts *exactly* (injective
    /// and, for [`Scheme::Positional`]/[`Scheme::Additive`], decodable).
    pub fn is_precise(&self) -> bool {
        self.precise
    }

    /// For precise Additive plans: the number of distinct calling contexts
    /// from `f` to any target (Ball–Larus count); 0 if `f` cannot reach a
    /// target or the plan is not additive-precise.
    pub fn num_contexts(&self, f: FuncId) -> u64 {
        self.num_contexts.get(f.index()).copied().unwrap_or(0)
    }

    /// The constant for an instrumented site, or `None` if not instrumented.
    #[inline]
    pub fn constant(&self, e: EdgeId) -> Option<u64> {
        self.constants[e.index()]
    }

    /// Whether a site is instrumented.
    #[inline]
    pub fn is_instrumented(&self, e: EdgeId) -> bool {
        self.constants[e.index()].is_some()
    }

    /// Number of instrumented call sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Estimated added code size in bytes (Table III proxy).
    pub fn static_size_bytes(&self) -> usize {
        self.site_count() * BYTES_PER_SITE
    }

    /// Code-size increase relative to an uninstrumented program whose size is
    /// approximated as `base_bytes`, in percent.
    pub fn size_increase_percent(&self, base_bytes: usize) -> f64 {
        if base_bytes == 0 {
            return 0.0;
        }
        100.0 * self.static_size_bytes() as f64 / base_bytes as f64
    }
}

impl ToJson for InstrumentationPlan {
    fn to_json(&self) -> Json {
        obj([
            ("strategy", self.strategy.to_json()),
            ("scheme", self.scheme.to_json()),
            ("sites", self.sites.to_json()),
            (
                "constants",
                Json::Arr(
                    self.constants
                        .iter()
                        .map(|c| c.map(Json::U64).unwrap_or(Json::Null))
                        .collect(),
                ),
            ),
            ("radix", Json::U64(self.radix)),
            ("precise", Json::Bool(self.precise)),
            (
                "num_contexts",
                Json::Arr(self.num_contexts.iter().map(|&n| Json::U64(n)).collect()),
            ),
        ])
    }
}

impl FromJson for InstrumentationPlan {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let strategy = Strategy::from_json(
            v.get("strategy")
                .ok_or_else(|| JsonError::shape("plan missing `strategy`"))?,
        )?;
        let scheme = Scheme::from_json(
            v.get("scheme")
                .ok_or_else(|| JsonError::shape("plan missing `scheme`"))?,
        )?;
        let sites = EdgeSet::from_json(
            v.get("sites")
                .ok_or_else(|| JsonError::shape("plan missing `sites`"))?,
        )?;
        let constants = v
            .req_arr("constants")?
            .iter()
            .map(|c| match c {
                Json::Null => Ok(None),
                Json::U64(n) => Ok(Some(*n)),
                _ => Err(JsonError::shape("constant must be an integer or null")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let num_contexts = v
            .req_arr("num_contexts")?
            .iter()
            .map(|n| {
                n.as_u64()
                    .ok_or_else(|| JsonError::shape("num_contexts entry must be an integer"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(InstrumentationPlan {
            strategy,
            scheme,
            sites,
            constants,
            radix: v.req_u64("radix")?,
            precise: v.req_bool("precise")?,
            num_contexts,
        })
    }
}

/// Ball–Larus numbering over the target-reaching sub-DAG.
///
/// Returns per-edge constants (offsets) for instrumented sites and the
/// per-function context counts, or `None` if the relevant subgraph is
/// recursive or the counts overflow `u64`.
fn additive_numbering(graph: &CallGraph, sites: &EdgeSet) -> Option<(Vec<Option<u64>>, Vec<u64>)> {
    let reach = Reachability::to_targets(graph);
    // Iterative DFS over relevant non-target nodes: postorder + cycle check.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = graph.func_count();
    let mut color = vec![Color::White; n];
    let mut postorder: Vec<FuncId> = Vec::new();
    for root in graph.func_ids() {
        if !reach.node_reaches(root) || color[root.index()] != Color::White {
            continue;
        }
        // (node, next out-edge index)
        let mut stack: Vec<(FuncId, usize)> = vec![(root, 0)];
        color[root.index()] = Color::Gray;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            // Targets terminate contexts: treat as leaves.
            let out = if graph.is_target(node) {
                &[][..]
            } else {
                &graph.func(node).out_edges[..]
            };
            let mut descended = false;
            while *idx < out.len() {
                let e = out[*idx];
                *idx += 1;
                let callee = graph.edge(e).callee;
                if !reach.node_reaches(callee) {
                    continue;
                }
                match color[callee.index()] {
                    Color::White => {
                        color[callee.index()] = Color::Gray;
                        stack.push((callee, 0));
                        descended = true;
                        break;
                    }
                    Color::Gray => return None, // recursion among relevant nodes
                    Color::Black => {}
                }
            }
            if !descended {
                color[node.index()] = Color::Black;
                postorder.push(node);
                stack.pop();
            }
        }
    }
    // Context counts in postorder (callees first).
    let mut counts = vec![0u64; n];
    for &f in &postorder {
        if graph.is_target(f) {
            counts[f.index()] = 1;
            continue;
        }
        let mut sum = 0u64;
        for &e in &graph.func(f).out_edges {
            let callee = graph.edge(e).callee;
            if reach.node_reaches(callee) {
                sum = sum.checked_add(counts[callee.index()])?;
            }
        }
        counts[f.index()] = sum;
    }
    // Offsets: every *relevant* out-edge advances the prefix (instrumented
    // or not), so sibling ranges stay disjoint; instrumented sites record
    // their prefix, non-relevant instrumented sites (FCS) get 0 — they can
    // never be live below a target invocation.
    let mut constants = vec![None; graph.edge_count()];
    for e in sites.iter() {
        constants[e.index()] = Some(0);
    }
    for f in graph.func_ids() {
        if !reach.node_reaches(f) || graph.is_target(f) {
            continue;
        }
        let mut prefix = 0u64;
        for &e in &graph.func(f).out_edges {
            let callee = graph.edge(e).callee;
            if !reach.node_reaches(callee) {
                continue;
            }
            if sites.contains(e) {
                constants[e.index()] = Some(prefix);
            }
            prefix = prefix.checked_add(counts[callee.index()])?;
        }
    }
    Some((constants, counts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_callgraph::CallGraphBuilder;

    fn small() -> (CallGraph, [EdgeId; 3]) {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let w = b.func("w");
        let m = b.target("malloc");
        let e1 = b.call(main, w);
        let e2 = b.call(main, m);
        let e3 = b.call(w, m);
        (b.build(), [e1, e2, e3])
    }

    #[test]
    fn pcc_constants_only_on_instrumented_sites() {
        let (g, edges) = small();
        let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Pcc);
        for e in edges {
            assert!(plan.is_instrumented(e));
            assert!(plan.constant(e).is_some());
        }
        assert_eq!(plan.site_count(), 3);
        assert_eq!(plan.radix(), 0);
    }

    #[test]
    fn positional_digits_start_at_one_per_caller() {
        let (g, [e1, e2, e3]) = small();
        let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Positional);
        assert_eq!(plan.constant(e1), Some(1)); // main's first site
        assert_eq!(plan.constant(e2), Some(2)); // main's second site
        assert_eq!(plan.constant(e3), Some(1)); // w's first site
        assert_eq!(plan.radix(), 3); // max instrumented out-degree 2 → K=3
    }

    #[test]
    fn radix_is_at_least_two() {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let m = b.target("malloc");
        b.call(main, m);
        let g = b.build();
        let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Positional);
        assert!(plan.radix() >= 2, "radix {}", plan.radix());
    }

    #[test]
    fn plans_are_deterministic() {
        let (g, _) = small();
        let a = InstrumentationPlan::build(&g, Strategy::Slim, Scheme::Pcc);
        let b = InstrumentationPlan::build(&g, Strategy::Slim, Scheme::Pcc);
        assert_eq!(a, b);
    }

    #[test]
    fn uninstrumented_sites_have_no_constant() {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let dead = b.func("dead");
        let m = b.target("malloc");
        let e_dead = b.call(main, dead);
        let e_m = b.call(main, m);
        let g = b.build();
        let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Pcc);
        assert!(!plan.is_instrumented(e_dead));
        assert_eq!(plan.constant(e_dead), None);
        assert!(plan.is_instrumented(e_m));
    }

    #[test]
    fn static_size_accounting() {
        let (g, _) = small();
        let plan = InstrumentationPlan::build(&g, Strategy::Fcs, Scheme::Pcc);
        assert_eq!(plan.static_size_bytes(), 3 * BYTES_PER_SITE);
        let pct = plan.size_increase_percent(3000);
        assert!((pct - 1.0).abs() < 1e-9);
        assert_eq!(plan.size_increase_percent(0), 0.0);
    }

    #[test]
    fn strategy_ordering_reflected_in_site_counts() {
        // Bigger example: FCS ≥ TCS ≥ Slim ≥ Incremental.
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let x = b.func("x");
        let y = b.func("y");
        let dead = b.func("dead");
        let t1 = b.target("malloc");
        let t2 = b.target("calloc");
        b.call(main, x);
        b.call(main, y);
        b.call(main, dead);
        b.call(x, t1);
        b.call(y, t1);
        b.call(y, t2);
        let g = b.build();
        let counts: Vec<usize> = Strategy::ALL
            .iter()
            .map(|&s| InstrumentationPlan::build(&g, s, Scheme::Pcc).site_count())
            .collect();
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "{counts:?}");
        }
    }
}
