//! Static analyses over instrumentation plans: context encoding, collision
//! measurement, and decoding (CCID → full calling context).

use crate::plan::InstrumentationPlan;
use crate::scheme::Ccid;
use ht_callgraph::{enumerate_contexts, CallGraph, EdgeId, FuncId, Reachability};
use std::collections::HashMap;

/// Statically encodes a calling context (an edge path from the entry) under
/// `plan`, exactly as the runtime [`Encoder`](crate::Encoder) would.
pub fn encode_context(plan: &InstrumentationPlan, path: &[EdgeId]) -> Ccid {
    let mut v = 0u64;
    for &e in path {
        if let Some(c) = plan.constant(e) {
            v = plan.scheme().update(v, c, plan.radix());
        }
    }
    Ccid(v)
}

/// Result of exhaustively encoding every (bounded) calling context of a
/// graph's targets under a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollisionReport {
    /// Total contexts enumerated.
    pub contexts: usize,
    /// Distinct `(key, CCID)` values observed, where the key includes the
    /// target function iff the plan's strategy keys by target.
    pub distinct: usize,
    /// `contexts - distinct`.
    pub collisions: usize,
    /// For decodable schemes: contexts whose decode round-trip failed.
    pub decode_failures: usize,
}

impl CollisionReport {
    /// Whether the encoding distinguished every context.
    pub fn is_collision_free(&self) -> bool {
        self.collisions == 0
    }
}

/// Enumerates all calling contexts (up to `max_depth`/`max_paths`) and checks
/// encoding uniqueness and, for decodable schemes, decode round-trips.
pub fn collision_report(
    graph: &CallGraph,
    plan: &InstrumentationPlan,
    max_depth: usize,
    max_paths: usize,
) -> CollisionReport {
    let ctxs = enumerate_contexts(graph, max_depth, max_paths);
    let mut seen: HashMap<(Option<FuncId>, u64), usize> = HashMap::new();
    let mut decode_failures = 0;
    for (target, path) in &ctxs {
        let ccid = encode_context(plan, path);
        let key_target = if plan.strategy().keys_by_target() {
            Some(*target)
        } else {
            None
        };
        *seen.entry((key_target, ccid.0)).or_insert(0) += 1;
        if plan.scheme().is_decodable() {
            match decode(graph, plan, ccid, *target) {
                Some(decoded) if &decoded == path => {}
                _ => decode_failures += 1,
            }
        }
    }
    let distinct = seen.len();
    CollisionReport {
        contexts: ctxs.len(),
        distinct,
        collisions: ctxs.len() - distinct,
        decode_failures,
    }
}

/// Decodes a [`Scheme::Positional`](crate::Scheme::Positional) CCID back into the full edge path from
/// the program entry to `target`.
///
/// This is the "supports decoding" property of PCCE-style encodings: offline
/// tooling can turn the integer stored in a patch back into a human-readable
/// call chain.
///
/// Returns `None` when:
/// * the plan's scheme is not decodable (PCC),
/// * the graph does not have exactly one entry point,
/// * the CCID does not correspond to any context of `target` (corrupt or
///   foreign CCID), or
/// * decoding would require traversing a cycle (recursive contexts are not
///   uniquely decodable; the paper's PCCE shares this restriction).
pub fn decode(
    graph: &CallGraph,
    plan: &InstrumentationPlan,
    ccid: Ccid,
    target: FuncId,
) -> Option<Vec<EdgeId>> {
    if !plan.scheme().is_decodable() || !plan.is_precise() {
        return None;
    }
    let roots = graph.roots();
    if roots.len() != 1 {
        return None;
    }
    if plan.scheme() == crate::Scheme::Additive {
        return decode_additive(graph, plan, ccid, target, roots[0]);
    }
    let radix = plan.radix();
    debug_assert!(radix >= 2);

    // Peel base-K digits; the digit string is unique because every digit ≥ 1.
    let mut digits_rev = Vec::new();
    let mut v = ccid.0;
    while v != 0 {
        digits_rev.push(v % radix);
        v /= radix;
    }
    let digits: Vec<u64> = digits_rev.into_iter().rev().collect();

    let reach = Reachability::to_set(graph, &[target]);
    let mut path = Vec::new();
    let mut node = roots[0];
    let mut next_digit = 0usize;
    // Cycle guard: an acyclic traversal visits each function at most once.
    let max_steps = graph.func_count() + digits.len() + 1;

    for _ in 0..max_steps {
        if node == target {
            return if next_digit == digits.len() {
                Some(path)
            } else {
                None
            };
        }
        let candidates: Vec<EdgeId> = reach.reaching_out_edges(graph, node);
        let chosen = match candidates.len() {
            0 => return None,
            1 => {
                let e = candidates[0];
                if let Some(c) = plan.constant(e) {
                    if next_digit >= digits.len() || digits[next_digit] != c {
                        return None;
                    }
                    next_digit += 1;
                }
                e
            }
            _ => {
                // ≥ 2 candidates are always instrumented (branching node).
                let want = *digits.get(next_digit)?;
                let e = candidates
                    .into_iter()
                    .find(|&e| plan.constant(e) == Some(want))?;
                next_digit += 1;
                e
            }
        };
        path.push(chosen);
        node = graph.edge(chosen).callee;
    }
    None
}

/// Ball–Larus decoding for precise [`Scheme::Additive`] plans: at each node
/// the sibling ranges `[c(e), c(e) + numContexts(callee))` partition the
/// value space, so the remaining value selects the edge and the offset is
/// subtracted — mirroring PCCE's decoder.
///
/// [`Scheme::Additive`]: crate::Scheme::Additive
fn decode_additive(
    graph: &CallGraph,
    plan: &InstrumentationPlan,
    ccid: Ccid,
    target: FuncId,
    root: FuncId,
) -> Option<Vec<EdgeId>> {
    let reach_t = Reachability::to_set(graph, &[target]);
    if !reach_t.node_reaches(root) {
        return None;
    }
    let mut rem = ccid.0;
    let mut node = root;
    let mut path = Vec::new();
    for _ in 0..graph.func_count() + 1 {
        if node == target {
            return (rem == 0).then_some(path);
        }
        let cands: Vec<EdgeId> = reach_t.reaching_out_edges(graph, node);
        let mut chosen = None;
        for e in cands {
            let callee = graph.edge(e).callee;
            let width = plan.num_contexts(callee);
            // Instrumented edges carry their Ball–Larus offset; relevant
            // uninstrumented edges (non-branching, or false-branching under
            // Incremental) contribute nothing at runtime, i.e. offset 0.
            let start = plan.constant(e).unwrap_or(0);
            if rem >= start && rem - start < width {
                // Sibling ranges toward the same target are disjoint, but an
                // uninstrumented false-branching sibling may overlap; prefer
                // the unique candidate that still reaches `target`.
                if chosen.is_some() {
                    return None; // ambiguous — not a CCID of this target
                }
                chosen = Some((e, start));
            }
        }
        let (e, start) = chosen?;
        rem -= start;
        path.push(e);
        node = graph.edge(e).callee;
    }
    None
}

/// Expected number of PCC collisions for `n` uniformly hashed contexts in a
/// 64-bit space (birthday approximation `n(n-1)/2^65`), as reported in the
/// PCC paper's analysis.
pub fn expected_pcc_collisions(contexts: u64) -> f64 {
    let n = contexts as f64;
    n * (n - 1.0) / (2.0f64).powi(65)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use ht_callgraph::{CallGraphBuilder, Strategy};

    /// The paper's Figure 2 graph (same layout as the callgraph tests).
    fn figure2() -> (CallGraph, FuncId, FuncId) {
        let mut b = CallGraphBuilder::new();
        let a = b.func("A");
        let bb = b.func("B");
        let c = b.func("C");
        let e = b.func("E");
        let f = b.func("F");
        let t1 = b.target("T1");
        let t2 = b.target("T2");
        b.call(a, bb);
        b.call(a, c);
        b.call(bb, f);
        b.call(c, e);
        b.call(c, f);
        b.call(e, t1);
        b.call(f, t1);
        b.call(f, t2);
        (b.build(), t1, t2)
    }

    #[test]
    fn figure2_collision_free_for_all_plans() {
        let (g, _, _) = figure2();
        for strategy in Strategy::ALL {
            for scheme in Scheme::ALL {
                let plan = InstrumentationPlan::build(&g, strategy, scheme);
                let rep = collision_report(&g, &plan, 16, 1024);
                assert_eq!(rep.contexts, 5, "{strategy}/{scheme}");
                assert!(rep.is_collision_free(), "{strategy}/{scheme}: {rep:?}");
                if scheme.is_decodable() {
                    assert_eq!(rep.decode_failures, 0, "{strategy}/{scheme}");
                }
            }
        }
    }

    #[test]
    fn encode_context_matches_runtime_encoder() {
        let (g, _, _) = figure2();
        let plan = InstrumentationPlan::build(&g, Strategy::Slim, Scheme::Pcc);
        let ctxs = enumerate_contexts(&g, 16, 64);
        for (_, path) in ctxs {
            let static_ccid = encode_context(&plan, &path);
            let mut enc = crate::Encoder::new(&plan);
            for &e in &path {
                enc.on_call(e);
            }
            assert_eq!(static_ccid, enc.current());
        }
    }

    #[test]
    fn decode_round_trips_every_context() {
        let (g, _, _) = figure2();
        for strategy in Strategy::ALL {
            let plan = InstrumentationPlan::build(&g, strategy, Scheme::Positional);
            for (target, path) in enumerate_contexts(&g, 16, 64) {
                let ccid = encode_context(&plan, &path);
                let decoded = decode(&g, &plan, ccid, target);
                assert_eq!(decoded.as_ref(), Some(&path), "{strategy} {ccid}");
            }
        }
    }

    #[test]
    fn decode_rejects_pcc() {
        let (g, t1, _) = figure2();
        let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Pcc);
        assert_eq!(decode(&g, &plan, Ccid(42), t1), None);
    }

    #[test]
    fn decode_rejects_foreign_ccid() {
        let (g, t1, _) = figure2();
        let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Positional);
        // A CCID whose digit string matches no path.
        assert_eq!(decode(&g, &plan, Ccid(u64::MAX / 2), t1), None);
    }

    #[test]
    fn decode_rejects_wrong_target() {
        let (g, t1, t2) = figure2();
        let plan = InstrumentationPlan::build(&g, Strategy::Incremental, Scheme::Positional);
        // Context A-C-E-T1 exists; ask to decode its CCID toward T2.
        let ctxs = enumerate_contexts(&g, 16, 64);
        let (_, path) = ctxs
            .iter()
            .find(|(t, p)| *t == t1 && p.len() == 3)
            .expect("A-C-E-T1 exists");
        let ccid = encode_context(&plan, path);
        // Toward t2 the digit string cannot terminate at T2 with digits
        // exhausted, so this must not silently succeed with the wrong path.
        if let Some(p) = decode(&g, &plan, ccid, t2) {
            let last = *p.last().unwrap();
            assert_eq!(g.edge(last).callee, t2);
            // The decoded path must re-encode to the same CCID.
            assert_eq!(encode_context(&plan, &p), ccid);
        }
    }

    #[test]
    fn decode_requires_single_root() {
        let mut b = CallGraphBuilder::new();
        let r1 = b.func("r1");
        let r2 = b.func("r2");
        let t = b.target("malloc");
        b.call(r1, t);
        b.call(r2, t);
        let g = b.build();
        let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Positional);
        assert_eq!(decode(&g, &plan, Ccid(1), t), None);
    }

    #[test]
    fn decode_zero_ccid_follows_unique_chain() {
        // main -> a -> malloc, all non-branching: Slim instruments nothing,
        // CCID 0, decode should still reconstruct the chain.
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let a = b.func("a");
        let m = b.target("malloc");
        let e1 = b.call(main, a);
        let e2 = b.call(a, m);
        let g = b.build();
        let plan = InstrumentationPlan::build(&g, Strategy::Slim, Scheme::Positional);
        assert_eq!(plan.site_count(), 0);
        let decoded = decode(&g, &plan, Ccid(0), m);
        assert_eq!(decoded, Some(vec![e1, e2]));
    }

    #[test]
    fn recursive_context_decode_fails_gracefully() {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let f = b.func("f");
        let m = b.target("malloc");
        let e_mf = b.call(main, f);
        let e_ff = b.call(f, f);
        let e_fm = b.call(f, m);
        let g = b.build();
        let plan = InstrumentationPlan::build(&g, Strategy::Fcs, Scheme::Positional);
        // Encode a context that loops through the back edge twice.
        let path = vec![e_mf, e_ff, e_ff, e_fm];
        let ccid = encode_context(&plan, &path);
        // Decode may fail (None) or return a different path that re-encodes
        // identically; it must not loop forever or panic.
        if let Some(p) = decode(&g, &plan, ccid, m) {
            assert_eq!(encode_context(&plan, &p), ccid);
        }
    }

    #[test]
    fn additive_is_dense_and_decodable() {
        // Ball–Larus density: N contexts encode exactly to 0..N under FCS.
        let (g, _, _) = figure2();
        let plan = InstrumentationPlan::build(&g, Strategy::Fcs, Scheme::Additive);
        assert!(plan.is_precise());
        let ctxs = enumerate_contexts(&g, 16, 64);
        let mut ids: Vec<u64> = ctxs
            .iter()
            .map(|(_, p)| encode_context(&plan, p).0)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "dense numbering of 5 contexts");
        // And every context decodes.
        for (t, p) in &ctxs {
            let ccid = encode_context(&plan, p);
            assert_eq!(decode(&g, &plan, ccid, *t).as_ref(), Some(p));
        }
    }

    #[test]
    fn additive_decodes_under_every_strategy() {
        let (g, _, _) = figure2();
        for strategy in Strategy::ALL {
            let plan = InstrumentationPlan::build(&g, strategy, Scheme::Additive);
            assert!(plan.is_precise(), "{strategy}");
            let rep = collision_report(&g, &plan, 16, 1024);
            assert!(rep.is_collision_free(), "{strategy}: {rep:?}");
            assert_eq!(rep.decode_failures, 0, "{strategy}");
        }
    }

    #[test]
    fn additive_falls_back_on_recursion() {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let f = b.func("f");
        let m = b.target("malloc");
        b.call(main, f);
        b.call(f, f); // recursive, reaches malloc
        b.call(f, m);
        let g = b.build();
        let plan = InstrumentationPlan::build(&g, Strategy::Fcs, Scheme::Additive);
        assert!(!plan.is_precise(), "recursive subgraph degrades");
        assert_eq!(decode(&g, &plan, Ccid(1), m), None);
        // Constants still exist (PCC-grade), so encoding keeps working.
        let mut enc = crate::Encoder::new(&plan);
        for e in g.edge_ids() {
            enc.on_call(e);
        }
        assert_ne!(enc.current(), Ccid(0));
    }

    #[test]
    fn additive_num_contexts_accessor() {
        let (g, t1, _) = figure2();
        let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Additive);
        let a = g.func_by_name("A").unwrap();
        assert_eq!(plan.num_contexts(a), 5, "A reaches 5 contexts");
        assert_eq!(plan.num_contexts(t1), 1, "targets terminate one context");
    }

    #[test]
    fn expected_collisions_tiny_for_realistic_counts() {
        // Even a million contexts has essentially zero expected collisions.
        assert!(expected_pcc_collisions(1_000_000) < 1e-6);
        assert_eq!(expected_pcc_collisions(0), 0.0);
        assert_eq!(expected_pcc_collisions(1), 0.0);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::{any, proptest, Strategy as PropStrategy};
        use proptest::{prop_assert, prop_assert_eq};

        fn arb_dag() -> impl PropStrategy<Value = CallGraph> {
            (2usize..5, 1usize..4, any::<u64>()).prop_map(|(layers, width, seed)| {
                let mut rng = seed;
                let mut next = move || {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    rng >> 33
                };
                let mut b = CallGraphBuilder::new();
                let main = b.func("main");
                let mut layer_funcs: Vec<Vec<FuncId>> = Vec::new();
                for l in 0..layers {
                    let n = 1 + (next() as usize) % width;
                    layer_funcs.push((0..n).map(|i| b.func(format!("L{l}_{i}"))).collect());
                }
                let ntargets = 1 + (next() as usize) % 3;
                layer_funcs.push((0..ntargets).map(|i| b.target(format!("T{i}"))).collect());
                let mut in_degree = vec![0usize; b.func_count()];
                for l in 0..layer_funcs.len() - 1 {
                    for i in 0..layer_funcs[l].len() {
                        let f = layer_funcs[l][i];
                        for _ in 0..(1 + (next() as usize) % 3) {
                            let tl = l + 1 + (next() as usize) % (layer_funcs.len() - l - 1);
                            let cands = &layer_funcs[tl];
                            let callee = cands[(next() as usize) % cands.len()];
                            b.call(f, callee);
                            in_degree[callee.index()] += 1;
                        }
                    }
                }
                for fs in &layer_funcs {
                    for &f in fs {
                        if in_degree[f.index()] == 0 {
                            b.call(main, f);
                        }
                    }
                }
                b.build()
            })
        }

        proptest! {
            #[test]
            fn positional_never_collides_and_decodes(g in arb_dag()) {
                for strategy in Strategy::ALL {
                    let plan = InstrumentationPlan::build(&g, strategy, Scheme::Positional);
                    let rep = collision_report(&g, &plan, 24, 2048);
                    prop_assert_eq!(rep.collisions, 0, "{}", strategy);
                    prop_assert_eq!(rep.decode_failures, 0, "{}", strategy);
                }
            }

            #[test]
            fn additive_dense_and_decodes_on_dags(g in arb_dag()) {
                for strategy in Strategy::ALL {
                    let plan = InstrumentationPlan::build(&g, strategy, Scheme::Additive);
                    prop_assert!(plan.is_precise(), "layered DAGs never recurse");
                    let ctxs = enumerate_contexts(&g, 24, 2048);
                    let rep = collision_report(&g, &plan, 24, 2048);
                    prop_assert_eq!(rep.collisions, 0, "{}", strategy);
                    prop_assert_eq!(rep.decode_failures, 0, "{}", strategy);
                    // Density: every CCID is below the root's context count.
                    let root = g.roots()[0];
                    let total = plan.num_contexts(root);
                    for (_, path) in &ctxs {
                        let id = encode_context(&plan, path).0;
                        prop_assert!(id < total, "{id} >= {total}");
                    }
                }
            }

            #[test]
            fn pcc_collision_free_on_small_dags(g in arb_dag()) {
                for strategy in Strategy::ALL {
                    let plan = InstrumentationPlan::build(&g, strategy, Scheme::Pcc);
                    let rep = collision_report(&g, &plan, 24, 2048);
                    prop_assert_eq!(rep.collisions, 0, "{}", strategy);
                }
            }
        }
    }
}
