//! Thread-local calling-context encoding for real Rust programs.
//!
//! The paper's LLVM pass inserts `V = 3t + c` at instrumented call sites; in
//! Rust the equivalent is an RAII guard at each site the targeted analysis
//! selects:
//!
//! ```
//! use ht_hardened_alloc::ccid::{current, CallScope};
//!
//! fn parse_request() -> u64 {
//!     let _site = CallScope::enter(0x517E); // site constant from the plan
//!     handle()
//! }
//! fn handle() -> u64 {
//!     current() // the allocation-time CCID the allocator will see
//! }
//! let outer = current();
//! let inner = parse_request();
//! assert_ne!(outer, inner);
//! assert_eq!(current(), outer, "scope restored on return");
//! ```

use std::cell::Cell;

thread_local! {
    static V: Cell<u64> = const { Cell::new(0) };
}

/// The current thread's calling-context ID.
#[inline]
pub fn current() -> u64 {
    V.with(|v| v.get())
}

/// RAII guard representing one instrumented call site on the stack.
///
/// Construction applies PCC's update `V = 3·V + c`; dropping restores the
/// caller's `V` — the save/restore the paper implements with a function-local
/// temporary.
#[derive(Debug)]
pub struct CallScope {
    saved: u64,
}

impl CallScope {
    /// Enters an instrumented call site with site constant `c`.
    #[inline]
    pub fn enter(c: u64) -> Self {
        let saved = V.with(|v| {
            let t = v.get();
            v.set(t.wrapping_mul(3).wrapping_add(c));
            t
        });
        CallScope { saved }
    }
}

impl Drop for CallScope {
    #[inline]
    fn drop(&mut self) {
        V.with(|v| v.set(self.saved));
    }
}

/// Runs `f` inside an instrumented call site (convenience wrapper).
pub fn with_site<R>(c: u64, f: impl FnOnce() -> R) -> R {
    let _scope = CallScope::enter(c);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_scopes_compose_and_restore() {
        assert_eq!(current(), 0);
        {
            let _a = CallScope::enter(5);
            assert_eq!(current(), 5);
            {
                let _b = CallScope::enter(7);
                assert_eq!(current(), 22); // 3*5+7
            }
            assert_eq!(current(), 5);
        }
        assert_eq!(current(), 0);
    }

    #[test]
    fn with_site_is_equivalent() {
        let inner = with_site(9, current);
        assert_eq!(inner, 9);
        assert_eq!(current(), 0);
    }

    #[test]
    fn distinct_paths_distinct_ccids() {
        let via_a = with_site(1, || with_site(3, current));
        let via_b = with_site(2, || with_site(3, current));
        assert_ne!(via_a, via_b);
    }

    #[test]
    fn threads_are_independent() {
        let _main = CallScope::enter(42);
        let other = std::thread::spawn(current).join().unwrap();
        assert_eq!(other, 0, "fresh thread starts at the entry context");
        assert_eq!(current(), 42);
    }
}
