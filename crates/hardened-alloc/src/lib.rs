//! HeapTherapy+ defenses on **real memory**: a [`core::alloc::GlobalAlloc`]
//! implementation for Rust programs.
//!
//! The rest of the workspace demonstrates the paper on a simulated address
//! space; this crate closes the loop on the actual process heap:
//!
//! * [`ccid`] — a thread-local calling-context encoder (PCC's `V = 3t + c`)
//!   driven by RAII [`ccid::CallScope`] guards placed at instrumented call
//!   sites,
//! * [`HardenedAlloc`] — wraps the system allocator; every allocation probes
//!   the installed patch set with the current `(FUN, CCID)`:
//!   * overflow patches allocate via `mmap` with a trailing
//!     `PROT_NONE` **guard page** (`libc::mprotect`),
//!   * use-after-free patches defer frees through a fixed-capacity
//!     quarantine ring,
//!   * uninitialized-read patches zero the buffer.
//!
//! Everything on the allocation path is allocation-free (fixed-size tables,
//! a spin lock, atomics) so the type is usable as `#[global_allocator]` —
//! see `examples/hardened_allocator.rs` at the workspace root.
//!
//! `libc` is the one dependency outside the project's standard allowance:
//! `std` exposes no page-permission API, and guard pages are the point.
//!
//! # Example
//!
//! ```
//! use ht_hardened_alloc::{ccid, HardenedAlloc, PatchEntry};
//! use ht_patch::{AllocFn, VulnFlags};
//! use std::alloc::{GlobalAlloc, Layout};
//!
//! static ALLOC: HardenedAlloc = HardenedAlloc::new();
//!
//! // "Instrument" a call site, then install a patch for the context.
//! let _site = ccid::CallScope::enter(0x1234);
//! ALLOC.install(&[PatchEntry::new(AllocFn::Malloc, ccid::current(), VulnFlags::UNINIT_READ)]);
//!
//! let layout = Layout::from_size_align(256, 16).unwrap();
//! let p = unsafe { ALLOC.alloc(layout) };
//! assert!(!p.is_null());
//! // Zero-filled because the context is patched UR.
//! assert!(unsafe { std::slice::from_raw_parts(p, 256) }.iter().all(|&b| b == 0));
//! unsafe { ALLOC.dealloc(p, layout) };
//! ```

pub mod ccid;
pub mod galloc;
mod registry;
pub mod throughput;

pub use galloc::{HardenedAlloc, HardenedStats, PatchEntry};
pub use registry::RegistryStats;
