//! Allocation-free fixed-capacity tables used on the hot allocation path.
//!
//! A `#[global_allocator]` must never allocate while servicing an
//! allocation, so both the patch table and the live-pointer registry are
//! fixed-size open-addressing tables guarded by a spin lock / atomics.

use std::sync::atomic::{AtomicBool, Ordering};

/// Minimal spin lock (no parking, no allocation).
#[derive(Debug, Default)]
pub(crate) struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    pub(crate) const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }

    pub(crate) fn lock(&self) -> SpinGuard<'_> {
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        SpinGuard { lock: self }
    }
}

pub(crate) struct SpinGuard<'a> {
    lock: &'a SpinLock,
}

impl Drop for SpinGuard<'_> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// Capacity of the live-pointer registry (patched allocations only).
pub(crate) const REGISTRY_CAP: usize = 4096;

/// What the registry remembers about one live *patched* allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Entry {
    /// User pointer (the registry key; 0 = empty, 1 = tombstone).
    pub ptr: usize,
    /// `mmap` region base for guarded allocations (0 for system ones).
    pub region: usize,
    /// `mmap` region length (0 for system allocations).
    pub region_len: usize,
    /// The vulnerability bits this allocation was enhanced with.
    pub vuln: u8,
    /// Original layout size (for quarantine accounting / system dealloc).
    pub size: usize,
    /// Original layout alignment.
    pub align: usize,
}

const EMPTY: usize = 0;
const TOMBSTONE: usize = 1;

/// Fixed-capacity open-addressing map from user pointer to [`Entry`].
pub(crate) struct Registry {
    lock: SpinLock,
    entries: std::cell::UnsafeCell<[Entry; REGISTRY_CAP]>,
}

// Access is serialized through the spin lock.
unsafe impl Sync for Registry {}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

const EMPTY_ENTRY: Entry = Entry {
    ptr: EMPTY,
    region: 0,
    region_len: 0,
    vuln: 0,
    size: 0,
    align: 0,
};

impl Registry {
    pub(crate) const fn new() -> Self {
        Self {
            lock: SpinLock::new(),
            entries: std::cell::UnsafeCell::new([EMPTY_ENTRY; REGISTRY_CAP]),
        }
    }

    fn slot_of(ptr: usize) -> usize {
        // Fibonacci hashing over the pointer bits.
        (ptr.wrapping_mul(0x9E3779B97F4A7C15)) >> (64 - 12) // log2(4096)
    }

    /// Inserts an entry. Returns `false` (defense skipped, fail-open) when
    /// the table is full.
    pub(crate) fn insert(&self, e: Entry) -> bool {
        debug_assert!(e.ptr > TOMBSTONE);
        let _g = self.lock.lock();
        let entries = unsafe { &mut *self.entries.get() };
        let start = Self::slot_of(e.ptr);
        for i in 0..REGISTRY_CAP {
            let s = (start + i) % REGISTRY_CAP;
            if entries[s].ptr == EMPTY || entries[s].ptr == TOMBSTONE {
                entries[s] = e;
                return true;
            }
        }
        false
    }

    /// Removes and returns the entry for `ptr`, if present.
    pub(crate) fn remove(&self, ptr: usize) -> Option<Entry> {
        let _g = self.lock.lock();
        let entries = unsafe { &mut *self.entries.get() };
        let start = Self::slot_of(ptr);
        for i in 0..REGISTRY_CAP {
            let s = (start + i) % REGISTRY_CAP;
            match entries[s].ptr {
                p if p == ptr => {
                    let e = entries[s];
                    entries[s].ptr = TOMBSTONE;
                    return Some(e);
                }
                EMPTY => return None,
                _ => {}
            }
        }
        None
    }

    /// Looks up the entry for `ptr` without removing it.
    pub(crate) fn get(&self, ptr: usize) -> Option<Entry> {
        let _g = self.lock.lock();
        let entries = unsafe { &*self.entries.get() };
        let start = Self::slot_of(ptr);
        for i in 0..REGISTRY_CAP {
            let s = (start + i) % REGISTRY_CAP;
            match entries[s].ptr {
                p if p == ptr => return Some(entries[s]),
                EMPTY => return None,
                _ => {}
            }
        }
        None
    }
}

/// Capacity of the deferred-free ring.
pub(crate) const QUARANTINE_CAP: usize = 512;

/// Fixed-capacity FIFO of deferred frees.
pub(crate) struct QuarantineRing {
    lock: SpinLock,
    state: std::cell::UnsafeCell<RingState>,
}

unsafe impl Sync for QuarantineRing {}

impl std::fmt::Debug for QuarantineRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuarantineRing").finish_non_exhaustive()
    }
}

struct RingState {
    slots: [Entry; QUARANTINE_CAP],
    head: usize,
    len: usize,
    bytes: usize,
}

impl QuarantineRing {
    pub(crate) const fn new() -> Self {
        Self {
            lock: SpinLock::new(),
            state: std::cell::UnsafeCell::new(RingState {
                slots: [EMPTY_ENTRY; QUARANTINE_CAP],
                head: 0,
                len: 0,
                bytes: 0,
            }),
        }
    }

    /// Pushes a block; returns up to two entries that must be released now
    /// (quota or capacity overflow), oldest first.
    pub(crate) fn push(&self, e: Entry, quota: usize) -> [Option<Entry>; 2] {
        let _g = self.lock.lock();
        let st = unsafe { &mut *self.state.get() };
        let mut out = [None, None];
        let mut n = 0;
        // Capacity eviction first.
        if st.len == QUARANTINE_CAP {
            out[n] = Some(Self::pop_locked(st));
            n += 1;
        }
        let tail = (st.head + st.len) % QUARANTINE_CAP;
        st.slots[tail] = e;
        st.len += 1;
        st.bytes += e.size;
        while st.bytes > quota && st.len > 0 && n < 2 {
            out[n] = Some(Self::pop_locked(st));
            n += 1;
        }
        out
    }

    fn pop_locked(st: &mut RingState) -> Entry {
        let e = st.slots[st.head];
        st.head = (st.head + 1) % QUARANTINE_CAP;
        st.len -= 1;
        st.bytes -= e.size;
        e
    }

    /// Current (blocks, bytes).
    pub(crate) fn usage(&self) -> (usize, usize) {
        let _g = self.lock.lock();
        let st = unsafe { &*self.state.get() };
        (st.len, st.bytes)
    }

    /// Whether `ptr` is currently quarantined.
    pub(crate) fn contains(&self, ptr: usize) -> bool {
        let _g = self.lock.lock();
        let st = unsafe { &*self.state.get() };
        (0..st.len).any(|i| st.slots[(st.head + i) % QUARANTINE_CAP].ptr == ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ptr: usize, size: usize) -> Entry {
        Entry {
            ptr,
            region: 0,
            region_len: 0,
            vuln: 0,
            size,
            align: 8,
        }
    }

    #[test]
    fn registry_insert_get_remove() {
        let r = Registry::new();
        assert!(r.insert(e(0x1000, 64)));
        assert_eq!(r.get(0x1000).unwrap().size, 64);
        assert_eq!(r.remove(0x1000).unwrap().size, 64);
        assert!(r.get(0x1000).is_none());
        assert!(r.remove(0x1000).is_none());
    }

    #[test]
    fn registry_handles_collisions_and_tombstones() {
        let r = Registry::new();
        // Many pointers; some will collide in a 4096-slot table.
        for i in 0..1000usize {
            assert!(r.insert(e(0x10000 + i * 16, i)));
        }
        for i in (0..1000usize).step_by(2) {
            assert_eq!(r.remove(0x10000 + i * 16).unwrap().size, i);
        }
        for i in (1..1000usize).step_by(2) {
            assert_eq!(
                r.get(0x10000 + i * 16).unwrap().size,
                i,
                "survives tombstones"
            );
        }
    }

    #[test]
    fn registry_full_fails_open() {
        let r = Registry::new();
        let mut inserted = 0;
        for i in 0..REGISTRY_CAP + 10 {
            if r.insert(e(0x100000 + i * 8, 1)) {
                inserted += 1;
            }
        }
        assert_eq!(inserted, REGISTRY_CAP);
    }

    #[test]
    fn ring_fifo_and_quota() {
        let q = QuarantineRing::new();
        assert_eq!(q.push(e(1, 60), 100), [None, None]);
        assert!(q.contains(1));
        let evicted = q.push(e(2, 60), 100);
        assert_eq!(evicted[0].map(|x| x.ptr), Some(1));
        assert!(!q.contains(1));
        assert_eq!(q.usage(), (1, 60));
    }

    #[test]
    fn ring_capacity_eviction() {
        let q = QuarantineRing::new();
        for i in 0..QUARANTINE_CAP {
            assert_eq!(q.push(e(100 + i, 1), usize::MAX), [None, None]);
        }
        let evicted = q.push(e(9999, 1), usize::MAX);
        assert_eq!(evicted[0].map(|x| x.ptr), Some(100), "oldest evicted");
        assert_eq!(q.usage().0, QUARANTINE_CAP);
    }

    #[test]
    fn spinlock_mutual_exclusion() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let lock = Arc::new(SpinLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = lock.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let _g = lock.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }
}
