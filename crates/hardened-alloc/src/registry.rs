//! Allocation-free fixed-capacity tables used on the hot allocation path.
//!
//! A `#[global_allocator]` must never allocate while servicing an
//! allocation, so both the live-pointer registry and the quarantine are
//! fixed-size tables. To scale with cores they are **sharded** by pointer
//! hash: each shard has its own spin lock, its own open-addressing table (or
//! FIFO ring), and its own counters. Threads working on different pointers
//! fall into different shards with high probability and never contend; the
//! old design funnelled every malloc/free through one global lock.
//!
//! Lock discipline: exactly one shard lock is ever held at a time, and no
//! allocator call is made while holding one — so there is no lock ordering
//! to get wrong and no reentrancy hazard. Cross-shard reads (stats, usage)
//! take shard locks one at a time and merge; they observe a slightly stale
//! but per-shard-consistent view, which is all the counters need.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Minimal spin lock (no parking, no allocation).
#[derive(Debug, Default)]
pub(crate) struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    pub(crate) const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }

    pub(crate) fn lock(&self) -> SpinGuard<'_> {
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        SpinGuard { lock: self }
    }
}

pub(crate) struct SpinGuard<'a> {
    lock: &'a SpinLock,
}

impl Drop for SpinGuard<'_> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// A cache-line-padded atomic counter cell, so neighbouring cells of a
/// striped counter never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

const COUNTER_STRIPES: usize = 16;

/// A statistics counter striped over cache lines: increments from different
/// threads land on (probably) different cells, reads sum all cells. Counts
/// are exact; only the read is momentarily racy, as with any relaxed
/// counter.
#[derive(Debug)]
pub(crate) struct StripedCounter {
    cells: [PaddedU64; COUNTER_STRIPES],
}

#[allow(clippy::declare_interior_mutable_const)] // used once per array slot
const ZERO_CELL: PaddedU64 = PaddedU64(AtomicU64::new(0));

thread_local! {
    /// Per-thread stripe index, derived once from the thread id.
    static STRIPE: usize = {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(&std::thread::current().id(), &mut h);
        (std::hash::Hasher::finish(&h) as usize) % COUNTER_STRIPES
    };
}

impl StripedCounter {
    pub(crate) const fn new() -> Self {
        Self {
            cells: [ZERO_CELL; COUNTER_STRIPES],
        }
    }

    #[inline]
    pub(crate) fn add(&self, n: u64) {
        // `try_with` so counting keeps working during thread teardown, when
        // the thread-local may already be destroyed.
        let stripe = STRIPE.try_with(|&s| s).unwrap_or(0);
        self.cells[stripe].0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn incr(&self) {
        self.add(1);
    }

    pub(crate) fn load(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// Number of registry shards (power of two).
pub(crate) const REGISTRY_SHARDS: usize = 16;
/// Capacity of one registry shard.
pub(crate) const REGISTRY_SHARD_CAP: usize = 256;
/// Total live-pointer capacity across shards.
#[cfg(test)]
pub(crate) const REGISTRY_CAP: usize = REGISTRY_SHARDS * REGISTRY_SHARD_CAP;

/// Sentinel for [`Entry::slot`]: the allocation has no patch-table slot.
pub(crate) const NO_PATCH_SLOT: u32 = u32::MAX;

/// What the registry remembers about one live *patched* allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Entry {
    /// User pointer (the registry key; 0 = empty, 1 = tombstone).
    pub ptr: usize,
    /// `mmap` region base for guarded allocations (0 for system ones).
    pub region: usize,
    /// `mmap` region length (0 for system allocations).
    pub region_len: usize,
    /// The vulnerability bits this allocation was enhanced with.
    pub vuln: u8,
    /// Patch-table slot that matched at allocation time (telemetry
    /// attribution on the free path), or [`NO_PATCH_SLOT`].
    pub slot: u32,
    /// Original layout size (for quarantine accounting / system dealloc).
    pub size: usize,
    /// Original layout alignment.
    pub align: usize,
}

const EMPTY: usize = 0;
const TOMBSTONE: usize = 1;

const EMPTY_ENTRY: Entry = Entry {
    ptr: EMPTY,
    region: 0,
    region_len: 0,
    vuln: 0,
    slot: NO_PATCH_SLOT,
    size: 0,
    align: 0,
};

/// Fibonacci hash of a pointer; the top bits select the shard, the next
/// bits the starting slot, so the two choices are independent.
#[inline]
fn ptr_hash(ptr: usize) -> usize {
    ptr.wrapping_mul(0x9E3779B97F4A7C15)
}

#[inline]
fn shard_of(ptr: usize) -> usize {
    ptr_hash(ptr) >> (usize::BITS as usize - 4) // log2(16) shard bits
}

#[inline]
fn slot_of(ptr: usize) -> usize {
    (ptr_hash(ptr) >> (usize::BITS as usize - 4 - 8)) % REGISTRY_SHARD_CAP // log2(256) slot bits
}

struct RegistryShard {
    lock: SpinLock,
    entries: std::cell::UnsafeCell<[Entry; REGISTRY_SHARD_CAP]>,
    /// Successful inserts into this shard (lifetime total).
    inserts: AtomicU64,
    /// Successful removes from this shard (lifetime total).
    removes: AtomicU64,
}

// Entry access is serialized through the shard's spin lock.
unsafe impl Sync for RegistryShard {}

impl RegistryShard {
    const fn new() -> Self {
        Self {
            lock: SpinLock::new(),
            entries: std::cell::UnsafeCell::new([EMPTY_ENTRY; REGISTRY_SHARD_CAP]),
            inserts: AtomicU64::new(0),
            removes: AtomicU64::new(0),
        }
    }
}

/// Merged live-pointer registry counters (summed over shards on read).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Entries ever inserted.
    pub inserts: u64,
    /// Entries ever removed.
    pub removes: u64,
}

impl RegistryStats {
    /// Entries currently live (conservation: inserts = removes + live).
    pub fn live(&self) -> u64 {
        self.inserts - self.removes
    }
}

/// Sharded fixed-capacity open-addressing map from user pointer to
/// [`Entry`]. Each pointer maps to exactly one shard, so per-pointer
/// operations take exactly one shard lock.
pub(crate) struct Registry {
    shards: [RegistryShard; REGISTRY_SHARDS],
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

#[allow(clippy::declare_interior_mutable_const)] // used once per array slot
const EMPTY_REGISTRY_SHARD: RegistryShard = RegistryShard::new();

impl Registry {
    pub(crate) const fn new() -> Self {
        Self {
            shards: [EMPTY_REGISTRY_SHARD; REGISTRY_SHARDS],
        }
    }

    /// Inserts an entry. Returns `false` (defense skipped, fail-open) when
    /// the pointer's shard is full.
    pub(crate) fn insert(&self, e: Entry) -> bool {
        debug_assert!(e.ptr > TOMBSTONE);
        let shard = &self.shards[shard_of(e.ptr)];
        let _g = shard.lock.lock();
        let entries = unsafe { &mut *shard.entries.get() };
        let start = slot_of(e.ptr);
        for i in 0..REGISTRY_SHARD_CAP {
            let s = (start + i) % REGISTRY_SHARD_CAP;
            if entries[s].ptr == EMPTY || entries[s].ptr == TOMBSTONE {
                entries[s] = e;
                shard.inserts.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Removes and returns the entry for `ptr`, if present.
    pub(crate) fn remove(&self, ptr: usize) -> Option<Entry> {
        let shard = &self.shards[shard_of(ptr)];
        let _g = shard.lock.lock();
        let entries = unsafe { &mut *shard.entries.get() };
        let start = slot_of(ptr);
        for i in 0..REGISTRY_SHARD_CAP {
            let s = (start + i) % REGISTRY_SHARD_CAP;
            match entries[s].ptr {
                p if p == ptr => {
                    let e = entries[s];
                    entries[s].ptr = TOMBSTONE;
                    shard.removes.fetch_add(1, Ordering::Relaxed);
                    return Some(e);
                }
                EMPTY => return None,
                _ => {}
            }
        }
        None
    }

    /// Looks up the entry for `ptr` without removing it.
    pub(crate) fn get(&self, ptr: usize) -> Option<Entry> {
        let shard = &self.shards[shard_of(ptr)];
        let _g = shard.lock.lock();
        let entries = unsafe { &*shard.entries.get() };
        let start = slot_of(ptr);
        for i in 0..REGISTRY_SHARD_CAP {
            let s = (start + i) % REGISTRY_SHARD_CAP;
            match entries[s].ptr {
                p if p == ptr => return Some(entries[s]),
                EMPTY => return None,
                _ => {}
            }
        }
        None
    }

    /// Counters merged across shards.
    pub(crate) fn stats(&self) -> RegistryStats {
        let mut st = RegistryStats::default();
        for shard in &self.shards {
            st.inserts += shard.inserts.load(Ordering::Relaxed);
            st.removes += shard.removes.load(Ordering::Relaxed);
        }
        st
    }
}

/// Number of quarantine shards (power of two).
pub(crate) const QUARANTINE_SHARDS: usize = 8;
/// Capacity of one quarantine shard's FIFO ring.
pub(crate) const QUARANTINE_SHARD_CAP: usize = 64;

struct RingState {
    slots: [Entry; QUARANTINE_SHARD_CAP],
    head: usize,
    len: usize,
    bytes: usize,
}

struct QuarantineShard {
    lock: SpinLock,
    state: std::cell::UnsafeCell<RingState>,
}

unsafe impl Sync for QuarantineShard {}

impl QuarantineShard {
    const fn new() -> Self {
        Self {
            lock: SpinLock::new(),
            state: std::cell::UnsafeCell::new(RingState {
                slots: [EMPTY_ENTRY; QUARANTINE_SHARD_CAP],
                head: 0,
                len: 0,
                bytes: 0,
            }),
        }
    }
}

/// Sharded fixed-capacity FIFO of deferred frees.
///
/// A freed pointer lands in the shard its hash selects; FIFO age ordering
/// and the byte quota hold **per shard**, so a push only ever touches one
/// shard lock. The global quota is split across shards with the division
/// remainder spread over the low shards, so the per-shard quotas sum to
/// exactly the configured global quota. Global usage is the merged sum.
pub(crate) struct QuarantineRing {
    shards: [QuarantineShard; QUARANTINE_SHARDS],
}

impl std::fmt::Debug for QuarantineRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuarantineRing").finish_non_exhaustive()
    }
}

#[allow(clippy::declare_interior_mutable_const)] // used once per array slot
const EMPTY_QUARANTINE_SHARD: QuarantineShard = QuarantineShard::new();

impl QuarantineRing {
    pub(crate) const fn new() -> Self {
        Self {
            shards: [EMPTY_QUARANTINE_SHARD; QUARANTINE_SHARDS],
        }
    }

    #[inline]
    fn shard_of(ptr: usize) -> usize {
        // Use disjoint hash bits from the registry's so a pointer's registry
        // shard and quarantine shard are uncorrelated.
        (ptr_hash(ptr) >> (usize::BITS as usize - 4 - 8 - 3)) % QUARANTINE_SHARDS
    }

    /// Pushes a block; returns up to two entries that must be released now
    /// (per-shard quota or capacity overflow), oldest-in-shard first.
    pub(crate) fn push(&self, e: Entry, quota: usize) -> [Option<Entry>; 2] {
        let si = Self::shard_of(e.ptr);
        let shard = &self.shards[si];
        // Truncating `quota / SHARDS` alone would silently shrink the
        // global quota by up to SHARDS-1 bytes; hand the remainder out one
        // byte per low shard so the per-shard quotas sum to `quota`.
        let shard_quota = quota / QUARANTINE_SHARDS + usize::from(si < quota % QUARANTINE_SHARDS);
        let _g = shard.lock.lock();
        let st = unsafe { &mut *shard.state.get() };
        let mut out = [None, None];
        let mut n = 0;
        // Capacity eviction first.
        if st.len == QUARANTINE_SHARD_CAP {
            out[n] = Some(Self::pop_locked(st));
            n += 1;
        }
        let tail = (st.head + st.len) % QUARANTINE_SHARD_CAP;
        st.slots[tail] = e;
        st.len += 1;
        st.bytes += e.size;
        while st.bytes > shard_quota && st.len > 0 && n < 2 {
            out[n] = Some(Self::pop_locked(st));
            n += 1;
        }
        out
    }

    fn pop_locked(st: &mut RingState) -> Entry {
        let e = st.slots[st.head];
        st.head = (st.head + 1) % QUARANTINE_SHARD_CAP;
        st.len -= 1;
        st.bytes -= e.size;
        e
    }

    /// Current (blocks, bytes), merged across shards.
    pub(crate) fn usage(&self) -> (usize, usize) {
        let mut blocks = 0;
        let mut bytes = 0;
        for shard in &self.shards {
            let _g = shard.lock.lock();
            let st = unsafe { &*shard.state.get() };
            blocks += st.len;
            bytes += st.bytes;
        }
        (blocks, bytes)
    }

    /// Whether `ptr` is currently quarantined (one shard scanned).
    pub(crate) fn contains(&self, ptr: usize) -> bool {
        let shard = &self.shards[Self::shard_of(ptr)];
        let _g = shard.lock.lock();
        let st = unsafe { &*shard.state.get() };
        (0..st.len).any(|i| st.slots[(st.head + i) % QUARANTINE_SHARD_CAP].ptr == ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn e(ptr: usize, size: usize) -> Entry {
        Entry {
            ptr,
            region: 0,
            region_len: 0,
            vuln: 0,
            slot: NO_PATCH_SLOT,
            size,
            align: 8,
        }
    }

    #[test]
    fn registry_insert_get_remove() {
        let r = Registry::new();
        assert!(r.insert(e(0x1000, 64)));
        assert_eq!(r.get(0x1000).unwrap().size, 64);
        assert_eq!(r.remove(0x1000).unwrap().size, 64);
        assert!(r.get(0x1000).is_none());
        assert!(r.remove(0x1000).is_none());
        let st = r.stats();
        assert_eq!((st.inserts, st.removes, st.live()), (1, 1, 0));
    }

    #[test]
    fn registry_handles_collisions_and_tombstones() {
        let r = Registry::new();
        // Many pointers; some will collide within a 256-slot shard.
        for i in 0..1000usize {
            assert!(r.insert(e(0x10000 + i * 16, i)));
        }
        for i in (0..1000usize).step_by(2) {
            assert_eq!(r.remove(0x10000 + i * 16).unwrap().size, i);
        }
        for i in (1..1000usize).step_by(2) {
            assert_eq!(
                r.get(0x10000 + i * 16).unwrap().size,
                i,
                "survives tombstones"
            );
        }
        assert_eq!(r.stats().live(), 500);
    }

    #[test]
    fn registry_shard_full_fails_open_others_keep_working() {
        let r = Registry::new();
        // Grossly overfill: sequential pointers spread over all shards, so
        // overall acceptance stops only when shards fill up.
        let mut inserted = 0;
        for i in 0..2 * REGISTRY_CAP {
            if r.insert(e(0x100000 + i * 8, 1)) {
                inserted += 1;
            }
        }
        assert!(inserted >= REGISTRY_CAP / 2, "{inserted}");
        assert!(inserted <= REGISTRY_CAP);
        assert_eq!(r.stats().inserts, inserted as u64);
    }

    #[test]
    fn registry_is_a_map_against_a_model() {
        // Deterministic pseudo-random op sequence checked against HashMap.
        let r = Registry::new();
        let mut model: HashMap<usize, usize> = HashMap::new();
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ptr = 0x4000 + ((x >> 16) as usize % 512) * 16;
            match x % 3 {
                0 => {
                    if !model.contains_key(&ptr) && r.insert(e(ptr, ptr / 16)) {
                        model.insert(ptr, ptr / 16);
                    }
                }
                1 => {
                    assert_eq!(r.remove(ptr).map(|e| e.size), model.remove(&ptr));
                }
                _ => {
                    assert_eq!(r.get(ptr).map(|e| e.size), model.get(&ptr).copied());
                }
            }
        }
        assert_eq!(r.stats().live() as usize, model.len());
    }

    #[test]
    fn registry_concurrent_disjoint_threads_never_lose_entries() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for t in 0..8usize {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                // Each thread owns a disjoint pointer range; entries cross
                // all shards because shard choice is hash-based.
                for round in 0..50 {
                    for i in 0..64usize {
                        let ptr = 0x1000000 * (t + 1) + i * 16 + round * 0x10000;
                        assert!(r.insert(e(ptr, t)), "shard overfull");
                    }
                    for i in 0..64usize {
                        let ptr = 0x1000000 * (t + 1) + i * 16 + round * 0x10000;
                        assert_eq!(r.get(ptr).unwrap().size, t, "foreign entry seen");
                        assert_eq!(r.remove(ptr).unwrap().size, t, "entry lost");
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let st = r.stats();
        assert_eq!(st.inserts, 8 * 50 * 64);
        assert_eq!(st.removes, 8 * 50 * 64);
        assert_eq!(st.live(), 0);
    }

    #[test]
    fn ring_fifo_and_quota() {
        let q = QuarantineRing::new();
        // Per-shard quota is quota/8; give 800 so each shard holds 100.
        assert_eq!(q.push(e(1, 60), 800), [None, None]);
        assert!(q.contains(1));
        // Same pointer again lands in the same shard and busts its quota.
        let evicted = q.push(e(1, 60), 800);
        assert_eq!(evicted[0].map(|x| x.ptr), Some(1));
        assert_eq!(q.usage(), (1, 60));
    }

    #[test]
    fn ring_reaches_the_exact_configured_quota() {
        // Regression: the quota used to be split as `quota / 8` per shard,
        // truncating the remainder — a 500-byte quota effectively became
        // 496. With 1-byte blocks each shard saturates at exactly its
        // slice, so the merged steady-state usage must equal the global
        // quota, remainder included.
        let quota = 500; // 500 = 8 * 62 + 4: four shards get 63, four get 62
        let q = QuarantineRing::new();
        for i in 1..=4096usize {
            let _ = q.push(e(i * 8, 1), quota);
        }
        let (_, bytes) = q.usage();
        assert_eq!(bytes, quota, "remainder bytes distributed across shards");
    }

    #[test]
    fn ring_quota_remainder_lands_on_low_shards() {
        // quota 7 with 8 shards: shards 0..6 may hold one 1-byte block,
        // shard 7 none at all.
        let q = QuarantineRing::new();
        let ptr_in = |shard: usize| {
            (1..)
                .map(|i| i * 8)
                .find(|&p| QuarantineRing::shard_of(p) == shard)
                .unwrap()
        };
        for shard in 0..QUARANTINE_SHARDS {
            let evicted = q.push(e(ptr_in(shard), 1), 7);
            let held = evicted[0].is_none();
            assert_eq!(held, shard < 7, "shard {shard}");
        }
        assert_eq!(q.usage().1, 7);
    }

    #[test]
    fn ring_capacity_eviction_is_per_shard() {
        let q = QuarantineRing::new();
        // Find pointers all hashing into one shard to fill its ring.
        let shard0: Vec<usize> = (1..)
            .map(|i| i * 8)
            .filter(|&p| QuarantineRing::shard_of(p) == 0)
            .take(QUARANTINE_SHARD_CAP + 1)
            .collect();
        for &p in &shard0[..QUARANTINE_SHARD_CAP] {
            assert_eq!(q.push(e(p, 1), usize::MAX), [None, None]);
        }
        let evicted = q.push(e(shard0[QUARANTINE_SHARD_CAP], 1), usize::MAX);
        assert_eq!(evicted[0].map(|x| x.ptr), Some(shard0[0]), "oldest evicted");
        assert_eq!(q.usage().0, QUARANTINE_SHARD_CAP);
        assert!(!q.contains(shard0[0]));
        assert!(q.contains(shard0[1]));
    }

    #[test]
    fn ring_conserves_bytes_under_concurrent_churn() {
        let q = Arc::new(QuarantineRing::new());
        let pushed = Arc::new(AtomicU64::new(0));
        let evicted = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let q = Arc::clone(&q);
            let pushed = Arc::clone(&pushed);
            let evicted = Arc::clone(&evicted);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000usize {
                    let ptr = 0x1000 + (t * 2000 + i) * 16;
                    pushed.fetch_add(48, Ordering::Relaxed);
                    for ev in q.push(e(ptr, 48), 16 * 1024).into_iter().flatten() {
                        evicted.fetch_add(ev.size as u64, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (_, held) = q.usage();
        assert_eq!(
            pushed.load(Ordering::Relaxed),
            evicted.load(Ordering::Relaxed) + held as u64,
            "bytes pushed = bytes evicted + bytes held"
        );
        assert!(held <= 16 * 1024);
    }

    #[test]
    fn spinlock_mutual_exclusion() {
        use std::sync::atomic::AtomicUsize;
        let lock = Arc::new(SpinLock::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = lock.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let _g = lock.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn striped_counter_is_exact_across_threads() {
        let c = Arc::new(StripedCounter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load(), 80_000);
    }

    #[test]
    fn shard_and_slot_hashing_use_disjoint_bits() {
        // Pointers in one registry shard must still spread over slots, and
        // registry vs quarantine shard choices must not be lockstep.
        let ptrs: Vec<usize> = (0..4096).map(|i| 0x1000 + i * 16).collect();
        let mut reg_shards = [0usize; REGISTRY_SHARDS];
        let mut q_shards = [0usize; QUARANTINE_SHARDS];
        for &p in &ptrs {
            reg_shards[shard_of(p)] += 1;
            q_shards[QuarantineRing::shard_of(p)] += 1;
        }
        for (i, &n) in reg_shards.iter().enumerate() {
            assert!(n > 0, "registry shard {i} never chosen");
        }
        for (i, &n) in q_shards.iter().enumerate() {
            assert!(n > 0, "quarantine shard {i} never chosen");
        }
    }
}
