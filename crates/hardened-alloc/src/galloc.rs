//! The hardened global allocator.

use crate::ccid;
use crate::registry::{
    Entry, QuarantineRing, Registry, RegistryStats, StripedCounter, NO_PATCH_SLOT,
};
use ht_patch::{AllocFn, Patch, VulnFlags};
use ht_telemetry::{
    AttackReport, Event, EventKind, EventRing, PatchCounterRow, PatchStripes, TelemetrySnapshot,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// One installed patch, allocation-free representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatchEntry {
    /// Allocation API the patch applies to.
    pub fun: AllocFn,
    /// Allocation-time CCID (from [`ccid::current`] at the patched site).
    pub ccid: u64,
    /// Defenses to apply.
    pub vuln: VulnFlags,
}

impl PatchEntry {
    /// A new patch entry.
    pub fn new(fun: AllocFn, ccid: u64, vuln: VulnFlags) -> Self {
        Self { fun, ccid, vuln }
    }
}

impl From<&Patch> for PatchEntry {
    fn from(p: &Patch) -> Self {
        Self::new(p.alloc_fn, p.ccid, p.vuln)
    }
}

/// Snapshot of the allocator's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HardenedStats {
    /// Allocation-family calls intercepted.
    pub interposed_allocs: u64,
    /// Deallocations intercepted.
    pub interposed_frees: u64,
    /// Patch-table hits (vulnerable buffers recognized).
    pub table_hits: u64,
    /// Guard pages installed.
    pub guard_pages: u64,
    /// Buffers zero-filled for UR defenses.
    pub zero_fills: u64,
    /// Blocks pushed into the quarantine.
    pub quarantined: u64,
    /// Blocks evicted from the quarantine back to the system.
    pub evictions: u64,
    /// Bytes ever pushed into the quarantine.
    pub quarantined_bytes: u64,
    /// Bytes evicted from the quarantine back to the system.
    pub evicted_bytes: u64,
    /// Defenses skipped because a fixed table was full (fail-open).
    pub fail_open: u64,
}

const PATCH_SLOTS: usize = 512;

/// One published patch slot. `meta` packs
/// `READY | fun << FUN_SHIFT | reported << REPORTED_SHIFT | vuln`; `ccid`
/// holds the key's context ID. The `reported` field mirrors the vuln bit
/// layout and carries the telemetry once-bits: bit `REPORTED_SHIFT + t` is
/// set the first time the `T = 1 << t` defense of this patch fires, so the
/// runtime files exactly one attack report per `(FUN, CCID, T)` without a
/// lock.
struct PatchSlot {
    meta: AtomicU64,
    ccid: AtomicU64,
}

const READY: u64 = 1 << 63;
const FUN_SHIFT: u32 = 32;
const REPORTED_SHIFT: u32 = 8;

#[allow(clippy::declare_interior_mutable_const)] // used once per array slot
const EMPTY_SLOT: PatchSlot = PatchSlot {
    meta: AtomicU64::new(0),
    ccid: AtomicU64::new(0),
};

/// The online patch table: a fixed open-addressing probe whose **lookups
/// take no lock and touch no shared mutable state** — the hot path's common
/// case (table miss) is one Acquire load per probed slot.
///
/// Writes (rare: patch installation at startup) serialize on a spin lock
/// and publish each slot by storing `ccid` first, then the `meta` word with
/// `READY` set (Release). A reader that observes `READY` (Acquire)
/// therefore sees the matching `ccid`. Keys are never deleted, so probe
/// sequences are stable forever; merged vulnerability bits only ever grow
/// (`fetch_or`), so a racing reader sees a valid past or present value.
///
/// [`PatchSet::freeze`] seals the table against further installs — the
/// moral equivalent of the paper `mprotect`-ing its table read-only after
/// the configuration file is loaded. The telemetry once-bits (see
/// [`PatchSlot`]) are the one field that still mutates after freeze; they
/// are purely observational and masked out of every lookup.
struct PatchSet {
    lock: crate::registry::SpinLock,
    frozen: AtomicBool,
    slots: [PatchSlot; PATCH_SLOTS],
}

impl PatchSet {
    const fn new() -> Self {
        Self {
            lock: crate::registry::SpinLock::new(),
            frozen: AtomicBool::new(false),
            slots: [EMPTY_SLOT; PATCH_SLOTS],
        }
    }

    fn slot_of(fun: AllocFn, ccid: u64) -> usize {
        let key = ccid ^ ((fun as u64) << 56);
        (key.wrapping_mul(0x9E3779B97F4A7C15) >> (64 - 9)) as usize // log2(512)
    }

    fn freeze(&self) {
        self.frozen.store(true, Ordering::Release);
    }

    fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    /// Returns whether the entry fit (false: table full or frozen).
    fn insert(&self, e: PatchEntry) -> bool {
        let _g = self.lock.lock();
        if self.is_frozen() {
            return false;
        }
        let start = Self::slot_of(e.fun, e.ccid);
        for i in 0..PATCH_SLOTS {
            let s = (start + i) % PATCH_SLOTS;
            let slot = &self.slots[s];
            // The lock holder is the only writer, so Relaxed reads suffice
            // here; publication to readers happens via the Release below.
            let meta = slot.meta.load(Ordering::Relaxed);
            if meta & READY == 0 {
                slot.ccid.store(e.ccid, Ordering::Relaxed);
                slot.meta.store(
                    READY | ((e.fun as u64) << FUN_SHIFT) | u64::from(e.vuln.bits()),
                    Ordering::Release,
                );
                return true;
            }
            if (meta >> FUN_SHIFT) & 0xFF == e.fun as u64
                && slot.ccid.load(Ordering::Relaxed) == e.ccid
            {
                slot.meta
                    .fetch_or(u64::from(e.vuln.bits()), Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Lock-free probe (see the type-level comment for the protocol).
    /// Returns the vulnerability bits and the slot index of the hit.
    #[inline]
    fn lookup_slot(&self, fun: AllocFn, ccid: u64) -> Option<(usize, VulnFlags)> {
        let start = Self::slot_of(fun, ccid);
        for i in 0..PATCH_SLOTS {
            let s = (start + i) % PATCH_SLOTS;
            let slot = &self.slots[s];
            let meta = slot.meta.load(Ordering::Acquire);
            if meta & READY == 0 {
                return None;
            }
            if (meta >> FUN_SHIFT) & 0xFF == fun as u64 && slot.ccid.load(Ordering::Relaxed) == ccid
            {
                return Some((s, VulnFlags::from_bits_truncate(meta as u8)));
            }
        }
        None
    }

    #[cfg(test)]
    fn lookup(&self, fun: AllocFn, ccid: u64) -> VulnFlags {
        self.lookup_slot(fun, ccid)
            .map_or(VulnFlags::NONE, |(_, v)| v)
    }

    /// The published patch in slot `s`, if any.
    fn entry_at(&self, s: usize) -> Option<PatchEntry> {
        let slot = self.slots.get(s)?;
        let meta = slot.meta.load(Ordering::Acquire);
        if meta & READY == 0 {
            return None;
        }
        let fun = *AllocFn::ALL.get(((meta >> FUN_SHIFT) & 0xFF) as usize)?;
        Some(PatchEntry::new(
            fun,
            slot.ccid.load(Ordering::Relaxed),
            VulnFlags::from_bits_truncate(meta as u8),
        ))
    }

    /// Sets the once-bit for vulnerability type `t` (a single bit) in slot
    /// `s`. Returns `true` exactly once per `(slot, t)` — the caller files
    /// the attack report on `true`.
    fn report_once(&self, s: usize, t: VulnFlags) -> bool {
        let bit = u64::from(t.bits()) << REPORTED_SHIFT;
        let prev = self.slots[s].meta.fetch_or(bit, Ordering::Relaxed);
        prev & bit == 0
    }
}

const PAGE: usize = 4096;

fn page_up(n: usize) -> usize {
    (n + PAGE - 1) & !(PAGE - 1)
}

/// The HeapTherapy+ hardened allocator over the system allocator.
///
/// Usable as a `static` (all state is fixed-size and allocation-free) and
/// therefore as `#[global_allocator]`. Defenses are driven by the patch set
/// installed with [`HardenedAlloc::install`]; unpatched allocations pay one
/// table probe and otherwise go straight to [`System`].
#[derive(Debug)]
pub struct HardenedAlloc {
    patches: PatchSet,
    registry: Registry,
    quarantine: QuarantineRing,
    quota: AtomicUsize,
    interposed_allocs: StripedCounter,
    interposed_frees: StripedCounter,
    table_hits: StripedCounter,
    guard_pages: StripedCounter,
    zero_fills: StripedCounter,
    quarantined: StripedCounter,
    evictions: StripedCounter,
    quarantined_bytes: StripedCounter,
    evicted_bytes: StripedCounter,
    fail_open: StripedCounter,
    /// Telemetry arm switch. Checked only on defense-relevant paths (table
    /// hit, patched free), never on the unpatched fast path — disabled
    /// telemetry therefore costs zero atomics per ordinary allocation.
    telemetry_on: AtomicBool,
    /// Defense-activation events (telemetry; lock-free, allocation-free).
    events: EventRing,
    /// Per-patch-slot hit/byte counters (telemetry).
    patch_counters: PatchStripes<PATCH_SLOTS>,
}

impl std::fmt::Debug for PatchSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatchSet").finish_non_exhaustive()
    }
}

impl Default for HardenedAlloc {
    fn default() -> Self {
        Self::new()
    }
}

impl HardenedAlloc {
    /// A hardened allocator with an empty patch set and a 64 MiB quarantine
    /// quota.
    pub const fn new() -> Self {
        Self {
            patches: PatchSet::new(),
            registry: Registry::new(),
            quarantine: QuarantineRing::new(),
            quota: AtomicUsize::new(64 * 1024 * 1024),
            interposed_allocs: StripedCounter::new(),
            interposed_frees: StripedCounter::new(),
            table_hits: StripedCounter::new(),
            guard_pages: StripedCounter::new(),
            zero_fills: StripedCounter::new(),
            quarantined: StripedCounter::new(),
            evictions: StripedCounter::new(),
            quarantined_bytes: StripedCounter::new(),
            evicted_bytes: StripedCounter::new(),
            fail_open: StripedCounter::new(),
            telemetry_on: AtomicBool::new(false),
            events: EventRing::new(),
            patch_counters: PatchStripes::new(),
        }
    }

    /// Installs patches (idempotent per `(FUN, CCID)`; bits merge).
    ///
    /// Returns how many entries were accepted (the fixed table holds 512;
    /// a [frozen](Self::freeze) table accepts none).
    pub fn install(&self, patches: &[PatchEntry]) -> usize {
        if self.patches.is_frozen() {
            return 0;
        }
        patches
            .iter()
            .filter(|&&p| {
                let ok = self.patches.insert(p);
                if !ok {
                    self.fail_open.incr();
                }
                ok
            })
            .count()
    }

    /// Seals the patch table: further [`Self::install`] calls accept
    /// nothing. The paper `mprotect`s its table read-only once the
    /// configuration file is loaded; this is the same promise — after
    /// `freeze`, the table is immutable and every lookup is a pure read.
    pub fn freeze(&self) {
        self.patches.freeze();
    }

    /// Whether [`Self::freeze`] has been called.
    pub fn is_frozen(&self) -> bool {
        self.patches.is_frozen()
    }

    /// Live-pointer registry counters, merged across shards. Conservation
    /// invariant: `inserts == removes + live()` at any quiescent point.
    pub fn registry_stats(&self) -> RegistryStats {
        self.registry.stats()
    }

    /// Installs patches from a configuration file in the standard text
    /// format (`FUN CCID TYPE`, see [`ht_patch::from_config_text`]) — the
    /// online defense generator's startup step on real memory.
    ///
    /// Returns how many entries were accepted.
    ///
    /// # Errors
    ///
    /// Propagates [`ht_patch::ConfigError`] for malformed input.
    pub fn install_from_config(&self, text: &str) -> Result<usize, ht_patch::ConfigError> {
        let patches = ht_patch::from_config_text(text)?;
        let entries: Vec<PatchEntry> = patches.iter().map(PatchEntry::from).collect();
        Ok(self.install(&entries))
    }

    /// Sets the quarantine quota in bytes.
    pub fn set_quarantine_quota(&self, bytes: usize) {
        self.quota.store(bytes, Ordering::Relaxed);
    }

    /// Counter snapshot. Byte conservation: at any quiescent point,
    /// `quarantined_bytes == evicted_bytes + quarantine_usage().1` — bytes
    /// deferred either went back to the system (eviction) or are still
    /// held.
    pub fn stats(&self) -> HardenedStats {
        HardenedStats {
            interposed_allocs: self.interposed_allocs.load(),
            interposed_frees: self.interposed_frees.load(),
            table_hits: self.table_hits.load(),
            guard_pages: self.guard_pages.load(),
            zero_fills: self.zero_fills.load(),
            quarantined: self.quarantined.load(),
            evictions: self.evictions.load(),
            quarantined_bytes: self.quarantined_bytes.load(),
            evicted_bytes: self.evicted_bytes.load(),
            fail_open: self.fail_open.load(),
        }
    }

    /// Arms or disarms telemetry recording. Off by default; switching is
    /// safe at any time (events race benignly around the flip).
    pub fn set_telemetry(&self, on: bool) {
        self.telemetry_on.store(on, Ordering::Relaxed);
    }

    /// Whether telemetry recording is armed.
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry_on.load(Ordering::Relaxed)
    }

    #[inline]
    fn note(&self, ev: Event) {
        if self.telemetry_on.load(Ordering::Relaxed) {
            self.events.push(ev);
        }
    }

    /// Records a table hit plus the defenses about to be applied, files
    /// one-time attack reports per newly fired `(FUN, CCID, T)` with
    /// `T != UAF` (the UAF report files on the free path, where the
    /// quarantine defense actually runs).
    #[inline]
    fn note_patch_hit(&self, fun: AllocFn, ccid: u64, vuln: VulnFlags, slot: usize, size: usize) {
        if !self.telemetry_on.load(Ordering::Relaxed) {
            return;
        }
        let size = size as u64;
        self.patch_counters.record(slot, size);
        let slot32 = slot as u32;
        self.events.push(Event::patched(
            EventKind::PatchHit,
            fun,
            vuln,
            slot32,
            ccid,
            size,
        ));
        for (t, kind) in [
            (VulnFlags::OVERFLOW, EventKind::GuardInstall),
            (VulnFlags::UNINIT_READ, EventKind::ZeroInit),
        ] {
            if vuln.contains(t) {
                self.events
                    .push(Event::patched(kind, fun, t, slot32, ccid, size));
                if self.patches.report_once(slot, t) {
                    self.events.push(Event::patched(
                        EventKind::AttackReported,
                        fun,
                        t,
                        slot32,
                        ccid,
                        size,
                    ));
                }
            }
        }
    }

    /// Records a quarantine defer/evict for a registered entry, filing the
    /// one-time UAF attack report on the first defer of its patch.
    #[inline]
    fn note_quarantine(&self, kind: EventKind, e: &Entry) {
        if !self.telemetry_on.load(Ordering::Relaxed) || e.slot == NO_PATCH_SLOT {
            return;
        }
        let slot = e.slot as usize;
        let Some(p) = self.patches.entry_at(slot) else {
            return;
        };
        let size = e.size as u64;
        self.events.push(Event::patched(
            kind,
            p.fun,
            VulnFlags::USE_AFTER_FREE,
            e.slot,
            p.ccid,
            size,
        ));
        if kind == EventKind::QuarantineDefer
            && self.patches.report_once(slot, VulnFlags::USE_AFTER_FREE)
        {
            self.events.push(Event::patched(
                EventKind::AttackReported,
                p.fun,
                VulnFlags::USE_AFTER_FREE,
                e.slot,
                p.ccid,
                size,
            ));
        }
    }

    /// Drains the event ring (observer API — allocates, so never call it
    /// from inside an allocation).
    pub fn drain_events(&self) -> Vec<Event> {
        self.events.drain_vec()
    }

    /// Drains the ring and merges the per-patch counters into a full
    /// telemetry snapshot. Attack reports are rebuilt from the drained
    /// `attack-reported` events (call chains stay undecoded here — the
    /// allocator has no encoding plan; `heaptherapy-core` decodes).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let events = self.drain_events();
        let reports = events
            .iter()
            .filter(|e| e.kind == EventKind::AttackReported)
            .map(|e| AttackReport {
                fun: e.fun,
                ccid: e.ccid,
                vuln: e.vuln,
                slot: e.slot,
                size: e.size,
                call_chain: Vec::new(),
            })
            .collect();
        let merged = self.patch_counters.merge();
        let per_patch = merged
            .iter()
            .enumerate()
            .filter(|(_, c)| c.hits > 0)
            .filter_map(|(slot, c)| {
                let p = self.patches.entry_at(slot)?;
                Some(PatchCounterRow {
                    slot,
                    fun: p.fun,
                    ccid: p.ccid,
                    vuln: p.vuln,
                    hits: c.hits,
                    bytes: c.bytes,
                })
            })
            .collect();
        TelemetrySnapshot {
            events,
            delivered: self.events.delivered(),
            dropped: self.events.dropped(),
            per_patch,
            reports,
        }
    }

    /// Whether `ptr` is currently in the deferred-free quarantine.
    pub fn is_quarantined(&self, ptr: *mut u8) -> bool {
        self.quarantine.contains(ptr as usize)
    }

    /// Current quarantine usage: (blocks, bytes).
    pub fn quarantine_usage(&self) -> (usize, usize) {
        self.quarantine.usage()
    }

    /// The guard-page address of a guarded live allocation, if any.
    pub fn guard_page_of(&self, ptr: *mut u8) -> Option<usize> {
        let e = self.registry.get(ptr as usize)?;
        if e.region == 0 {
            return None;
        }
        Some(e.region + e.region_len - PAGE)
    }

    /// `mmap` a region with a trailing `PROT_NONE` guard page and place the
    /// user buffer so its end abuts the guard (modulo alignment).
    unsafe fn guarded_alloc(&self, layout: Layout, vuln: VulnFlags, slot: u32) -> *mut u8 {
        let size = layout.size().max(1);
        let align = layout.align().max(1);
        let body = page_up(size + align);
        let total = body + PAGE;
        let region = libc::mmap(
            std::ptr::null_mut(),
            total,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
            -1,
            0,
        );
        if region == libc::MAP_FAILED {
            return std::ptr::null_mut();
        }
        let region = region as usize;
        let guard = region + body;
        if libc::mprotect(guard as *mut libc::c_void, PAGE, libc::PROT_NONE) != 0 {
            libc::munmap(region as *mut libc::c_void, total);
            return std::ptr::null_mut();
        }
        let user = (guard - size) & !(align - 1);
        debug_assert!(user >= region);
        let entry = Entry {
            ptr: user,
            region,
            region_len: total,
            vuln: vuln.bits(),
            slot,
            size,
            align,
        };
        if !self.registry.insert(entry) {
            // Fail open: no room to remember the region; fall back to the
            // system allocator so dealloc stays correct.
            libc::munmap(region as *mut libc::c_void, total);
            self.fail_open.incr();
            self.note(Event::unattributed(
                EventKind::FailOpen,
                AllocFn::Malloc,
                size as u64,
            ));
            return System.alloc(layout);
        }
        self.guard_pages.incr();
        user as *mut u8
    }

    unsafe fn alloc_with(&self, fun: AllocFn, layout: Layout, zeroed: bool) -> *mut u8 {
        self.interposed_allocs.incr();
        let ccid = ccid::current();
        let (slot, vuln) = self
            .patches
            .lookup_slot(fun, ccid)
            .unwrap_or((NO_PATCH_SLOT as usize, VulnFlags::NONE));
        if !vuln.is_empty() {
            self.table_hits.incr();
            self.note_patch_hit(fun, ccid, vuln, slot, layout.size());
        }
        if vuln.contains(VulnFlags::OVERFLOW) {
            // mmap memory is already zeroed, which also covers UR.
            if vuln.contains(VulnFlags::UNINIT_READ) {
                self.zero_fills.incr();
            }
            return self.guarded_alloc(layout, vuln, slot as u32);
        }
        let p = if zeroed {
            System.alloc_zeroed(layout)
        } else {
            System.alloc(layout)
        };
        if p.is_null() {
            return p;
        }
        if vuln.contains(VulnFlags::UNINIT_READ) && !zeroed {
            std::ptr::write_bytes(p, 0, layout.size());
            self.zero_fills.incr();
        }
        if vuln.contains(VulnFlags::USE_AFTER_FREE) {
            let entry = Entry {
                ptr: p as usize,
                region: 0,
                region_len: 0,
                vuln: vuln.bits(),
                slot: slot as u32,
                size: layout.size(),
                align: layout.align(),
            };
            if !self.registry.insert(entry) {
                self.fail_open.incr();
                self.note(Event::unattributed(
                    EventKind::FailOpen,
                    fun,
                    layout.size() as u64,
                ));
            }
        }
        p
    }

    unsafe fn release(&self, e: Entry) {
        if e.region != 0 {
            libc::munmap(e.region as *mut libc::c_void, e.region_len);
        } else {
            let layout = Layout::from_size_align_unchecked(e.size.max(1), e.align.max(1));
            System.dealloc(e.ptr as *mut u8, layout);
        }
    }
}

unsafe impl GlobalAlloc for HardenedAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.alloc_with(AllocFn::Malloc, layout, false)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.alloc_with(AllocFn::Calloc, layout, true)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.interposed_frees.incr();
        match self.registry.remove(ptr as usize) {
            Some(e) => {
                let vuln = VulnFlags::from_bits_truncate(e.vuln);
                if vuln.contains(VulnFlags::USE_AFTER_FREE) {
                    self.quarantined.incr();
                    self.quarantined_bytes.add(e.size as u64);
                    self.note_quarantine(EventKind::QuarantineDefer, &e);
                    let quota = self.quota.load(Ordering::Relaxed);
                    for evicted in self.quarantine.push(e, quota).into_iter().flatten() {
                        self.evictions.incr();
                        self.evicted_bytes.add(evicted.size as u64);
                        self.note_quarantine(EventKind::QuarantineEvict, &evicted);
                        self.release(evicted);
                    }
                } else {
                    self.release(e);
                }
            }
            None => System.dealloc(ptr, layout),
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Interpose as the realloc API: the *realloc-time* context decides
        // the defense (paper Section V).
        let Ok(new_layout) = Layout::from_size_align(new_size, layout.align()) else {
            return std::ptr::null_mut();
        };
        let new_ptr = self.alloc_with(AllocFn::Realloc, new_layout, false);
        if new_ptr.is_null() {
            return new_ptr;
        }
        std::ptr::copy_nonoverlapping(ptr, new_ptr, layout.size().min(new_size));
        self.dealloc(ptr, layout);
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(size: usize, align: usize) -> Layout {
        Layout::from_size_align(size, align).unwrap()
    }

    /// Reads /proc/self/maps and returns the permission string covering
    /// `addr`, e.g. `"---p"`.
    fn perms_at(addr: usize) -> Option<String> {
        let maps = std::fs::read_to_string("/proc/self/maps").ok()?;
        for line in maps.lines() {
            let (range, rest) = line.split_once(' ')?;
            let (lo, hi) = range.split_once('-')?;
            let lo = usize::from_str_radix(lo, 16).ok()?;
            let hi = usize::from_str_radix(hi, 16).ok()?;
            if addr >= lo && addr < hi {
                return Some(rest.split(' ').next()?.to_string());
            }
        }
        None
    }

    #[test]
    fn unpatched_allocations_pass_through() {
        let a = HardenedAlloc::new();
        unsafe {
            let l = layout(128, 8);
            let p = a.alloc(l);
            assert!(!p.is_null());
            std::ptr::write_bytes(p, 0xAB, 128);
            assert_eq!(*p.add(127), 0xAB);
            a.dealloc(p, l);
        }
        let st = a.stats();
        assert_eq!(st.interposed_allocs, 1);
        assert_eq!(st.interposed_frees, 1);
        assert_eq!(st.table_hits, 0);
        assert_eq!(st.guard_pages, 0);
    }

    #[test]
    fn guard_page_is_mapped_inaccessible() {
        let a = HardenedAlloc::new();
        let here = ccid::with_site(0x0F, ccid::current);
        a.install(&[PatchEntry::new(AllocFn::Malloc, here, VulnFlags::OVERFLOW)]);
        unsafe {
            let _site = ccid::CallScope::enter(0x0F);
            let l = layout(1000, 16);
            let p = a.alloc(l);
            assert!(!p.is_null());
            // Whole buffer writable.
            std::ptr::write_bytes(p, 0x55, 1000);
            // The guard page directly follows (mod alignment slack) and is
            // PROT_NONE.
            let guard = a.guard_page_of(p).expect("guarded allocation");
            assert!(guard >= p as usize + 1000);
            assert!(guard - (p as usize + 1000) < 16, "end abuts the guard");
            assert_eq!(perms_at(guard).as_deref(), Some("---p"));
            a.dealloc(p, l);
            assert!(a.guard_page_of(p).is_none(), "region unmapped on free");
        }
        assert_eq!(a.stats().guard_pages, 1);
        assert_eq!(a.stats().table_hits, 1);
    }

    #[test]
    fn ur_patch_zero_fills_real_memory() {
        let a = HardenedAlloc::new();
        let here = ccid::with_site(0x11, ccid::current);
        a.install(&[PatchEntry::new(
            AllocFn::Malloc,
            here,
            VulnFlags::UNINIT_READ,
        )]);
        unsafe {
            // Warm the system allocator with dirty blocks.
            let l = layout(512, 16);
            for _ in 0..8 {
                let p = a.alloc(l);
                std::ptr::write_bytes(p, 0xEE, 512);
                a.dealloc(p, l);
            }
            let _site = ccid::CallScope::enter(0x11);
            let p = a.alloc(l);
            let buf = std::slice::from_raw_parts(p, 512);
            assert!(buf.iter().all(|&b| b == 0), "patched context zero-filled");
            a.dealloc(p, l);
        }
        assert_eq!(a.stats().zero_fills, 1);
    }

    #[test]
    fn uaf_patch_quarantines_real_frees() {
        let a = HardenedAlloc::new();
        let here = ccid::with_site(0x22, ccid::current);
        a.install(&[PatchEntry::new(
            AllocFn::Malloc,
            here,
            VulnFlags::USE_AFTER_FREE,
        )]);
        unsafe {
            let l = layout(256, 16);
            let p = {
                let _site = ccid::CallScope::enter(0x22);
                a.alloc(l)
            };
            std::ptr::write_bytes(p, 0x11, 256);
            a.dealloc(p, l);
            assert!(a.is_quarantined(p), "free deferred");
            // The memory is still mapped and carries the stale bytes.
            assert_eq!(*p, 0x11);
            assert_eq!(a.quarantine_usage(), (1, 256));
        }
        assert_eq!(a.stats().quarantined, 1);
        assert_eq!(a.stats().evictions, 0);
    }

    #[test]
    fn quarantine_quota_evicts_to_system() {
        let a = HardenedAlloc::new();
        a.set_quarantine_quota(600);
        let here = ccid::with_site(0x33, ccid::current);
        a.install(&[PatchEntry::new(
            AllocFn::Malloc,
            here,
            VulnFlags::USE_AFTER_FREE,
        )]);
        unsafe {
            let l = layout(256, 16);
            for _ in 0..4 {
                let p = {
                    let _site = ccid::CallScope::enter(0x33);
                    a.alloc(l)
                };
                a.dealloc(p, l);
            }
        }
        let st = a.stats();
        assert_eq!(st.quarantined, 4);
        assert!(st.evictions >= 2, "quota forces evictions: {st:?}");
        assert!(a.quarantine_usage().1 <= 600);
    }

    #[test]
    fn realloc_probes_realloc_context() {
        let a = HardenedAlloc::new();
        let here = ccid::with_site(0x44, ccid::current);
        a.install(&[PatchEntry::new(AllocFn::Realloc, here, VulnFlags::OVERFLOW)]);
        unsafe {
            let l = layout(64, 8);
            let p = a.alloc(l);
            std::ptr::write_bytes(p, 0x77, 64);
            let q = {
                let _site = ccid::CallScope::enter(0x44);
                a.realloc(p, l, 256)
            };
            assert!(!q.is_null());
            // Contents preserved.
            assert!(std::slice::from_raw_parts(q, 64).iter().all(|&b| b == 0x77));
            // New buffer is guarded.
            assert!(a.guard_page_of(q).is_some());
            a.dealloc(q, layout(256, 8));
        }
    }

    #[test]
    fn alloc_zeroed_probes_calloc() {
        let a = HardenedAlloc::new();
        let here = ccid::with_site(0x55, ccid::current);
        a.install(&[PatchEntry::new(AllocFn::Calloc, here, VulnFlags::OVERFLOW)]);
        unsafe {
            let l = layout(100, 8);
            let _site = ccid::CallScope::enter(0x55);
            let p = a.alloc_zeroed(l);
            assert!(a.guard_page_of(p).is_some(), "calloc patch hit");
            assert!(std::slice::from_raw_parts(p, 100).iter().all(|&b| b == 0));
            a.dealloc(p, l);
        }
    }

    #[test]
    fn different_context_same_site_constant_misses() {
        let a = HardenedAlloc::new();
        let patched = ccid::with_site(1, || ccid::with_site(2, ccid::current));
        a.install(&[PatchEntry::new(
            AllocFn::Malloc,
            patched,
            VulnFlags::OVERFLOW,
        )]);
        unsafe {
            let l = layout(64, 8);
            // Same leaf site (2) under a different caller (3): different
            // CCID, no defense.
            let p = ccid::with_site(3, || ccid::with_site(2, || a.alloc(l)));
            assert!(a.guard_page_of(p).is_none());
            a.dealloc(p, l);
        }
    }

    #[test]
    fn install_from_config_text() {
        let a = HardenedAlloc::new();
        let here = ccid::with_site(0x77, ccid::current);
        let text = format!("malloc {here:#x} UR|UAF  # from-disk\nbogus-line-free\n");
        assert!(a.install_from_config(&text).is_err(), "malformed rejected");
        let text = format!("malloc {here:#x} UR|UAF  # from-disk\n");
        assert_eq!(a.install_from_config(&text).unwrap(), 1);
        unsafe {
            let l = layout(64, 8);
            let p = {
                let _site = ccid::CallScope::enter(0x77);
                a.alloc(l)
            };
            assert!(
                std::slice::from_raw_parts(p, 64).iter().all(|&b| b == 0),
                "UR bit from the config applied"
            );
            a.dealloc(p, l);
            assert!(a.is_quarantined(p), "UAF bit from the config applied");
        }
    }

    #[test]
    fn patch_entry_from_patch() {
        let p = Patch::new(AllocFn::Malloc, 7, VulnFlags::ALL);
        let e = PatchEntry::from(&p);
        assert_eq!(e.ccid, 7);
        assert_eq!(e.vuln, VulnFlags::ALL);
    }

    #[test]
    fn install_merges_duplicate_keys() {
        let a = HardenedAlloc::new();
        assert_eq!(
            a.install(&[
                PatchEntry::new(AllocFn::Malloc, 9, VulnFlags::OVERFLOW),
                PatchEntry::new(AllocFn::Malloc, 9, VulnFlags::UNINIT_READ),
            ]),
            2
        );
        assert_eq!(
            a.patches.lookup(AllocFn::Malloc, 9),
            VulnFlags::OVERFLOW | VulnFlags::UNINIT_READ
        );
    }

    #[test]
    fn concurrent_allocation_stress() {
        use std::sync::Arc;
        let a = Arc::new(HardenedAlloc::new());
        let here = ccid::with_site(0x66, ccid::current);
        a.install(&[PatchEntry::new(
            AllocFn::Malloc,
            here,
            VulnFlags::USE_AFTER_FREE,
        )]);
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || unsafe {
                let l = layout(64, 8);
                for i in 0..200 {
                    let p = if i % 3 == 0 {
                        let _site = ccid::CallScope::enter(0x66);
                        a.alloc(l)
                    } else {
                        a.alloc(l)
                    };
                    assert!(!p.is_null());
                    std::ptr::write_bytes(p, t, 64);
                    assert_eq!(*p.add(63), t);
                    a.dealloc(p, l);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let st = a.stats();
        assert_eq!(st.interposed_allocs, 800);
        assert_eq!(st.interposed_frees, 800);
    }

    #[test]
    fn telemetry_disabled_records_nothing() {
        let a = HardenedAlloc::new();
        let here = ccid::with_site(0x88, ccid::current);
        a.install(&[PatchEntry::new(AllocFn::Malloc, here, VulnFlags::ALL)]);
        unsafe {
            let l = layout(128, 8);
            let p = {
                let _site = ccid::CallScope::enter(0x88);
                a.alloc(l)
            };
            a.dealloc(p, l);
        }
        assert!(!a.telemetry_enabled());
        let snap = a.telemetry_snapshot();
        assert!(snap.is_empty(), "disabled telemetry observed {snap:?}");
        assert_eq!(snap.delivered, 0);
    }

    #[test]
    fn telemetry_records_defenses_and_files_one_report_per_t() {
        let a = HardenedAlloc::new();
        a.set_telemetry(true);
        let here = ccid::with_site(0x99, ccid::current);
        a.install(&[PatchEntry::new(AllocFn::Malloc, here, VulnFlags::ALL)]);
        a.freeze();
        unsafe {
            let l = layout(200, 8);
            for _ in 0..3 {
                let p = {
                    let _site = ccid::CallScope::enter(0x99);
                    a.alloc(l)
                };
                a.dealloc(p, l);
            }
        }
        let snap = a.telemetry_snapshot();
        // 3 hits of one ALL-patch: OF + UR report at first alloc, UAF
        // report at first defer — exactly one report per (FUN, CCID, T).
        assert_eq!(snap.reports.len(), 3, "{:?}", snap.reports);
        let mut types: Vec<VulnFlags> = snap.reports.iter().map(|r| r.vuln).collect();
        types.sort();
        assert_eq!(
            types,
            vec![
                VulnFlags::OVERFLOW,
                VulnFlags::USE_AFTER_FREE,
                VulnFlags::UNINIT_READ
            ]
        );
        for r in &snap.reports {
            assert_eq!(r.fun, AllocFn::Malloc);
            assert_eq!(r.ccid, here);
            assert_eq!(r.size, 200);
        }
        // Per-patch counters: 3 hits x 200 bytes against the one patch.
        assert_eq!(snap.per_patch.len(), 1);
        assert_eq!(snap.per_patch[0].hits, 3);
        assert_eq!(snap.per_patch[0].bytes, 600);
        assert_eq!(snap.per_patch[0].ccid, here);
        // Events: per round one patch-hit + guard-install + zero-init +
        // quarantine-defer, plus the 3 one-time attack reports.
        let count = |k: EventKind| snap.events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EventKind::PatchHit), 3);
        assert_eq!(count(EventKind::GuardInstall), 3);
        assert_eq!(count(EventKind::ZeroInit), 3);
        assert_eq!(count(EventKind::QuarantineDefer), 3);
        assert_eq!(count(EventKind::AttackReported), 3);
        assert_eq!(snap.dropped, 0);
        // A second snapshot delivers no stale events and no new reports.
        let again = a.telemetry_snapshot();
        assert!(again.events.is_empty(), "events delivered exactly once");
        assert!(again.reports.is_empty());
    }

    #[test]
    fn telemetry_eviction_events_attribute_the_patch() {
        let a = HardenedAlloc::new();
        a.set_telemetry(true);
        a.set_quarantine_quota(600);
        let here = ccid::with_site(0xAA, ccid::current);
        a.install(&[PatchEntry::new(
            AllocFn::Malloc,
            here,
            VulnFlags::USE_AFTER_FREE,
        )]);
        unsafe {
            let l = layout(256, 16);
            for _ in 0..4 {
                let p = {
                    let _site = ccid::CallScope::enter(0xAA);
                    a.alloc(l)
                };
                a.dealloc(p, l);
            }
        }
        let snap = a.telemetry_snapshot();
        let evicts: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.kind == EventKind::QuarantineEvict)
            .collect();
        assert!(!evicts.is_empty(), "quota forces evictions");
        for e in evicts {
            assert_eq!(e.ccid, here, "eviction attributed to its patch");
            assert_eq!(e.size, 256);
        }
        let st = a.stats();
        assert_eq!(st.quarantined_bytes, 4 * 256);
        assert_eq!(
            st.quarantined_bytes,
            st.evicted_bytes + a.quarantine_usage().1 as u64,
            "byte conservation through evictions"
        );
    }

    #[test]
    fn quarantine_quota_is_honored_with_remainder() {
        // End-to-end satellite regression: a quota that is not a multiple
        // of the shard count must still be reachable within one block size
        // per shard (the old `quota / 8` truncation lost the remainder and
        // let a saturated shard evict early).
        let a = HardenedAlloc::new();
        let quota = 2055; // 8 * 256 + 7
        a.set_quarantine_quota(quota);
        let here = ccid::with_site(0xBB, ccid::current);
        a.install(&[PatchEntry::new(
            AllocFn::Malloc,
            here,
            VulnFlags::USE_AFTER_FREE,
        )]);
        unsafe {
            // Hold all allocations live first so 200 *distinct* pointers
            // are pushed, spreading across every quarantine shard.
            let l = layout(64, 8);
            let ptrs: Vec<*mut u8> = (0..200)
                .map(|_| {
                    let _site = ccid::CallScope::enter(0xBB);
                    a.alloc(l)
                })
                .collect();
            for p in ptrs {
                a.dealloc(p, l);
            }
        }
        let (_, bytes) = a.quarantine_usage();
        assert!(bytes <= quota);
        assert!(
            bytes + 8 * 64 > quota,
            "usage {bytes} cannot reach quota {quota} within one 64-byte \
             block per shard"
        );
        let st = a.stats();
        assert_eq!(st.quarantined_bytes, 200 * 64);
        assert_eq!(st.quarantined_bytes, st.evicted_bytes + bytes as u64);
    }
}
