//! Safe allocation-throughput drivers for the multi-threaded scaling
//! benchmark (`reproduce scaling`).
//!
//! The benchmark crate is `#![forbid(unsafe_code)]`, so the raw
//! [`GlobalAlloc`] loops live here: each function performs `pairs`
//! allocate–touch–free round trips of `size` bytes on the calling thread
//! and returns the number of pairs completed. The bench harness runs them
//! from N threads at once and divides by wall time.

use crate::ccid;
use crate::galloc::HardenedAlloc;
use std::alloc::{GlobalAlloc, Layout, System};

fn layout(size: usize) -> Layout {
    Layout::from_size_align(size.max(1), 8).expect("valid bench layout")
}

/// Allocate/touch/free `pairs` times straight against the system allocator
/// (the "native" series).
pub fn native_pairs(pairs: u64, size: usize) -> u64 {
    let l = layout(size);
    for i in 0..pairs {
        unsafe {
            // black_box the pointer: Rust allocator calls are elidable, and
            // LLVM happily removes the whole pair otherwise.
            let p = std::hint::black_box(System.alloc(l));
            assert!(!p.is_null());
            p.write((i as u8).wrapping_add(1));
            std::hint::black_box(p.read());
            System.dealloc(std::hint::black_box(p), l);
        }
    }
    pairs
}

/// Allocate/touch/free `pairs` times through `a`.
///
/// When `patched_site` is set, every `patched_every`-th pair enters that
/// instrumented call site first, so the allocation's `(FUN, CCID)` probes
/// hot in the patch table — the "N-patch" series of Fig. 8, but threaded.
pub fn hardened_pairs(
    a: &HardenedAlloc,
    pairs: u64,
    size: usize,
    patched_site: Option<u64>,
    patched_every: u64,
) -> u64 {
    let l = layout(size);
    let every = patched_every.max(1);
    for i in 0..pairs {
        unsafe {
            let patched = patched_site.filter(|_| i % every == 0);
            let p = match patched {
                Some(site) => {
                    let _scope = ccid::CallScope::enter(site);
                    a.alloc(l)
                }
                None => a.alloc(l),
            };
            assert!(!p.is_null());
            p.write((i as u8).wrapping_add(1));
            std::hint::black_box(p.read());
            a.dealloc(p, l);
        }
    }
    pairs
}

/// Allocates `count` buffers of `size` bytes inside patched call site
/// `site`, writes a per-buffer tag, then verifies every tag and frees in
/// allocation order. Returns the number of tag mismatches (0 = no buffer
/// was lost or corrupted while many patched allocations were live at once).
pub fn hardened_batch(a: &HardenedAlloc, count: usize, size: usize, site: u64) -> usize {
    let l = layout(size);
    let _scope = ccid::CallScope::enter(site);
    let mut ptrs = Vec::with_capacity(count);
    for i in 0..count {
        unsafe {
            let p = a.alloc(l);
            assert!(!p.is_null());
            p.write((i as u8) ^ 0x5A);
            ptrs.push(p);
        }
    }
    let mut corrupt = 0;
    for (i, p) in ptrs.into_iter().enumerate() {
        unsafe {
            if p.read() != (i as u8) ^ 0x5A {
                corrupt += 1;
            }
            a.dealloc(p, l);
        }
    }
    corrupt
}

/// The CCID observed from inside instrumented site `site` on this thread —
/// what a patch targeting that site must carry.
pub fn site_ccid(site: u64) -> u64 {
    ccid::with_site(site, ccid::current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::galloc::PatchEntry;
    use ht_patch::{AllocFn, VulnFlags};

    #[test]
    fn native_loop_completes() {
        assert_eq!(native_pairs(100, 64), 100);
    }

    #[test]
    fn batch_holds_live_buffers_without_corruption() {
        let a = HardenedAlloc::new();
        a.install(&[PatchEntry::new(
            AllocFn::Malloc,
            site_ccid(0xBA7C),
            VulnFlags::OVERFLOW,
        )]);
        assert_eq!(hardened_batch(&a, 100, 64, 0xBA7C), 0);
        let st = a.stats();
        assert_eq!(st.table_hits, 100);
        assert_eq!(st.interposed_allocs, st.interposed_frees);
        assert_eq!(a.registry_stats().live(), 0);
    }

    #[test]
    fn hardened_loop_unpatched_is_pass_through() {
        let a = HardenedAlloc::new();
        assert_eq!(hardened_pairs(&a, 50, 64, None, 1), 50);
        let st = a.stats();
        assert_eq!(st.interposed_allocs, 50);
        assert_eq!(st.interposed_frees, 50);
        assert_eq!(st.table_hits, 0);
    }

    #[test]
    fn hardened_loop_hits_the_patched_context() {
        let a = HardenedAlloc::new();
        a.install(&[PatchEntry::new(
            AllocFn::Malloc,
            site_ccid(0x5CA1),
            VulnFlags::OVERFLOW,
        )]);
        assert_eq!(hardened_pairs(&a, 64, 64, Some(0x5CA1), 16), 64);
        let st = a.stats();
        assert_eq!(st.table_hits, 4, "every 16th pair probes hot");
        assert_eq!(st.guard_pages, 4);
    }
}
