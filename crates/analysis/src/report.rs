//! Human-readable rendering of triage findings and plan verdicts.

use crate::candidates::{Candidate, TriageReport};
use crate::verifier::PlanVerdict;
use ht_callgraph::{CallGraph, EdgeId};

/// Renders an edge path as a call chain: `main → f → malloc`.
pub fn chain(graph: &CallGraph, path: &[EdgeId]) -> String {
    let Some(&first) = path.first() else {
        return "?".to_string();
    };
    let mut out = graph.func(graph.edge(first).caller).name.clone();
    for &e in path {
        out.push_str(" → ");
        out.push_str(&graph.func(graph.edge(e).callee).name);
    }
    out
}

/// One line for a candidate: class bits, key, and the decoded call chain.
pub fn render_candidate(graph: &CallGraph, c: &Candidate) -> String {
    format!(
        "{:<9} fun={:<8} ccid={:<#14x} via {}",
        c.vuln.to_string(),
        c.fun.name(),
        c.ccid.0,
        chain(graph, &c.path)
    )
}

/// The full triage report, one candidate per line.
pub fn render_report(graph: &CallGraph, r: &TriageReport) -> String {
    let mut out = String::new();
    if r.is_clean() {
        out.push_str("static triage: clean (no candidate vulnerable contexts)\n");
    } else {
        out.push_str(&format!(
            "static triage: {} candidate context(s) across {} site(s)\n",
            r.candidates.len(),
            r.sites_seen
        ));
        for c in &r.candidates {
            out.push_str("  ");
            out.push_str(&render_candidate(graph, c));
            out.push('\n');
        }
    }
    if r.bounded {
        out.push_str("  (bounded: recursion or budget cut the walk; findings are a lower bound)\n");
    }
    out
}

/// The plan verdict as a compact multi-line summary.
pub fn render_verdict(v: &PlanVerdict) -> String {
    format!(
        "plan verifier: {}\n  contexts={} distinct={} collisions={} decode_failures={}\n  \
         precision_ok={} inclusion_ok={} sites_ok={} coverage_ok={}{}\n",
        if v.is_ok() { "OK" } else { "FAILED" },
        v.collisions.contexts,
        v.collisions.distinct,
        v.collisions.collisions,
        v.collisions.decode_failures,
        v.precision_ok,
        v.inclusion_ok,
        v.sites_ok,
        v.coverage_ok,
        if v.bounded { " (bounded)" } else { "" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_callgraph::CallGraphBuilder;

    #[test]
    fn chain_decodes_names() {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let f = b.func("f");
        let m = b.target("malloc");
        let e1 = b.call(main, f);
        let e2 = b.call(f, m);
        let g = b.build();
        assert_eq!(chain(&g, &[e1, e2]), "main → f → malloc");
        assert_eq!(chain(&g, &[]), "?");
    }
}
