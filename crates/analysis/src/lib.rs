//! Static heap-vulnerability triage and encoding-plan verification
//! (the "lint" half of HeapTherapy+).
//!
//! The dynamic pipeline needs a concrete attack input before it can patch
//! anything. This crate adds the static complement, two engines:
//!
//! 1. **Vulnerability triage** ([`triage`]) — an abstract interpreter over
//!    the modeled-program IR. Expressions evaluate to [`Interval`]s under an
//!    adversarial [`InputDomain`] (each `Input(i)` ranges over the caller's
//!    bound, or all of `u64`); slot liveness and buffer initialization flow
//!    through alloc/free/realloc/copy dataflow. Every access that *may*
//!    overflow, follow a dangling pointer, or read unwritten bytes is
//!    reported as a [`Candidate`] resolved to the static `{FUN, CCID, T}` it
//!    would patch — the allocation context is enumerated on the walk and
//!    encoded with the active [`InstrumentationPlan`], exactly as the
//!    runtime encoder would.
//! 2. **Plan verification** ([`verify_plan`]) — enumerates (bounded, under
//!    recursion) the static context set per target and checks the encoding
//!    plan's claims: precision (no two contexts of one target share a CCID
//!    when the plan claims `precise`; collision rate reported otherwise),
//!    the paper's `FCS ⊇ TCS ⊇ Slim ⊇ Incremental` site-set inclusion, and
//!    that every runtime-reachable target has a defined CCID.
//!
//! The triage *over-approximates* the dynamic shadow analyzer: on any
//! concrete attack input, every patch the shadow replay generates must have
//! its `(FUN, CCID)` among the static candidates (unless
//! [`TriageReport::bounded`] — recursion makes contexts unenumerable). The
//! pipeline's lint pre-pass cross-checks exactly this.
//!
//! [`InstrumentationPlan`]: ht_encoding::InstrumentationPlan

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod candidates;
pub mod domain;
pub mod interval;
pub mod report;
pub mod triage;
pub mod verifier;

mod site;
mod state;

pub use candidates::{Candidate, TriageReport};
pub use domain::{eval_expr, InputDomain};
pub use interval::Interval;
pub use report::{chain, render_candidate, render_report, render_verdict};
pub use triage::{triage, TriageConfig};
pub use verifier::{verify_plan, PlanVerdict, VerifierLimits};

#[cfg(test)]
mod tests {
    use super::*;
    use ht_callgraph::Strategy;
    use ht_encoding::{InstrumentationPlan, Scheme};
    use ht_patch::{AllocFn, VulnFlags};
    use ht_simprog::{Expr, ProgramBuilder, Sink};

    fn plan_for(prog: &ht_simprog::Program) -> InstrumentationPlan {
        InstrumentationPlan::build(prog.graph(), Strategy::Incremental, Scheme::Pcc)
    }

    #[test]
    fn clean_program_triages_clean() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 64u64);
            b.write(s, 0u64, 64u64, 1);
            b.read(s, 0u64, 64u64, Sink::Leak);
            b.free(s);
        });
        let prog = pb.build();
        let r = triage(&prog, &plan_for(&prog), &TriageConfig::default());
        assert!(r.is_clean(), "{:?}", r.candidates);
        assert!(!r.bounded);
        assert_eq!(r.sites_seen, 1);
    }

    #[test]
    fn input_sized_write_is_an_overflow_candidate() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 64u64);
            b.write(s, 0u64, Expr::Input(0), 1);
        });
        let prog = pb.build();
        let r = triage(&prog, &plan_for(&prog), &TriageConfig::default());
        assert_eq!(r.candidates.len(), 1);
        assert!(r.candidates[0].vuln.contains(VulnFlags::OVERFLOW));
        assert_eq!(r.candidates[0].fun, AllocFn::Malloc);
    }

    #[test]
    fn bounded_input_can_prove_the_write_safe() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 64u64);
            b.write(s, 0u64, Expr::Input(0), 1);
        });
        let prog = pb.build();
        let cfg = TriageConfig {
            domain: InputDomain::attack().bound(0, Interval::new(0, 64)),
            ..TriageConfig::default()
        };
        let r = triage(&prog, &plan_for(&prog), &cfg);
        assert!(r.is_clean(), "{:?}", r.candidates);
    }

    #[test]
    fn dangling_read_is_a_uaf_candidate() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 64u64);
            b.write(s, 0u64, 64u64, 1);
            b.free(s);
            b.read(s, 0u64, 8u64, Sink::Leak);
        });
        let prog = pb.build();
        let r = triage(&prog, &plan_for(&prog), &TriageConfig::default());
        assert_eq!(r.candidates.len(), 1);
        assert!(r.candidates[0].vuln.contains(VulnFlags::USE_AFTER_FREE));
    }

    #[test]
    fn clear_after_free_silences_the_uaf() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 64u64);
            b.free(s);
            b.clear(s);
            b.read(s, 0u64, 8u64, Sink::Leak);
        });
        let prog = pb.build();
        let r = triage(&prog, &plan_for(&prog), &TriageConfig::default());
        assert!(r.is_clean(), "{:?}", r.candidates);
    }

    #[test]
    fn unwritten_tail_is_an_uninit_read_candidate_except_calloc() {
        for (fun, expect_clean) in [(AllocFn::Malloc, false), (AllocFn::Calloc, true)] {
            let mut pb = ProgramBuilder::new();
            let main = pb.entry();
            let s = pb.slot();
            pb.define(main, |b| {
                b.alloc(s, fun, 64u64);
                b.write(s, 0u64, 16u64, 1);
                b.read(s, 0u64, 64u64, Sink::Syscall);
            });
            let prog = pb.build();
            let r = triage(&prog, &plan_for(&prog), &TriageConfig::default());
            assert_eq!(r.is_clean(), expect_clean, "{fun:?}: {:?}", r.candidates);
            if !expect_clean {
                assert_eq!(r.candidates[0].vuln, VulnFlags::UNINIT_READ);
            }
        }
    }

    #[test]
    fn discard_sink_never_reports_ur() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 64u64);
            b.read(s, 0u64, 64u64, Sink::Discard);
        });
        let prog = pb.build();
        let r = triage(&prog, &plan_for(&prog), &TriageConfig::default());
        assert!(r.is_clean(), "{:?}", r.candidates);
    }

    #[test]
    fn copy_taints_the_destination_with_the_source_origin() {
        // heartbleed shape: uninit bytes flow src → dst, the *leak* reads
        // dst, the UR blames the src allocation (origin tracking).
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let (req, resp) = (pb.slot(), pb.slot());
        pb.define(main, |b| {
            b.alloc(req, AllocFn::Malloc, 64u64);
            b.write(req, 0u64, 16u64, 1); // only 16 bytes valid
            b.alloc(resp, AllocFn::Calloc, 128u64);
            b.copy(req, 0u64, resp, 0u64, 64u64); // 48 invalid bytes move
            b.read(resp, 0u64, 64u64, Sink::Leak);
        });
        let prog = pb.build();
        let r = triage(&prog, &plan_for(&prog), &TriageConfig::default());
        // Both the tainted response buffer and the origin request buffer
        // must appear as UR candidates.
        assert_eq!(r.candidates.len(), 2, "{:?}", r.candidates);
        for c in &r.candidates {
            assert!(c.vuln.contains(VulnFlags::UNINIT_READ), "{c:?}");
        }
    }

    #[test]
    fn distinct_contexts_get_distinct_candidates() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let f = pb.func("f");
        let g = pb.func("g");
        let helper = pb.func("helper");
        let s = pb.slot();
        pb.define(main, |b| {
            b.call(f);
            b.call(g);
        });
        pb.define(f, |b| b.call(helper));
        pb.define(g, |b| b.call(helper));
        pb.define(helper, |b| {
            b.alloc(s, AllocFn::Malloc, 8u64);
            b.write(s, 0u64, Expr::Input(0), 1);
            b.free(s);
        });
        let prog = pb.build();
        let plan = InstrumentationPlan::build(prog.graph(), Strategy::Tcs, Scheme::Positional);
        let r = triage(&prog, &plan, &TriageConfig::default());
        assert_eq!(r.sites_seen, 2, "two calling contexts of the same site");
        assert_eq!(r.candidates.len(), 2);
        assert_ne!(r.candidates[0].ccid, r.candidates[1].ccid);
        assert_ne!(r.candidates[0].path, r.candidates[1].path);
    }

    #[test]
    fn loops_summarize_without_false_positives() {
        // The SPEC shape: repeat { alloc; write all; read all; free }.
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.repeat(Expr::Input(0), |b| {
                b.alloc(s, AllocFn::Malloc, 256u64);
                b.write(s, 0u64, 256u64, 1);
                b.read(s, 0u64, 256u64, Sink::Branch);
                b.free(s);
            });
        });
        let prog = pb.build();
        let r = triage(&prog, &plan_for(&prog), &TriageConfig::default());
        assert!(r.is_clean(), "{:?}", r.candidates);
        assert!(!r.bounded, "the loop summary converges");
    }

    #[test]
    fn recursion_sets_bounded() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let f = pb.func("f");
        let s = pb.slot();
        pb.define(main, |b| b.call(f));
        pb.define(f, |b| {
            b.alloc(s, AllocFn::Malloc, 8u64);
            b.free(s);
            b.call(f);
        });
        let prog = pb.build();
        let r = triage(&prog, &plan_for(&prog), &TriageConfig::default());
        assert!(r.bounded);
    }

    #[test]
    fn virtual_calls_cover_every_candidate_callee() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let a = pb.func("handler_a");
        let b_ = pb.func("handler_b");
        let s = pb.slot();
        for f in [a, b_] {
            pb.define(f, |b| {
                b.alloc(s, AllocFn::Malloc, 32u64);
                b.write(s, 0u64, Expr::Input(1), 1);
                b.free(s);
            });
        }
        pb.define(main, |b| b.call_virtual(&[a, b_], Expr::Input(0)));
        let prog = pb.build();
        let plan = InstrumentationPlan::build(prog.graph(), Strategy::Tcs, Scheme::Positional);
        let r = triage(&prog, &plan, &TriageConfig::default());
        assert_eq!(r.candidates.len(), 2, "one per dispatch target");
    }

    #[test]
    fn realloc_resolves_to_the_realloc_context() {
        let mut pb = ProgramBuilder::new();
        let main = pb.entry();
        let s = pb.slot();
        pb.define(main, |b| {
            b.alloc(s, AllocFn::Malloc, 16u64);
            b.write(s, 0u64, 16u64, 1);
            b.realloc(s, Expr::Input(0));
            b.write(s, 0u64, Expr::Input(0), 2);
            b.read(s, 0u64, 16u64, Sink::Leak);
        });
        let prog = pb.build();
        let r = triage(&prog, &plan_for(&prog), &TriageConfig::default());
        // The grown buffer is written with an attacker length: overflow on
        // the realloc context (Input(0) may exceed the new size? No — the
        // write length equals the size, but size.lo is 0 so the extent may
        // exceed it).
        let of = r
            .candidates
            .iter()
            .find(|c| c.fun == AllocFn::Realloc)
            .expect("realloc candidate");
        assert!(of.vuln.contains(VulnFlags::OVERFLOW));
    }
}
