//! Static allocation-site identities.
//!
//! An abstract buffer is identified by the full edge path from the program
//! entry to the allocation-API node — exactly the calling context the runtime
//! [`Encoder`](ht_encoding::Encoder) folds into a CCID. Interning paths here
//! gives each static site a stable index, its `FUN`, and the CCID the active
//! plan would assign, so triage candidates resolve directly to the
//! `{FUN, CCID, T}` a patch would carry.

use ht_callgraph::EdgeId;
use ht_encoding::{encode_context, Ccid, InstrumentationPlan};
use ht_patch::AllocFn;
use std::collections::HashMap;

/// Index of an interned site in a [`SiteTable`].
pub(crate) type SiteIdx = usize;

/// One static allocation site: a calling context ending in an allocation
/// edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SiteInfo {
    /// The allocation API requested there.
    pub fun: AllocFn,
    /// Full edge path from the entry, allocation edge last.
    pub path: Vec<EdgeId>,
    /// The CCID the plan assigns this context.
    pub ccid: Ccid,
}

/// Interner from allocation-context paths to [`SiteIdx`].
#[derive(Debug, Default)]
pub(crate) struct SiteTable {
    infos: Vec<SiteInfo>,
    index: HashMap<Vec<EdgeId>, SiteIdx>,
}

impl SiteTable {
    /// Interns `path` (encoding it under `plan` on first sight).
    pub fn intern(
        &mut self,
        path: Vec<EdgeId>,
        fun: AllocFn,
        plan: &InstrumentationPlan,
    ) -> SiteIdx {
        if let Some(&i) = self.index.get(&path) {
            return i;
        }
        let ccid = encode_context(plan, &path);
        let i = self.infos.len();
        self.infos.push(SiteInfo {
            fun,
            path: path.clone(),
            ccid,
        });
        self.index.insert(path, i);
        i
    }

    /// The interned site at `i`.
    pub fn info(&self, i: SiteIdx) -> &SiteInfo {
        &self.infos[i]
    }

    /// Number of distinct sites seen.
    pub fn len(&self) -> usize {
        self.infos.len()
    }
}
