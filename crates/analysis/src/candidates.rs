//! Triage output: candidate vulnerable allocation contexts.

use ht_callgraph::EdgeId;
use ht_encoding::Ccid;
use ht_patch::{AllocFn, Patch, VulnFlags};

/// One candidate vulnerable allocation context, resolved to the static
/// `{FUN, CCID, T}` a patch for it would carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The allocation API of the flagged site.
    pub fun: AllocFn,
    /// The CCID the active plan assigns the site's calling context.
    pub ccid: Ccid,
    /// Union of the vulnerability classes the site may be exposed to.
    pub vuln: VulnFlags,
    /// A representative edge path (entry → … → allocation edge) encoding to
    /// `ccid`. Distinct contexts colliding on one CCID keep the first path.
    pub path: Vec<EdgeId>,
}

impl Candidate {
    /// The patch-table key this candidate resolves to.
    pub fn key(&self) -> (AllocFn, u64) {
        (self.fun, self.ccid.0)
    }
}

/// Everything the static triage found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageReport {
    /// Candidates, sorted by `(FUN, CCID)`, one entry per key.
    pub candidates: Vec<Candidate>,
    /// Distinct static allocation contexts visited.
    pub sites_seen: usize,
    /// `true` when the analysis had to cut a cycle or hit an iteration cap:
    /// results are still useful but the over-approximation guarantee (every
    /// dynamic finding has a static candidate) no longer holds strictly.
    pub bounded: bool,
}

impl TriageReport {
    /// Whether the triage found nothing.
    pub fn is_clean(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidate for a patch key, if any.
    pub fn find(&self, fun: AllocFn, ccid: u64) -> Option<&Candidate> {
        self.candidates
            .iter()
            .find(|c| c.fun == fun && c.ccid.0 == ccid)
    }

    /// Whether a dynamically generated patch is covered: same key, and the
    /// candidate's class set includes everything the patch defends against.
    pub fn covers_patch(&self, patch: &Patch) -> bool {
        self.find(patch.alloc_fn, patch.ccid)
            .is_some_and(|c| c.vuln.contains(patch.vuln))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TriageReport {
        TriageReport {
            candidates: vec![Candidate {
                fun: AllocFn::Malloc,
                ccid: Ccid(7),
                vuln: VulnFlags::OVERFLOW.union(VulnFlags::UNINIT_READ),
                path: vec![EdgeId(0)],
            }],
            sites_seen: 1,
            bounded: false,
        }
    }

    #[test]
    fn coverage_requires_key_and_class_containment() {
        let r = report();
        assert!(!r.is_clean());
        assert!(r.covers_patch(&Patch::new(AllocFn::Malloc, 7, VulnFlags::OVERFLOW)));
        assert!(!r.covers_patch(&Patch::new(AllocFn::Malloc, 7, VulnFlags::USE_AFTER_FREE)));
        assert!(!r.covers_patch(&Patch::new(AllocFn::Calloc, 7, VulnFlags::OVERFLOW)));
        assert!(!r.covers_patch(&Patch::new(AllocFn::Malloc, 8, VulnFlags::OVERFLOW)));
        assert_eq!(r.candidates[0].key(), (AllocFn::Malloc, 7));
    }
}
