//! The abstract heap state the triage interpreter walks over.

use crate::interval::Interval;
use crate::site::SiteIdx;
use std::collections::{BTreeMap, BTreeSet};

/// What the analysis knows about one slot's reference to a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct RefFlags {
    /// The referenced buffer may have been freed (the reference dangles).
    pub may_freed: bool,
}

/// Summary of every buffer a static allocation site may have produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AbsBuf {
    /// Possible allocation sizes.
    pub size: Interval,
    /// Bytes `[0, init_prefix)` are guaranteed initialized in every
    /// instance (`u64::MAX` for `calloc`, which zero-fills).
    pub init_prefix: u64,
    /// Sites whose possibly-uninitialized bytes may have been copied in —
    /// the static counterpart of the shadow analyzer's origin tracking.
    pub origins: BTreeSet<SiteIdx>,
    /// Some instance of this site may have been freed (wild accesses into
    /// quarantined memory blame such sites).
    pub may_freed: bool,
}

/// A pointer slot: which sites it may reference.
///
/// Empty `refs` with `maybe_null` models a definitely-NULL slot (the initial
/// state); accesses through it are no-ops in the concrete semantics too.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AbsSlot {
    /// The slot may hold NULL.
    pub maybe_null: bool,
    /// Sites the slot may point into.
    pub refs: BTreeMap<SiteIdx, RefFlags>,
}

impl AbsSlot {
    fn null() -> Self {
        AbsSlot {
            maybe_null: true,
            refs: BTreeMap::new(),
        }
    }
}

/// The full abstract state: one [`AbsSlot`] per program slot plus the
/// site-indexed buffer summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AbsState {
    pub slots: Vec<AbsSlot>,
    pub bufs: BTreeMap<SiteIdx, AbsBuf>,
}

impl AbsState {
    /// The entry state: every slot NULL, no buffers.
    pub fn new(slot_count: u32) -> Self {
        AbsState {
            slots: vec![AbsSlot::null(); slot_count as usize],
            bufs: BTreeMap::new(),
        }
    }

    /// Pointwise join (control-flow merge).
    pub fn join(&self, other: &AbsState) -> AbsState {
        debug_assert_eq!(self.slots.len(), other.slots.len());
        let slots = self
            .slots
            .iter()
            .zip(&other.slots)
            .map(|(a, b)| {
                let mut refs = a.refs.clone();
                for (&s, fl) in &b.refs {
                    let e = refs.entry(s).or_default();
                    e.may_freed |= fl.may_freed;
                }
                AbsSlot {
                    maybe_null: a.maybe_null || b.maybe_null,
                    refs,
                }
            })
            .collect();
        let mut bufs = self.bufs.clone();
        for (&s, b) in &other.bufs {
            match bufs.get_mut(&s) {
                None => {
                    bufs.insert(s, b.clone());
                }
                Some(a) => {
                    a.size = a.size.join(&b.size);
                    a.init_prefix = a.init_prefix.min(b.init_prefix);
                    a.origins.extend(b.origins.iter().copied());
                    a.may_freed |= b.may_freed;
                }
            }
        }
        AbsState { slots, bufs }
    }

    /// Marks site `s` as possibly freed: on its summary and on every slot
    /// reference to it (free does not clear pointers, so all aliases dangle).
    pub fn mark_freed(&mut self, s: SiteIdx) {
        if let Some(b) = self.bufs.get_mut(&s) {
            b.may_freed = true;
        }
        for slot in &mut self.slots {
            if let Some(fl) = slot.refs.get_mut(&s) {
                fl.may_freed = true;
            }
        }
    }

    /// Whether slot `idx` holds the *only* reference to site `s` and holds
    /// it definitely (non-NULL, non-dangling) — the condition for strong
    /// updates of the init prefix.
    pub fn sole_definite_ref(&self, idx: usize, s: SiteIdx) -> bool {
        let slot = &self.slots[idx];
        if slot.maybe_null || slot.refs.len() != 1 {
            return false;
        }
        match slot.refs.get(&s) {
            Some(fl) if !fl.may_freed => {}
            _ => return false,
        }
        self.slots
            .iter()
            .enumerate()
            .all(|(i, sl)| i == idx || !sl.refs.contains_key(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(size: u64, prefix: u64) -> AbsBuf {
        AbsBuf {
            size: Interval::exact(size),
            init_prefix: prefix,
            origins: BTreeSet::new(),
            may_freed: false,
        }
    }

    #[test]
    fn join_merges_slots_and_bufs() {
        let mut a = AbsState::new(2);
        let mut b = AbsState::new(2);
        a.bufs.insert(0, buf(64, 64));
        b.bufs.insert(0, buf(32, 16));
        b.bufs.insert(1, buf(8, 0));
        a.slots[0].maybe_null = false;
        a.slots[0].refs.insert(0, RefFlags { may_freed: false });
        b.slots[0].maybe_null = false;
        b.slots[0].refs.insert(0, RefFlags { may_freed: true });
        let j = a.join(&b);
        assert_eq!(j.bufs[&0].size, Interval::new(32, 64));
        assert_eq!(j.bufs[&0].init_prefix, 16, "prefix joins to the minimum");
        assert!(j.bufs.contains_key(&1), "one-sided buffers survive");
        assert!(!j.slots[0].maybe_null);
        assert!(j.slots[0].refs[&0].may_freed, "dangling-or flags");
        assert!(j.slots[1].maybe_null);
    }

    #[test]
    fn mark_freed_hits_all_aliases() {
        let mut st = AbsState::new(2);
        st.bufs.insert(0, buf(64, 0));
        for i in 0..2 {
            st.slots[i].refs.insert(0, RefFlags::default());
        }
        st.mark_freed(0);
        assert!(st.bufs[&0].may_freed);
        assert!(st.slots[0].refs[&0].may_freed);
        assert!(st.slots[1].refs[&0].may_freed);
    }

    #[test]
    fn sole_definite_ref_conditions() {
        let mut st = AbsState::new(2);
        st.bufs.insert(0, buf(64, 0));
        st.slots[0].maybe_null = false;
        st.slots[0].refs.insert(0, RefFlags::default());
        assert!(st.sole_definite_ref(0, 0));
        // A second alias anywhere forbids strong updates.
        st.slots[1].refs.insert(0, RefFlags::default());
        assert!(!st.sole_definite_ref(0, 0));
        st.slots[1].refs.clear();
        // A dangling or possibly-NULL reference forbids them too.
        st.slots[0].refs.get_mut(&0).unwrap().may_freed = true;
        assert!(!st.sole_definite_ref(0, 0));
        st.slots[0].refs.get_mut(&0).unwrap().may_freed = false;
        st.slots[0].maybe_null = true;
        assert!(!st.sole_definite_ref(0, 0));
    }
}
