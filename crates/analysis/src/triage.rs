//! The static vulnerability triage pass: an abstract interpreter over the
//! modeled-program IR.
//!
//! The walker executes a [`Program`] symbolically under an adversarial
//! [`InputDomain`]: every expression evaluates to an [`Interval`], every
//! allocation site is identified by its full calling context (and hence the
//! CCID the active [`InstrumentationPlan`] would stamp on it), and buffer
//! liveness/initialization flows through alloc/free/realloc/copy exactly as
//! in the concrete heap. Wherever an access *may* exceed its buffer, follow a
//! dangling reference, or read bytes no execution is guaranteed to have
//! written, the site is reported as a candidate `{FUN, CCID, T}` — the static
//! over-approximation of what the shadow analyzer would patch after seeing a
//! concrete attack.

use crate::candidates::{Candidate, TriageReport};
use crate::domain::{eval_expr, InputDomain};
use crate::interval::Interval;
use crate::site::{SiteIdx, SiteTable};
use crate::state::{AbsBuf, AbsState, RefFlags};
use ht_encoding::InstrumentationPlan;
use ht_patch::{AllocFn, VulnFlags};
use ht_simprog::{Expr, Program, SlotId, Stmt};
use std::collections::{BTreeMap, BTreeSet};

/// Triage tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageConfig {
    /// Bounds on the attack input (default: fully adversarial).
    pub domain: InputDomain,
    /// Red-zone width the shadow analyzer runs with; accesses reaching past
    /// `size + redzone` may land in *any* allocation, so blame fans out to
    /// every live site (mirroring neighbour-blaming warnings).
    pub redzone: u64,
    /// Loop-summary fixpoint iteration cap; hitting it sets
    /// [`TriageReport::bounded`].
    pub loop_fixpoint_cap: usize,
    /// Abstract statement-visit budget; exhausting it sets `bounded`.
    pub max_abstract_steps: u64,
}

impl Default for TriageConfig {
    fn default() -> Self {
        Self {
            domain: InputDomain::attack(),
            redzone: 16,
            loop_fixpoint_cap: 64,
            max_abstract_steps: 1 << 22,
        }
    }
}

/// Runs the static triage over `prog` under `plan`.
pub fn triage(prog: &Program, plan: &InstrumentationPlan, cfg: &TriageConfig) -> TriageReport {
    let mut t = Triage {
        prog,
        plan,
        cfg,
        sites: SiteTable::default(),
        stack_edges: Vec::new(),
        on_stack: vec![false; prog.graph().func_count()],
        found: BTreeMap::new(),
        bounded: false,
        steps: 0,
    };
    let entry = prog.entry();
    t.on_stack[entry.index()] = true;
    let mut st = AbsState::new(prog.slot_count());
    // Budget exhaustion aborts the walk; `bounded` is already set then.
    let _ = t.exec_body(prog.body(entry), &mut st);

    let candidates = t
        .found
        .into_values()
        .map(|acc| {
            let info = t.sites.info(acc.site);
            Candidate {
                fun: info.fun,
                ccid: info.ccid,
                vuln: acc.vuln,
                path: info.path.clone(),
            }
        })
        .collect();
    TriageReport {
        candidates,
        sites_seen: t.sites.len(),
        bounded: t.bounded,
    }
}

/// Raised when the abstract step budget runs out.
struct Exhausted;

struct CandidateAcc {
    vuln: VulnFlags,
    site: SiteIdx,
}

struct Triage<'a> {
    prog: &'a Program,
    plan: &'a InstrumentationPlan,
    cfg: &'a TriageConfig,
    sites: SiteTable,
    stack_edges: Vec<ht_callgraph::EdgeId>,
    on_stack: Vec<bool>,
    found: BTreeMap<(AllocFn, u64), CandidateAcc>,
    bounded: bool,
    steps: u64,
}

impl<'a> Triage<'a> {
    fn eval(&self, e: &Expr) -> Interval {
        eval_expr(e, &self.cfg.domain)
    }

    fn emit(&mut self, site: SiteIdx, vuln: VulnFlags) {
        let info = self.sites.info(site);
        let key = (info.fun, info.ccid.0);
        self.found
            .entry(key)
            .and_modify(|acc| acc.vuln = acc.vuln.union(vuln))
            .or_insert(CandidateAcc { vuln, site });
    }

    /// Blames every site currently summarized: a wild access (past the red
    /// zone) may land in any allocation — or, for freed sites, in
    /// quarantined memory — so the shadow analyzer could attribute it to any
    /// of them.
    fn emit_wild(&mut self, st: &AbsState, checked_read: bool) {
        let sites: Vec<(SiteIdx, bool)> = st.bufs.iter().map(|(&s, b)| (s, b.may_freed)).collect();
        for (s, freed) in sites {
            self.emit(s, VulnFlags::OVERFLOW);
            if freed {
                self.emit(s, VulnFlags::USE_AFTER_FREE);
            }
            if checked_read {
                self.emit(s, VulnFlags::UNINIT_READ);
            }
        }
    }

    fn exec_body(&mut self, stmts: &[Stmt], st: &mut AbsState) -> Result<(), Exhausted> {
        for stmt in stmts {
            self.exec_stmt(stmt, st)?;
        }
        Ok(())
    }

    fn call_edge(&mut self, e: ht_callgraph::EdgeId, st: &mut AbsState) -> Result<(), Exhausted> {
        let callee = self.prog.graph().edge(e).callee;
        if self.on_stack[callee.index()] {
            // Recursion: cut the cycle. Contexts with repeated edges are not
            // enumerated, so the strict over-approximation claim is waived.
            self.bounded = true;
            return Ok(());
        }
        self.on_stack[callee.index()] = true;
        self.stack_edges.push(e);
        let r = self.exec_body(self.prog.body(callee), st);
        self.stack_edges.pop();
        self.on_stack[callee.index()] = false;
        r
    }

    /// Interns the allocation context `stack + edge` for `fun`.
    fn intern_site(&mut self, edge: ht_callgraph::EdgeId, fun: AllocFn) -> SiteIdx {
        let mut path = self.stack_edges.clone();
        path.push(edge);
        self.sites.intern(path, fun, self.plan)
    }

    /// Binds `slot` to a fresh-instance summary of `site`.
    fn bind_slot(st: &mut AbsState, slot: SlotId, site: SiteIdx) {
        let sl = &mut st.slots[slot.index()];
        sl.maybe_null = false;
        sl.refs = BTreeMap::from([(site, RefFlags::default())]);
    }

    /// Adds (or weakly joins) a buffer summary for `site`.
    fn upsert_buf(
        st: &mut AbsState,
        site: SiteIdx,
        size: Interval,
        init_prefix: u64,
        origins: BTreeSet<SiteIdx>,
    ) {
        match st.bufs.get_mut(&site) {
            None => {
                st.bufs.insert(
                    site,
                    AbsBuf {
                        size,
                        init_prefix,
                        origins,
                        may_freed: false,
                    },
                );
            }
            Some(b) => {
                // The site summarizes every instance it ever produced.
                b.size = b.size.join(&size);
                b.init_prefix = b.init_prefix.min(init_prefix);
                b.origins.extend(origins);
            }
        }
    }

    /// Reports extent/liveness candidates for one access through `slot` and
    /// returns whether the access may run wild (past the red zone).
    fn check_access(&mut self, st: &AbsState, slot: SlotId, extent_hi: u64) -> bool {
        let refs: Vec<(SiteIdx, RefFlags)> = st.slots[slot.index()]
            .refs
            .iter()
            .map(|(&s, &fl)| (s, fl))
            .collect();
        let mut wild = false;
        for (s, fl) in refs {
            let Some(buf) = st.bufs.get(&s) else { continue };
            if extent_hi > buf.size.lo {
                self.emit(s, VulnFlags::OVERFLOW);
            }
            if extent_hi > buf.size.lo.saturating_add(self.cfg.redzone) {
                wild = true;
            }
            if fl.may_freed {
                self.emit(s, VulnFlags::USE_AFTER_FREE);
            }
        }
        wild
    }

    fn exec_stmt(&mut self, stmt: &Stmt, st: &mut AbsState) -> Result<(), Exhausted> {
        self.steps += 1;
        if self.steps > self.cfg.max_abstract_steps {
            self.bounded = true;
            return Err(Exhausted);
        }
        match stmt {
            Stmt::Call(e) => self.call_edge(*e, st)?,
            Stmt::CallVirtual { edges, selector: _ } => {
                // The selector is input-derived, hence unknown: join the
                // effect of every candidate callee from the same pre-state.
                let mut joined: Option<AbsState> = None;
                for &e in edges {
                    let mut branch = st.clone();
                    self.call_edge(e, &mut branch)?;
                    joined = Some(match joined {
                        None => branch,
                        Some(j) => j.join(&branch),
                    });
                }
                if let Some(j) = joined {
                    *st = j;
                }
            }
            Stmt::Alloc {
                edge,
                slot,
                fun,
                size,
                align: _,
            } => {
                let size_iv = self.eval(size);
                let site = self.intern_site(*edge, *fun);
                let init = if *fun == AllocFn::Calloc { u64::MAX } else { 0 };
                Self::upsert_buf(st, site, size_iv, init, BTreeSet::new());
                Self::bind_slot(st, *slot, site);
            }
            Stmt::Realloc {
                edge,
                slot,
                new_size,
            } => {
                let size_iv = self.eval(new_size);
                let old = st.slots[slot.index()].clone();
                // The old buffer (if any) is freed; its bytes and their
                // validity move to the new one.
                let mut prefix = if old.maybe_null || old.refs.is_empty() {
                    0 // realloc(NULL) behaves as malloc: uninitialized
                } else {
                    u64::MAX
                };
                let mut origins = BTreeSet::new();
                for &s in old.refs.keys() {
                    if let Some(b) = st.bufs.get(&s) {
                        prefix = prefix.min(b.init_prefix);
                        origins.insert(s);
                        origins.extend(b.origins.iter().copied());
                    }
                    st.mark_freed(s);
                }
                let site = self.intern_site(*edge, AllocFn::Realloc);
                Self::upsert_buf(st, site, size_iv, prefix, origins);
                Self::bind_slot(st, *slot, site);
            }
            Stmt::Free { slot } => {
                let sites: Vec<SiteIdx> = st.slots[slot.index()].refs.keys().copied().collect();
                for s in sites {
                    st.mark_freed(s);
                }
            }
            Stmt::Clear { slot } => {
                let sl = &mut st.slots[slot.index()];
                sl.maybe_null = true;
                sl.refs.clear();
            }
            Stmt::Write {
                slot,
                offset,
                len,
                byte: _,
            } => {
                if st.slots[slot.index()].refs.is_empty() {
                    return Ok(()); // definitely NULL: concrete no-op
                }
                let off = self.eval(offset);
                let len_iv = self.eval(len);
                if len_iv.hi == 0 {
                    return Ok(()); // zero-length accesses are skipped
                }
                let extent_hi = off.hi.saturating_add(len_iv.hi);
                let wild = self.check_access(st, *slot, extent_hi);
                // Strong init-prefix update, only when this is provably the
                // one live instance: the write definitely lands there.
                let sole = st.slots[slot.index()]
                    .refs
                    .keys()
                    .next()
                    .copied()
                    .filter(|&s| st.sole_definite_ref(slot.index(), s));
                if let Some(s) = sole {
                    if let Some(buf) = st.bufs.get_mut(&s) {
                        if off.hi <= buf.init_prefix {
                            buf.init_prefix = buf.init_prefix.max(off.lo.saturating_add(len_iv.lo));
                        }
                    }
                }
                if wild {
                    self.emit_wild(st, false);
                }
            }
            Stmt::Copy {
                src,
                src_off,
                dst,
                dst_off,
                len,
            } => self.exec_copy(st, *src, src_off, *dst, dst_off, len),
            Stmt::Read {
                slot,
                offset,
                len,
                sink,
            } => {
                if st.slots[slot.index()].refs.is_empty() {
                    return Ok(());
                }
                let off = self.eval(offset);
                let len_iv = self.eval(len);
                if len_iv.hi == 0 {
                    return Ok(());
                }
                let extent_hi = off.hi.saturating_add(len_iv.hi);
                let wild = self.check_access(st, *slot, extent_hi);
                if sink.checks_vbits() {
                    // Bytes past the guaranteed-initialized prefix may be
                    // invalid; blame the buffer and wherever its invalid
                    // bytes were copied from (origin tracking).
                    let refs: Vec<SiteIdx> = st.slots[slot.index()].refs.keys().copied().collect();
                    for s in refs {
                        let Some(buf) = st.bufs.get(&s) else { continue };
                        if extent_hi > buf.init_prefix {
                            let origins: Vec<SiteIdx> = buf.origins.iter().copied().collect();
                            self.emit(s, VulnFlags::UNINIT_READ);
                            for o in origins {
                                self.emit(o, VulnFlags::UNINIT_READ);
                            }
                        }
                    }
                }
                if wild {
                    self.emit_wild(st, sink.checks_vbits());
                }
            }
            Stmt::Repeat { times, body } => {
                let t = self.eval(times);
                if t.hi == 0 {
                    return Ok(()); // loop never runs
                }
                // Summarize the loop with a join-until-fixpoint over the
                // loop-head state. All expression values are input-derived
                // (not state-derived), so the chain is finite; the cap is a
                // safety net.
                let mut head = st.clone();
                let mut converged = false;
                for _ in 0..self.cfg.loop_fixpoint_cap {
                    let mut after = head.clone();
                    self.exec_body(body, &mut after)?;
                    let merged = head.join(&after);
                    if merged == head {
                        converged = true;
                        break;
                    }
                    head = merged;
                }
                if !converged {
                    self.bounded = true;
                }
                // At fixpoint, head covers both the zero-iteration state
                // (head ⊒ entry) and every post-iteration state.
                *st = head;
            }
            Stmt::If { cond, then_, else_ } => {
                let c = self.eval(cond);
                if c.lo > 0 {
                    self.exec_body(then_, st)?;
                } else if c.hi == 0 {
                    self.exec_body(else_, st)?;
                } else {
                    let mut t_branch = st.clone();
                    self.exec_body(then_, &mut t_branch)?;
                    self.exec_body(else_, st)?;
                    *st = st.join(&t_branch);
                }
            }
        }
        Ok(())
    }

    fn exec_copy(
        &mut self,
        st: &mut AbsState,
        src: SlotId,
        src_off: &Expr,
        dst: SlotId,
        dst_off: &Expr,
        len: &Expr,
    ) {
        if st.slots[src.index()].refs.is_empty() || st.slots[dst.index()].refs.is_empty() {
            return; // either pointer definitely NULL: concrete no-op
        }
        let so = self.eval(src_off);
        let doff = self.eval(dst_off);
        let len_iv = self.eval(len);
        if len_iv.hi == 0 {
            return;
        }
        let r_extent = so.hi.saturating_add(len_iv.hi);
        let w_extent = doff.hi.saturating_add(len_iv.hi);
        let wild_read = self.check_access(st, src, r_extent);
        let wild_write = self.check_access(st, dst, w_extent);
        if wild_read || wild_write {
            // A copy never checks validity bits, so no UR here — but wild
            // reads may pull bytes (and origins) from any buffer.
            self.emit_wild(st, false);
        }

        // Does the copy provably move only initialized bytes?
        let definitely_init = !wild_read
            && st.slots[src.index()]
                .refs
                .keys()
                .next()
                .copied()
                .filter(|&s| st.sole_definite_ref(src.index(), s))
                .and_then(|s| st.bufs.get(&s))
                .is_some_and(|b| r_extent <= b.init_prefix);

        // Taint sources: the source sites themselves plus their origins
        // (invalid bytes keep blaming where they were first left invalid).
        let mut taint: BTreeSet<SiteIdx> = BTreeSet::new();
        if !definitely_init {
            for &s in st.slots[src.index()].refs.keys() {
                taint.insert(s);
                if let Some(b) = st.bufs.get(&s) {
                    taint.extend(b.origins.iter().copied());
                }
            }
            if wild_read {
                taint.extend(st.bufs.keys().copied());
            }
        }

        let sole_dst = st.slots[dst.index()]
            .refs
            .keys()
            .next()
            .copied()
            .filter(|&d| st.sole_definite_ref(dst.index(), d));
        let dst_sites: Vec<SiteIdx> = st.slots[dst.index()].refs.keys().copied().collect();
        for d in dst_sites {
            let Some(buf) = st.bufs.get_mut(&d) else {
                continue;
            };
            if definitely_init {
                if sole_dst == Some(d) && doff.hi <= buf.init_prefix {
                    buf.init_prefix = buf.init_prefix.max(doff.lo.saturating_add(len_iv.lo));
                }
            } else {
                // Possibly-invalid bytes may now sit anywhere from dst_off
                // on: shrink the guarantee and record the origins.
                buf.init_prefix = buf.init_prefix.min(doff.lo);
                buf.origins.extend(taint.iter().copied());
            }
        }
    }
}
