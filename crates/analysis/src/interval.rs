//! Unsigned interval arithmetic mirroring [`ht_simprog::Expr`] semantics.
//!
//! Every modeled expression evaluates over `u64` with *saturating* addition,
//! subtraction and multiplication, and `checked_div` division (`x / 0 = 0`).
//! The interval transfer functions below are the exact abstractions of those
//! operators: for all `a ∈ A`, `b ∈ B`, `op(a, b) ∈ A.op(B)`.

use std::fmt;

/// A closed interval `[lo, hi]` over `u64`. Invariant: `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u64,
    /// Largest possible value.
    pub hi: u64,
}

impl Interval {
    /// The full range `[0, u64::MAX]` — an unconstrained attack input.
    pub const FULL: Interval = Interval {
        lo: 0,
        hi: u64::MAX,
    };

    /// The interval containing exactly `v`.
    pub const fn exact(v: u64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Whether the interval is a single value.
    pub fn is_exact(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether `v` lies in the interval.
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Smallest interval containing both operands.
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Abstract saturating addition.
    pub fn sat_add(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    /// Abstract saturating subtraction.
    pub fn sat_sub(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_sub(other.hi),
            hi: self.hi.saturating_sub(other.lo),
        }
    }

    /// Abstract saturating multiplication (monotone over unsigned operands).
    pub fn sat_mul(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_mul(other.lo),
            hi: self.hi.saturating_mul(other.hi),
        }
    }

    /// Abstract `checked_div(..).unwrap_or(0)` — the modeled `Div`.
    pub fn checked_div(&self, other: &Interval) -> Interval {
        if other.hi == 0 {
            // Denominator is definitely 0: result is definitely 0.
            return Interval::exact(0);
        }
        // Quotient range for a non-zero denominator.
        let q = Interval {
            lo: self.lo / other.hi,
            hi: self.hi / other.lo.max(1),
        };
        if other.lo == 0 {
            // Denominator may be 0, which yields 0.
            q.join(&Interval::exact(0))
        } else {
            q
        }
    }

    /// Abstract minimum.
    pub fn min(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Abstract maximum.
    pub fn max(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "{}", self.lo)
        } else if *self == Interval::FULL {
            f.write_str("[0, max]")
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_join() {
        let a = Interval::exact(4);
        assert!(a.is_exact());
        assert!(a.contains(4));
        assert!(!a.contains(5));
        let j = a.join(&Interval::exact(10));
        assert_eq!(j, Interval::new(4, 10));
        assert!(!j.is_exact());
    }

    #[test]
    fn arithmetic_mirrors_expr_semantics() {
        let a = Interval::new(2, 5);
        let b = Interval::new(3, 4);
        assert_eq!(a.sat_add(&b), Interval::new(5, 9));
        assert_eq!(a.sat_sub(&b), Interval::new(0, 2), "saturating");
        assert_eq!(a.sat_mul(&b), Interval::new(6, 20));
        assert_eq!(a.min(&b), Interval::new(2, 4));
        assert_eq!(a.max(&b), Interval::new(3, 5));
    }

    #[test]
    fn saturation_at_bounds() {
        let big = Interval::exact(u64::MAX);
        assert_eq!(big.sat_add(&Interval::exact(1)).hi, u64::MAX);
        assert_eq!(big.sat_mul(&Interval::exact(2)).lo, u64::MAX);
        assert_eq!(Interval::exact(0).sat_sub(&big), Interval::exact(0));
    }

    #[test]
    fn division_by_possibly_zero() {
        let a = Interval::new(10, 20);
        assert_eq!(a.checked_div(&Interval::exact(2)), Interval::new(5, 10));
        assert_eq!(a.checked_div(&Interval::exact(0)), Interval::exact(0));
        // Denominator [0, 2]: either 0 (division by zero) or >= 5.
        let d = a.checked_div(&Interval::new(0, 2));
        assert!(d.contains(0));
        assert!(d.contains(10));
        assert!(d.contains(20));
    }

    #[test]
    fn division_soundness_spot_checks() {
        // op(a, b) ∈ A.op(B) for every concrete pair in small ranges.
        let ranges = [
            Interval::new(0, 7),
            Interval::new(3, 9),
            Interval::exact(0),
            Interval::new(0, 1),
        ];
        for a_iv in ranges {
            for b_iv in ranges {
                let abs = a_iv.checked_div(&b_iv);
                for a in a_iv.lo..=a_iv.hi {
                    for b in b_iv.lo..=b_iv.hi {
                        let c = a.checked_div(b).unwrap_or(0);
                        assert!(abs.contains(c), "{a}/{b}={c} not in {abs}");
                    }
                }
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Interval::exact(7).to_string(), "7");
        assert_eq!(Interval::new(1, 3).to_string(), "[1, 3]");
        assert_eq!(Interval::FULL.to_string(), "[0, max]");
    }
}
