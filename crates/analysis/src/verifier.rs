//! The encoding-plan verifier: static checks that an
//! [`InstrumentationPlan`] delivers what it claims.

use ht_callgraph::{enumerate_contexts, CallGraph, FuncId, Strategy};
use ht_encoding::{collision_report, CollisionReport, InstrumentationPlan};
use std::collections::HashSet;

/// Enumeration caps for context-space exploration (recursion makes the true
/// space unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifierLimits {
    /// Maximum edges per enumerated context.
    pub max_depth: usize,
    /// Maximum contexts enumerated in total.
    pub max_paths: usize,
}

impl Default for VerifierLimits {
    fn default() -> Self {
        Self {
            max_depth: 64,
            max_paths: 200_000,
        }
    }
}

/// What the verifier concluded about a plan over its graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanVerdict {
    /// Exhaustive (bounded) encoding statistics: contexts, distinct CCIDs,
    /// collisions, decode round-trip failures.
    pub collisions: CollisionReport,
    /// If the plan claims precision, no two distinct contexts of one target
    /// may share a CCID and — when decoding is supported (decodable scheme,
    /// single-entry graph) — every CCID must round-trip. Plans that never
    /// claimed precision (e.g. PCC) pass vacuously; their collision rate is
    /// still reported in [`PlanVerdict::collisions`].
    pub precision_ok: bool,
    /// The paper's site-set containment: `FCS ⊇ TCS ⊇ Slim ⊇ Incremental`.
    pub inclusion_ok: bool,
    /// The plan's instrumented sites are exactly its strategy's selection
    /// over this graph (the plan was not built for a different graph).
    pub sites_ok: bool,
    /// Every target reachable from a program root was enumerated with at
    /// least one calling context (so every runtime allocation has a defined
    /// CCID).
    pub coverage_ok: bool,
    /// Enumeration hit [`VerifierLimits::max_paths`]; verdicts describe the
    /// explored prefix of the context space only.
    pub bounded: bool,
}

impl PlanVerdict {
    /// Whether every check passed.
    pub fn is_ok(&self) -> bool {
        self.precision_ok && self.inclusion_ok && self.sites_ok && self.coverage_ok
    }
}

/// Verifies `plan` against `graph` under `limits`.
pub fn verify_plan(
    graph: &CallGraph,
    plan: &InstrumentationPlan,
    limits: &VerifierLimits,
) -> PlanVerdict {
    // A plan built for a different graph would index out of range during
    // encoding, so establish compatibility first: its site set must be
    // exactly what its own strategy selects over *this* graph.
    let sites_ok = *plan.sites() == plan.strategy().select(graph);

    let collisions = if sites_ok {
        collision_report(graph, plan, limits.max_depth, limits.max_paths)
    } else {
        CollisionReport {
            contexts: 0,
            distinct: 0,
            collisions: 0,
            decode_failures: 0,
        }
    };
    // Decoding is only defined for single-entry graphs under a decodable
    // scheme; elsewhere `decode` returns `None` by contract and round-trip
    // failures say nothing about the plan's precision.
    let decode_supported = plan.scheme().is_decodable() && graph.roots().len() == 1;
    let precision_ok = sites_ok
        && (!plan.is_precise()
            || (collisions.collisions == 0
                && (!decode_supported || collisions.decode_failures == 0)));

    let fcs = Strategy::Fcs.select(graph);
    let tcs = Strategy::Tcs.select(graph);
    let slim = Strategy::Slim.select(graph);
    let inc = Strategy::Incremental.select(graph);
    let inclusion_ok = inc.is_subset(&slim) && slim.is_subset(&tcs) && tcs.is_subset(&fcs);

    let ctxs = enumerate_contexts(graph, limits.max_depth, limits.max_paths);
    let bounded = ctxs.len() >= limits.max_paths;
    let enumerated: HashSet<FuncId> = ctxs.iter().map(|(t, _)| *t).collect();
    let coverage_ok = reachable_targets(graph)
        .into_iter()
        .all(|t| enumerated.contains(&t));

    PlanVerdict {
        collisions,
        precision_ok,
        inclusion_ok,
        sites_ok,
        coverage_ok,
        bounded,
    }
}

/// Targets reachable from any root via call edges.
fn reachable_targets(graph: &CallGraph) -> Vec<FuncId> {
    let mut seen = vec![false; graph.func_count()];
    let mut work: Vec<FuncId> = graph.roots();
    for &r in &work {
        seen[r.index()] = true;
    }
    while let Some(f) = work.pop() {
        for &e in &graph.func(f).out_edges {
            let callee = graph.edge(e).callee;
            if !seen[callee.index()] {
                seen[callee.index()] = true;
                work.push(callee);
            }
        }
    }
    graph
        .targets()
        .iter()
        .copied()
        .filter(|t| seen[t.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ht_callgraph::CallGraphBuilder;
    use ht_encoding::Scheme;

    /// A diamond with one unreachable target hanging off a rootless cycle.
    fn diamond() -> CallGraph {
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let f = b.func("f");
        let g = b.func("g");
        let m = b.target("malloc");
        b.call(main, f);
        b.call(main, g);
        b.call(f, m);
        b.call(g, m);
        b.build()
    }

    #[test]
    fn all_strategies_and_schemes_verify_on_a_dag() {
        let g = diamond();
        for strategy in Strategy::ALL {
            for scheme in Scheme::ALL {
                let plan = InstrumentationPlan::build(&g, strategy, scheme);
                let v = verify_plan(&g, &plan, &VerifierLimits::default());
                assert!(v.is_ok(), "{strategy}/{scheme}: {v:?}");
                assert!(!v.bounded);
                assert_eq!(v.collisions.contexts, 2, "two contexts reach malloc");
            }
        }
    }

    #[test]
    fn precise_schemes_must_be_collision_free() {
        let g = diamond();
        let plan = InstrumentationPlan::build(&g, Strategy::Tcs, Scheme::Positional);
        let v = verify_plan(&g, &plan, &VerifierLimits::default());
        assert!(plan.is_precise());
        assert!(v.precision_ok);
        assert_eq!(v.collisions.collisions, 0);
        assert_eq!(v.collisions.decode_failures, 0);
    }

    #[test]
    fn foreign_plan_fails_sites_check() {
        let g = diamond();
        let mut b = CallGraphBuilder::new();
        let main = b.func("main");
        let m = b.target("malloc");
        b.call(main, m);
        let other = b.build();
        let plan = InstrumentationPlan::build(&other, Strategy::Fcs, Scheme::Pcc);
        let v = verify_plan(&g, &plan, &VerifierLimits::default());
        assert!(!v.sites_ok, "plan built for a different graph");
        assert!(!v.is_ok());
    }

    #[test]
    fn enumeration_caps_mark_the_verdict_bounded() {
        let g = diamond();
        let plan = InstrumentationPlan::build(&g, Strategy::Incremental, Scheme::Pcc);
        let v = verify_plan(
            &g,
            &plan,
            &VerifierLimits {
                max_depth: 64,
                max_paths: 1,
            },
        );
        assert!(v.bounded);
    }
}
