//! The attack-input domain and abstract expression evaluation.

use crate::interval::Interval;
use ht_simprog::Expr;

/// Bounds on the program input vector under which the triage runs.
///
/// The paper's threat model gives the attacker full control of the input, so
/// by default every `Input(i)` ranges over `[0, u64::MAX]`. Callers that know
/// protocol-level limits (e.g. a 16-bit length field) can tighten individual
/// indices; the triage then only reports what is reachable within them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputDomain {
    /// Per-index overrides; indices beyond the vector are unconstrained.
    bounds: Vec<Option<Interval>>,
}

impl InputDomain {
    /// The default adversarial domain: every input unconstrained.
    pub fn attack() -> Self {
        Self::default()
    }

    /// Constrains input `i` to `bound` (builder style).
    ///
    /// Note that a bound with `lo > 0` asserts the input vector actually
    /// carries index `i`: a missing index evaluates to 0 in the modeled
    /// language, which such a bound excludes.
    #[must_use]
    pub fn bound(mut self, i: usize, bound: Interval) -> Self {
        if self.bounds.len() <= i {
            self.bounds.resize(i + 1, None);
        }
        self.bounds[i] = Some(bound);
        self
    }

    /// The interval of input `i`.
    pub fn get(&self, i: usize) -> Interval {
        self.bounds
            .get(i)
            .copied()
            .flatten()
            .unwrap_or(Interval::FULL)
    }
}

/// Evaluates `expr` to an interval over `dom` — the abstract counterpart of
/// [`Expr::eval`].
pub fn eval_expr(expr: &Expr, dom: &InputDomain) -> Interval {
    match expr {
        Expr::Const(v) => Interval::exact(*v),
        Expr::Input(i) => dom.get(*i),
        Expr::Add(a, b) => eval_expr(a, dom).sat_add(&eval_expr(b, dom)),
        Expr::Sub(a, b) => eval_expr(a, dom).sat_sub(&eval_expr(b, dom)),
        Expr::Mul(a, b) => eval_expr(a, dom).sat_mul(&eval_expr(b, dom)),
        Expr::Div(a, b) => eval_expr(a, dom).checked_div(&eval_expr(b, dom)),
        Expr::Min(a, b) => eval_expr(a, dom).min(&eval_expr(b, dom)),
        Expr::Max(a, b) => eval_expr(a, dom).max(&eval_expr(b, dom)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_exact() {
        let dom = InputDomain::attack();
        assert_eq!(eval_expr(&Expr::Const(9), &dom), Interval::exact(9));
    }

    #[test]
    fn inputs_default_to_full_range() {
        let dom = InputDomain::attack();
        assert_eq!(eval_expr(&Expr::Input(3), &dom), Interval::FULL);
    }

    #[test]
    fn bounds_tighten_inputs() {
        let dom = InputDomain::attack().bound(1, Interval::new(10, 20));
        assert_eq!(eval_expr(&Expr::Input(1), &dom), Interval::new(10, 20));
        assert_eq!(eval_expr(&Expr::Input(0), &dom), Interval::FULL);
    }

    #[test]
    fn compound_expressions() {
        let dom = InputDomain::attack().bound(0, Interval::new(2, 4));
        // min(input0 * 8, 100) ∈ [16, 32]
        let e = Expr::Input(0).mul(Expr::Const(8)).min(Expr::Const(100));
        assert_eq!(eval_expr(&e, &dom), Interval::new(16, 32));
    }

    #[test]
    fn abstraction_is_sound_on_samples() {
        // For a handful of expressions and concrete inputs within the
        // domain, the concrete result must lie in the abstract interval.
        let dom = InputDomain::attack()
            .bound(0, Interval::new(0, 50))
            .bound(1, Interval::new(1, 7));
        let exprs = [
            Expr::Input(0).add(Expr::Input(1)),
            Expr::Input(0).sub(Expr::Input(1)),
            Expr::Input(0).div(Expr::Input(1)),
            Expr::Input(0).mul(Expr::Input(1)).max(Expr::Const(3)),
        ];
        for e in &exprs {
            let abs = eval_expr(e, &dom);
            for i0 in [0u64, 1, 25, 50] {
                for i1 in [1u64, 3, 7] {
                    let v = e.eval(&[i0, i1]);
                    assert!(abs.contains(v), "{e:?} on [{i0},{i1}] = {v} not in {abs}");
                }
            }
        }
    }
}
